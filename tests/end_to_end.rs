//! End-to-end integration: train a small agent on the TIA and verify the
//! full pipeline (target sampling -> env -> PPO -> deployment) improves
//! over a random policy.

use autockt::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

#[test]
fn train_then_deploy_beats_random_policy() {
    let problem: Arc<dyn SizingProblem> = Arc::new(Tia::default());
    // Small but real training budget (runs in debug within seconds because
    // the TIA simulation is milliseconds).
    let cfg = TrainConfig {
        ppo: PpoConfig {
            steps_per_iter: 512,
            minibatch: 128,
            epochs: 4,
            ..PpoConfig::default()
        },
        num_workers: 4,
        horizon: 20,
        max_iters: 12,
        target_mean_reward: 5.0,
        seed: 1234,
        ..TrainConfig::default()
    };
    let result = train(Arc::clone(&problem), &cfg);
    assert!(!result.curve.is_empty());
    // The curve should improve from start to best.
    let first = result
        .curve
        .first()
        .expect("has iterations")
        .mean_episode_reward;
    let best = result
        .curve
        .iter()
        .map(|s| s.mean_episode_reward)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best > first,
        "training should improve the mean episode reward: {first} -> {best}"
    );

    // Deploy on fresh targets and compare with the random baseline.
    let mut rng = StdRng::seed_from_u64(4321);
    let targets: Vec<Vec<f64>> = (0..20)
        .map(|_| sample_uniform(problem.as_ref(), &mut rng))
        .collect();
    let dcfg = DeployConfig {
        horizon: 20,
        ..DeployConfig::default()
    };
    let trained = deploy(&result.agent.policy, Arc::clone(&problem), &targets, &dcfg);
    let random = autockt::baselines::random_agent_deploy(
        Arc::clone(&problem),
        &targets,
        20,
        SimMode::Schematic,
        55,
    );
    assert!(
        trained.reached() > random.reached(),
        "trained {} vs random {}",
        trained.reached(),
        random.reached()
    );
}

#[test]
fn training_is_reproducible_for_fixed_seed() {
    let problem: Arc<dyn SizingProblem> = Arc::new(Tia::default());
    let cfg = TrainConfig {
        ppo: PpoConfig {
            steps_per_iter: 128,
            minibatch: 64,
            epochs: 2,
            ..PpoConfig::default()
        },
        num_workers: 2,
        horizon: 10,
        max_iters: 2,
        target_mean_reward: f64::INFINITY,
        seed: 777,
        ..TrainConfig::default()
    };
    let a = train(Arc::clone(&problem), &cfg);
    let b = train(Arc::clone(&problem), &cfg);
    assert_eq!(a.targets, b.targets, "target sets must match");
    for (x, y) in a.curve.iter().zip(&b.curve) {
        assert_eq!(x.episodes, y.episodes);
        assert!((x.mean_episode_reward - y.mean_episode_reward).abs() < 1e-9);
    }
}
