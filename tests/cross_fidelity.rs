//! Cross-crate physics checks: the PEX extraction and PVT corners must
//! shift every topology's specs in physically sensible directions, because
//! the transfer-learning experiment (Table IV) relies on that structure.

use autockt::prelude::*;

fn center(p: &dyn SizingProblem) -> Vec<usize> {
    p.cardinalities().iter().map(|k| k / 2).collect()
}

#[test]
fn pex_degrades_tia_bandwidth() {
    let tia = Tia::default();
    let idx = center(&tia);
    let sch = tia.simulate(&idx, SimMode::Schematic).expect("schematic");
    let pex = tia.simulate(&idx, SimMode::Pex).expect("pex");
    // Cutoff frequency falls, settling time grows.
    assert!(pex[1] < sch[1], "cutoff: pex {} vs sch {}", pex[1], sch[1]);
    assert!(
        pex[0] > sch[0],
        "settling: pex {} vs sch {}",
        pex[0],
        sch[0]
    );
}

#[test]
fn pex_worst_case_is_no_better_than_nominal_for_opamp() {
    let p = OpAmp2::default();
    let idx = center(&p);
    let nom = p.simulate(&idx, SimMode::Pex).expect("pex nominal");
    let wc = p.simulate(&idx, SimMode::PexWorstCase).expect("pex wc");
    // Hard-min specs only get worse; minimized ibias only grows.
    assert!(wc[0] <= nom[0] + 1e-9, "gain");
    assert!(wc[1] <= nom[1] + 1e-3, "ugbw");
    assert!(wc[3] >= nom[3] - 1e-12, "ibias");
}

#[test]
fn schematic_vs_pex_shift_is_moderate() {
    // Fig. 14's histogram shows schematic-vs-PEX differences of tens of
    // percent. Our extraction should perturb, not destroy: for typical
    // designs the UGBW shift stays within a factor of ~3.
    let p = NegGmOta::default();
    let mut checked = 0;
    for k in [2usize, 4, 8, 16, 32] {
        let idx = vec![k.min(63); 6];
        let (Ok(sch), Ok(pex)) = (
            p.simulate(&idx, SimMode::Schematic),
            p.simulate(&idx, SimMode::Pex),
        ) else {
            continue;
        };
        if sch[1] > 0.0 && pex[1] > 0.0 {
            let ratio = sch[1] / pex[1];
            assert!(
                (0.3..10.0).contains(&ratio),
                "ugbw shift ratio {ratio} out of plausible band at k={k}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 2, "need at least two comparable design points");
}

#[test]
fn all_topologies_simulate_at_all_fidelities() {
    let problems: Vec<Box<dyn SizingProblem>> = vec![
        Box::new(Tia::default()),
        Box::new(OpAmp2::default()),
        Box::new(NegGmOta::default()),
    ];
    for p in &problems {
        let idx = center(p.as_ref());
        for mode in [SimMode::Schematic, SimMode::Pex, SimMode::PexWorstCase] {
            let specs = p
                .simulate(&idx, mode)
                .unwrap_or_else(|e| panic!("{} failed at {mode:?}: {e}", p.name()));
            assert_eq!(specs.len(), p.specs().len());
            assert!(specs.iter().all(|v| v.is_finite()));
        }
    }
}
