//! Integration checks across the framework and baseline crates: the GA and
//! the environment must agree on what "reaching a target" means, so the
//! sample-efficiency comparison in the tables is apples-to-apples.

use autockt::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

#[test]
fn ga_solution_satisfies_env_success_rule() {
    let tia = Tia::default();
    let mut rng = StdRng::seed_from_u64(63);
    let target = sample_feasible(&tia, &mut rng, 50);
    let out = ga_solve(
        &tia,
        &target,
        SimMode::Schematic,
        &GaConfig {
            population: 30,
            generations: 40,
            seed: 64,
            ..GaConfig::default()
        },
    );
    assert!(out.reached, "GA must solve a feasible target");
    // Re-check through the framework's own reward path.
    let specs = tia
        .simulate(&out.best_idx, SimMode::Schematic)
        .expect("winning design simulates");
    let r = reward(tia.specs(), &specs, &target);
    assert!(
        is_success(r),
        "GA winner must satisfy the env rule, r = {r}"
    );
}

#[test]
fn env_counts_simulations_like_the_tables_do() {
    // One environment step = one simulation; trajectory length equals the
    // sample-efficiency number reported for AutoCkt.
    let problem: Arc<dyn SizingProblem> = Arc::new(Tia::default());
    let mut env = SizingEnv::new(
        Arc::clone(&problem),
        EnvConfig {
            horizon: 7,
            mode: SimMode::Schematic,
            target_mode: TargetMode::Uniform,
            ..EnvConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(65);
    use autockt::rl::env::Env;
    env.reset(&mut rng);
    let before = env.sim_count();
    for _ in 0..7 {
        let sr = env.step(&[1; 6]);
        if sr.done {
            break;
        }
    }
    assert!(env.sim_count() - before <= 7);
    assert!(env.sim_count() - before >= 1);
}

#[test]
fn feasible_targets_are_solvable_by_random_search() {
    // sample_feasible promises reachability: verify the design it found is
    // recoverable by modest random search (sanity for the GA baselines).
    let tia = Tia::default();
    let mut rng = StdRng::seed_from_u64(66);
    for _ in 0..3 {
        let target = sample_feasible(&tia, &mut rng, 50);
        let out = ga_solve(
            &tia,
            &target,
            SimMode::Schematic,
            &GaConfig {
                population: 40,
                generations: 50,
                seed: 67,
                ..GaConfig::default()
            },
        );
        assert!(out.reached, "feasible target not reached by GA");
    }
}
