//! # autockt — deep reinforcement learning of analog circuit designs
//!
//! A full-stack Rust reproduction of *AutoCkt: Deep Reinforcement Learning
//! of Analog Circuit Designs* (Settaluri, Haj-Ali, Huang, Hakhamaneshi,
//! Nikolić — DATE 2020, arXiv:2001.01808).
//!
//! This facade crate re-exports the whole system; see the workspace crates
//! for the pieces:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] | SPICE-class simulator: MNA, Newton DC, AC, transient, noise, PEX |
//! | [`circuits`] | The paper's three topologies (TIA, two-stage op-amp, negative-gm OTA) |
//! | [`rl`] | MLP + Adam + factorized-categorical PPO + parallel rollouts |
//! | [`core`] | The AutoCkt framework: sizing MDP, Eq. 1 reward, training, deployment, transfer |
//! | [`baselines`] | Vanilla GA, random agent, GA+ML discriminator (BagNet-style) |
//!
//! ## Quickstart
//!
//! Train an agent on the transimpedance amplifier and ask it for designs
//! meeting fresh target specifications (see `examples/quickstart.rs` for
//! the runnable version):
//!
//! ```no_run
//! use autockt::prelude::*;
//! use std::sync::Arc;
//!
//! let problem: Arc<dyn SizingProblem> = Arc::new(Tia::default());
//! let trained = train(Arc::clone(&problem), &TrainConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let target = sample_uniform(problem.as_ref(), &mut rng);
//! let stats = deploy(&trained.agent.policy, problem, &[target], &DeployConfig::default());
//! assert!(stats.total() == 1);
//! ```

pub use autockt_baselines as baselines;
pub use autockt_circuits as circuits;
pub use autockt_core as core;
pub use autockt_rl as rl;
pub use autockt_sim as sim;

/// One-stop imports for applications.
pub mod prelude {
    pub use autockt_baselines::{ga_ml_solve, ga_solve, ga_solve_sweep, GaConfig, GaMlConfig};
    pub use autockt_circuits::{
        NegGmOta, OpAmp2, ParamSpec, SimMode, SizingProblem, SpecDef, SpecKind, Tia,
    };
    pub use autockt_core::{
        deploy, is_success, reward, sample_feasible, sample_uniform, train, training_targets,
        DeployConfig, DeployStats, EnvConfig, SizingEnv, TargetMode, TrainConfig,
    };
    pub use autockt_rl::{Ppo, PpoConfig};
    pub use autockt_sim::prelude::Technology;
    pub use rand::SeedableRng;
}
