//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API used by the workspace's property suites:
//! the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`], range
//! strategies over numeric types, and `prop::collection::vec`.
//!
//! ## Determinism and regressions
//!
//! Unlike upstream proptest, case generation is **fully deterministic**: the
//! seed of case `i` of test `t` is a pure function of `(file path, test
//! name, i)`, so every CI run explores the same cases. The number of cases
//! is bounded (default 64) and can be overridden with the `PROPTEST_CASES`
//! environment variable.
//!
//! Regression handling mirrors upstream: when a case fails, the harness
//! prints its seed; appending `seed = <n>` to
//! `<crate>/proptest-regressions/<test file stem>.txt` makes every future
//! run replay that case first. Regression files are checked into the repo.

/// Range-based value generation for the [`proptest!`] macro.
pub mod strategy {
    use core::ops::Range;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.start..self.end)
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, i64, i32, f64);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use core::ops::Range;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number of elements a [`VecStrategy`] draws: exact or sampled from a
    /// half-open range.
    #[derive(Clone, Debug)]
    pub enum SizeRange {
        /// Always this many elements.
        Exact(usize),
        /// Uniformly between `lo` (inclusive) and `hi` (exclusive).
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Between(r.start, r.end)
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a strategy for vectors whose elements come from `element` and
    /// whose length is governed by `size` (a `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Between(lo, hi) => rng.random_range(lo..hi),
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The deterministic case runner behind [`proptest!`].
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::path::PathBuf;

    /// Generator handed to each test case.
    pub type TestRng = StdRng;

    /// Cases per property when `PROPTEST_CASES` is unset.
    pub const DEFAULT_CASES: u64 = 64;

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES)
    }

    /// Path of the regression file for the test source file `file` — the
    /// crate-local `proptest-regressions/<stem>.txt`.
    fn regression_path(file: &str) -> Option<PathBuf> {
        let stem = std::path::Path::new(file).file_stem()?.to_str()?;
        let root = std::env::var("CARGO_MANIFEST_DIR").ok()?;
        Some(
            PathBuf::from(root)
                .join("proptest-regressions")
                .join(format!("{stem}.txt")),
        )
    }

    /// Parses `seed = <n>` / bare `<n>` lines; `#` starts a comment.
    pub(crate) fn parse_seeds(text: &str) -> Vec<u64> {
        text.lines()
            .filter_map(|line| {
                let line = line.split('#').next().unwrap_or("").trim();
                if line.is_empty() {
                    return None;
                }
                line.rsplit('=').next().unwrap_or(line).trim().parse().ok()
            })
            .collect()
    }

    /// Reads the regression seeds checked in for the test source file
    /// `file`, if any.
    fn regression_seeds(file: &str) -> Vec<u64> {
        let Some(path) = regression_path(file) else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        parse_seeds(&text)
    }

    /// Runs `case` against the checked-in regression seeds for `file`, then
    /// against `PROPTEST_CASES` deterministically derived seeds.
    ///
    /// # Panics
    ///
    /// Re-raises the first failing case's panic after printing its seed.
    pub fn run(file: &str, test_name: &str, mut case: impl FnMut(&mut TestRng)) {
        let base = fnv1a(file) ^ fnv1a(test_name).rotate_left(32);
        let mut run_one = |label: &str, seed: u64| {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut rng = StdRng::seed_from_u64(seed);
                case(&mut rng);
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest: {test_name} failed on {label} case with seed = {seed}\n\
                     proptest: add `seed = {seed}` to proptest-regressions/<file>.txt to pin it"
                );
                resume_unwind(payload);
            }
        };
        for seed in regression_seeds(file) {
            run_one("regression", seed);
        }
        for i in 0..case_count() {
            run_one(
                "generated",
                base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
        }
    }
}

/// Runs one or more property tests: each argument is drawn from its
/// strategy, the body runs once per case, deterministically seeded.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(file!(), stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property; failures report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property; failures report the case seed.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespaced strategy constructors, mirroring upstream's `prop::`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 1usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0.0..1.0f64, 4), w in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(w.len() >= 2 && w.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn regression_file_parsing() {
        let text = "# header comment\n\
                    seed = 42\n\
                    7 # trailing comment\n\
                    \n\
                    not a seed\n\
                    seed = 18446744073709551615\n";
        assert_eq!(crate::test_runner::parse_seeds(text), vec![42, 7, u64::MAX]);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        crate::test_runner::run(file!(), "det", |rng| {
            use rand::Rng;
            first.push(rng.random());
        });
        let mut second: Vec<u64> = Vec::new();
        crate::test_runner::run(file!(), "det", |rng| {
            use rand::Rng;
            second.push(rng.random());
        });
        assert_eq!(first, second);
        assert!(!first.is_empty());
    }
}
