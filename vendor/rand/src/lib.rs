//! Offline stand-in for the `rand` crate (0.9-series API subset).
//!
//! The build environment for this repository has no crates.io access, so the
//! workspace vendors a minimal, self-contained implementation of exactly the
//! API surface the AutoCkt code uses:
//!
//! - [`rngs::StdRng`] — a seedable xoshiro256++ generator (not the upstream
//!   ChaCha12, but the same trait surface and statistical quality far beyond
//!   what the tests and training loops need)
//! - [`SeedableRng::seed_from_u64`]
//! - [`Rng::random`] for `f64`, `f32`, `bool`, `u32`, `u64`, `usize`
//! - [`Rng::random_range`] over half-open ranges of the common integer types
//!   and `f64`
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates)
//!
//! Determinism contract: for a given seed, the sequence of values produced by
//! any combination of these calls is stable across platforms and releases of
//! this workspace. The RL training tests and the checked-in proptest
//! regressions rely on that, so treat any change to the generator or the
//! sampling arithmetic as a breaking change.

use core::ops::Range;

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Constructing a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Uniform sampling in [0, span) without modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let limit = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < limit {
            return v % span;
        }
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {}..{}",
            self.start,
            self.end
        );
        let unit: f64 = StandardSample::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (`f64`/`f32` uniform in [0, 1), `bool` fair coin, integers uniform).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Randomised slice operations.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn negative_float_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3..3usize);
    }
}
