//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the criterion API the workspace's `harness = false` bench
//! targets use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Methodology is deliberately simple — a warm-up pass sizes the iteration
//! count to a ~300 ms measurement window, and the mean over three windows is
//! reported with min/max spread — but the timing numbers are real and the
//! report is one stable line per benchmark:
//!
//! ```text
//! lu_solve_12x12            time:   [2.1013 µs 2.1100 µs 2.1309 µs]  (142857 iter/window)
//! ```
//!
//! A positional CLI argument filters benchmarks by substring, mirroring
//! `cargo bench <filter>`.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported so benches can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How much setup output to hold in memory in
/// [`Bencher::iter_batched`]. The stand-in runs setup once per timed
/// call either way, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Regenerate input on every iteration.
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    warmup: Duration,
    window: Duration,
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    fn new(warmup: Duration, window: Duration) -> Self {
        Bencher {
            warmup,
            window,
            samples: Vec::new(),
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate the per-call cost.
        let warm_start = Instant::now();
        let mut warm_calls: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std_black_box(routine());
            warm_calls += 1;
        }
        let per_call = warm_start.elapsed() / warm_calls.max(1) as u32;
        let per_window =
            (self.window.as_nanos() / per_call.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..per_window {
                std_black_box(routine());
            }
            self.samples.push((start.elapsed(), per_window));
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut timed = Duration::ZERO;
        let mut calls: u64 = 0;
        // One warm-up call, then measure until the window fills.
        std_black_box(routine(setup()));
        while timed < self.window {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            timed += start.elapsed();
            calls += 1;
        }
        self.samples.push((timed, calls));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

/// The benchmark driver: filters, runs, and reports each registered
/// benchmark.
pub struct Criterion {
    filter: Option<String>,
    warmup: Duration,
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards everything after `--` plus harness flags like
        // `--bench`; the first non-flag argument is a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            warmup: Duration::from_millis(60),
            window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs `f` with a [`Bencher`] and prints one report line, unless the
    /// CLI filter excludes `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher::new(self.warmup, self.window);
        f(&mut bencher);
        let per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|(t, n)| t.as_nanos() as f64 / (*n).max(1) as f64)
            .collect();
        if per_iter.is_empty() {
            println!("{name:<42} (no samples)");
            return self;
        }
        let lo = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let calls = bencher.samples[0].1;
        println!(
            "{name:<42} time:   [{} {} {}]  ({calls} iter/window)",
            format_ns(lo),
            format_ns(mean),
            format_ns(hi),
        );
        self
    }
}

/// Declares a function running the listed benchmark targets with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let mut b = Bencher::new(Duration::from_millis(1), Duration::from_millis(2));
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b
            .samples
            .iter()
            .all(|(t, n)| *n >= 1 && *t > Duration::ZERO));
    }

    #[test]
    fn bencher_iter_batched_collects_a_sample() {
        let mut b = Bencher::new(Duration::from_millis(1), Duration::from_millis(2));
        b.iter_batched(
            || vec![1u64; 64],
            |v| v.iter().sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn bench_function_runs_and_filters() {
        let mut c = Criterion {
            filter: Some("match".into()),
            warmup: Duration::from_millis(1),
            window: Duration::from_millis(2),
        };
        let mut ran = false;
        c.bench_function("no", |_| ran = true);
        assert!(!ran);
        c.bench_function("does_match", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }
}
