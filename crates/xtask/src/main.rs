//! Workspace maintenance tasks, driven as `cargo run -p xtask -- <task>`.
//!
//! ## `lint` — panic-lint ratchet
//!
//! Statically scans the simulator's non-test sources
//! (`crates/sim/src`, excluding `#[cfg(test)]` modules) for panicking
//! escape hatches — `.unwrap()`, `.expect(`, `panic!` — and holds the
//! count to a checked-in baseline (`crates/xtask/lint-baseline.txt`).
//! The ratchet only turns one way:
//!
//! - a file exceeding its baselined count **fails** the lint (new
//!   panics must become `SimError` returns, or carry an allowlist
//!   justification);
//! - a total below the baseline also fails, with instructions to run
//!   `--update-baseline` — improvements are locked in immediately so
//!   they cannot silently regress.
//!
//! A site that is infallible by construction can be allowlisted by a
//! justification comment containing `lint:allow(panic)` on the line
//! itself or within the five lines above it; the justification is part
//! of the comment, so every suppressed site documents *why* it cannot
//! fire.
//!
//! The scanner is deliberately line-based (comments stripped, test
//! modules skipped by brace tracking): it is a ratchet against new
//! unaudited panic sites, not a parser. Sites it cannot see (indexing,
//! arithmetic overflow, explicit `assert!`) are out of scope — those
//! carry `# Panics` docs instead.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Source tree the lint audits (library code only; tests and benches may
/// panic freely).
const LINT_ROOT: &str = "crates/sim/src";
/// Checked-in ratchet state.
const BASELINE: &str = "crates/xtask/lint-baseline.txt";
/// Suppression marker; must live in a comment on the offending line or
/// within `ALLOW_WINDOW` lines above it.
const ALLOW_MARKER: &str = "lint:allow(panic)";
const ALLOW_WINDOW: usize = 5;
/// The panicking escape hatches the ratchet counts.
const PATTERNS: [&str; 3] = [".unwrap()", ".expect(", "panic!"];

/// One un-allowlisted panic site.
struct Finding {
    file: PathBuf,
    line: usize,
    pattern: &'static str,
    text: String,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let update = args.any(|a| a == "--update-baseline");
            lint(update)
        }
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [--update-baseline]\n\
                 unknown task: {other:?}"
            );
            ExitCode::FAILURE
        }
    }
}

fn lint(update_baseline: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join(LINT_ROOT), &mut files);
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let src = match fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(file).to_path_buf();
        scan_file(&rel, &src, &mut findings);
    }

    // Per-file counts, path-sorted for a stable baseline file.
    let mut counts: Vec<(String, usize)> = Vec::new();
    for f in &findings {
        let key = f.file.display().to_string().replace('\\', "/");
        match counts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, c)) => *c += 1,
            None => counts.push((key, 1)),
        }
    }
    counts.sort();
    let total: usize = counts.iter().map(|(_, c)| c).sum();

    let baseline_path = root.join(BASELINE);
    if update_baseline {
        let mut out = String::from(
            "# Panic-lint ratchet baseline: un-allowlisted `.unwrap()` / `.expect(` /\n\
             # `panic!` sites in non-test code under crates/sim/src. Maintained by\n\
             # `cargo run -p xtask -- lint --update-baseline`; counts may only go down.\n",
        );
        let _ = writeln!(out, "total {total}");
        for (file, count) in &counts {
            let _ = writeln!(out, "{file} {count}");
        }
        if let Err(e) = fs::write(&baseline_path, out) {
            eprintln!("xtask lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask lint: baseline updated ({total} finding(s))");
        return ExitCode::SUCCESS;
    }

    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "xtask lint: cannot read baseline {}: {e}\n\
                 run `cargo run -p xtask -- lint --update-baseline` to create it",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let mut base_total = 0usize;
    let mut base_counts: Vec<(String, usize)> = Vec::new();
    for line in baseline.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, count) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => continue,
        };
        let count: usize = match count.parse() {
            Ok(c) => c,
            Err(_) => continue,
        };
        if name == "total" {
            base_total = count;
        } else {
            base_counts.push((name.to_string(), count));
        }
    }

    let mut failed = false;
    for (file, count) in &counts {
        let allowed = base_counts
            .iter()
            .find(|(k, _)| k == file)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        if *count > allowed {
            failed = true;
            eprintln!("xtask lint: {file}: {count} finding(s), baseline allows {allowed}:");
            for f in findings
                .iter()
                .filter(|f| f.file.display().to_string().replace('\\', "/") == *file)
            {
                eprintln!("  {}:{}: `{}` in: {}", file, f.line, f.pattern, f.text);
            }
        }
    }
    if failed {
        eprintln!(
            "xtask lint: new panic sites in library code — return a SimError instead, or\n\
             justify infallibility with a `{ALLOW_MARKER}` comment at the site"
        );
        return ExitCode::FAILURE;
    }
    if total < base_total {
        eprintln!(
            "xtask lint: {total} finding(s), below the baselined {base_total} — nice;\n\
             lock it in with `cargo run -p xtask -- lint --update-baseline`"
        );
        return ExitCode::FAILURE;
    }
    println!("xtask lint: ok ({total} finding(s), baseline {base_total})");
    ExitCode::SUCCESS
}

/// Scans one source file, appending un-allowlisted findings.
///
/// `#[cfg(test)]`-gated modules are skipped by tracking the brace depth
/// of the `mod` item the attribute precedes; line comments are stripped
/// before pattern matching so prose about panicking is not counted.
fn scan_file(rel: &Path, src: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = src.lines().collect();
    // Depth of the currently skipped test module, if any: the module is
    // skipped from its opening brace until the matching close.
    let mut skip_depth: Option<i64> = None;
    let mut depth: i64 = 0;
    let mut pending_test_attr = false;
    for (idx, raw) in lines.iter().enumerate() {
        let code = strip_line_comment(raw);
        let trimmed = code.trim();
        if skip_depth.is_none() {
            if trimmed.starts_with("#[cfg(test)]") {
                pending_test_attr = true;
            } else if pending_test_attr && trimmed.starts_with("mod ") {
                if trimmed.contains('{') {
                    skip_depth = Some(depth);
                    pending_test_attr = false;
                }
                // `mod name;` (file module): nothing to skip inline.
                if trimmed.ends_with(';') {
                    pending_test_attr = false;
                }
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                pending_test_attr = false;
            }
        }
        let in_skip = skip_depth.is_some();
        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(d) = skip_depth {
                        if depth <= d {
                            skip_depth = None;
                        }
                    }
                }
                _ => {}
            }
        }
        if in_skip {
            continue;
        }
        for pattern in PATTERNS {
            if !code.contains(pattern) {
                continue;
            }
            let allowed =
                (idx.saturating_sub(ALLOW_WINDOW)..=idx).any(|k| lines[k].contains(ALLOW_MARKER));
            if !allowed {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    pattern,
                    text: raw.trim().to_string(),
                });
            }
        }
    }
}

/// Drops a `//` line comment, leaving string literals intact enough for
/// this lint's purposes (a `//` inside a string would truncate the line,
/// which can only under-count — the ratchet direction that is safe).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The workspace root: this binary always runs via `cargo run -p xtask`,
/// so the manifest dir's grandparent is the root.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
