//! Workspace maintenance tasks, driven as `cargo run -p xtask -- <task>`.
//!
//! ## `lint` — the static-analysis suite
//!
//! ```text
//! cargo run -p xtask -- lint [--only=<name>] [--update-baseline]
//! ```
//!
//! Runs a token-level static-analysis pass over the workspace: sources
//! are lexed (strings, raw strings, char literals, nested block
//! comments, lifetimes — see `lexer.rs`) so lints match *code tokens*,
//! never prose or literal contents. Five lints ship (see `lints.rs`):
//! `panic`, `kernel-purity`, `crate-layering`, `float-eq`,
//! `thread-discipline`. Each holds
//! its findings to a checked-in one-way ratchet baseline under
//! `crates/xtask/baselines/` and honors `lint:allow(<name>)`
//! justification comments; every run writes a machine-readable report to
//! `target/lint-report.json`.
//!
//! Sites the lexer-level lints cannot see (indexing, arithmetic
//! overflow, explicit `assert!`) are out of scope — those carry
//! `# Panics` docs instead.

mod baseline;
mod engine;
mod lexer;
mod lints;
mod report;
mod source;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use engine::{FileCache, LintOutcome, Status};
use lints::LINTS;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut only: Option<String> = None;
            let mut update = false;
            for arg in &args[1..] {
                if arg == "--update-baseline" {
                    update = true;
                } else if let Some(name) = arg.strip_prefix("--only=") {
                    only = Some(name.to_string());
                } else {
                    eprintln!("xtask lint: unknown flag {arg:?}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
            lint(only.as_deref(), update)
        }
        other => {
            eprintln!("unknown task: {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo run -p xtask -- lint [--only=<name>] [--update-baseline]";

fn lint(only: Option<&str>, update_baseline: bool) -> ExitCode {
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let selected: Vec<_> = match only {
        Some(name) => match engine::spec_by_name(name) {
            Some(spec) => vec![spec],
            None => {
                let known: Vec<&str> = LINTS.iter().map(|s| s.name).collect();
                eprintln!(
                    "xtask lint: unknown lint {name:?}; known: {}",
                    known.join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
        None => LINTS.iter().collect(),
    };

    let mut cache = FileCache::default();
    let mut outcomes: Vec<LintOutcome> = Vec::new();
    for spec in selected {
        let (findings, files_scanned) = match engine::run_lint(spec, &root, &mut cache) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xtask lint [{}]: {e}", spec.name);
                return ExitCode::FAILURE;
            }
        };
        if update_baseline {
            let counts = engine::count_by_file(&findings);
            let total: usize = counts.values().sum();
            if let Err(e) = baseline::save(
                &baseline::path(&root, spec.name),
                spec.name,
                spec.description,
                &counts,
            ) {
                eprintln!("xtask lint [{}]: {e}", spec.name);
                return ExitCode::FAILURE;
            }
            println!(
                "xtask lint [{}]: baseline updated ({total} finding(s))",
                spec.name
            );
            outcomes.push(LintOutcome {
                name: spec.name,
                description: spec.description,
                status: Status::Updated,
                files_scanned,
                total,
                baseline_total: total,
                findings,
            });
        } else {
            outcomes.push(engine::ratchet(spec, &root, findings, files_scanned));
        }
    }

    if let Err(e) = write_report(&root, &outcomes) {
        eprintln!("xtask lint: {e}");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for o in &outcomes {
        match o.status {
            Status::Updated => {}
            Status::Ok => {
                println!(
                    "xtask lint [{}]: ok ({} finding(s), baseline {}, {} file(s))",
                    o.name, o.total, o.baseline_total, o.files_scanned
                );
            }
            Status::NoBaseline => {
                failed = true;
                eprintln!(
                    "xtask lint [{}]: missing baseline {} — run\n\
                     `cargo run -p xtask -- lint --only={} --update-baseline` to create it",
                    o.name,
                    baseline::path(&root, o.name).display(),
                    o.name
                );
            }
            Status::Improved => {
                failed = true;
                eprintln!(
                    "xtask lint [{}]: {} finding(s), below the baselined {} — nice;\n\
                     lock it in with `cargo run -p xtask -- lint --only={} --update-baseline`",
                    o.name, o.total, o.baseline_total, o.name
                );
            }
            Status::Failed => {
                failed = true;
                let base = baseline::load(&baseline::path(&root, o.name)).unwrap_or_default();
                let counts = engine::count_by_file(&o.findings);
                for (file, count) in &counts {
                    let allowed = base.per_file.get(file).copied().unwrap_or(0);
                    if *count > allowed {
                        eprintln!(
                            "xtask lint [{}]: {file}: {count} finding(s), baseline allows {allowed}:",
                            o.name
                        );
                        for f in o.findings.iter().filter(|f| &f.file == file) {
                            eprintln!("  {}:{}: `{}` in: {}", file, f.line, f.pattern, f.snippet);
                        }
                    }
                }
                eprintln!(
                    "xtask lint [{}]: new findings — fix them, or justify each site with a\n\
                     `lint:allow({})` comment on the line or within 5 lines above",
                    o.name, o.name
                );
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn write_report(root: &Path, outcomes: &[LintOutcome]) -> Result<(), String> {
    let dir = root.join("target");
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join("lint-report.json");
    fs::write(&path, report::render(outcomes))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Finds the workspace root regardless of the invoking working
/// directory: walk up from `CARGO_MANIFEST_DIR` (set by `cargo run`) or,
/// when absent (the binary invoked directly), from the current directory,
/// looking for the `Cargo.toml` that declares `[workspace]` and contains
/// this tool's crate. Fails with a clear message otherwise.
fn workspace_root() -> Result<PathBuf, String> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .ok_or_else(|| "cannot determine a starting directory".to_string())?;
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let Ok(text) = fs::read_to_string(&manifest) else {
            continue;
        };
        if text.contains("[workspace]") && dir.join("crates/xtask/Cargo.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
    }
    Err(format!(
        "no workspace root found above {} — run from inside the autockt workspace \
         (the root Cargo.toml declares [workspace] and crates/xtask)",
        start.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_the_manifest_dir() {
        // Under `cargo test` CARGO_MANIFEST_DIR points at crates/xtask;
        // discovery must land on the workspace root above it.
        let root = workspace_root().expect("root discoverable");
        assert!(root.join("crates/sim/src").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    /// End-to-end: the committed baselines must be exactly in sync with
    /// the tree — the same invariant CI enforces, kept close to the code
    /// so `cargo test -p xtask` catches drift before CI does.
    #[test]
    fn committed_baselines_match_the_tree() {
        let root = workspace_root().expect("root discoverable");
        let mut cache = FileCache::default();
        for spec in LINTS {
            let (findings, files) = engine::run_lint(spec, &root, &mut cache).expect("lint runs");
            let outcome = engine::ratchet(spec, &root, findings, files);
            assert_eq!(
                outcome.status,
                Status::Ok,
                "lint {} out of sync: {} finding(s) vs baseline {} — findings: {:#?}",
                spec.name,
                outcome.total,
                outcome.baseline_total,
                outcome.findings
            );
        }
    }
}
