//! Per-file analysis model shared by all lints.
//!
//! A [`SourceFile`] is a lexed source file plus the two derived views the
//! lints need:
//!
//! - `code`: indices of non-comment tokens, so lints match patterns
//!   against code only;
//! - `in_test`: a mask over `code` marking tokens inside `#[cfg(test)]`
//!   items or `#[test]` functions, computed by *token-level* brace
//!   matching — braces inside string or char literals are string/char
//!   tokens here, so they can never desync the tracker (the failure mode
//!   of the old line-based scanner).
//!
//! Suppression: a finding on line `L` is allowlisted when a comment
//! token overlapping lines `[L - ALLOW_WINDOW, L]` contains
//! `lint:allow(<lint-name>)`. The justification lives in the same
//! comment, so every suppressed site documents why it cannot fire.

use crate::lexer::{lex, Token, TokenKind};

/// How far above a finding (in lines) an allow comment may sit.
pub const ALLOW_WINDOW: usize = 5;

/// A lexed source file with lint-ready views.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (stable across OSes).
    pub rel: String,
    pub src: String,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub code: Vec<usize>,
    /// Aligned with `code`: true for tokens inside test-gated items.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    pub fn new(rel: String, src: String) -> Self {
        let tokens = lex(&src);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].kind.is_comment())
            .collect();
        let in_test = test_mask(&tokens, &code, &src);
        SourceFile {
            rel,
            src,
            tokens,
            code,
            in_test,
        }
    }

    /// Text of the `i`-th *code* token.
    pub fn code_text(&self, i: usize) -> &str {
        self.tokens[self.code[i]].text(&self.src)
    }

    /// Kind of the `i`-th *code* token.
    pub fn code_kind(&self, i: usize) -> TokenKind {
        self.tokens[self.code[i]].kind
    }

    /// Line of the `i`-th *code* token.
    pub fn code_line(&self, i: usize) -> usize {
        self.tokens[self.code[i]].line
    }

    /// Whether `marker` (e.g. `lint:allow(panic)`) appears in a comment
    /// on `line` or within [`ALLOW_WINDOW`] lines above it.
    pub fn allowed(&self, line: usize, marker: &str) -> bool {
        let lo = line.saturating_sub(ALLOW_WINDOW);
        self.tokens.iter().any(|t| {
            t.kind.is_comment() && {
                let text = t.text(&self.src);
                let start = t.line;
                let end = start + text.matches('\n').count();
                start <= line && end >= lo && text.contains(marker)
            }
        })
    }

    /// The full source line (1-based) a finding sits on, trimmed — used
    /// for human-readable snippets.
    pub fn line_text(&self, line: usize) -> &str {
        self.src
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
    }
}

/// Computes the test mask over the code-token view.
///
/// Recognized gates, both applied to the item that follows (skipping any
/// further attributes): `#[cfg(test)]` and `#[test]`. The gated region
/// runs from the attribute through the item's matching close brace (or
/// its `;` for brace-less items). `#[cfg(not(test))]` and other cfg
/// predicates are *not* test gates: the match is the exact token
/// sequence `cfg ( test )`.
fn test_mask(tokens: &[Token], code: &[usize], src: &str) -> Vec<bool> {
    let n = code.len();
    let mut mask = vec![false; n];
    let text = |i: usize| tokens[code[i]].text(src);
    let mut i = 0usize;
    while i < n {
        if text(i) != "#" || i + 1 >= n || text(i + 1) != "[" {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = parse_attr(tokens, code, src, i);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Find the gated item's body: skip trailing attributes, then scan
        // to the first `{` (body start) or a terminating `;` (brace-less
        // item such as `mod tests;` — nothing inline to mark).
        let mut k = attr_end;
        let mut body = None;
        while k < n {
            if text(k) == "#" && k + 1 < n && text(k + 1) == "[" {
                k = parse_attr(tokens, code, src, k).0;
                continue;
            }
            match text(k) {
                "{" => {
                    body = Some(k);
                    break;
                }
                ";" => break,
                _ => k += 1,
            }
        }
        let Some(body) = body else {
            mask[i..k.min(n)].fill(true);
            i = k.min(n).max(i + 1);
            continue;
        };
        // Mark through the matching close brace.
        let mut depth = 0i64;
        let mut k = body;
        while k < n {
            match text(k) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let end = k.min(n - 1);
        mask[i..=end].fill(true);
        i = end + 1;
    }
    mask
}

/// Parses an attribute starting at code index `i` (which holds `#`, with
/// `[` at `i + 1`). Returns the code index one past the closing `]` and
/// whether the attribute is a test gate.
fn parse_attr(tokens: &[Token], code: &[usize], src: &str, i: usize) -> (usize, bool) {
    let n = code.len();
    let text = |k: usize| tokens[code[k]].text(src);
    let mut depth = 0i64;
    let mut k = i + 1;
    let body_start = i + 2;
    while k < n {
        match text(k) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    let body_end = k.min(n); // exclusive of `]`
    let body: Vec<&str> = (body_start..body_end).map(text).collect();
    let is_test = body == ["test"] || body == ["cfg", "(", "test", ")"];
    (body_end.saturating_add(1).min(n), is_test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("test.rs".into(), src.into())
    }

    /// Code-token texts outside test regions.
    fn non_test_code(f: &SourceFile) -> Vec<&str> {
        (0..f.code.len())
            .filter(|&i| !f.in_test[i])
            .map(|i| f.code_text(i))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let f = file(
            "fn lib() {}\n\
             #[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\
             fn after() {}\n",
        );
        let outside = non_test_code(&f);
        assert!(!outside.contains(&"unwrap"));
        assert!(outside.contains(&"lib"));
        assert!(outside.contains(&"after"));
    }

    #[test]
    fn string_braces_cannot_desync_the_mask() {
        // Regression for the line-based scanner: a `"}"` literal inside a
        // test module ended the skip early, and a `"{"` before it shifted
        // depth forever. Token-level tracking sees string tokens, not
        // braces.
        let f = file(
            "pub fn open() -> &'static str { \"{\" }\n\
             #[cfg(test)]\nmod tests {\n    const CLOSE: &str = \"}\";\n    fn t() { y.unwrap(); }\n}\n\
             pub fn close(c: char) -> bool { c == '}' }\n\
             fn real() { z.unwrap(); }\n",
        );
        let outside = non_test_code(&f);
        // The test-module unwrap is masked; the library one is not.
        assert_eq!(outside.iter().filter(|t| **t == "unwrap").count(), 1);
        assert!(outside.contains(&"real"));
        assert!(outside.contains(&"close"));
    }

    #[test]
    fn test_fn_and_stacked_attrs_are_masked() {
        let f = file(
            "#[test]\n#[should_panic]\nfn boom() { panic!(\"x\") }\n\
             fn keep() { val.unwrap() }\n",
        );
        let outside = non_test_code(&f);
        assert!(!outside.contains(&"panic"));
        assert!(outside.contains(&"unwrap"));
    }

    #[test]
    fn cfg_not_test_is_not_a_gate() {
        let f = file("#[cfg(not(test))]\nfn live() { a.unwrap(); }\n");
        assert!(non_test_code(&f).contains(&"unwrap"));
    }

    #[test]
    fn allow_marker_window() {
        let f = file(
            "// lint:allow(panic) — infallible by construction\n\
             fn a() { x.unwrap(); }\n\n\n\n\n\n\
             fn b() { y.unwrap(); }\n",
        );
        assert!(f.allowed(2, "lint:allow(panic)"));
        assert!(!f.allowed(8, "lint:allow(panic)"));
    }

    #[test]
    fn allow_marker_in_strings_or_prose_does_not_count() {
        let f = file("fn a() { let _ = \"lint:allow(panic)\"; x.unwrap(); }\n");
        assert!(!f.allowed(1, "lint:allow(panic)"));
    }
}
