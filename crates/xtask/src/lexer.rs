//! A small token-level lexer for Rust source, purpose-built for the lint
//! engine (see [`crate::source`]).
//!
//! The goal is not to be a full `rustc` lexer but to classify every byte
//! of a source file into one of a few token kinds so that lints match
//! against *code* tokens only: a `panic!` inside a string literal, a `{`
//! inside a char literal, or a pattern mentioned in a comment must never
//! reach a lint. The tricky cases this lexer handles deliberately:
//!
//! - string literals with escapes, byte strings (`b"…"`), raw strings
//!   with any number of hashes (`r"…"`, `r#"…"#`, `br##"…"##`);
//! - char literals including `'{'`, `'\''`, `'\u{…}'`, `b'x'` — and the
//!   lifetime/char-literal ambiguity (`'a` vs `'a'`, `'static`, `'_`);
//! - line comments vs doc comments (`//`, `///`, `//!`) and *nested*
//!   block comments (`/* /* */ */`, `/** … */`, `/*! … */`);
//! - numeric literals with enough fidelity to know whether one is a
//!   float (`1.0`, `1.`, `1e-9`, `2f64`, but not `0x1e5` or the `0` in
//!   tuple access `x.0`);
//! - raw identifiers (`r#match`) vs raw strings (`r#"…"#`).
//!
//! Unterminated literals or comments lex to a token ending at EOF; the
//! lexer never panics and never loops.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// A lifetime or loop label such as `'a` or `'static`.
    Lifetime,
    /// Character literal (`'x'`, `'{'`, `b'\n'`).
    CharLit,
    /// Non-raw string literal (`"…"`, `b"…"`).
    StrLit,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStrLit,
    /// Numeric literal; `float` is true for floating-point literals.
    Number { float: bool },
    /// `//` comment; `doc` is true for `///` and `//!` forms.
    LineComment { doc: bool },
    /// `/* … */` comment (nesting-aware); `doc` for `/**` and `/*!`.
    BlockComment { doc: bool },
    /// Any operator or delimiter, one or two characters.
    Punct,
}

impl TokenKind {
    /// Whether this token is a comment (line or block, doc or not).
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

/// One token: a kind plus its byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Two-character operators recognized as single `Punct` tokens; everything
/// else lexes one character at a time.
const TWO_CHAR_OPS: [&str; 10] = ["==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", ".."];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream (whitespace is dropped; everything
/// else, comments included, becomes a token).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        chars: src.char_indices().peekable(),
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    chars: std::iter::Peekable<std::str::CharIndices<'s>>,
    line: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Token> {
        while let Some(&(pos, c)) = self.chars.peek() {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let line = self.line;
            let kind = self.lex_token(pos, c);
            let end = self.pos();
            self.tokens.push(Token {
                kind,
                start: pos,
                end,
                line,
            });
        }
        self.tokens
    }

    /// Byte position of the next unconsumed char (or EOF).
    fn pos(&mut self) -> usize {
        match self.chars.peek() {
            Some(&(p, _)) => p,
            None => self.src.len(),
        }
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let (_, c) = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn peek_char(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    /// The char `n` positions ahead without consuming (0 = next).
    fn lookahead(&mut self, pos: usize, n: usize) -> Option<char> {
        self.src[pos..].chars().nth(n)
    }

    fn lex_token(&mut self, pos: usize, c: char) -> TokenKind {
        match c {
            '/' => match self.lookahead(pos, 1) {
                Some('/') => self.lex_line_comment(),
                Some('*') => self.lex_block_comment(),
                _ => self.lex_punct(pos),
            },
            '"' => {
                self.bump();
                self.lex_str_body()
            }
            '\'' => self.lex_quote(pos),
            'r' => match (self.lookahead(pos, 1), self.lookahead(pos, 2)) {
                (Some('"'), _) | (Some('#'), Some('"')) | (Some('#'), Some('#')) => {
                    self.bump();
                    self.lex_raw_str_body()
                }
                // `r#ident` raw identifier.
                (Some('#'), Some(n)) if is_ident_start(n) => {
                    self.bump();
                    self.bump();
                    self.lex_ident_body()
                }
                _ => self.lex_ident_body(),
            },
            'b' => match (self.lookahead(pos, 1), self.lookahead(pos, 2)) {
                (Some('\''), _) => {
                    self.bump();
                    self.bump();
                    self.lex_char_body()
                }
                (Some('"'), _) => {
                    self.bump();
                    self.bump();
                    self.lex_str_body()
                }
                (Some('r'), Some('"')) | (Some('r'), Some('#')) => {
                    self.bump();
                    self.bump();
                    self.lex_raw_str_body()
                }
                _ => self.lex_ident_body(),
            },
            d if d.is_ascii_digit() => self.lex_number(pos),
            i if is_ident_start(i) => self.lex_ident_body(),
            _ => self.lex_punct(pos),
        }
    }

    fn lex_line_comment(&mut self) -> TokenKind {
        // Consume `//` then everything up to (not including) the newline.
        self.bump();
        self.bump();
        let doc = matches!(self.peek_char(), Some('!'))
            || (matches!(self.peek_char(), Some('/')) && {
                // `///` is doc, `////…` is not (rustc rule).
                let after = self.src[self.pos()..].chars().nth(1);
                after != Some('/')
            });
        while let Some(c) = self.peek_char() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        TokenKind::LineComment { doc }
    }

    fn lex_block_comment(&mut self) -> TokenKind {
        // Consume `/*`; block comments nest.
        self.bump();
        self.bump();
        let doc = match self.peek_char() {
            Some('!') => true,
            // `/**/` is empty-not-doc, `/***` is not doc either.
            Some('*') => !matches!(self.src[self.pos()..].chars().nth(1), Some('*') | Some('/')),
            _ => false,
        };
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('/') if self.peek_char() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek_char() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
                None => break,
            }
        }
        TokenKind::BlockComment { doc }
    }

    /// Body of a `"…"` literal; the opening quote is already consumed.
    fn lex_str_body(&mut self) -> TokenKind {
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('"') | None => break,
                Some(_) => {}
            }
        }
        TokenKind::StrLit
    }

    /// Body of a raw string starting at `#`* `"`; `r`/`br` already consumed.
    fn lex_raw_str_body(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek_char() == Some('#') {
            self.bump();
            hashes += 1;
        }
        if self.peek_char() != Some('"') {
            // `r#…` that is not a string after all; treat what we saw as
            // punctuation-ish garbage and resync (cannot happen for valid
            // Rust, which the workspace is, since it compiles).
            return TokenKind::Punct;
        }
        self.bump();
        loop {
            match self.bump() {
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek_char() == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
                None => break,
            }
        }
        TokenKind::RawStrLit
    }

    /// Body of a char literal; the opening quote is already consumed.
    fn lex_char_body(&mut self) -> TokenKind {
        if let Some('\\') = self.bump() {
            // Escape: `\u{…}` consumes through the brace, any other
            // escape consumes one char.
            if self.peek_char() == Some('u') {
                self.bump();
                if self.peek_char() == Some('{') {
                    while let Some(c) = self.bump() {
                        if c == '}' {
                            break;
                        }
                    }
                }
            } else {
                self.bump();
            }
        }
        if self.peek_char() == Some('\'') {
            self.bump();
        }
        TokenKind::CharLit
    }

    /// A `'` token: lifetime (`'a`), loop label, or char literal (`'a'`,
    /// `'{'`). Disambiguation: `'x` followed by another `'` is a char
    /// literal; `'` followed by a non-identifier char is a char literal
    /// (`'{'`, `'\n'`); otherwise it is a lifetime.
    fn lex_quote(&mut self, pos: usize) -> TokenKind {
        self.bump(); // the opening quote
        match self.lookahead(pos, 1) {
            Some('\\') => self.lex_char_body(),
            Some(c) if is_ident_start(c) => {
                if self.lookahead(pos, 2) == Some('\'') {
                    // 'a'
                    self.lex_char_body()
                } else {
                    // Lifetime: consume the identifier.
                    while let Some(c) = self.peek_char() {
                        if is_ident_continue(c) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    TokenKind::Lifetime
                }
            }
            Some(_) => self.lex_char_body(),
            None => TokenKind::Punct,
        }
    }

    fn lex_ident_body(&mut self) -> TokenKind {
        while let Some(c) = self.peek_char() {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Ident
    }

    fn lex_number(&mut self, pos: usize) -> TokenKind {
        // Tuple access (`x.0`, `x.0.1`): a number directly after a `.`
        // punct is a field index, never a float — without this, `x.0.1`
        // would lex its tail as the float `0.1`.
        let after_dot = matches!(
            self.tokens.last(),
            Some(t) if t.kind == TokenKind::Punct && t.text(self.src) == "."
        );
        let radix_prefix = matches!(
            (self.lookahead(pos, 0), self.lookahead(pos, 1)),
            (Some('0'), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'))
        );
        let mut float = false;
        self.bump();
        if radix_prefix {
            self.bump();
            while let Some(c) = self.peek_char() {
                if c.is_ascii_hexdigit() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            return TokenKind::Number { float: false };
        }
        let digits = |lexer: &mut Self| {
            while let Some(c) = lexer.peek_char() {
                if c.is_ascii_digit() || c == '_' {
                    lexer.bump();
                } else {
                    break;
                }
            }
        };
        digits(self);
        if !after_dot && self.peek_char() == Some('.') {
            // `1.5`, `1.` — but not ranges (`1..2`) or methods (`1.0.max`
            // already split) or fields: the dot joins only when the next
            // char is a digit or ends the literal.
            let next = self.src[self.pos()..].chars().nth(1);
            match next {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    self.bump();
                    digits(self);
                }
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    float = true;
                    self.bump();
                }
            }
        }
        if !after_dot && matches!(self.peek_char(), Some('e' | 'E')) {
            // Exponent only if digits (optionally signed) follow.
            let mut probe = self.src[self.pos()..].chars().skip(1);
            let first = probe.next();
            let exponent = match first {
                Some(c) if c.is_ascii_digit() => true,
                Some('+' | '-') => matches!(probe.next(), Some(c) if c.is_ascii_digit()),
                _ => false,
            };
            if exponent {
                float = true;
                self.bump();
                if matches!(self.peek_char(), Some('+' | '-')) {
                    self.bump();
                }
                digits(self);
            }
        }
        // Suffix (`f64`, `u32`, `_f32`, …).
        let suffix_start = self.pos();
        while let Some(c) = self.peek_char() {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
        let suffix = &self.src[suffix_start..self.pos()];
        if suffix.contains("f32") || suffix.contains("f64") {
            float = true;
        }
        TokenKind::Number { float }
    }

    fn lex_punct(&mut self, pos: usize) -> TokenKind {
        let rest = &self.src[pos..];
        for op in TWO_CHAR_OPS {
            if rest.starts_with(op) {
                self.bump();
                self.bump();
                return TokenKind::Punct;
            }
        }
        self.bump();
        TokenKind::Punct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden form: `(kind-tag, text)` pairs for the whole stream.
    fn golden(src: &str) -> Vec<(String, String)> {
        lex(src)
            .iter()
            .map(|t| {
                let tag = match t.kind {
                    TokenKind::Ident => "id",
                    TokenKind::Lifetime => "lt",
                    TokenKind::CharLit => "ch",
                    TokenKind::StrLit => "str",
                    TokenKind::RawStrLit => "raw",
                    TokenKind::Number { float: true } => "flt",
                    TokenKind::Number { float: false } => "int",
                    TokenKind::LineComment { doc: true } => "ldoc",
                    TokenKind::LineComment { doc: false } => "lc",
                    TokenKind::BlockComment { doc: true } => "bdoc",
                    TokenKind::BlockComment { doc: false } => "bc",
                    TokenKind::Punct => "p",
                };
                (tag.to_string(), t.text(src).to_string())
            })
            .collect()
    }

    fn want(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn golden_raw_strings() {
        assert_eq!(
            golden(r####"let s = r#"a "quoted" panic!"# ;"####),
            want(&[
                ("id", "let"),
                ("id", "s"),
                ("p", "="),
                ("raw", r####"r#"a "quoted" panic!"#"####),
                ("p", ";"),
            ])
        );
        assert_eq!(
            golden(r##"r"plain" br#"bytes { } "#"##),
            want(&[("raw", r#"r"plain""#), ("raw", r##"br#"bytes { } "#"##)])
        );
    }

    #[test]
    fn golden_nested_block_comments() {
        assert_eq!(
            golden("a /* outer /* inner { */ still } */ b"),
            want(&[
                ("id", "a"),
                ("bc", "/* outer /* inner { */ still } */"),
                ("id", "b"),
            ])
        );
        assert_eq!(
            golden("/** docs */ /*! inner */ /* plain */ x"),
            want(&[
                ("bdoc", "/** docs */"),
                ("bdoc", "/*! inner */"),
                ("bc", "/* plain */"),
                ("id", "x"),
            ])
        );
    }

    #[test]
    fn golden_char_vs_lifetime() {
        assert_eq!(
            golden("if c == '{' { x::<'a>('}') }"),
            want(&[
                ("id", "if"),
                ("id", "c"),
                ("p", "=="),
                ("ch", "'{'"),
                ("p", "{"),
                ("id", "x"),
                ("p", "::"),
                ("p", "<"),
                ("lt", "'a"),
                ("p", ">"),
                ("p", "("),
                ("ch", "'}'"),
                ("p", ")"),
                ("p", "}"),
            ])
        );
        assert_eq!(
            golden(r"'x' 'static '_ '\'' '\u{1F600}' b'\n'"),
            want(&[
                ("ch", "'x'"),
                ("lt", "'static"),
                ("lt", "'_"),
                ("ch", r"'\''"),
                ("ch", r"'\u{1F600}'"),
                ("ch", r"b'\n'"),
            ])
        );
    }

    #[test]
    fn golden_doc_comments() {
        assert_eq!(
            golden("//! inner doc\n/// outer doc\n//// not doc\n// plain\ncode"),
            want(&[
                ("ldoc", "//! inner doc"),
                ("ldoc", "/// outer doc"),
                ("lc", "//// not doc"),
                ("lc", "// plain"),
                ("id", "code"),
            ])
        );
    }

    #[test]
    fn golden_numbers() {
        assert_eq!(
            golden("1 1.0 1. 1e-9 2f64 0xFF 0x1e5 1_000.5 x.0.1 1..2"),
            want(&[
                ("int", "1"),
                ("flt", "1.0"),
                ("flt", "1."),
                ("flt", "1e-9"),
                ("flt", "2f64"),
                ("int", "0xFF"),
                ("int", "0x1e5"),
                ("flt", "1_000.5"),
                ("id", "x"),
                ("p", "."),
                ("int", "0"),
                ("p", "."),
                ("int", "1"),
                ("int", "1"),
                ("p", ".."),
                ("int", "2"),
            ])
        );
    }

    #[test]
    fn golden_strings_hide_code() {
        // The canonical false positive the line-based scanner had: panic
        // patterns and braces inside string literals must lex as string
        // tokens, not code.
        assert_eq!(
            golden(r#"let m = "do not panic! {"; x.unwrap();"#),
            want(&[
                ("id", "let"),
                ("id", "m"),
                ("p", "="),
                ("str", r#""do not panic! {""#),
                ("p", ";"),
                ("id", "x"),
                ("p", "."),
                ("id", "unwrap"),
                ("p", "("),
                ("p", ")"),
                ("p", ";"),
            ])
        );
    }

    #[test]
    fn golden_raw_idents_and_escapes() {
        assert_eq!(
            golden(r#"r#match r"s" "esc \" \\" b"b""#),
            want(&[
                ("id", "r#match"),
                ("raw", r#"r"s""#),
                ("str", r#""esc \" \\""#),
                ("str", r#"b"b""#),
            ])
        );
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\n/* one\ntwo */\nb \"x\ny\" c";
        let toks = lex(src);
        let lines: Vec<(String, usize)> = toks
            .iter()
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(
            lines,
            vec![
                ("a".to_string(), 1),
                ("/* one\ntwo */".to_string(), 2),
                ("b".to_string(), 4),
                ("\"x\ny\"".to_string(), 4),
                ("c".to_string(), 5),
            ]
        );
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        assert_eq!(lex("\"never closed").len(), 1);
        assert_eq!(lex("/* never closed").len(), 1);
        assert_eq!(lex("r#\"never closed").len(), 1);
        assert_eq!(lex("'").len(), 1);
    }
}
