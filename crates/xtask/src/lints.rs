//! The lint suite: five token-level lints over the workspace.
//!
//! | name             | scope                         | what it catches |
//! |------------------|-------------------------------|-----------------|
//! | `panic`          | all library code              | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `kernel-purity`  | `crates/sim`, `crates/circuits` | `println!`-family, `dbg!`, `std::io`, `std::fs`, `Instant`, `SystemTime` |
//! | `crate-layering` | every crate's manifest + sources | `autockt_*` dependency edges outside the allowed DAG |
//! | `float-eq`       | all library code              | `==`/`!=` against a float literal |
//! | `thread-discipline` | all library code           | `thread::spawn`/`thread::scope` outside the tile scheduler and the rollout collector |
//!
//! Every lint skips test-gated code (see [`crate::source`]) and honors
//! `lint:allow(<name>)` justification comments. Library code means
//! `src/` trees excluding `src/bin/` (executable entry points may panic
//! on setup failure by design).

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One un-suppressed lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Short machine-ish pattern name (e.g. `.unwrap()`, `std::fs`).
    pub pattern: String,
    /// Trimmed source line for human output.
    pub snippet: String,
}

/// Static description of one lint.
pub struct LintSpec {
    pub name: &'static str,
    pub description: &'static str,
    /// Source roots scanned (workspace-relative). Empty for lints with a
    /// custom walk (crate-layering).
    pub roots: &'static [&'static str],
}

/// Library-code roots: every workspace crate's `src` tree plus the root
/// facade. `crates/xtask` is excluded (the lint tool itself spells its
/// patterns out) and `src/bin/` subtrees are filtered at collection.
pub const LIB_ROOTS: &[&str] = &[
    "src",
    "crates/sim/src",
    "crates/circuits/src",
    "crates/core/src",
    "crates/rl/src",
    "crates/baselines/src",
    "crates/bench/src",
];

/// Deterministic-kernel roots for `kernel-purity`.
pub const KERNEL_ROOTS: &[&str] = &["crates/sim/src", "crates/circuits/src"];

pub const LINTS: &[LintSpec] = &[
    LintSpec {
        name: "panic",
        description: "panicking escape hatches in library code (.unwrap/.expect/panic!/unreachable!/todo!/unimplemented!)",
        roots: LIB_ROOTS,
    },
    LintSpec {
        name: "kernel-purity",
        description: "side effects or wall-clock access in the deterministic evaluation kernel (println!/dbg!/std::io/std::fs/Instant/SystemTime)",
        roots: KERNEL_ROOTS,
    },
    LintSpec {
        name: "crate-layering",
        description: "autockt_* dependency edges outside the allowed DAG sim <- circuits <- {core, rl} <- {baselines, bench}",
        roots: &[],
    },
    LintSpec {
        name: "float-eq",
        description: "==/!= comparison against a float literal in library code",
        roots: LIB_ROOTS,
    },
    LintSpec {
        name: "thread-discipline",
        description: "raw thread::spawn/thread::scope outside the tile scheduler (sim::par) and the rollout collector",
        roots: LIB_ROOTS,
    },
];

/// The only library files allowed to touch raw thread entry points: the
/// tile scheduler itself, and the rollout collector (whose workers charge
/// the scheduler's process-wide budget through its `ThreadAccountant`).
/// Everything else must go through `autockt_sim::par` so the thread
/// budget stays the single accounting point.
pub const THREAD_ALLOWED_FILES: &[&str] = &["crates/sim/src/par.rs", "crates/rl/src/rollout.rs"];

/// The allow marker for a lint name: `lint:allow(<name>)`.
pub fn allow_marker(name: &str) -> String {
    format!("lint:allow({name})")
}

/// Runs the named per-file lint over one source file. `crate-layering`
/// has its own entry points ([`manifest_edges`] / [`source_edges`]).
pub fn scan_file(lint: &str, file: &SourceFile) -> Vec<Finding> {
    match lint {
        "panic" => scan_panic(file),
        "kernel-purity" => scan_purity(file),
        "float-eq" => scan_float_eq(file),
        "thread-discipline" => scan_thread_discipline(file),
        other => unreachable!("unknown per-file lint {other}"),
    }
}

fn push(file: &SourceFile, out: &mut Vec<Finding>, lint: &str, line: usize, pattern: &str) {
    if !file.allowed(line, &allow_marker(lint)) {
        out.push(Finding {
            file: file.rel.clone(),
            line,
            pattern: pattern.to_string(),
            snippet: file.line_text(line).to_string(),
        });
    }
}

/// `panic` lint: token-aware panic-family patterns in non-test code.
pub fn scan_panic(file: &SourceFile) -> Vec<Finding> {
    const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    let mut out = Vec::new();
    let n = file.code.len();
    for i in 0..n {
        if file.in_test[i] {
            continue;
        }
        let kind = file.code_kind(i);
        let text = file.code_text(i);
        if kind == TokenKind::Ident {
            if MACROS.contains(&text) && i + 1 < n && file.code_text(i + 1) == "!" {
                push(
                    file,
                    &mut out,
                    "panic",
                    file.code_line(i),
                    &format!("{text}!"),
                );
            }
            if (text == "unwrap" || text == "expect")
                && i >= 1
                && file.code_text(i - 1) == "."
                && i + 1 < n
                && file.code_text(i + 1) == "("
            {
                // `.unwrap()` needs the immediate close paren; `.expect(`
                // takes an argument so the open paren is enough.
                let hit = text == "expect" || (i + 2 < n && file.code_text(i + 2) == ")");
                if hit {
                    let pattern = if text == "expect" {
                        ".expect(".to_string()
                    } else {
                        ".unwrap()".to_string()
                    };
                    push(file, &mut out, "panic", file.code_line(i), &pattern);
                }
            }
        }
    }
    out
}

/// `kernel-purity` lint: I/O, logging, and wall-clock access in the
/// deterministic kernel crates.
pub fn scan_purity(file: &SourceFile) -> Vec<Finding> {
    const IO_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];
    const STD_MODS: [&str; 2] = ["io", "fs"];
    const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
    let mut out = Vec::new();
    let n = file.code.len();
    for i in 0..n {
        if file.in_test[i] || file.code_kind(i) != TokenKind::Ident {
            continue;
        }
        let text = file.code_text(i);
        if IO_MACROS.contains(&text) && i + 1 < n && file.code_text(i + 1) == "!" {
            push(
                file,
                &mut out,
                "kernel-purity",
                file.code_line(i),
                &format!("{text}!"),
            );
        } else if text == "std"
            && i + 2 < n
            && file.code_text(i + 1) == "::"
            && file.code_kind(i + 2) == TokenKind::Ident
            && STD_MODS.contains(&file.code_text(i + 2))
        {
            push(
                file,
                &mut out,
                "kernel-purity",
                file.code_line(i),
                &format!("std::{}", file.code_text(i + 2)),
            );
        } else if CLOCK_TYPES.contains(&text) {
            push(file, &mut out, "kernel-purity", file.code_line(i), text);
        }
    }
    out
}

/// `float-eq` lint: `==` or `!=` with a float literal on either side in
/// non-test code (a unary minus before the literal is looked through).
pub fn scan_float_eq(file: &SourceFile) -> Vec<Finding> {
    let is_float = |i: usize| matches!(file.code_kind(i), TokenKind::Number { float: true });
    let mut out = Vec::new();
    let n = file.code.len();
    for i in 0..n {
        if file.in_test[i] || file.code_kind(i) != TokenKind::Punct {
            continue;
        }
        let op = file.code_text(i);
        if op != "==" && op != "!=" {
            continue;
        }
        let lhs = i >= 1 && is_float(i - 1);
        let rhs = (i + 1 < n && is_float(i + 1))
            || (i + 2 < n && file.code_text(i + 1) == "-" && is_float(i + 2));
        if lhs || rhs {
            push(
                file,
                &mut out,
                "float-eq",
                file.code_line(i),
                &format!("{op} float literal"),
            );
        }
    }
    out
}

/// `thread-discipline` lint: raw `thread::spawn` / `thread::scope`
/// (plain or `std::`-qualified, call sites and imports alike) in
/// non-test library code outside [`THREAD_ALLOWED_FILES`]. Ad-hoc
/// threads bypass the process-wide thread budget, so parallelism
/// belongs behind `autockt_sim::par`'s tile scheduler.
pub fn scan_thread_discipline(file: &SourceFile) -> Vec<Finding> {
    if THREAD_ALLOWED_FILES.contains(&file.rel.as_str()) {
        return Vec::new();
    }
    const ENTRY_POINTS: [&str; 2] = ["spawn", "scope"];
    let mut out = Vec::new();
    let n = file.code.len();
    for i in 0..n {
        if file.in_test[i] || file.code_kind(i) != TokenKind::Ident {
            continue;
        }
        if file.code_text(i) != "thread" {
            continue;
        }
        if i + 2 < n
            && file.code_text(i + 1) == "::"
            && file.code_kind(i + 2) == TokenKind::Ident
            && ENTRY_POINTS.contains(&file.code_text(i + 2))
        {
            push(
                file,
                &mut out,
                "thread-discipline",
                file.code_line(i),
                &format!("thread::{}", file.code_text(i + 2)),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------
// crate-layering
// ---------------------------------------------------------------------

/// The allowed dependency DAG between workspace crates, as adjacency:
/// `(crate, allowed autockt_* dependencies)`. The layering reads
/// `sim <- circuits <- {core, rl} <- {baselines, bench}`, with `rl`
/// additionally kept sim-agnostic (it is pure RL machinery) and the
/// `autockt` facade re-exporting everything. Any edge not listed — in a
/// `Cargo.toml` `[dependencies]`/`[build-dependencies]` section or as an
/// `autockt_*` path in source — is a lint finding.
pub const ALLOWED_EDGES: &[(&str, &[&str])] = &[
    ("autockt_sim", &[]),
    ("autockt_rl", &[]),
    ("autockt_circuits", &["autockt_sim"]),
    (
        "autockt_core",
        &["autockt_sim", "autockt_circuits", "autockt_rl"],
    ),
    (
        "autockt_baselines",
        &[
            "autockt_sim",
            "autockt_circuits",
            "autockt_core",
            "autockt_rl",
        ],
    ),
    (
        "autockt_bench",
        &[
            "autockt_sim",
            "autockt_circuits",
            "autockt_core",
            "autockt_rl",
            "autockt_baselines",
        ],
    ),
    (
        "autockt",
        &[
            "autockt_sim",
            "autockt_circuits",
            "autockt_core",
            "autockt_rl",
            "autockt_baselines",
        ],
    ),
    ("xtask", &[]),
];

/// `(crate name, workspace-relative crate dir)` for every audited crate.
pub const CRATE_DIRS: &[(&str, &str)] = &[
    ("autockt", "."),
    ("autockt_sim", "crates/sim"),
    ("autockt_circuits", "crates/circuits"),
    ("autockt_core", "crates/core"),
    ("autockt_rl", "crates/rl"),
    ("autockt_baselines", "crates/baselines"),
    ("autockt_bench", "crates/bench"),
    ("xtask", "crates/xtask"),
];

fn edge_allowed(from: &str, to: &str) -> bool {
    ALLOWED_EDGES
        .iter()
        .find(|(c, _)| *c == from)
        .is_some_and(|(_, deps)| deps.contains(&to))
}

/// Scans a `Cargo.toml` for `autockt_*` keys in dependency sections and
/// reports edges outside the allowed DAG. `rel` is the manifest's
/// workspace-relative path. Suppression uses TOML `#` comments carrying
/// the `lint:allow(crate-layering)` marker within the usual window.
pub fn manifest_edges(crate_name: &str, rel: &str, toml: &str) -> Vec<Finding> {
    let marker = allow_marker("crate-layering");
    let lines: Vec<&str> = toml.lines().collect();
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in lines.iter().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            // `[dependencies]`, `[build-dependencies]`, and any
            // `[target.….dependencies]` variant count; `[dev-dependencies]`
            // does not (test-only edges cannot invert runtime layering —
            // cargo itself rejects dependency cycles).
            in_dep_section = (line.ends_with("dependencies]")
                || line.ends_with("build-dependencies]"))
                && !line.ends_with("dev-dependencies]");
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some(key) = line.split(['=', '.']).next().map(str::trim) else {
            continue;
        };
        if !key.starts_with("autockt") || edge_allowed(crate_name, key) {
            continue;
        }
        let allowed = (idx.saturating_sub(crate::source::ALLOW_WINDOW)..=idx)
            .any(|k| lines[k].trim_start().starts_with('#') && lines[k].contains(&marker));
        if !allowed {
            out.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                pattern: format!("{crate_name} -> {key}"),
                snippet: line.to_string(),
            });
        }
    }
    out
}

/// Scans one source file belonging to `crate_name` for `autockt_*`
/// identifiers that name a crate outside the allowed DAG. Test code is
/// *not* exempt: an import in a test still requires the dependency edge.
pub fn source_edges(crate_name: &str, file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..file.code.len() {
        if file.code_kind(i) != TokenKind::Ident {
            continue;
        }
        let text = file.code_text(i);
        if !text.starts_with("autockt") || text == crate_name {
            continue;
        }
        // Only idents that actually name a workspace crate are edges.
        if !CRATE_DIRS.iter().any(|(name, _)| *name == text) {
            continue;
        }
        if edge_allowed(crate_name, text) {
            continue;
        }
        let line = file.code_line(i);
        if !file.allowed(line, &allow_marker("crate-layering")) {
            out.push(Finding {
                file: file.rel.clone(),
                line,
                pattern: format!("{crate_name} -> {text}"),
                snippet: file.line_text(line).to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn fixture(rel: &str) -> SourceFile {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(rel);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
        SourceFile::new(rel.to_string(), src)
    }

    fn fixture_text(rel: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(rel);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
    }

    // ---- panic ----

    #[test]
    fn panic_firing_fixture() {
        let findings = scan_panic(&fixture("panic/firing.rs"));
        let patterns: Vec<&str> = findings.iter().map(|f| f.pattern.as_str()).collect();
        assert_eq!(
            patterns,
            vec![
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ]
        );
    }

    #[test]
    fn panic_allowed_fixture() {
        assert_eq!(scan_panic(&fixture("panic/allowed.rs")), vec![]);
    }

    #[test]
    fn panic_clean_fixture() {
        // The clean fixture packs the historical false positives: panic
        // patterns inside strings, raw strings, comments, `'{'`/`"}"`
        // literals around a `#[cfg(test)]` module, and unwraps inside
        // that module. None may fire.
        assert_eq!(scan_panic(&fixture("panic/clean.rs")), vec![]);
    }

    #[test]
    fn panic_in_string_literal_is_not_counted() {
        let f = SourceFile::new(
            "x.rs".into(),
            "fn f() -> &'static str { \"never panic!(now) or .unwrap()\" }\n".into(),
        );
        assert_eq!(scan_panic(&f), vec![]);
    }

    #[test]
    fn string_brace_desync_regression() {
        // Exactly the shape that desynced the line-based scanner: a `"}"`
        // string inside a `#[cfg(test)]` module made it "close" early, so
        // the module's unwraps were reported. The library-level unwrap
        // after the module must be the only finding.
        let findings = scan_panic(&fixture("panic/brace_desync.rs"));
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        assert!(findings[0].snippet.contains("the_only_real_finding"));
    }

    #[test]
    fn unwrap_or_variants_are_not_unwrap() {
        let f = SourceFile::new(
            "x.rs".into(),
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_else(|| 1)) }\n".into(),
        );
        assert_eq!(scan_panic(&f), vec![]);
    }

    // ---- kernel-purity ----

    #[test]
    fn purity_firing_fixture() {
        let findings = scan_purity(&fixture("kernel-purity/firing.rs"));
        let patterns: Vec<&str> = findings.iter().map(|f| f.pattern.as_str()).collect();
        assert_eq!(
            patterns,
            vec![
                "println!",
                "eprintln!",
                "dbg!",
                "std::fs",
                "std::io",
                "Instant",
                "SystemTime"
            ]
        );
    }

    #[test]
    fn purity_allowed_fixture() {
        assert_eq!(scan_purity(&fixture("kernel-purity/allowed.rs")), vec![]);
    }

    #[test]
    fn purity_clean_fixture() {
        // println! in test modules and in doc comments is fine; fmt::Write
        // and std::sync are not I/O.
        assert_eq!(scan_purity(&fixture("kernel-purity/clean.rs")), vec![]);
    }

    // ---- float-eq ----

    #[test]
    fn float_eq_firing_fixture() {
        let findings = scan_float_eq(&fixture("float-eq/firing.rs"));
        assert_eq!(findings.len(), 4, "findings: {findings:?}");
    }

    #[test]
    fn float_eq_allowed_fixture() {
        assert_eq!(scan_float_eq(&fixture("float-eq/allowed.rs")), vec![]);
    }

    #[test]
    fn float_eq_clean_fixture() {
        // Integer equality, float comparisons against variables, and
        // float-literal equality inside tests are all fine.
        assert_eq!(scan_float_eq(&fixture("float-eq/clean.rs")), vec![]);
    }

    // ---- thread-discipline ----

    #[test]
    fn thread_discipline_firing_fixture() {
        let findings = scan_thread_discipline(&fixture("thread-discipline/firing.rs"));
        let patterns: Vec<&str> = findings.iter().map(|f| f.pattern.as_str()).collect();
        assert_eq!(
            patterns,
            vec!["thread::spawn", "thread::spawn", "thread::scope"]
        );
    }

    #[test]
    fn thread_discipline_allowed_fixture() {
        assert_eq!(
            scan_thread_discipline(&fixture("thread-discipline/allowed.rs")),
            vec![]
        );
    }

    #[test]
    fn thread_discipline_clean_fixture() {
        assert_eq!(
            scan_thread_discipline(&fixture("thread-discipline/clean.rs")),
            vec![]
        );
    }

    #[test]
    fn thread_discipline_exempts_the_scheduler_and_the_collector() {
        for rel in THREAD_ALLOWED_FILES {
            let f = SourceFile::new(
                (*rel).to_string(),
                "pub fn run() { std::thread::scope(|_s| {}); }\n".into(),
            );
            assert_eq!(scan_thread_discipline(&f), vec![], "{rel} must be exempt");
        }
        // The same source anywhere else fires.
        let f = SourceFile::new(
            "crates/sim/src/ac.rs".into(),
            "pub fn run() { std::thread::scope(|_s| {}); }\n".into(),
        );
        assert_eq!(scan_thread_discipline(&f).len(), 1);
    }

    // ---- crate-layering ----

    #[test]
    fn layering_manifest_firing_fixture() {
        let findings = manifest_edges(
            "autockt_rl",
            "crates/rl/Cargo.toml",
            &fixture_text("crate-layering/firing.toml"),
        );
        let patterns: Vec<&str> = findings.iter().map(|f| f.pattern.as_str()).collect();
        assert_eq!(patterns, vec!["autockt_rl -> autockt_bench"]);
    }

    #[test]
    fn layering_manifest_allowed_fixture() {
        assert_eq!(
            manifest_edges(
                "autockt_rl",
                "crates/rl/Cargo.toml",
                &fixture_text("crate-layering/allowed.toml"),
            ),
            vec![]
        );
    }

    #[test]
    fn layering_manifest_clean_fixture() {
        assert_eq!(
            manifest_edges(
                "autockt_core",
                "crates/core/Cargo.toml",
                &fixture_text("crate-layering/clean.toml"),
            ),
            vec![]
        );
    }

    #[test]
    fn layering_source_use_is_an_edge() {
        let f = SourceFile::new(
            "crates/sim/src/bad.rs".into(),
            "use autockt_circuits::Tia;\n".into(),
        );
        let findings = source_edges("autockt_sim", &f);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, "autockt_sim -> autockt_circuits");
    }

    #[test]
    fn layering_doc_mention_is_not_an_edge() {
        let f = SourceFile::new(
            "crates/sim/src/lib.rs".into(),
            "//! Pairs with [`autockt_circuits`] one layer up.\nfn f() {}\n".into(),
        );
        assert_eq!(source_edges("autockt_sim", &f), vec![]);
    }

    #[test]
    fn layering_dev_dependencies_are_exempt() {
        let toml = "[dev-dependencies]\nautockt_bench = { path = \"../bench\" }\n";
        assert_eq!(manifest_edges("autockt_rl", "x", toml), vec![]);
    }

    #[test]
    fn the_checked_in_dag_is_acyclic_and_closed() {
        // Self-check on the table: every allowed dep is itself a known
        // crate, never the crate itself, and the relation has no cycles.
        for (c, deps) in ALLOWED_EDGES {
            for d in *deps {
                assert_ne!(c, d);
                assert!(ALLOWED_EDGES.iter().any(|(k, _)| k == d), "unknown dep {d}");
            }
        }
        fn reaches(from: &str, to: &str) -> bool {
            let deps = ALLOWED_EDGES
                .iter()
                .find(|(c, _)| *c == from)
                .map(|(_, d)| *d)
                .unwrap_or(&[]);
            deps.iter().any(|&d| d == to || reaches(d, to))
        }
        for (c, _) in ALLOWED_EDGES {
            assert!(!reaches(c, c), "cycle through {c}");
        }
    }
}
