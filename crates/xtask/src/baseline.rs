//! Per-lint ratchet baselines.
//!
//! Each lint owns one checked-in file under `crates/xtask/baselines/`
//! holding its un-allowlisted finding count per file plus a total. The
//! ratchet only turns one way:
//!
//! - a file exceeding its baselined count **fails** the lint (new
//!   offenders must be fixed or carry a `lint:allow(<name>)`
//!   justification);
//! - a total *below* the baseline also fails, with instructions to run
//!   `--update-baseline` — improvements are locked in immediately so
//!   they cannot silently regress.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Parsed ratchet state for one lint.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub total: usize,
    pub per_file: BTreeMap<String, usize>,
}

/// `crates/xtask/baselines/<lint>.txt`.
pub fn path(root: &Path, lint: &str) -> PathBuf {
    root.join("crates/xtask/baselines")
        .join(format!("{lint}.txt"))
}

/// Loads a baseline file; a missing file is an error telling the user how
/// to create it.
pub fn load(path: &Path) -> Result<Baseline, String> {
    let text = fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read baseline {}: {e}\n\
             run `cargo run -p xtask -- lint --update-baseline` to create it",
            path.display()
        )
    })?;
    let mut base = Baseline::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, count)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            continue;
        };
        if name.trim() == "total" {
            base.total = count;
        } else {
            base.per_file.insert(name.trim().to_string(), count);
        }
    }
    Ok(base)
}

/// Serializes and writes a baseline: a lint-specific header, the total,
/// then path-sorted per-file counts.
pub fn save(
    path: &Path,
    lint: &str,
    description: &str,
    counts: &BTreeMap<String, usize>,
) -> Result<(), String> {
    let total: usize = counts.values().sum();
    let mut out = String::new();
    let _ = writeln!(out, "# Ratchet baseline for the `{lint}` lint:");
    let _ = writeln!(out, "# {description}.");
    let _ = writeln!(
        out,
        "# Maintained by `cargo run -p xtask -- lint --only={lint} --update-baseline`;\n\
         # counts may only go down. See README \"Static analysis\"."
    );
    let _ = writeln!(out, "total {total}");
    for (file, count) in counts {
        let _ = writeln!(out, "{file} {count}");
    }
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    fs::write(path, out).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let dir = std::env::temp_dir().join("xtask-baseline-test");
        let _ = fs::create_dir_all(&dir);
        let p = dir.join("demo.txt");
        let mut counts = BTreeMap::new();
        counts.insert("crates/a/src/lib.rs".to_string(), 2);
        counts.insert("crates/b/src/lib.rs".to_string(), 1);
        save(&p, "demo", "demo lint", &counts).expect("save");
        let loaded = load(&p).expect("load");
        assert_eq!(loaded.total, 3);
        assert_eq!(loaded.per_file, counts);
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn missing_file_mentions_update_baseline() {
        let err = load(Path::new("/nonexistent/definitely/absent.txt")).unwrap_err();
        assert!(err.contains("--update-baseline"));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let dir = std::env::temp_dir().join("xtask-baseline-test2");
        let _ = fs::create_dir_all(&dir);
        let p = dir.join("hdr.txt");
        fs::write(&p, "# header\n\ntotal 1\n# trailing\nsrc/lib.rs 1\n").expect("write");
        let loaded = load(&p).expect("load");
        assert_eq!(loaded.total, 1);
        assert_eq!(loaded.per_file.get("src/lib.rs"), Some(&1));
        let _ = fs::remove_file(&p);
    }
}
