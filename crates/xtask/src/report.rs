//! Machine-readable lint report (`target/lint-report.json`).
//!
//! Hand-rolled JSON (the workspace builds offline, without serde): the
//! schema is small and append-only. Consumers: the CI artifact upload
//! and any tooling that wants per-lint finding lists without re-running
//! the scan.

use std::fmt::Write as _;

use crate::engine::LintOutcome;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report document.
pub fn render(outcomes: &[LintOutcome]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n  \"lints\": [\n");
    for (li, o) in outcomes.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", esc(o.name));
        let _ = writeln!(s, "      \"description\": \"{}\",", esc(o.description));
        let _ = writeln!(s, "      \"status\": \"{}\",", o.status.as_str());
        let _ = writeln!(s, "      \"files_scanned\": {},", o.files_scanned);
        let _ = writeln!(s, "      \"total\": {},", o.total);
        let _ = writeln!(s, "      \"baseline\": {},", o.baseline_total);
        let _ = writeln!(s, "      \"findings\": [");
        for (fi, f) in o.findings.iter().enumerate() {
            let comma = if fi + 1 < o.findings.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{\"file\": \"{}\", \"line\": {}, \"pattern\": \"{}\", \"snippet\": \"{}\"}}{comma}",
                esc(&f.file),
                f.line,
                esc(&f.pattern),
                esc(&f.snippet)
            );
        }
        let comma = if li + 1 < outcomes.len() { "," } else { "" };
        let _ = writeln!(s, "      ]");
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LintOutcome, Status};
    use crate::lints::Finding;

    #[test]
    fn report_is_valid_enough_json() {
        let outcomes = vec![LintOutcome {
            name: "panic",
            description: "desc with \"quotes\"",
            status: Status::Ok,
            files_scanned: 3,
            total: 1,
            baseline_total: 1,
            findings: vec![Finding {
                file: "crates/a/src/lib.rs".into(),
                line: 7,
                pattern: ".unwrap()".into(),
                snippet: "let x = y.unwrap(); // \"quoted\"".into(),
            }],
        }];
        let doc = render(&outcomes);
        assert!(doc.contains("\"schema\": 1"));
        assert!(doc.contains("\\\"quotes\\\""));
        assert!(doc.contains("\"line\": 7"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = doc.matches('{').count() + doc.matches('[').count();
        let closes = doc.matches('}').count() + doc.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(esc("a\tb\nc"), "a\\tb\\nc");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
