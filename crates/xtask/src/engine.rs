//! The lint engine: file collection, lint execution, ratchet comparison.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::lints::{self, Finding, LintSpec};
use crate::source::SourceFile;
use crate::{baseline, lints::LINTS};

/// Result of one ratchet comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Findings match the baseline exactly.
    Ok,
    /// At least one file exceeds its baselined count.
    Failed,
    /// Total fell below the baseline; must be locked in.
    Improved,
    /// Baseline missing or unreadable.
    NoBaseline,
    /// `--update-baseline` rewrote the baseline this run.
    Updated,
}

impl Status {
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Failed => "failed",
            Status::Improved => "improved-unlocked",
            Status::NoBaseline => "no-baseline",
            Status::Updated => "baseline-updated",
        }
    }
}

/// One lint's run: findings, per-file counts, and ratchet verdict.
pub struct LintOutcome {
    pub name: &'static str,
    pub description: &'static str,
    pub status: Status,
    pub files_scanned: usize,
    pub total: usize,
    pub baseline_total: usize,
    pub findings: Vec<Finding>,
}

/// Lexed-file cache shared by all lints in one invocation.
#[derive(Default)]
pub struct FileCache {
    files: BTreeMap<String, SourceFile>,
}

impl FileCache {
    fn get(&mut self, root: &Path, rel: &str) -> Result<&SourceFile, String> {
        if !self.files.contains_key(rel) {
            let abs = root.join(rel);
            let src = fs::read_to_string(&abs)
                .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
            self.files
                .insert(rel.to_string(), SourceFile::new(rel.to_string(), src));
        }
        Ok(&self.files[rel])
    }
}

/// Collects `.rs` files under `root/<rel_root>`, skipping any `bin`
/// directory (executable entry points are not library code). Paths come
/// back workspace-relative with forward slashes, sorted.
pub fn collect_lib_sources(root: &Path, rel_root: &str, skip_bin: bool) -> Vec<String> {
    let mut out = Vec::new();
    walk(&root.join(rel_root), root, skip_bin, &mut out);
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, skip_bin: bool, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if skip_bin && path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            walk(&path, root, skip_bin, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
}

/// Runs one lint (by spec) over the workspace, returning its findings and
/// the number of files scanned.
pub fn run_lint(
    spec: &LintSpec,
    root: &Path,
    cache: &mut FileCache,
) -> Result<(Vec<Finding>, usize), String> {
    if spec.name == "crate-layering" {
        return run_layering(root, cache);
    }
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for rel_root in spec.roots {
        for rel in collect_lib_sources(root, rel_root, true) {
            let file = cache.get(root, &rel)?;
            findings.extend(lints::scan_file(spec.name, file));
            scanned += 1;
        }
    }
    Ok((findings, scanned))
}

/// The layering lint walks per crate: its manifest plus its whole `src`
/// tree (`bin` targets included — an import in a binary is still an
/// edge).
fn run_layering(root: &Path, cache: &mut FileCache) -> Result<(Vec<Finding>, usize), String> {
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for (crate_name, dir) in lints::CRATE_DIRS {
        let manifest_rel = if *dir == "." {
            "Cargo.toml".to_string()
        } else {
            format!("{dir}/Cargo.toml")
        };
        let manifest_path = root.join(&manifest_rel);
        let toml = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        findings.extend(lints::manifest_edges(crate_name, &manifest_rel, &toml));
        scanned += 1;
        let src_root = if *dir == "." {
            "src".to_string()
        } else {
            format!("{dir}/src")
        };
        for rel in collect_lib_sources(root, &src_root, false) {
            let file = cache.get(root, &rel)?;
            findings.extend(lints::source_edges(crate_name, file));
            scanned += 1;
        }
    }
    Ok((findings, scanned))
}

/// Path-sorted per-file counts.
pub fn count_by_file(findings: &[Finding]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for f in findings {
        *counts.entry(f.file.clone()).or_insert(0usize) += 1;
    }
    counts
}

/// Compares findings to the checked-in baseline and produces the outcome
/// (without printing).
pub fn ratchet(
    spec: &LintSpec,
    root: &Path,
    findings: Vec<Finding>,
    files_scanned: usize,
) -> LintOutcome {
    let counts = count_by_file(&findings);
    let total: usize = counts.values().sum();
    let base = match baseline::load(&baseline::path(root, spec.name)) {
        Ok(b) => b,
        Err(_) => {
            return LintOutcome {
                name: spec.name,
                description: spec.description,
                status: Status::NoBaseline,
                files_scanned,
                total,
                baseline_total: 0,
                findings,
            }
        }
    };
    let over_budget = counts
        .iter()
        .any(|(file, count)| *count > base.per_file.get(file).copied().unwrap_or(0));
    let status = if over_budget {
        Status::Failed
    } else if total < base.total {
        Status::Improved
    } else {
        Status::Ok
    };
    LintOutcome {
        name: spec.name,
        description: spec.description,
        status,
        files_scanned,
        total,
        baseline_total: base.total,
        findings,
    }
}

/// Looks up a lint spec by name.
pub fn spec_by_name(name: &str) -> Option<&'static LintSpec> {
    LINTS.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_by_file_sorts_and_sums() {
        let f = |file: &str| Finding {
            file: file.into(),
            line: 1,
            pattern: "p".into(),
            snippet: "s".into(),
        };
        let counts = count_by_file(&[f("b.rs"), f("a.rs"), f("b.rs")]);
        let flat: Vec<(String, usize)> = counts.into_iter().collect();
        assert_eq!(flat, vec![("a.rs".to_string(), 1), ("b.rs".to_string(), 2)]);
    }

    #[test]
    fn collect_skips_bin_when_asked() {
        // The engine's own workspace: bench has src/bin with many mains.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let with_bin = collect_lib_sources(&root, "crates/bench/src", false);
        let without = collect_lib_sources(&root, "crates/bench/src", true);
        assert!(with_bin.len() > without.len());
        assert!(without.iter().all(|p| !p.contains("/bin/")));
        assert!(with_bin.iter().any(|p| p.contains("/bin/")));
    }
}
