//! Fixture: nothing here may fire — prose about thread::spawn is a
//! comment, a string literal is not code, `thread_budget` is not the
//! `thread` module, and test modules may thread freely. Not compiled —
//! read by the lint's unit tests.

/// Callers wanting parallelism go through the scheduler, never
/// `thread::spawn` — see the module docs.
pub fn describe() -> &'static str {
    "we never call thread::scope(|s| ...) here"
}

pub fn thread_budget() -> usize {
    let thread = 4;
    thread + thread_count()
}

fn thread_count() -> usize {
    1
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        let h = std::thread::spawn(|| 3);
        assert_eq!(h.join().ok(), Some(3));
        std::thread::scope(|_s| {});
    }
}
