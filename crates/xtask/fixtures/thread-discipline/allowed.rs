//! Fixture: raw thread sites carrying justification comments do not
//! fire. Not compiled — read by the lint's unit tests.

pub fn justified() {
    // lint:allow(thread-discipline) — one-shot watchdog outside the
    // evaluation path; never competes with the tile scheduler's budget.
    let h = std::thread::spawn(|| ());
    let _ = h.join();
    // lint:allow(thread-discipline) — structured teardown helper, joins
    // before returning and holds no workspace.
    std::thread::scope(|_s| {});
}
