//! Fixture: every thread-discipline pattern fires, in order — the
//! `thread::spawn` import, a qualified spawn, and a qualified scope.
//! (The bare `spawn(..)` call is reached only through the flagged
//! import, so flagging the import covers it.)
//! Not compiled — read by the lint's unit tests.

use std::thread::spawn;

pub fn ad_hoc_threads() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
    std::thread::scope(|_s| {});
    let _ = spawn(|| 2);
}
