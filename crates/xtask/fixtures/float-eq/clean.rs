//! Fixture: nothing here may fire — integer equality, float comparisons
//! between variables, tuple-index access, and float-literal equality in
//! test code are all fine. Not compiled — read by unit tests.

pub fn fine(n: usize, a: f64, b: f64, t: (f64, u32)) -> bool {
    let ints = n == 0 || t.1 != 3;
    let vars = a == b;
    let range = a < 1.0 && b >= 0.5;
    let tuple = t.0 == a;
    ints || vars || range || tuple
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_expectations_are_test_business() {
        assert!(super::fine(0, 0.5, 0.5, (0.5, 1)));
        let x = 2.0_f64;
        assert!(x == 2.0);
        assert!(x != 2.5);
    }
}
