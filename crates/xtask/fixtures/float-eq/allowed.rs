//! Fixture: justified float-literal equality does not fire.
//! Not compiled — read by the lint's unit tests.

pub fn sparsity_guard(g: f64, c: f64) -> bool {
    // lint:allow(float-eq) — exact-zero test on purpose: an explicit 0.0
    // stamp must be skipped, and any rounded value must be kept.
    let skip = g == 0.0 && c == 0.0;
    !skip
}
