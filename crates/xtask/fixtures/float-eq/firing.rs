//! Fixture: four float-literal equality comparisons fire.
//! Not compiled — read by the lint's unit tests.

pub fn comparisons(x: f64, y: f64, z: f64) -> bool {
    let a = x == 0.0;
    let b = x != 1.0;
    let c = 1e-9 == y;
    let d = z == -2.5;
    a || b || c || d
}
