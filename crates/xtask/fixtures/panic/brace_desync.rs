//! Regression fixture: exactly the shape that desynced the line-based
//! scanner's `#[cfg(test)]` brace tracking. The `"}"` literal inside the
//! test module made the old tracker think the module had closed, so the
//! unwraps after it were reported (false positives), while a `"{"` in
//! library code shifted the depth the other way. Token-level tracking
//! must report exactly one finding: the library unwrap at the bottom.

pub fn open_brace() -> &'static str {
    "{"
}

#[cfg(test)]
mod tests {
    const CLOSE: &str = "}";

    #[test]
    fn inside_the_module() {
        // Still inside the test module: must stay exempt even after the
        // `"}"` literal above.
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let _ = CLOSE;
    }
}

pub fn the_only_real_finding(x: Option<u8>) -> u8 { x.unwrap() }
