//! Fixture: every panic-family pattern fires exactly once, in order.
//! Not compiled — read by the lint's unit tests.

pub fn offenders(x: Option<u8>, r: Result<u8, ()>) -> u8 {
    let a = x.unwrap();
    let b = r.expect("boom");
    if a > b {
        panic!("a > b");
    }
    match a {
        0 => unreachable!(),
        1 => todo!(),
        _ => unimplemented!(),
    }
}
