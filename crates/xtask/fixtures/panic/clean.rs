//! Fixture: the historical false positives of the line-based scanner.
//! Nothing in this file may fire. Not compiled — read by unit tests.
//!
//! A doc comment saying panic! or .unwrap() is prose, not code.

/// Returns a message that merely *mentions* panic!("like this").
pub fn strings() -> String {
    let plain = "do not panic! or .unwrap() anything";
    let raw = r#"even raw strings may say r.expect("x") safely"#;
    let brace_open = "{";
    let ch = '{';
    /* a block comment can claim unreachable!() too */
    format!("{plain}{raw}{brace_open}{ch}")
}

pub fn char_close(c: char) -> bool {
    c == '}'
}

#[cfg(test)]
mod tests {
    // Test code may panic freely; the `"}"` string below used to desync
    // the line-based brace tracker and expose these lines.
    const CLOSE: &str = "}";

    #[test]
    fn test_panics_are_exempt() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let _ = CLOSE;
        "7".parse::<u8>().expect("parses");
        if false {
            panic!("unreached");
        }
    }
}
