//! Fixture: every panic-family site carries a justification comment, so
//! nothing fires. Not compiled — read by the lint's unit tests.

pub fn justified(x: Option<u8>) -> u8 {
    // lint:allow(panic) — `x` is checked Some by the caller's contract.
    let a = x.unwrap();
    // lint:allow(panic) — dividing by the nonzero constant below is
    // infallible; the expect documents the invariant.
    let b = a.checked_div(2).expect("2 != 0");
    if a == b {
        // lint:allow(panic) — demonstration of a justified hard stop.
        panic!("degenerate");
    }
    b
}
