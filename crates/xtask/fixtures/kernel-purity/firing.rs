//! Fixture: every kernel-purity pattern fires once, in order.
//! Not compiled — read by the lint's unit tests.

pub fn impure(x: f64) -> f64 {
    println!("debugging {x}");
    eprintln!("more debugging");
    let y = dbg!(x * 2.0);
    let _ = std::fs::read_to_string("/etc/hostname");
    let _lock = std::io::stdout();
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    y + t.elapsed().as_secs_f64()
}
