//! Fixture: impure sites carrying justification comments do not fire.
//! Not compiled — read by the lint's unit tests.

pub fn justified(fatal: bool) {
    if fatal {
        // lint:allow(kernel-purity) — one-shot diagnostic on the abort
        // path only; never reached during evaluation.
        eprintln!("aborting");
    }
    // lint:allow(kernel-purity) — cold startup probe, outside the
    // deterministic hot path by construction.
    let _ = std::fs::metadata("Cargo.toml");
}
