//! Fixture: nothing here may fire — `fmt::Write` is not I/O, `std::sync`
//! is not `std::io`, doc prose about println!("…") is a comment, and
//! test modules may print freely. Not compiled — read by unit tests.

use std::fmt::Write as _;
use std::sync::Mutex;

/// Renders a report; callers may println!("{}", report) if they like.
pub fn render(vals: &[f64], out: &Mutex<String>) {
    let mut s = String::new();
    for v in vals {
        let _ = writeln!(s, "{v:.3e}");
    }
    if let Ok(mut g) = out.lock() {
        g.push_str(&s);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print_and_time() {
        let t = std::time::Instant::now();
        println!("elapsed {:?}", t.elapsed());
        eprintln!("stderr too");
        let _ = std::fs::metadata("Cargo.toml");
    }
}
