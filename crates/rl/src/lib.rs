//! # autockt-rl — reinforcement-learning substrate
//!
//! A dependency-light deep-RL stack sized for the AutoCkt problem
//! (Settaluri et al., DATE 2020): a tanh MLP with manual backprop and Adam
//! ([`mlp`]), a factorized-categorical policy with a separate value network
//! ([`policy`]), parallel trajectory collection over a Gym-like [`env::Env`]
//! trait ([`rollout`], standing in for Ray/RLlib), and a PPO-clip trainer
//! ([`ppo`]).
//!
//! ## Example: train on a toy environment
//!
//! ```
//! use autockt_rl::env::{Env, StepResult};
//! use autockt_rl::ppo::{Ppo, PpoConfig};
//! use rand::rngs::StdRng;
//! use rand::Rng;
//!
//! // Reach a sampled 1-D target by incrementing/decrementing a counter.
//! #[derive(Clone)]
//! struct Line { pos: i64, target: i64, t: usize }
//! impl Env for Line {
//!     fn obs_dim(&self) -> usize { 2 }
//!     fn action_dims(&self) -> Vec<usize> { vec![3] }
//!     fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
//!         self.pos = 8; self.target = rng.random_range(0..16); self.t = 0;
//!         vec![self.pos as f64 / 16.0, self.target as f64 / 16.0]
//!     }
//!     fn step(&mut self, a: &[usize]) -> StepResult {
//!         self.pos = (self.pos + a[0] as i64 - 1).clamp(0, 15);
//!         self.t += 1;
//!         let success = self.pos == self.target;
//!         StepResult {
//!             obs: vec![self.pos as f64 / 16.0, self.target as f64 / 16.0],
//!             reward: if success { 10.0 } else { -0.1 },
//!             done: success || self.t >= 20,
//!             success,
//!         }
//!     }
//! }
//!
//! let mut envs = vec![Line { pos: 0, target: 0, t: 0 }; 2];
//! let cfg = PpoConfig { steps_per_iter: 128, minibatch: 64, epochs: 2, ..PpoConfig::default() };
//! let mut agent = Ppo::new(2, &[3], cfg, 7);
//! let stats = agent.train_iteration(&mut envs);
//! assert!(stats.total_env_steps >= 128);
//! ```

pub mod env;
pub mod mlp;
pub mod policy;
pub mod ppo;
pub mod rollout;

pub use env::{Env, StepResult};
pub use policy::{PolicyNet, ValueNet};
pub use ppo::{IterStats, Ppo, PpoConfig};
