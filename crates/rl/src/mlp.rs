//! Multi-layer perceptron with manual backpropagation and Adam.
//!
//! The paper's agent is a 3-layer, 50-neuron network trained with PPO; at
//! that scale a straightforward `Vec<f64>`-based implementation with
//! per-sample backward passes is faster than pulling in a tensor library,
//! and keeps the whole learning stack dependency-free and deterministic.

use rand::rngs::StdRng;
use rand::Rng;

/// Activation functions for hidden and output layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Identity (for logits / value outputs).
    Linear,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the *output* value `y = f(x)`.
    fn deriv_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Linear => 1.0,
        }
    }
}

/// One dense layer with its gradient and Adam moment buffers.
#[derive(Debug, Clone, PartialEq)]
struct Linear {
    n_in: usize,
    n_out: usize,
    w: Vec<f64>, // row-major [n_out x n_in]
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Linear {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        // Xavier/Glorot uniform initialization.
        let bound = (6.0 / (n_in + n_out) as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Linear {
            n_in,
            n_out,
            w,
            b: vec![0.0; n_out],
            gw: vec![0.0; n_in * n_out],
            gb: vec![0.0; n_out],
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }

    /// Accumulates gradients given upstream gradient `dy` (w.r.t. this
    /// layer's pre-activation output) and this layer's input `x`; writes the
    /// gradient w.r.t. `x` into `dx`.
    fn backward(&mut self, x: &[f64], dy: &[f64], dx: &mut Vec<f64>) {
        assert_eq!(dy.len(), self.n_out, "upstream gradient width mismatch");
        dx.clear();
        dx.resize(self.n_in, 0.0);
        for (o, &g) in dy.iter().enumerate() {
            self.gb[o] += g;
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let grow = &mut self.gw[o * self.n_in..(o + 1) * self.n_in];
            for i in 0..self.n_in {
                grow[i] += g * x[i];
                dx[i] += g * row[i];
            }
        }
    }

    fn zero_grad(&mut self) {
        self.gw.fill(0.0);
        self.gb.fill(0.0);
    }

    fn grad_sq_norm(&self) -> f64 {
        self.gw.iter().map(|g| g * g).sum::<f64>() + self.gb.iter().map(|g| g * g).sum::<f64>()
    }

    fn scale_grad(&mut self, k: f64) {
        self.gw.iter_mut().for_each(|g| *g *= k);
        self.gb.iter_mut().for_each(|g| *g *= k);
    }

    fn adam_step(&mut self, lr: f64, b1: f64, b2: f64, eps: f64, t: u64) {
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        for i in 0..self.w.len() {
            self.mw[i] = b1 * self.mw[i] + (1.0 - b1) * self.gw[i];
            self.vw[i] = b2 * self.vw[i] + (1.0 - b2) * self.gw[i] * self.gw[i];
            let mhat = self.mw[i] / bc1;
            let vhat = self.vw[i] / bc2;
            self.w[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
        for i in 0..self.b.len() {
            self.mb[i] = b1 * self.mb[i] + (1.0 - b1) * self.gb[i];
            self.vb[i] = b2 * self.vb[i] + (1.0 - b2) * self.gb[i] * self.gb[i];
            let mhat = self.mb[i] / bc1;
            let vhat = self.vb[i] / bc2;
            self.b[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

/// Forward-pass cache needed by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Post-activation values per layer, `acts[0]` is the input.
    acts: Vec<Vec<f64>>,
}

/// A fully-connected feed-forward network.
///
/// # Examples
///
/// ```
/// use autockt_rl::mlp::{Activation, Mlp};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let net = Mlp::new(&[4, 16, 2], Activation::Tanh, Activation::Linear, &mut rng);
/// let y = net.forward(&[0.1, -0.2, 0.3, 0.0]);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    out_act: Activation,
    adam_t: u64,
}

impl Mlp {
    /// Builds a network with the given layer sizes (first entry is the
    /// input dimension, last is the output dimension).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are supplied.
    pub fn new(
        sizes: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            hidden_act,
            out_act,
            adam_t: 0,
        }
    }

    /// Input dimension (0 for a layerless net, which the constructors
    /// never build).
    pub fn n_in(&self) -> usize {
        self.layers.first().map_or(0, |l| l.n_in)
    }

    /// Output dimension (0 for a layerless net, which the constructors
    /// never build).
    pub fn n_out(&self) -> usize {
        self.layers.last().map_or(0, |l| l.n_out)
    }

    /// Plain forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        let mut buf = Vec::new();
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut buf);
            let act = if li == last {
                self.out_act
            } else {
                self.hidden_act
            };
            cur.clear();
            cur.extend(buf.iter().map(|&v| act.apply(v)));
        }
        cur
    }

    /// Forward pass that records activations for a later
    /// [`Mlp::backward`].
    pub fn forward_cache(&self, x: &[f64]) -> (Vec<f64>, ForwardCache) {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        let mut buf = Vec::new();
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            // lint:allow(panic) — `acts` is seeded with the input vector
            // before the loop and pushed to every iteration.
            layer.forward(acts.last().expect("nonempty"), &mut buf);
            let act = if li == last {
                self.out_act
            } else {
                self.hidden_act
            };
            acts.push(buf.iter().map(|&v| act.apply(v)).collect());
        }
        (
            // lint:allow(panic) — `acts` holds the seed input plus one
            // activation per layer; never empty here.
            acts.last().expect("nonempty").clone(),
            ForwardCache { acts },
        )
    }

    /// Accumulates parameter gradients for one sample given the gradient of
    /// the loss w.r.t. the network *output* (post-activation).
    ///
    /// # Panics
    ///
    /// Panics if `dout.len() != self.n_out()` or the cache shape mismatches.
    pub fn backward(&mut self, cache: &ForwardCache, dout: &[f64]) {
        assert_eq!(dout.len(), self.n_out(), "bad output gradient size");
        let last = self.layers.len() - 1;
        // Gradient w.r.t. pre-activation of the current layer.
        let mut dy: Vec<f64> = dout
            .iter()
            .zip(&cache.acts[last + 1])
            .map(|(g, y)| g * self.out_act.deriv_from_output(*y))
            .collect();
        let mut dx = Vec::new();
        for li in (0..self.layers.len()).rev() {
            let x = &cache.acts[li];
            self.layers[li].backward(x, &dy, &mut dx);
            if li > 0 {
                let act = self.hidden_act;
                dy = dx
                    .iter()
                    .zip(&cache.acts[li])
                    .map(|(g, y)| g * act.deriv_from_output(*y))
                    .collect();
            }
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Global L2 norm of the accumulated gradient.
    pub fn grad_norm(&self) -> f64 {
        self.layers
            .iter()
            .map(Linear::grad_sq_norm)
            .sum::<f64>()
            .sqrt()
    }

    /// Scales all accumulated gradients (used for minibatch averaging and
    /// gradient clipping).
    pub fn scale_grad(&mut self, k: f64) {
        for l in &mut self.layers {
            l.scale_grad(k);
        }
    }

    /// Applies one Adam update with the accumulated gradients, then clears
    /// them.
    pub fn adam_step(&mut self, lr: f64) {
        self.adam_t += 1;
        for l in &mut self.layers {
            l.adam_step(lr, 0.9, 0.999, 1e-8, self.adam_t);
        }
        self.zero_grad();
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }
}

/// Numerically stable softmax over a slice.
pub fn softmax(z: &[f64]) -> Vec<f64> {
    let m = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|v| (v - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.iter().map(|e| e / s).collect()
}

/// Log-sum-exp of a slice, numerically stable.
pub fn log_sum_exp(z: &[f64]) -> f64 {
    let m = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    m + z.iter().map(|v| (v - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn forward_shapes() {
        let net = Mlp::new(
            &[3, 8, 8, 2],
            Activation::Tanh,
            Activation::Linear,
            &mut rng(),
        );
        assert_eq!(net.n_in(), 3);
        assert_eq!(net.n_out(), 2);
        assert_eq!(net.forward(&[0.0, 0.0, 0.0]).len(), 2);
        assert!(net.num_params() > 0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Loss = 0.5 * sum(y^2); analytic grad vs numerical perturbation of
        // a weight checked through the full backprop chain.
        let mut net = Mlp::new(&[2, 5, 3], Activation::Tanh, Activation::Linear, &mut rng());
        let x = [0.3, -0.7];
        let (y, cache) = net.forward_cache(&x);
        let dout: Vec<f64> = y.clone();
        net.zero_grad();
        net.backward(&cache, &dout);
        // Check a handful of weights in each layer.
        let h = 1e-6;
        for li in 0..net.layers.len() {
            for wi in [0usize, 1, 3] {
                let analytic = net.layers[li].gw[wi];
                let orig = net.layers[li].w[wi];
                net.layers[li].w[wi] = orig + h;
                let yp = net.forward(&x);
                let lp: f64 = 0.5 * yp.iter().map(|v| v * v).sum::<f64>();
                net.layers[li].w[wi] = orig - h;
                let ym = net.forward(&x);
                let lm: f64 = 0.5 * ym.iter().map(|v| v * v).sum::<f64>();
                net.layers[li].w[wi] = orig;
                let numeric = (lp - lm) / (2.0 * h);
                assert!(
                    (analytic - numeric).abs() < 1e-6,
                    "layer {li} w[{wi}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn adam_reduces_regression_loss() {
        // Fit y = [x0 + x1, x0 - x1] from random samples.
        let mut r = rng();
        let mut net = Mlp::new(&[2, 16, 2], Activation::Tanh, Activation::Linear, &mut r);
        let loss_of = |net: &Mlp, data: &[([f64; 2], [f64; 2])]| -> f64 {
            data.iter()
                .map(|(x, t)| {
                    let y = net.forward(x);
                    0.5 * ((y[0] - t[0]).powi(2) + (y[1] - t[1]).powi(2))
                })
                .sum::<f64>()
                / data.len() as f64
        };
        let data: Vec<([f64; 2], [f64; 2])> = (0..64)
            .map(|_| {
                let x0: f64 = r.random_range(-1.0..1.0);
                let x1: f64 = r.random_range(-1.0..1.0);
                ([x0, x1], [x0 + x1, x0 - x1])
            })
            .collect();
        let before = loss_of(&net, &data);
        for _ in 0..300 {
            net.zero_grad();
            for (x, t) in &data {
                let (y, cache) = net.forward_cache(x);
                let dout = vec![y[0] - t[0], y[1] - t[1]];
                net.backward(&cache, &dout);
            }
            net.scale_grad(1.0 / data.len() as f64);
            net.adam_step(3e-3);
        }
        let after = loss_of(&net, &data);
        assert!(
            after < before * 0.05,
            "loss should drop 20x: {before} -> {after}"
        );
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 1000.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|v| (v - 1.0 / 3.0).abs() < 1e-12));
        let q = softmax(&[-1e9, 0.0]);
        assert!(q[1] > 0.999);
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let z = [0.1f64, -0.4, 2.0];
        let naive = z.iter().map(|v| v.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&z) - naive).abs() < 1e-12);
    }

    #[test]
    fn relu_activation_forward_backward() {
        let mut net = Mlp::new(&[1, 4, 1], Activation::Relu, Activation::Linear, &mut rng());
        let (y, cache) = net.forward_cache(&[0.5]);
        net.zero_grad();
        net.backward(&cache, &[1.0]);
        assert!(y[0].is_finite());
        assert!(net.grad_norm().is_finite());
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Linear, &mut rng());
        let b = a.clone();
        let x = [0.2, 0.4];
        let before = b.forward(&x)[0];
        let (y, cache) = a.forward_cache(&x);
        a.backward(&cache, &[y[0] + 1.0]);
        a.adam_step(0.1);
        assert!(
            (b.forward(&x)[0] - before).abs() < 1e-15,
            "clone unaffected"
        );
        assert!((a.forward(&x)[0] - before).abs() > 1e-9, "original trained");
    }
}
