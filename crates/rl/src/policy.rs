//! Factorized-categorical policy and value networks.
//!
//! Matching the paper, the policy trunk is a 3-layer, 50-neuron MLP; its
//! output layer emits one logit group per action factor (one factor per
//! circuit parameter, each a 3-way decrement/keep/increment categorical).
//! The value function is a separate network of the same shape.

use crate::mlp::{log_sum_exp, softmax, Activation, Mlp};
use rand::rngs::StdRng;
use rand::Rng;

/// A stochastic policy over a factorized discrete action space.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyNet {
    net: Mlp,
    action_dims: Vec<usize>,
}

/// Outcome of sampling the policy at one observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Sampled {
    /// One choice index per action factor.
    pub actions: Vec<usize>,
    /// Joint log-probability of the sampled action.
    pub logp: f64,
}

impl PolicyNet {
    /// Builds a policy for `obs_dim` inputs and the given action factors,
    /// with `hidden` fully-connected tanh layers (the paper uses
    /// `&[50, 50, 50]`).
    pub fn new(obs_dim: usize, action_dims: &[usize], hidden: &[usize], rng: &mut StdRng) -> Self {
        let n_logits: usize = action_dims.iter().sum();
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(obs_dim);
        sizes.extend_from_slice(hidden);
        sizes.push(n_logits);
        PolicyNet {
            net: Mlp::new(&sizes, Activation::Tanh, Activation::Linear, rng),
            action_dims: action_dims.to_vec(),
        }
    }

    /// The action factor cardinalities this policy emits.
    pub fn action_dims(&self) -> &[usize] {
        &self.action_dims
    }

    /// Raw logits for an observation, concatenated across factors.
    pub fn logits(&self, obs: &[f64]) -> Vec<f64> {
        self.net.forward(obs)
    }

    /// Samples an action from the policy.
    pub fn act(&self, obs: &[f64], rng: &mut StdRng) -> Sampled {
        let logits = self.logits(obs);
        let mut actions = Vec::with_capacity(self.action_dims.len());
        let mut logp = 0.0;
        let mut off = 0;
        for &d in &self.action_dims {
            let z = &logits[off..off + d];
            let p = softmax(z);
            let u: f64 = rng.random::<f64>();
            let mut acc = 0.0;
            let mut choice = d - 1;
            for (i, pi) in p.iter().enumerate() {
                acc += pi;
                if u < acc {
                    choice = i;
                    break;
                }
            }
            logp += z[choice] - log_sum_exp(z);
            actions.push(choice);
            off += d;
        }
        Sampled { actions, logp }
    }

    /// Greedy (argmax) action, used at deployment for reproducibility.
    pub fn act_greedy(&self, obs: &[f64]) -> Vec<usize> {
        let logits = self.logits(obs);
        let mut actions = Vec::with_capacity(self.action_dims.len());
        let mut off = 0;
        for &d in &self.action_dims {
            let z = &logits[off..off + d];
            // `total_cmp` orders NaN logits deterministically instead of
            // panicking mid-deployment; a zero-width factor (which the
            // constructors never build) falls back to action 0.
            let best = z
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(i, _)| i);
            actions.push(best);
            off += d;
        }
        actions
    }

    /// Joint log-probability and total entropy of `actions` under the
    /// current policy at `obs` (no gradient bookkeeping).
    pub fn logp_entropy(&self, obs: &[f64], actions: &[usize]) -> (f64, f64) {
        let logits = self.logits(obs);
        let mut logp = 0.0;
        let mut ent = 0.0;
        let mut off = 0;
        for (&d, &a) in self.action_dims.iter().zip(actions) {
            let z = &logits[off..off + d];
            let lse = log_sum_exp(z);
            logp += z[a] - lse;
            let p = softmax(z);
            ent -= p
                .iter()
                .map(|&pi| if pi > 0.0 { pi * pi.ln() } else { 0.0 })
                .sum::<f64>();
            off += d;
        }
        (logp, ent)
    }

    /// One PPO-clip gradient accumulation step for a single sample.
    ///
    /// Accumulates `d(-L_clip - ent_coef * H)/d(theta)` into the network's
    /// gradient buffers. Returns `(logp_new, entropy)` for diagnostics.
    pub fn accumulate_ppo_grad(
        &mut self,
        obs: &[f64],
        actions: &[usize],
        logp_old: f64,
        advantage: f64,
        clip: f64,
        ent_coef: f64,
    ) -> (f64, f64) {
        let (out, cache) = self.net.forward_cache(obs);
        let mut dlogits = vec![0.0; out.len()];
        let mut logp_new = 0.0;
        let mut entropy = 0.0;

        // First pass: compute logp_new to decide clipping.
        let mut off = 0;
        for (&d, &a) in self.action_dims.iter().zip(actions) {
            let z = &out[off..off + d];
            logp_new += z[a] - log_sum_exp(z);
            off += d;
        }
        let ratio = (logp_new - logp_old).exp();
        // Clipped-surrogate gradient gate: gradient flows through the ratio
        // only when the unclipped term is the active minimum.
        let unclipped_active = if advantage >= 0.0 {
            ratio < 1.0 + clip
        } else {
            ratio > 1.0 - clip
        };
        let dlogp = if unclipped_active {
            -advantage * ratio // d(-ratio*A)/dlogp_new
        } else {
            0.0
        };

        let mut off = 0;
        for (&d, &a) in self.action_dims.iter().zip(actions) {
            let z = &out[off..off + d];
            let p = softmax(z);
            let h: f64 = -p
                .iter()
                .map(|&pi| if pi > 0.0 { pi * pi.ln() } else { 0.0 })
                .sum::<f64>();
            entropy += h;
            for j in 0..d {
                // d logp(a) / dz_j = [j == a] - p_j
                let dlp = (if j == a { 1.0 } else { 0.0 }) - p[j];
                // dH/dz_j = -p_j (ln p_j + H)
                let dh = -p[j] * (p[j].max(1e-12).ln() + h);
                dlogits[off + j] += dlogp * dlp - ent_coef * dh;
            }
            off += d;
        }
        self.net.backward(&cache, &dlogits);
        (logp_new, entropy)
    }

    /// Access to the underlying network for optimizer bookkeeping.
    pub fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Read-only access to the underlying network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }
}

/// A state-value network (same trunk shape as the policy).
#[derive(Debug, Clone, PartialEq)]
pub struct ValueNet {
    net: Mlp,
}

impl ValueNet {
    /// Builds a value network for `obs_dim` inputs.
    pub fn new(obs_dim: usize, hidden: &[usize], rng: &mut StdRng) -> Self {
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(obs_dim);
        sizes.extend_from_slice(hidden);
        sizes.push(1);
        ValueNet {
            net: Mlp::new(&sizes, Activation::Tanh, Activation::Linear, rng),
        }
    }

    /// Predicted value of an observation.
    pub fn value(&self, obs: &[f64]) -> f64 {
        self.net.forward(obs)[0]
    }

    /// Accumulates the gradient of `0.5 * (v(obs) - target)^2`.
    /// Returns the current prediction.
    pub fn accumulate_mse_grad(&mut self, obs: &[f64], target: f64, coef: f64) -> f64 {
        let (out, cache) = self.net.forward_cache(obs);
        let v = out[0];
        self.net.backward(&cache, &[coef * (v - target)]);
        v
    }

    /// Access to the underlying network for optimizer bookkeeping.
    pub fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn sampled_actions_in_range() {
        let mut r = rng();
        let p = PolicyNet::new(4, &[3, 3, 5], &[16], &mut r);
        for _ in 0..100 {
            let s = p.act(&[0.1, 0.2, -0.1, 0.0], &mut r);
            assert_eq!(s.actions.len(), 3);
            assert!(s.actions[0] < 3 && s.actions[1] < 3 && s.actions[2] < 5);
            assert!(s.logp <= 0.0);
        }
    }

    #[test]
    fn logp_matches_sampling_probabilities() {
        // Empirical frequency of an action should be close to exp(logp).
        let mut r = rng();
        let p = PolicyNet::new(2, &[3], &[8], &mut r);
        let obs = [0.3, -0.3];
        let (logp0, _) = p.logp_entropy(&obs, &[0]);
        let n = 20000;
        let mut count = 0;
        for _ in 0..n {
            if p.act(&obs, &mut r).actions[0] == 0 {
                count += 1;
            }
        }
        let freq = count as f64 / n as f64;
        assert!(
            (freq - logp0.exp()).abs() < 0.02,
            "freq {freq} vs p {}",
            logp0.exp()
        );
    }

    #[test]
    fn entropy_max_for_uniform_logits() {
        // A fresh network with zero bias has near-uniform outputs only by
        // chance; instead check entropy is within the valid bound.
        let mut r = rng();
        let p = PolicyNet::new(2, &[3, 3], &[8], &mut r);
        let (_, ent) = p.logp_entropy(&[0.0, 0.0], &[0, 0]);
        let max_ent = 2.0 * 3f64.ln();
        assert!(ent > 0.0 && ent <= max_ent + 1e-9);
    }

    #[test]
    fn greedy_is_deterministic() {
        let mut r = rng();
        let p = PolicyNet::new(3, &[3, 3], &[16], &mut r);
        let obs = [0.5, -0.5, 0.1];
        assert_eq!(p.act_greedy(&obs), p.act_greedy(&obs));
    }

    #[test]
    fn ppo_grad_moves_policy_toward_advantaged_action() {
        // Repeatedly reinforcing action 2 with positive advantage must
        // raise its probability.
        let mut r = rng();
        let mut p = PolicyNet::new(2, &[3], &[8], &mut r);
        let obs = [0.2, 0.8];
        let (logp_before, _) = p.logp_entropy(&obs, &[2]);
        for _ in 0..50 {
            let (logp_old, _) = p.logp_entropy(&obs, &[2]);
            p.net_mut().zero_grad();
            p.accumulate_ppo_grad(&obs, &[2], logp_old, 1.0, 0.2, 0.0);
            p.net_mut().adam_step(1e-2);
        }
        let (logp_after, _) = p.logp_entropy(&obs, &[2]);
        assert!(
            logp_after > logp_before,
            "{logp_before} -> {logp_after} should increase"
        );
    }

    #[test]
    fn clipping_gates_gradient() {
        // With a ratio far outside the clip range and positive advantage,
        // the gradient must be zero.
        let mut r = rng();
        let mut p = PolicyNet::new(2, &[3], &[8], &mut r);
        let obs = [0.1, 0.1];
        let (logp_now, _) = p.logp_entropy(&obs, &[1]);
        // Pretend old policy had much lower prob: ratio >> 1 + clip.
        let logp_old = logp_now - 2.0;
        p.net_mut().zero_grad();
        p.accumulate_ppo_grad(&obs, &[1], logp_old, 1.0, 0.2, 0.0);
        assert!(p.net().grad_norm() < 1e-12, "clipped sample must not move");
    }

    #[test]
    fn value_net_fits_constant() {
        let mut r = rng();
        let mut v = ValueNet::new(3, &[16], &mut r);
        let obs = [0.4, -0.2, 0.9];
        for _ in 0..500 {
            v.net_mut().zero_grad();
            v.accumulate_mse_grad(&obs, 3.5, 1.0);
            v.net_mut().adam_step(3e-3);
        }
        assert!((v.value(&obs) - 3.5).abs() < 0.05);
    }
}
