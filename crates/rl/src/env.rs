//! The environment abstraction (OpenAI-Gym substitute).
//!
//! AutoCkt environments have a *factorized discrete* action space: one
//! small categorical choice per tunable circuit parameter
//! (decrement / keep / increment). The [`Env`] trait models exactly that.

use rand::rngs::StdRng;

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Observation after the step.
    pub obs: Vec<f64>,
    /// Scalar reward for the transition.
    pub reward: f64,
    /// Whether the episode terminated (goal reached or horizon hit).
    pub done: bool,
    /// Whether termination was due to reaching the goal (success) rather
    /// than the horizon.
    pub success: bool,
}

/// A reinforcement-learning environment with a factorized discrete action
/// space.
///
/// Implementations must be deterministic given the RNG passed to
/// [`Env::reset`]: all stochasticity (target sampling) flows through it.
pub trait Env {
    /// Dimension of the observation vector.
    fn obs_dim(&self) -> usize;

    /// Cardinality of each action factor (e.g. `[3, 3, 3, 3]` for four
    /// parameters with decrement/keep/increment choices).
    fn action_dims(&self) -> Vec<usize>;

    /// Starts a new episode and returns the initial observation.
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64>;

    /// Applies one factored action (one choice index per factor).
    fn step(&mut self, action: &[usize]) -> StepResult;
}

#[cfg(test)]
pub(crate) mod testenv {
    use super::*;
    use rand::Rng;

    /// A tiny deterministic "move to target on a line" environment used by
    /// unit tests of the PPO stack: state is (pos, target) on a K-grid,
    /// action decrements/keeps/increments pos, reward is negative distance,
    /// success when pos == target.
    #[derive(Debug, Clone)]
    pub struct LineEnv {
        pub k: i64,
        pub pos: i64,
        pub target: i64,
        pub t: usize,
        pub horizon: usize,
    }

    impl LineEnv {
        pub fn new(k: i64, horizon: usize) -> Self {
            LineEnv {
                k,
                pos: k / 2,
                target: 0,
                t: 0,
                horizon,
            }
        }

        fn obs(&self) -> Vec<f64> {
            vec![
                self.pos as f64 / self.k as f64,
                self.target as f64 / self.k as f64,
                (self.pos - self.target) as f64 / self.k as f64,
            ]
        }
    }

    impl Env for LineEnv {
        fn obs_dim(&self) -> usize {
            3
        }

        fn action_dims(&self) -> Vec<usize> {
            vec![3]
        }

        fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
            self.pos = self.k / 2;
            self.target = rng.random_range(0..self.k);
            self.t = 0;
            self.obs()
        }

        fn step(&mut self, action: &[usize]) -> StepResult {
            let delta = action[0] as i64 - 1;
            self.pos = (self.pos + delta).clamp(0, self.k - 1);
            self.t += 1;
            let dist = (self.pos - self.target).abs();
            let success = dist == 0;
            let reward = if success {
                10.0
            } else {
                -(dist as f64) / self.k as f64
            };
            StepResult {
                obs: self.obs(),
                reward,
                done: success || self.t >= self.horizon,
                success,
            }
        }
    }
}
