//! Parallel trajectory collection.
//!
//! The paper leans on Ray/RLlib to run several simulation environments in
//! parallel during training; here std scoped threads play that role.
//! Each worker owns one environment and a private RNG; the policy and value
//! networks are shared immutably (plain `Vec<f64>` data, `Sync` for free).
//!
//! Because each worker *owns* its environment across the whole collection
//! loop (episodes reset in place rather than re-constructing the env), any
//! per-env evaluation state — the warm-start/memoization `EvalSession`
//! inside the sizing environment — persists across episode boundaries
//! within a worker and accumulates over training iterations. That is what
//! turns the memo cache into a real hot-path win: revisited grid points
//! anywhere in a worker's history cost no simulator time.
//!
//! The memo need not even be per-worker: environments constructed with a
//! pooled `SharedMemo` (see `autockt_circuits::problem::SharedMemo` and
//! `autockt_core::EnvConfig::shared_memo`) cache into one concurrent
//! sharded map, so a grid point solved by *any* of the workers spawned
//! here serves every sibling's revisit — episodes all restart from the
//! grid center, making that overlap heavy. The envs arrive here already
//! wired (this collector is generic over [`Env`] and needs no special
//! handling): each scoped thread steps its own env, the sessions inside
//! take a shard lock only for the microseconds of a map probe, and
//! warm-start state stays thread-private.

use crate::env::Env;
use crate::policy::{PolicyNet, ValueNet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Hooks into a process-wide thread budget owned by another crate (the
/// simulation substrate's `autockt_sim::par` module, in the deployed
/// stack). The rl crate deliberately depends on nothing below it, so the
/// budget arrives as plain function pointers, registered once at process
/// start by the layer that wires envs to simulators.
///
/// `reserve` asks for up to the given number of threads and returns how
/// many were granted; `release` returns previously granted threads.
#[derive(Debug, Clone, Copy)]
pub struct ThreadAccountant {
    /// Reserve up to `want` threads, returning the number granted.
    pub reserve: fn(usize) -> usize,
    /// Release `n` previously granted threads.
    pub release: fn(usize),
}

static ACCOUNTANT: OnceLock<ThreadAccountant> = OnceLock::new();

/// Registers the process-wide [`ThreadAccountant`]. The first
/// registration wins; later calls are ignored (the budget is global, so
/// two competing accountants would double-count).
pub fn register_thread_accountant(acc: ThreadAccountant) {
    let _ = ACCOUNTANT.set(acc);
}

/// One stored transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation before the action.
    pub obs: Vec<f64>,
    /// Factored action taken.
    pub actions: Vec<usize>,
    /// Log-probability of the action under the behaviour policy.
    pub logp: f64,
    /// Reward received.
    pub reward: f64,
    /// Value prediction at `obs`.
    pub value: f64,
    /// Generalized advantage estimate (filled by [`compute_gae`]).
    pub advantage: f64,
    /// Return-to-go target for the value function.
    pub ret: f64,
}

/// A batch of experience plus episode bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// All transitions, worker-segments concatenated.
    pub transitions: Vec<Transition>,
    /// Total return of every episode completed during collection.
    pub episode_returns: Vec<f64>,
    /// Length of every completed episode.
    pub episode_lens: Vec<usize>,
    /// Whether each completed episode reached its goal.
    pub episode_successes: Vec<bool>,
}

impl Batch {
    /// Mean return over completed episodes (NaN-free: returns `None` when
    /// no episode completed).
    pub fn mean_episode_return(&self) -> Option<f64> {
        if self.episode_returns.is_empty() {
            None
        } else {
            Some(self.episode_returns.iter().sum::<f64>() / self.episode_returns.len() as f64)
        }
    }

    /// Fraction of completed episodes that reached the goal.
    pub fn success_rate(&self) -> Option<f64> {
        if self.episode_successes.is_empty() {
            None
        } else {
            Some(
                self.episode_successes.iter().filter(|s| **s).count() as f64
                    / self.episode_successes.len() as f64,
            )
        }
    }
}

/// Fills `advantage` and `ret` via GAE(lambda) over one contiguous worker
/// segment. `dones[i]` marks episode boundaries; `bootstrap` is the value
/// estimate of the observation *after* the last transition (0 if that
/// transition ended an episode).
pub fn compute_gae(seg: &mut [Transition], dones: &[bool], bootstrap: f64, gamma: f64, lam: f64) {
    let n = seg.len();
    assert_eq!(n, dones.len());
    let mut gae = 0.0;
    for i in (0..n).rev() {
        let next_value = if dones[i] {
            0.0
        } else if i + 1 < n {
            seg[i + 1].value
        } else {
            bootstrap
        };
        let nonterminal = if dones[i] { 0.0 } else { 1.0 };
        let delta = seg[i].reward + gamma * next_value - seg[i].value;
        gae = delta + gamma * lam * nonterminal * gae;
        seg[i].advantage = gae;
        seg[i].ret = gae + seg[i].value;
    }
}

/// One worker's output: transitions, episode returns, lengths, successes.
type WorkerSegment = (Vec<Transition>, Vec<f64>, Vec<usize>, Vec<bool>);

/// Collects `steps_per_worker` transitions from each environment in
/// parallel, computing GAE per worker segment.
pub fn collect_parallel<E: Env + Send>(
    policy: &PolicyNet,
    value: &ValueNet,
    envs: &mut [E],
    steps_per_worker: usize,
    gamma: f64,
    lam: f64,
    seed: u64,
) -> Batch {
    // Rollout workers are the *outer* parallel level: they always spawn
    // (each owns an env and its warm-start state), but their head count
    // is charged against the shared thread budget so the simulation
    // kernels they drive see the reduced headroom and degrade their own
    // tiling toward serial — workers × inner threads stays within the
    // budget, outer level wins. The coordinator blocks for the whole
    // scope, so one worker rides its slot and only the rest are charged.
    let charged = envs.len().saturating_sub(1);
    let granted = ACCOUNTANT.get().map_or(0, |a| (a.reserve)(charged));
    let results: Vec<WorkerSegment> = std::thread::scope(|scope| {
        let handles: Vec<_> = envs
            .iter_mut()
            .enumerate()
            .map(|(wi, env)| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ (wi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut seg: Vec<Transition> = Vec::with_capacity(steps_per_worker);
                    let mut dones = Vec::with_capacity(steps_per_worker);
                    let mut ep_rets = Vec::new();
                    let mut ep_lens = Vec::new();
                    let mut ep_succ = Vec::new();
                    let mut obs = env.reset(&mut rng);
                    let mut ep_ret = 0.0;
                    let mut ep_len = 0usize;
                    for _ in 0..steps_per_worker {
                        let sampled = policy.act(&obs, &mut rng);
                        let v = value.value(&obs);
                        let sr = env.step(&sampled.actions);
                        ep_ret += sr.reward;
                        ep_len += 1;
                        seg.push(Transition {
                            obs: std::mem::take(&mut obs),
                            actions: sampled.actions,
                            logp: sampled.logp,
                            reward: sr.reward,
                            value: v,
                            advantage: 0.0,
                            ret: 0.0,
                        });
                        dones.push(sr.done);
                        if sr.done {
                            ep_rets.push(ep_ret);
                            ep_lens.push(ep_len);
                            ep_succ.push(sr.success);
                            ep_ret = 0.0;
                            ep_len = 0;
                            obs = env.reset(&mut rng);
                        } else {
                            obs = sr.obs;
                        }
                    }
                    let bootstrap = if *dones.last().unwrap_or(&true) {
                        0.0
                    } else {
                        value.value(&obs)
                    };
                    compute_gae(&mut seg, &dones, bootstrap, gamma, lam);
                    (seg, ep_rets, ep_lens, ep_succ)
                })
            })
            .collect();
        handles
            .into_iter()
            // lint:allow(panic) — join() only errs when the worker itself
            // panicked; re-raising that panic on the coordinator is the
            // intended propagation, not a new failure mode.
            .map(|h| h.join().expect("rollout worker panicked"))
            .collect()
    });
    if let Some(a) = ACCOUNTANT.get() {
        (a.release)(granted);
    }

    let mut batch = Batch::default();
    for (seg, rets, lens, succ) in results {
        batch.transitions.extend(seg);
        batch.episode_returns.extend(rets);
        batch.episode_lens.extend(lens);
        batch.episode_successes.extend(succ);
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::testenv::LineEnv;

    fn nets(obs: usize, dims: &[usize]) -> (PolicyNet, ValueNet) {
        let mut rng = StdRng::seed_from_u64(3);
        (
            PolicyNet::new(obs, dims, &[16], &mut rng),
            ValueNet::new(obs, &[16], &mut rng),
        )
    }

    #[test]
    fn gae_single_step_matches_td() {
        let mut seg = vec![Transition {
            obs: vec![0.0],
            actions: vec![0],
            logp: 0.0,
            reward: 1.0,
            value: 0.5,
            advantage: 0.0,
            ret: 0.0,
        }];
        compute_gae(&mut seg, &[false], 2.0, 0.9, 1.0);
        // delta = 1 + 0.9*2 - 0.5 = 2.3
        assert!((seg[0].advantage - 2.3).abs() < 1e-12);
        assert!((seg[0].ret - 2.8).abs() < 1e-12);
    }

    #[test]
    fn gae_resets_across_done() {
        let mk = |reward: f64, value: f64| Transition {
            obs: vec![0.0],
            actions: vec![0],
            logp: 0.0,
            reward,
            value,
            advantage: 0.0,
            ret: 0.0,
        };
        let mut seg = vec![mk(1.0, 0.0), mk(5.0, 0.0)];
        compute_gae(&mut seg, &[true, true], 0.0, 0.99, 0.95);
        // Each step is its own episode: advantage = its own reward.
        assert!((seg[0].advantage - 1.0).abs() < 1e-12);
        assert!((seg[1].advantage - 5.0).abs() < 1e-12);
    }

    #[test]
    fn collect_fills_batch_and_episodes_complete() {
        let (p, v) = nets(3, &[3]);
        let mut envs: Vec<LineEnv> = (0..4).map(|_| LineEnv::new(16, 20)).collect();
        let b = collect_parallel(&p, &v, &mut envs, 100, 0.99, 0.95, 7);
        assert_eq!(b.transitions.len(), 400);
        assert!(!b.episode_returns.is_empty());
        assert_eq!(b.episode_returns.len(), b.episode_lens.len());
        assert_eq!(b.episode_returns.len(), b.episode_successes.len());
        // Every episode len respects the horizon.
        assert!(b.episode_lens.iter().all(|&l| l <= 20));
    }

    #[test]
    fn collect_is_deterministic_for_fixed_seed() {
        let (p, v) = nets(3, &[3]);
        let mut envs1: Vec<LineEnv> = (0..2).map(|_| LineEnv::new(16, 20)).collect();
        let mut envs2: Vec<LineEnv> = (0..2).map(|_| LineEnv::new(16, 20)).collect();
        let b1 = collect_parallel(&p, &v, &mut envs1, 50, 0.99, 0.95, 11);
        let b2 = collect_parallel(&p, &v, &mut envs2, 50, 0.99, 0.95, 11);
        assert_eq!(b1.transitions.len(), b2.transitions.len());
        for (t1, t2) in b1.transitions.iter().zip(&b2.transitions) {
            assert_eq!(t1.actions, t2.actions);
            assert!((t1.reward - t2.reward).abs() < 1e-15);
        }
    }

    #[test]
    fn batch_stats_none_when_empty() {
        let b = Batch::default();
        assert!(b.mean_episode_return().is_none());
        assert!(b.success_rate().is_none());
    }

    #[test]
    fn accountant_charges_and_returns_worker_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static RESERVED: AtomicUsize = AtomicUsize::new(0);
        static RELEASED: AtomicUsize = AtomicUsize::new(0);
        fn fake_reserve(want: usize) -> usize {
            RESERVED.fetch_add(want, Ordering::SeqCst);
            want
        }
        fn fake_release(n: usize) {
            RELEASED.fetch_add(n, Ordering::SeqCst);
        }
        register_thread_accountant(ThreadAccountant {
            reserve: fake_reserve,
            release: fake_release,
        });
        let (p, v) = nets(3, &[3]);
        let mut envs: Vec<LineEnv> = (0..3).map(|_| LineEnv::new(16, 20)).collect();
        let b = collect_parallel(&p, &v, &mut envs, 10, 0.99, 0.95, 5);
        assert_eq!(b.transitions.len(), 30);
        // The registration is process-global and sibling tests also run
        // collections, so only monotone facts are asserted: this
        // collection charged its workers (3 envs -> 2 charged, the
        // coordinator's slot carries the third) and returned them.
        assert!(RESERVED.load(Ordering::SeqCst) >= 2);
        assert!(RELEASED.load(Ordering::SeqCst) >= 2);
    }
}
