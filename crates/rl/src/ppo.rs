//! Proximal Policy Optimization (clipped surrogate) trainer.
//!
//! This is the algorithm the paper trains AutoCkt with (via RLlib); here it
//! is implemented directly on top of [`crate::mlp`]: advantage
//! normalization, minibatched epochs over the collected batch, entropy
//! bonus, value-function regression and global gradient-norm clipping.

use crate::env::Env;
use crate::policy::{PolicyNet, ValueNet};
use crate::rollout::{collect_parallel, Batch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters for PPO.
#[derive(Debug, Clone, PartialEq)]
pub struct PpoConfig {
    /// Hidden layer sizes of both networks (paper: three 50-neuron layers).
    pub hidden: Vec<usize>,
    /// Environment steps collected per iteration (split across workers).
    pub steps_per_iter: usize,
    /// Minibatch size for gradient steps.
    pub minibatch: usize,
    /// Optimization epochs over each batch.
    pub epochs: usize,
    /// Discount factor.
    pub gamma: f64,
    /// GAE lambda.
    pub lam: f64,
    /// PPO clip radius.
    pub clip: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Entropy bonus coefficient.
    pub ent_coef: f64,
    /// Value-loss coefficient.
    pub vf_coef: f64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            hidden: vec![50, 50, 50],
            steps_per_iter: 2048,
            minibatch: 256,
            epochs: 8,
            gamma: 0.99,
            lam: 0.95,
            clip: 0.2,
            lr: 3e-4,
            ent_coef: 5e-3,
            vf_coef: 0.5,
            max_grad_norm: 0.5,
        }
    }
}

/// Diagnostics from one training iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterStats {
    /// Mean return of episodes completed this iteration (the quantity the
    /// paper plots in Figs. 5, 7, 11). `NaN` if none completed.
    pub mean_episode_reward: f64,
    /// Number of completed episodes.
    pub episodes: usize,
    /// Fraction of completed episodes that reached the goal.
    pub success_rate: f64,
    /// Mean completed-episode length.
    pub mean_episode_len: f64,
    /// Mean policy entropy over the batch after the update.
    pub entropy: f64,
    /// Approximate KL(old || new) after the update.
    pub approx_kl: f64,
    /// Environment steps consumed so far (cumulative).
    pub total_env_steps: usize,
}

/// A PPO agent: policy, value function, optimizer state and config.
#[derive(Debug, Clone)]
pub struct Ppo {
    /// The stochastic policy being optimized.
    pub policy: PolicyNet,
    /// The value-function baseline.
    pub value: ValueNet,
    cfg: PpoConfig,
    rng: StdRng,
    total_env_steps: usize,
    iter: usize,
}

impl Ppo {
    /// Creates an agent for the given observation/action space.
    pub fn new(obs_dim: usize, action_dims: &[usize], cfg: PpoConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = PolicyNet::new(obs_dim, action_dims, &cfg.hidden, &mut rng);
        let value = ValueNet::new(obs_dim, &cfg.hidden, &mut rng);
        Ppo {
            policy,
            value,
            cfg,
            rng,
            total_env_steps: 0,
            iter: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PpoConfig {
        &self.cfg
    }

    /// Cumulative environment steps consumed.
    pub fn total_env_steps(&self) -> usize {
        self.total_env_steps
    }

    /// Runs one collect + update iteration over the given environments.
    pub fn train_iteration<E: Env + Send>(&mut self, envs: &mut [E]) -> IterStats {
        assert!(!envs.is_empty(), "need at least one environment");
        let steps_per_worker = self.cfg.steps_per_iter.div_ceil(envs.len());
        let seed = {
            use rand::Rng;
            self.rng.random::<u64>()
        };
        let mut batch = collect_parallel(
            &self.policy,
            &self.value,
            envs,
            steps_per_worker,
            self.cfg.gamma,
            self.cfg.lam,
            seed,
        );
        self.total_env_steps += batch.transitions.len();
        self.iter += 1;
        let (entropy, approx_kl) = self.update(&mut batch);
        IterStats {
            mean_episode_reward: batch.mean_episode_return().unwrap_or(f64::NAN),
            episodes: batch.episode_returns.len(),
            success_rate: batch.success_rate().unwrap_or(0.0),
            mean_episode_len: if batch.episode_lens.is_empty() {
                f64::NAN
            } else {
                batch.episode_lens.iter().sum::<usize>() as f64 / batch.episode_lens.len() as f64
            },
            entropy,
            approx_kl,
            total_env_steps: self.total_env_steps,
        }
    }

    /// Performs the PPO update on a collected batch. Returns
    /// `(mean entropy, approximate KL)` measured during the last epoch.
    pub fn update(&mut self, batch: &mut Batch) -> (f64, f64) {
        let n = batch.transitions.len();
        if n == 0 {
            return (0.0, 0.0);
        }
        // Advantage normalization across the whole batch.
        let mean = batch.transitions.iter().map(|t| t.advantage).sum::<f64>() / n as f64;
        let var = batch
            .transitions
            .iter()
            .map(|t| (t.advantage - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let std = var.sqrt().max(1e-8);
        for t in &mut batch.transitions {
            t.advantage = (t.advantage - mean) / std;
        }

        let mut indices: Vec<usize> = (0..n).collect();
        let mut ent_sum = 0.0;
        let mut ent_count = 0usize;
        let mut kl_sum = 0.0;
        for epoch in 0..self.cfg.epochs {
            indices.shuffle(&mut self.rng);
            for chunk in indices.chunks(self.cfg.minibatch) {
                self.policy.net_mut().zero_grad();
                self.value.net_mut().zero_grad();
                for &i in chunk {
                    let t = &batch.transitions[i];
                    let (logp_new, ent) = self.policy.accumulate_ppo_grad(
                        &t.obs,
                        &t.actions,
                        t.logp,
                        t.advantage,
                        self.cfg.clip,
                        self.cfg.ent_coef,
                    );
                    self.value
                        .accumulate_mse_grad(&t.obs, t.ret, self.cfg.vf_coef);
                    if epoch == self.cfg.epochs - 1 {
                        ent_sum += ent;
                        kl_sum += t.logp - logp_new;
                        ent_count += 1;
                    }
                }
                let scale = 1.0 / chunk.len() as f64;
                self.policy.net_mut().scale_grad(scale);
                self.value.net_mut().scale_grad(scale);
                // Global gradient clipping per network.
                for net in [self.policy.net_mut(), self.value.net_mut()] {
                    let gn = net.grad_norm();
                    if gn > self.cfg.max_grad_norm {
                        net.scale_grad(self.cfg.max_grad_norm / gn);
                    }
                }
                self.policy.net_mut().adam_step(self.cfg.lr);
                self.value.net_mut().adam_step(self.cfg.lr);
            }
        }
        if ent_count == 0 {
            (0.0, 0.0)
        } else {
            (ent_sum / ent_count as f64, kl_sum / ent_count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::testenv::LineEnv;

    #[test]
    fn ppo_solves_line_env() {
        // The sanity benchmark for the whole learning stack: a policy must
        // learn to walk a 1-D grid to a sampled target within the horizon.
        let mut envs: Vec<LineEnv> = (0..4).map(|_| LineEnv::new(16, 24)).collect();
        let cfg = PpoConfig {
            steps_per_iter: 512,
            minibatch: 128,
            epochs: 6,
            lr: 1e-3,
            ..PpoConfig::default()
        };
        let mut agent = Ppo::new(3, &[3], cfg, 12345);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..40 {
            let stats = agent.train_iteration(&mut envs);
            if stats.mean_episode_reward.is_finite() {
                best = best.max(stats.mean_episode_reward);
            }
        }
        // A random walk rarely hits the target (return ~ -2); a trained
        // policy should routinely collect the +10 bonus.
        assert!(best > 5.0, "best mean episode reward {best}");
    }

    #[test]
    fn stats_track_env_steps() {
        let mut envs: Vec<LineEnv> = (0..2).map(|_| LineEnv::new(8, 10)).collect();
        let cfg = PpoConfig {
            steps_per_iter: 64,
            minibatch: 32,
            epochs: 2,
            ..PpoConfig::default()
        };
        let mut agent = Ppo::new(3, &[3], cfg, 1);
        let s1 = agent.train_iteration(&mut envs);
        let s2 = agent.train_iteration(&mut envs);
        assert!(s2.total_env_steps > s1.total_env_steps);
        assert_eq!(agent.total_env_steps(), s2.total_env_steps);
    }

    #[test]
    fn update_on_empty_batch_is_noop() {
        let cfg = PpoConfig::default();
        let mut agent = Ppo::new(3, &[3], cfg, 2);
        let mut empty = Batch::default();
        let (e, k) = agent.update(&mut empty);
        assert_eq!((e, k), (0.0, 0.0));
    }
}
