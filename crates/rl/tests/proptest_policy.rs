//! Property-based tests of the policy distribution machinery.

use autockt_rl::mlp::{log_sum_exp, softmax};
use autockt_rl::policy::PolicyNet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Softmax is a probability distribution for any finite logits.
    #[test]
    fn softmax_is_distribution(z in prop::collection::vec(-50.0..50.0f64, 1..10)) {
        let p = softmax(&z);
        prop_assert_eq!(p.len(), z.len());
        prop_assert!(p.iter().all(|v| *v >= 0.0 && *v <= 1.0 + 1e-12));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Softmax is shift-invariant: softmax(z + c) == softmax(z).
    #[test]
    fn softmax_shift_invariant(
        z in prop::collection::vec(-20.0..20.0f64, 2..8),
        c in -100.0..100.0f64,
    ) {
        let a = softmax(&z);
        let shifted: Vec<f64> = z.iter().map(|v| v + c).collect();
        let b = softmax(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// log_sum_exp upper-bounds the max and lower-bounds max + ln(n).
    #[test]
    fn lse_bounds(z in prop::collection::vec(-30.0..30.0f64, 1..10)) {
        let m = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let l = log_sum_exp(&z);
        prop_assert!(l >= m - 1e-12);
        prop_assert!(l <= m + (z.len() as f64).ln() + 1e-12);
    }

    /// Per-factor log-probabilities from logp_entropy sum to a valid joint
    /// (<= 0) and entropy is within [0, sum ln K_i].
    #[test]
    fn policy_logp_and_entropy_in_range(
        seed in 0u64..1000,
        obs in prop::collection::vec(-1.0..1.0f64, 4),
        a0 in 0usize..3,
        a1 in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PolicyNet::new(4, &[3, 3], &[8], &mut rng);
        let (logp, ent) = p.logp_entropy(&obs, &[a0, a1]);
        prop_assert!(logp <= 1e-12);
        prop_assert!(ent >= -1e-12 && ent <= 2.0 * 3f64.ln() + 1e-9);
    }

    /// Greedy action maximizes per-factor probability.
    #[test]
    fn greedy_maximizes_probability(
        seed in 0u64..500,
        obs in prop::collection::vec(-1.0..1.0f64, 3),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PolicyNet::new(3, &[3], &[8], &mut rng);
        let greedy = p.act_greedy(&obs)[0];
        let (lg, _) = p.logp_entropy(&obs, &[greedy]);
        for a in 0..3 {
            let (la, _) = p.logp_entropy(&obs, &[a]);
            prop_assert!(lg >= la - 1e-12);
        }
    }
}
