//! Property: warm-started and cold DC solves converge to the same
//! operating point — the measured specs agree within solver tolerance —
//! across random parameter-grid walks for all three topologies. The walk
//! moves each parameter at most one grid notch per step, exactly like the
//! RL environment, so the warm state threads realistic previous-step
//! operating points into every solve.

use autockt_circuits::prelude::*;
use autockt_sim::dc::WarmState;
use proptest::prelude::*;

/// Relative spec tolerance: warm and cold Newton both stop at an update
/// norm of 1e-9, and the measurement layer (crossing interpolation,
/// settling-grid snapping) amplifies the operating-point difference by a
/// few orders of magnitude at most.
const REL_TOL: f64 = 5e-3;

fn specs_close(w: &[f64], c: &[f64]) -> bool {
    w.len() == c.len()
        && w.iter()
            .zip(c)
            .all(|(a, b)| (a - b).abs() <= REL_TOL * (1.0 + a.abs().max(b.abs())))
}

/// Walks the grid from a fractional starting point, evaluating every
/// visited point both warm (session-threaded) and cold (stateless), and
/// reports the first divergence.
fn check_walk(problem: &dyn SizingProblem, fracs: &[f64], moves: &[usize]) -> Result<(), String> {
    let cards = problem.cardinalities();
    let mut idx: Vec<usize> = cards
        .iter()
        .zip(fracs.iter().cycle())
        .map(|(k, f)| (((*k as f64 - 1.0) * f) as usize).min(k - 1))
        .collect();
    let mut state = WarmState::new();
    for step in moves.chunks(cards.len()) {
        for ((i, k), m) in idx.iter_mut().zip(&cards).zip(step.iter().cycle()) {
            let delta = *m as i64 - 1;
            *i = (*i as i64 + delta).clamp(0, *k as i64 - 1) as usize;
        }
        let warm = problem.simulate_warm(&idx, SimMode::Schematic, &mut state);
        let cold = problem.simulate(&idx, SimMode::Schematic);
        match (warm, cold) {
            (Ok(w), Ok(c)) => {
                if !specs_close(&w, &c) {
                    return Err(format!(
                        "specs diverge at {idx:?}: warm {w:?} vs cold {c:?}"
                    ));
                }
            }
            (Err(_), Err(_)) => {}
            (w, c) => {
                return Err(format!(
                    "outcome diverges at {idx:?}: warm {w:?} vs cold {c:?}"
                ))
            }
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn tia_warm_matches_cold(
        fracs in prop::collection::vec(0.0..1.0f64, 6),
        moves in prop::collection::vec(0usize..3, 24),
    ) {
        let r = check_walk(&Tia::default(), &fracs, &moves);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn opamp2_warm_matches_cold(
        fracs in prop::collection::vec(0.0..1.0f64, 7),
        moves in prop::collection::vec(0usize..3, 28),
    ) {
        let r = check_walk(&OpAmp2::default(), &fracs, &moves);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn neggm_warm_matches_cold(
        fracs in prop::collection::vec(0.0..1.0f64, 6),
        moves in prop::collection::vec(0usize..3, 24),
    ) {
        let r = check_walk(&NegGmOta::default(), &fracs, &moves);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn session_memo_replay_is_exact(
        fracs in prop::collection::vec(0.0..1.0f64, 6),
        moves in prop::collection::vec(0usize..3, 18),
    ) {
        // Evaluating the same walk twice through one session must return
        // bit-identical spec vectors: the memo serves the second pass.
        let tia = Tia::default();
        let mut session = EvalSession::borrowed(&tia, SimMode::Schematic);
        let cards = tia.cardinalities();
        let mut idx: Vec<usize> = cards
            .iter()
            .zip(&fracs)
            .map(|(k, f)| (((*k as f64 - 1.0) * f) as usize).min(k - 1))
            .collect();
        let mut visited = Vec::new();
        for step in moves.chunks(cards.len()) {
            for ((i, k), m) in idx.iter_mut().zip(&cards).zip(step) {
                let delta = *m as i64 - 1;
                *i = (*i as i64 + delta).clamp(0, *k as i64 - 1) as usize;
            }
            visited.push(idx.clone());
        }
        let first: Vec<_> = visited.iter().map(|v| session.evaluate(v).ok()).collect();
        let solves_after_first = session.solve_count();
        session.reset_warm();
        let second: Vec<_> = visited.iter().map(|v| session.evaluate(v).ok()).collect();
        prop_assert!(first == second, "memo replay diverged");
        prop_assert!(session.solve_count() == solves_after_first, "replay re-solved");
    }
}
