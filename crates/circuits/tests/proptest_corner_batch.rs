//! Property: the corner-batched `PexWorstCase` evaluation is equivalent
//! to the serial per-corner reference path for all three topologies.
//!
//! With warm-start off the two strategies must agree **bitwise** — the
//! batched DC Newton, batched AC sweep, and scalar kernels perform the
//! same arithmetic in the same order per corner, so there is no
//! tolerance to hide behind. With warm-start on, both paths seed Newton
//! from the same per-corner slots and the contract is agreement within
//! solver tolerance (like `simulate_warm` itself); the walks below keep
//! one warm state per strategy and compare step by step.

use autockt_circuits::prelude::*;
use autockt_sim::dc::WarmState;
use autockt_sim::pex::PexConfig;
use proptest::prelude::*;

/// Same tolerance as the warm-vs-cold equivalence suite.
const REL_TOL: f64 = 5e-3;

fn specs_close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= REL_TOL * (1.0 + x.abs().max(y.abs())))
}

fn idx_from_fracs(problem: &dyn SizingProblem, fracs: &[f64]) -> Vec<usize> {
    problem
        .cardinalities()
        .iter()
        .zip(fracs.iter().cycle())
        .map(|(k, f)| (((*k as f64 - 1.0) * f) as usize).min(k - 1))
        .collect()
}

/// Cold (warm-start off) bitwise equivalence at one grid point.
fn check_cold_bitwise(
    serial: &dyn SizingProblem,
    batched: &dyn SizingProblem,
    fracs: &[f64],
) -> Result<(), String> {
    let idx = idx_from_fracs(serial, fracs);
    let s = serial.simulate(&idx, SimMode::PexWorstCase);
    let b = batched.simulate(&idx, SimMode::PexWorstCase);
    match (s, b) {
        (Ok(s), Ok(b)) => {
            if s != b {
                return Err(format!("cold specs diverge at {idx:?}: {s:?} vs {b:?}"));
            }
        }
        (Err(_), Err(_)) => {}
        (s, b) => return Err(format!("outcome diverges at {idx:?}: {s:?} vs {b:?}")),
    }
    Ok(())
}

/// Warm one-notch walk: each strategy threads its own `WarmState`, and
/// every visited point's specs must agree within solver tolerance.
fn check_warm_walk(
    serial: &dyn SizingProblem,
    batched: &dyn SizingProblem,
    fracs: &[f64],
    moves: &[usize],
) -> Result<(), String> {
    let cards = serial.cardinalities();
    let mut idx = idx_from_fracs(serial, fracs);
    let mut ws = WarmState::new();
    let mut wb = WarmState::new();
    for step in moves.chunks(cards.len()) {
        for ((i, k), m) in idx.iter_mut().zip(&cards).zip(step.iter().cycle()) {
            let delta = *m as i64 - 1;
            *i = (*i as i64 + delta).clamp(0, *k as i64 - 1) as usize;
        }
        let s = serial.simulate_warm(&idx, SimMode::PexWorstCase, &mut ws);
        let b = batched.simulate_warm(&idx, SimMode::PexWorstCase, &mut wb);
        match (s, b) {
            (Ok(s), Ok(b)) => {
                if !specs_close(&s, &b) {
                    return Err(format!("warm specs diverge at {idx:?}: {s:?} vs {b:?}"));
                }
            }
            (Err(_), Err(_)) => {}
            (s, b) => return Err(format!("warm outcome diverges at {idx:?}: {s:?} vs {b:?}")),
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn tia_corner_batch_matches_serial_cold_bitwise(
        fracs in prop::collection::vec(0.0..1.0f64, 6),
    ) {
        let serial = Tia::default().with_corner_strategy(CornerStrategy::Serial);
        let batched = Tia::default().with_corner_strategy(CornerStrategy::Batched);
        let r = check_cold_bitwise(&serial, &batched, &fracs);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn opamp2_corner_batch_matches_serial_cold_bitwise(
        fracs in prop::collection::vec(0.0..1.0f64, 7),
    ) {
        let serial = OpAmp2::default().with_corner_strategy(CornerStrategy::Serial);
        let batched = OpAmp2::default().with_corner_strategy(CornerStrategy::Batched);
        let r = check_cold_bitwise(&serial, &batched, &fracs);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn neggm_corner_batch_matches_serial_cold_bitwise(
        fracs in prop::collection::vec(0.0..1.0f64, 6),
    ) {
        let serial = NegGmOta::default().with_corner_strategy(CornerStrategy::Serial);
        let batched = NegGmOta::default().with_corner_strategy(CornerStrategy::Batched);
        let r = check_cold_bitwise(&serial, &batched, &fracs);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn meshed_pex_corner_batch_matches_serial_cold_bitwise(
        fracs in prop::collection::vec(0.0..1.0f64, 6),
        depth in 1usize..4,
    ) {
        // The dense-PEX configuration (distributed RC meshes, the bench
        // dims where batching pays) must stay bitwise-equivalent too.
        let pex = PexConfig {
            mesh_depth: depth,
            ..PexConfig::default()
        };
        let serial = Tia::default()
            .with_pex_config(pex.clone())
            .with_corner_strategy(CornerStrategy::Serial);
        let batched = Tia::default()
            .with_pex_config(pex)
            .with_corner_strategy(CornerStrategy::Batched);
        let r = check_cold_bitwise(&serial, &batched, &fracs);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn tia_corner_batch_matches_serial_warm_walk(
        fracs in prop::collection::vec(0.0..1.0f64, 6),
        moves in prop::collection::vec(0usize..3, 12),
    ) {
        let serial = Tia::default().with_corner_strategy(CornerStrategy::Serial);
        let batched = Tia::default().with_corner_strategy(CornerStrategy::Batched);
        let r = check_warm_walk(&serial, &batched, &fracs, &moves);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn meshed_tia_corner_batch_matches_serial_warm_walk(
        fracs in prop::collection::vec(0.0..1.0f64, 6),
        depth in 2usize..5,
        moves in prop::collection::vec(0usize..3, 6),
    ) {
        // Dense-mesh warm walks route the sweep *and the noise analysis*
        // through the base-plus-Woodbury corrected paths
        // (`ac_sweep_corners` / `noise_analysis_corners`) — the TIA's
        // noise spec pins the corrected noise analysis to the serial
        // reference within the warm tolerance at the dims where the
        // correction actually engages.
        let pex = PexConfig {
            mesh_depth: depth,
            ..PexConfig::default()
        };
        let serial = Tia::default()
            .with_pex_config(pex.clone())
            .with_corner_strategy(CornerStrategy::Serial);
        let batched = Tia::default()
            .with_pex_config(pex)
            .with_corner_strategy(CornerStrategy::Batched);
        let r = check_warm_walk(&serial, &batched, &fracs, &moves);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn opamp2_corner_batch_matches_serial_warm_walk(
        fracs in prop::collection::vec(0.0..1.0f64, 7),
        moves in prop::collection::vec(0usize..3, 14),
    ) {
        let serial = OpAmp2::default().with_corner_strategy(CornerStrategy::Serial);
        let batched = OpAmp2::default().with_corner_strategy(CornerStrategy::Batched);
        let r = check_warm_walk(&serial, &batched, &fracs, &moves);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn neggm_corner_batch_matches_serial_warm_walk(
        fracs in prop::collection::vec(0.0..1.0f64, 6),
        moves in prop::collection::vec(0usize..3, 12),
    ) {
        let serial = NegGmOta::default().with_corner_strategy(CornerStrategy::Serial);
        let batched = NegGmOta::default().with_corner_strategy(CornerStrategy::Batched);
        let r = check_warm_walk(&serial, &batched, &fracs, &moves);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}
