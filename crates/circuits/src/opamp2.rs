//! The two-stage operational amplifier of Fig. 6: NMOS differential pair
//! with PMOS current-mirror load, PMOS common-source second stage with an
//! NMOS current sink, Miller compensation capacitor, biased by a current
//! mirror from a fixed reference.
//!
//! Parameter space (paper Sec. III-B): every transistor width is
//! `[1, 100, 1] * 0.5 um` and the compensation capacitor is
//! `[0.1, 10.0, 0.1] * 1 pF` — six widths (matched pairs share one
//! parameter) plus the capacitor give the paper's 1e14-point space.
//!
//! Specifications: DC gain, unity-gain bandwidth, phase margin (hard
//! constraints) and bias current (minimized, the power proxy).

use crate::problem::{
    CornerCase, CornerEvaluator, CornerPlan, CornerStrategy, ParamSpec, SimMode, SizingProblem,
    SpecDef, SpecKind,
};
use autockt_sim::ac::{ac_sweep_cfg, log_freqs, AcResponse, AcWorkspace};
use autockt_sim::dc::{dc_operating_point, DcOptions, OpPoint, WarmState};
use autockt_sim::device::{MosPolarity, Technology};
use autockt_sim::netlist::{Circuit, Mosfet, Node, GND};
use autockt_sim::pex::{extract, PexConfig};
use autockt_sim::{SimError, SolverConfig};

/// Index constants into the op-amp spec vector.
pub mod spec_index {
    /// DC gain (V/V).
    pub const GAIN: usize = 0;
    /// Unity-gain bandwidth (Hz).
    pub const UGBW: usize = 1;
    /// Phase margin (degrees).
    pub const PM: usize = 2;
    /// Total supply current (A), minimized.
    pub const IBIAS: usize = 3;
}

/// The two-stage op-amp sizing problem.
#[derive(Debug, Clone)]
pub struct OpAmp2 {
    tech: Technology,
    params: Vec<ParamSpec>,
    specs: Vec<SpecDef>,
    /// Supply voltage used by this testbench (V).
    pub vdd: f64,
    /// Input common-mode voltage (V).
    pub vcm: f64,
    /// Bias reference current (A).
    pub iref: f64,
    /// Output load capacitance (F).
    pub c_load: f64,
    pex: PexConfig,
    corner_strategy: CornerStrategy,
    solver: SolverConfig,
}

impl Default for OpAmp2 {
    fn default() -> Self {
        OpAmp2::new(Technology::ptm45())
    }
}

impl OpAmp2 {
    /// Creates the op-amp problem over a technology.
    pub fn new(tech: Technology) -> Self {
        let params = vec![
            ParamSpec::swept("w_in", 1.0, 100.0, 1.0, 0.5e-6), // M1/M2
            ParamSpec::swept("w_load", 1.0, 100.0, 1.0, 0.5e-6), // M3/M4
            ParamSpec::swept("w_tail", 1.0, 100.0, 1.0, 0.5e-6), // M5
            ParamSpec::swept("w_cs", 1.0, 100.0, 1.0, 0.5e-6), // M6
            ParamSpec::swept("w_sink", 1.0, 100.0, 1.0, 0.5e-6), // M7
            ParamSpec::swept("w_ref", 1.0, 100.0, 1.0, 0.5e-6), // M8
            ParamSpec::swept("cc", 0.1, 10.0, 0.1, 1e-12),
        ];
        let specs = vec![
            SpecDef {
                name: "gain",
                unit: "V/V",
                kind: SpecKind::HardMin,
                lo: 240.0,
                hi: 400.0,
                fail_value: 0.0,
            },
            SpecDef {
                name: "ugbw",
                unit: "Hz",
                kind: SpecKind::HardMin,
                lo: 1.5e7,
                hi: 5.0e7,
                fail_value: 0.0,
            },
            SpecDef {
                name: "phase_margin",
                unit: "deg",
                kind: SpecKind::HardMin,
                lo: 60.0,
                hi: 60.0,
                fail_value: 0.0,
            },
            SpecDef {
                name: "ibias",
                unit: "A",
                kind: SpecKind::Minimize,
                lo: 2.0e-5,
                hi: 2.5e-4,
                fail_value: 1.0,
            },
        ];
        OpAmp2 {
            tech,
            params,
            specs,
            vdd: 1.2,
            vcm: 0.7,
            iref: 20e-6,
            c_load: 1e-12,
            pex: PexConfig::default(),
            corner_strategy: CornerStrategy::default(),
            solver: SolverConfig::default(),
        }
    }

    /// Overrides the linear-solver backend config for every solve this
    /// problem runs; the default dispatches dense or sparse automatically
    /// by MNA dimension (see [`SolverConfig`]).
    pub fn with_solver_config(mut self, cfg: SolverConfig) -> Self {
        self.solver = cfg;
        self
    }

    /// The linear-solver backend config every evaluation dispatches on.
    pub fn solver_config(&self) -> SolverConfig {
        self.solver
    }

    /// Selects how `PexWorstCase` iterates the PVT corner set (see
    /// [`CornerStrategy`]; batched lockstep by default).
    pub fn with_corner_strategy(mut self, strategy: CornerStrategy) -> Self {
        self.corner_strategy = strategy;
        self
    }

    /// Replaces the parasitic-extraction configuration — e.g. to deepen
    /// the RC mesh (`PexConfig::mesh_depth`) for denser MNA systems.
    pub fn with_pex_config(mut self, pex: PexConfig) -> Self {
        self.pex = pex;
        self
    }

    /// The parasitic-extraction configuration used by `Pex` and
    /// `PexWorstCase` evaluations.
    pub fn pex_config(&self) -> &PexConfig {
        &self.pex
    }

    /// Builds the netlist at grid indices `idx`. Returns the circuit, the
    /// output node, and the index of the supply source (for bias-current
    /// measurement).
    pub fn build(&self, idx: &[usize], tech: &Technology) -> (Circuit, Node, usize) {
        assert_eq!(idx.len(), self.params.len(), "wrong parameter count");
        let w_in = self.params[0].values[idx[0]];
        let w_load = self.params[1].values[idx[1]];
        let w_tail = self.params[2].values[idx[2]];
        let w_cs = self.params[3].values[idx[3]];
        let w_sink = self.params[4].values[idx[4]];
        let w_ref = self.params[5].values[idx[5]];
        let cc = self.params[6].values[idx[6]];
        let l = 2.0 * tech.lmin;

        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vinp = ckt.node("vinp");
        let vinn = ckt.node("vinn");
        let bias = ckt.node("bias");
        let tail = ckt.node("tail");
        let x = ckt.node("mirror"); // diode side of the PMOS mirror
        let d1 = ckt.node("stage1");
        let out = ckt.node("out");

        ckt.vsource(vdd, GND, self.vdd, 0.0); // source index 0
        ckt.vsource(vinp, GND, self.vcm, 1.0); // single-ended AC drive
        ckt.vsource(vinn, GND, self.vcm, 0.0);
        // Bias: reference current into an NMOS diode, mirrored to the tail
        // (M5) and the second-stage sink (M7).
        ckt.isource(vdd, bias, self.iref, 0.0);
        let mos = |polarity, d, g, s, w| Mosfet {
            polarity,
            d,
            g,
            s,
            w,
            l,
            mult: 1.0,
            model: match polarity {
                MosPolarity::Nmos => tech.nmos,
                MosPolarity::Pmos => tech.pmos,
            },
        };
        ckt.mosfet(mos(MosPolarity::Nmos, bias, bias, GND, w_ref)); // M8
        ckt.mosfet(mos(MosPolarity::Nmos, tail, bias, GND, w_tail)); // M5
        ckt.mosfet(mos(MosPolarity::Nmos, x, vinn, tail, w_in)); // M1
        ckt.mosfet(mos(MosPolarity::Nmos, d1, vinp, tail, w_in)); // M2
        ckt.mosfet(mos(MosPolarity::Pmos, x, x, vdd, w_load)); // M3 (diode)
        ckt.mosfet(mos(MosPolarity::Pmos, d1, x, vdd, w_load)); // M4
        ckt.mosfet(mos(MosPolarity::Pmos, out, d1, vdd, w_cs)); // M6
        ckt.mosfet(mos(MosPolarity::Nmos, out, bias, GND, w_sink)); // M7
        ckt.capacitor(d1, out, cc);
        ckt.capacitor(out, GND, self.c_load);
        (ckt, out, 0)
    }

    /// The AC sweep grid shared by every fidelity's measurement (the
    /// corner engine and `measure_at` must sweep the same points).
    fn ac_freqs() -> Vec<f64> {
        log_freqs(1e2, 1e10, 10)
    }

    fn dc_opts(&self) -> DcOptions {
        DcOptions {
            initial_v: self.vdd / 2.0,
            solver: self.solver,
            ..DcOptions::default()
        }
    }

    fn measure(&self, ckt: &Circuit, out: Node, vdd_src: usize) -> Result<Vec<f64>, SimError> {
        let op = dc_operating_point(ckt, &self.dc_opts())?;
        self.measure_at(ckt, out, vdd_src, &op, None)
    }

    fn measure_warm(
        &self,
        ckt: &Circuit,
        out: Node,
        vdd_src: usize,
        slot: usize,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        let op = state.solve(slot, ckt, &self.dc_opts())?;
        self.measure_at(ckt, out, vdd_src, &op, Some(state.ac_workspace()))
    }

    /// Shared body of `simulate`/`simulate_warm`: `state` selects the
    /// warm (session-threaded) or cold measurement path.
    fn simulate_inner(
        &self,
        idx: &[usize],
        mode: SimMode,
        state: Option<&mut WarmState>,
    ) -> Result<Vec<f64>, SimError> {
        let measure = |ckt: &Circuit, out, vs, slot, state: Option<&mut WarmState>| match state {
            Some(st) => self.measure_warm(ckt, out, vs, slot, st),
            None => self.measure(ckt, out, vs),
        };
        match mode {
            SimMode::Schematic => {
                let (ckt, out, vs) = self.build(idx, &self.tech);
                measure(&ckt, out, vs, 0, state)
            }
            SimMode::Pex => {
                let (ckt, out, vs) = self.build(idx, &self.tech);
                let ex = extract(&ckt, &self.pex);
                measure(&ex, out, vs, 0, state)
            }
            SimMode::PexWorstCase => {
                let engine = CornerEvaluator::new(
                    CornerPlan::pvt_worst_case(),
                    self.dc_opts(),
                    OpAmp2::ac_freqs(),
                    self.corner_strategy,
                );
                engine.evaluate(
                    &self.specs,
                    |_slot, pvt| {
                        let tech = self.tech.at_corner(*pvt);
                        let (ckt, out, vs) = self.build(idx, &tech);
                        CornerCase {
                            ckt: extract(&ckt, &self.pex),
                            out,
                            temp_k: pvt.temp_kelvin(),
                            vdd_src: vs,
                        }
                    },
                    |_slot, case, op, _solver, resp, _ws, _noise, _settle| {
                        self.corner_specs(op, case.vdd_src, resp)
                    },
                    state,
                )
            }
        }
    }

    fn measure_at(
        &self,
        ckt: &Circuit,
        out: Node,
        vdd_src: usize,
        op: &OpPoint,
        ac_ws: Option<&mut AcWorkspace>,
    ) -> Result<Vec<f64>, SimError> {
        let freqs = OpAmp2::ac_freqs();
        let resp = match ac_ws {
            Some(ws) => ac_sweep_cfg(ckt, op, &freqs, out, self.solver, ws)?,
            None => ac_sweep_cfg(
                ckt,
                op,
                &freqs,
                out,
                self.solver,
                &mut AcWorkspace::default(),
            )?,
        };
        self.corner_specs(op, vdd_src, &resp)
    }

    /// Spec extraction shared by the single-corner measurement and the
    /// corner engine.
    fn corner_specs(
        &self,
        op: &OpPoint,
        vdd_src: usize,
        resp: &AcResponse,
    ) -> Result<Vec<f64>, SimError> {
        let ibias = op.vsource_current(vdd_src).abs();
        let gain = resp.dc_gain();
        let ugbw = resp
            .ugbw()
            .unwrap_or(self.specs[spec_index::UGBW].fail_value);
        let pm = resp
            .phase_margin_deg()
            .unwrap_or(self.specs[spec_index::PM].fail_value);
        Ok(vec![gain, ugbw, pm, ibias])
    }
}

impl SizingProblem for OpAmp2 {
    fn name(&self) -> &'static str {
        "opamp2"
    }

    fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    fn specs(&self) -> &[SpecDef] {
        &self.specs
    }

    fn simulate(&self, idx: &[usize], mode: SimMode) -> Result<Vec<f64>, SimError> {
        self.simulate_inner(idx, mode, None)
    }

    fn simulate_warm(
        &self,
        idx: &[usize],
        mode: SimMode,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        self.simulate_inner(idx, mode, Some(state))
    }

    fn solver_config(&self) -> SolverConfig {
        self.solver
    }

    fn simulate_cfg(
        &self,
        idx: &[usize],
        mode: SimMode,
        cfg: SolverConfig,
    ) -> Result<Vec<f64>, SimError> {
        self.clone().with_solver_config(cfg).simulate(idx, mode)
    }

    fn simulate_warm_cfg(
        &self,
        idx: &[usize],
        mode: SimMode,
        cfg: SolverConfig,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        self.clone()
            .with_solver_config(cfg)
            .simulate_warm(idx, mode, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(problem: &OpAmp2) -> Vec<usize> {
        problem.cardinalities().iter().map(|k| k / 2).collect()
    }

    #[test]
    fn space_size_is_paper_scale() {
        let p = OpAmp2::default();
        // 100^7 = 1e14.
        assert!((p.log10_space_size() - 14.0).abs() < 0.01);
    }

    #[test]
    fn center_design_is_an_amplifier() {
        let p = OpAmp2::default();
        let s = p.simulate(&mid(&p), SimMode::Schematic).unwrap();
        assert!(s[spec_index::GAIN] > 10.0, "gain {}", s[spec_index::GAIN]);
        assert!(s[spec_index::UGBW] > 1e5, "ugbw {}", s[spec_index::UGBW]);
        assert!(
            s[spec_index::PM] > 0.0 && s[spec_index::PM] <= 180.0,
            "pm {}",
            s[spec_index::PM]
        );
        assert!(
            s[spec_index::IBIAS] > 1e-6 && s[spec_index::IBIAS] < 0.1,
            "ibias {}",
            s[spec_index::IBIAS]
        );
    }

    #[test]
    fn bigger_tail_mirror_means_more_current() {
        let p = OpAmp2::default();
        let mut small = mid(&p);
        let mut large = small.clone();
        small[2] = 5; // w_tail small
        large[2] = 90; // w_tail large
        let s = p.simulate(&small, SimMode::Schematic).unwrap();
        let l = p.simulate(&large, SimMode::Schematic).unwrap();
        assert!(l[spec_index::IBIAS] > s[spec_index::IBIAS]);
    }

    #[test]
    fn more_compensation_lowers_ugbw_raises_pm() {
        let p = OpAmp2::default();
        let mut lo_cc = mid(&p);
        let mut hi_cc = lo_cc.clone();
        lo_cc[6] = 9; // 1.0 pF
        hi_cc[6] = 79; // 8.0 pF
        let a = p.simulate(&lo_cc, SimMode::Schematic).unwrap();
        let b = p.simulate(&hi_cc, SimMode::Schematic).unwrap();
        assert!(b[spec_index::UGBW] < a[spec_index::UGBW]);
        assert!(b[spec_index::PM] >= a[spec_index::PM] - 1.0);
    }

    #[test]
    fn deterministic() {
        let p = OpAmp2::default();
        let idx = vec![10, 20, 30, 40, 50, 60, 70];
        assert_eq!(
            p.simulate(&idx, SimMode::Schematic).unwrap(),
            p.simulate(&idx, SimMode::Schematic).unwrap()
        );
    }
}
