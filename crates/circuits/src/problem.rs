//! The sizing-problem abstraction: what AutoCkt needs to know about a
//! circuit in order to size it.
//!
//! A [`SizingProblem`] is the boundary between the learning framework and
//! the simulation environment in Fig. 1 of the paper: a discretized
//! parameter grid, a list of design specifications with their target
//! sampling ranges, and a black-box `parameters -> measured specs`
//! evaluation (schematic or post-layout).

use autockt_sim::SimError;

/// One tunable circuit parameter with its discrete grid of physical values
/// (the paper's `[start, end, increment]` notation expanded).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name (e.g. `"w_in"`, `"cc"`).
    pub name: &'static str,
    /// The grid of physical values (SI units), strictly increasing.
    pub values: Vec<f64>,
}

impl ParamSpec {
    /// Builds a grid from `[start, end, increment]` inclusive, times a
    /// `scale` factor (matching the array notation used in the paper).
    ///
    /// # Panics
    ///
    /// Panics unless `start <= end` and `increment > 0`.
    pub fn swept(name: &'static str, start: f64, end: f64, increment: f64, scale: f64) -> Self {
        assert!(start <= end && increment > 0.0, "bad sweep for {name}");
        let mut values = Vec::new();
        let mut v = start;
        while v <= end + 1e-9 * increment {
            values.push(v * scale);
            v += increment;
        }
        ParamSpec { name, values }
    }

    /// Number of grid points `K`.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }
}

/// How a design specification enters the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// Hard constraint: measured value must be >= target (gain, bandwidth,
    /// phase margin).
    HardMin,
    /// Hard constraint: measured value must be <= target (settling time,
    /// noise).
    HardMax,
    /// Soft objective minimized subject to the hard constraints (the
    /// paper's `o_th`; bias current / power).
    Minimize,
}

/// One design specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecDef {
    /// Specification name (e.g. `"gain"`).
    pub name: &'static str,
    /// Unit for display (e.g. `"V/V"`, `"Hz"`).
    pub unit: &'static str,
    /// Constraint direction.
    pub kind: SpecKind,
    /// Lower bound of the target sampling range.
    pub lo: f64,
    /// Upper bound of the target sampling range.
    pub hi: f64,
    /// Value reported when the measurement fails outright (e.g. no
    /// unity-gain crossing): maximally pessimistic for the constraint
    /// direction.
    pub fail_value: f64,
}

/// Simulation fidelity requested from [`SizingProblem::simulate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Schematic-level simulation at the nominal PVT corner.
    #[default]
    Schematic,
    /// Post-layout-extracted simulation at the nominal corner.
    Pex,
    /// Post-layout-extracted simulation, worst case across the PVT corner
    /// set (the configuration used for Table IV).
    PexWorstCase,
}

/// A parameterised circuit topology that AutoCkt can size.
///
/// Implementations must be pure: the same parameter indices and mode always
/// produce the same spec vector. All stochastic aspects of the framework
/// (target sampling, policy sampling) live elsewhere.
pub trait SizingProblem: Send + Sync {
    /// Human-readable topology name.
    fn name(&self) -> &'static str;

    /// The discrete parameter grids.
    fn params(&self) -> &[ParamSpec];

    /// The design specifications, in the order `simulate` reports them.
    fn specs(&self) -> &[SpecDef];

    /// Evaluates the circuit at grid indices `idx` (one per parameter).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the operating point cannot be solved at
    /// all; per-measurement failures are reported through each spec's
    /// `fail_value` instead so a partially-working design still produces an
    /// informative observation.
    fn simulate(&self, idx: &[usize], mode: SimMode) -> Result<Vec<f64>, SimError>;

    /// Grid cardinalities `K_i`, convenience over [`SizingProblem::params`].
    fn cardinalities(&self) -> Vec<usize> {
        self.params().iter().map(ParamSpec::cardinality).collect()
    }

    /// Physical value of parameter `p` at grid index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `i` is out of range.
    fn value(&self, p: usize, i: usize) -> f64 {
        self.params()[p].values[i]
    }

    /// log10 of the total design-space size (the paper quotes 1e14 for the
    /// two-stage op-amp and 1e11 for the negative-gm OTA).
    fn log10_space_size(&self) -> f64 {
        self.params()
            .iter()
            .map(|p| (p.cardinality() as f64).log10())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swept_grid_matches_paper_notation() {
        // Width [2, 10, 2] * 1 um => 2, 4, 6, 8, 10 um.
        let p = ParamSpec::swept("w", 2.0, 10.0, 2.0, 1e-6);
        assert_eq!(p.cardinality(), 5);
        assert!((p.values[0] - 2e-6).abs() < 1e-18);
        assert!((p.values[4] - 10e-6).abs() < 1e-18);
    }

    #[test]
    fn swept_handles_fractional_increments() {
        // Cc [0.1, 10.0, 0.1] * 1 pF: 100 points.
        let p = ParamSpec::swept("cc", 0.1, 10.0, 0.1, 1e-12);
        assert_eq!(p.cardinality(), 100);
    }

    #[test]
    #[should_panic(expected = "bad sweep")]
    fn swept_rejects_zero_increment() {
        let _ = ParamSpec::swept("x", 1.0, 2.0, 0.0, 1.0);
    }
}
