//! The sizing-problem abstraction: what AutoCkt needs to know about a
//! circuit in order to size it.
//!
//! A [`SizingProblem`] is the boundary between the learning framework and
//! the simulation environment in Fig. 1 of the paper: a discretized
//! parameter grid, a list of design specifications with their target
//! sampling ranges, and a black-box `parameters -> measured specs`
//! evaluation (schematic or post-layout).

use autockt_sim::dc::WarmState;
use autockt_sim::SimError;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One tunable circuit parameter with its discrete grid of physical values
/// (the paper's `[start, end, increment]` notation expanded).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name (e.g. `"w_in"`, `"cc"`).
    pub name: &'static str,
    /// The grid of physical values (SI units), strictly increasing.
    pub values: Vec<f64>,
}

impl ParamSpec {
    /// Builds a grid from `[start, end, increment]` inclusive, times a
    /// `scale` factor (matching the array notation used in the paper).
    ///
    /// # Panics
    ///
    /// Panics unless `start <= end` and `increment > 0`.
    pub fn swept(name: &'static str, start: f64, end: f64, increment: f64, scale: f64) -> Self {
        assert!(start <= end && increment > 0.0, "bad sweep for {name}");
        // Generate by integer index: repeated `v += increment` accumulates
        // rounding error, so long sweeps could gain or lose a grid point
        // relative to the paper's `[start, end, increment]` notation.
        let steps = ((end - start) / increment + 1e-6).floor() as usize;
        let values = (0..=steps)
            .map(|i| (start + i as f64 * increment) * scale)
            .collect();
        ParamSpec { name, values }
    }

    /// Number of grid points `K`.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }
}

/// How a design specification enters the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// Hard constraint: measured value must be >= target (gain, bandwidth,
    /// phase margin).
    HardMin,
    /// Hard constraint: measured value must be <= target (settling time,
    /// noise).
    HardMax,
    /// Soft objective minimized subject to the hard constraints (the
    /// paper's `o_th`; bias current / power).
    Minimize,
}

/// One design specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecDef {
    /// Specification name (e.g. `"gain"`).
    pub name: &'static str,
    /// Unit for display (e.g. `"V/V"`, `"Hz"`).
    pub unit: &'static str,
    /// Constraint direction.
    pub kind: SpecKind,
    /// Lower bound of the target sampling range.
    pub lo: f64,
    /// Upper bound of the target sampling range.
    pub hi: f64,
    /// Value reported when the measurement fails outright (e.g. no
    /// unity-gain crossing): maximally pessimistic for the constraint
    /// direction.
    pub fail_value: f64,
}

/// Simulation fidelity requested from [`SizingProblem::simulate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Schematic-level simulation at the nominal PVT corner.
    #[default]
    Schematic,
    /// Post-layout-extracted simulation at the nominal corner.
    Pex,
    /// Post-layout-extracted simulation, worst case across the PVT corner
    /// set (the configuration used for Table IV).
    PexWorstCase,
}

/// A parameterised circuit topology that AutoCkt can size.
///
/// Implementations must be pure: the same parameter indices and mode always
/// produce the same spec vector. All stochastic aspects of the framework
/// (target sampling, policy sampling) live elsewhere.
pub trait SizingProblem: Send + Sync {
    /// Human-readable topology name.
    fn name(&self) -> &'static str;

    /// The discrete parameter grids.
    fn params(&self) -> &[ParamSpec];

    /// The design specifications, in the order `simulate` reports them.
    fn specs(&self) -> &[SpecDef];

    /// Evaluates the circuit at grid indices `idx` (one per parameter).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the operating point cannot be solved at
    /// all; per-measurement failures are reported through each spec's
    /// `fail_value` instead so a partially-working design still produces an
    /// informative observation.
    fn simulate(&self, idx: &[usize], mode: SimMode) -> Result<Vec<f64>, SimError>;

    /// Like [`SizingProblem::simulate`], threading warm-start state through
    /// the DC solve(s): the previous operating point seeds the Newton
    /// iteration, with the usual cold start + gmin homotopy as fallback.
    ///
    /// The default implementation ignores `state` and evaluates cold.
    /// Overrides must converge to the same measured specs as `simulate`
    /// up to solver tolerance (the warm path changes the iteration
    /// trajectory, not the fixed point), and must key `state` slots per
    /// circuit variant (e.g. one per PVT corner).
    ///
    /// # Errors
    ///
    /// Same contract as [`SizingProblem::simulate`].
    fn simulate_warm(
        &self,
        idx: &[usize],
        mode: SimMode,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        let _ = state;
        self.simulate(idx, mode)
    }

    /// Grid cardinalities `K_i`, convenience over [`SizingProblem::params`].
    fn cardinalities(&self) -> Vec<usize> {
        self.params().iter().map(ParamSpec::cardinality).collect()
    }

    /// Physical value of parameter `p` at grid index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `i` is out of range.
    fn value(&self, p: usize, i: usize) -> f64 {
        self.params()[p].values[i]
    }

    /// log10 of the total design-space size (the paper quotes 1e14 for the
    /// two-stage op-amp and 1e11 for the negative-gm OTA).
    fn log10_space_size(&self) -> f64 {
        self.params()
            .iter()
            .map(|p| (p.cardinality() as f64).log10())
            .sum()
    }
}

/// One memoized evaluation: the measured specs plus the warm-start slots
/// as of the solve, restored on cache hits so that a later cache miss
/// still warm-starts from the operating point of the *adjacent* grid
/// point just revisited (never from one arbitrarily many notches back).
#[derive(Clone)]
struct MemoEntry {
    specs: Result<Vec<f64>, SimError>,
    warm: Vec<Option<Vec<f64>>>,
}

/// One entry of a [`SharedMemo`]: like the per-session `MemoEntry`, plus
/// the id of the worker that inserted it (for cross-worker hit accounting).
#[derive(Clone)]
struct SharedEntry {
    specs: Result<Vec<f64>, SimError>,
    warm: Vec<Option<Vec<f64>>>,
    owner: u64,
}

/// One mutex-guarded shard of a [`SharedMemo`]: the key -> entry map plus
/// an insertion-order queue driving FIFO eviction at capacity.
#[derive(Default)]
struct MemoShard {
    map: HashMap<Vec<usize>, SharedEntry>,
    order: VecDeque<Vec<usize>>,
}

/// A concurrent evaluation memo shared by every rollout worker of a
/// training run: `N` mutex-guarded shards keyed by the discrete parameter
/// index vector, so the 8 training environments pool their grid revisits
/// instead of each re-solving points a sibling already evaluated (episodes
/// all restart from the grid center, so cross-worker overlap is heavy).
///
/// Sharding keeps contention negligible — a key's shard is chosen by hash,
/// and a lock is held only for the microseconds of a map probe or insert,
/// never across a solve. Each shard is capacity-bounded like the per-env
/// memo; at capacity the *oldest* entry in the shard is evicted FIFO (the
/// shared map outlives episodes and workers, so unlike the per-session
/// cache it cannot simply stop inserting without eventually pinning a
/// stale working set).
///
/// Warm-start state stays private per worker: the memo stores warm
/// *snapshots* (restored on hits so a later miss still warm-starts from an
/// adjacent grid point), but each session keeps its own [`WarmState`].
/// With warm-starting disabled, pooled results are bitwise-identical to
/// per-env memo runs (solves are pure); with it enabled, a hit may serve
/// specs solved from another worker's warm trajectory, which agree within
/// solver tolerance (the same contract as `simulate_warm` itself).
///
/// # Examples
///
/// ```
/// use autockt_circuits::prelude::*;
/// use autockt_circuits::problem::{EvalSession, SharedMemo};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), autockt_sim::SimError> {
/// let tia = Tia::default();
/// let memo = Arc::new(SharedMemo::new(8, 1 << 16));
/// let mut a = EvalSession::borrowed(&tia, SimMode::Schematic)
///     .with_shared_memo(Arc::clone(&memo));
/// let mut b = EvalSession::borrowed(&tia, SimMode::Schematic)
///     .with_shared_memo(Arc::clone(&memo));
/// let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
/// let first = a.evaluate(&idx)?; // solved by session a
/// let pooled = b.evaluate(&idx)?; // served from the shared memo
/// assert_eq!(first, pooled);
/// assert_eq!(b.solve_count(), 0);
/// assert_eq!(b.cross_memo_hits(), 1);
/// # Ok(())
/// # }
/// ```
pub struct SharedMemo {
    shards: Vec<Mutex<MemoShard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    cross_hits: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    next_worker: AtomicU64,
}

impl std::fmt::Debug for SharedMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemo")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("cross_hits", &self.cross_hits())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl SharedMemo {
    /// Default shard count: comfortably above the 8 training workers, so
    /// two workers probing simultaneously almost never contend.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates a memo with `shards` shards (rounded up to a power of two,
    /// minimum 1) bounding `capacity` total entries across all shards.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        SharedMemo {
            shards: (0..shards)
                .map(|_| Mutex::new(MemoShard::default()))
                .collect(),
            per_shard_capacity: capacity.div_ceil(shards).max(1),
            hits: AtomicU64::new(0),
            cross_hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            next_worker: AtomicU64::new(0),
        }
    }

    /// A memo sized like the per-session default
    /// ([`EvalSession::DEFAULT_MEMO_CAPACITY`]) over
    /// [`SharedMemo::DEFAULT_SHARDS`] shards.
    pub fn with_default_capacity() -> Self {
        SharedMemo::new(
            SharedMemo::DEFAULT_SHARDS,
            EvalSession::DEFAULT_MEMO_CAPACITY,
        )
    }

    /// Registers a new worker, returning its id (used to distinguish
    /// cross-worker hits from a worker re-reading its own insertions).
    pub fn register_worker(&self) -> u64 {
        self.next_worker.fetch_add(1, Ordering::Relaxed)
    }

    fn shard(&self, idx: &[usize]) -> &Mutex<MemoShard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        idx.hash(&mut h);
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    /// Looks up `idx`, cloning the entry out (the lock is never held
    /// across a solve). Returns the specs, the warm snapshot taken at the
    /// original solve, and whether the entry was inserted by a *different*
    /// worker than `worker`.
    #[allow(clippy::type_complexity)]
    fn get(
        &self,
        idx: &[usize],
        worker: u64,
    ) -> Option<(Result<Vec<f64>, SimError>, Vec<Option<Vec<f64>>>, bool)> {
        let shard = self.shard(idx).lock().expect("memo shard poisoned");
        let e = shard.map.get(idx)?;
        let cross = e.owner != worker;
        self.hits.fetch_add(1, Ordering::Relaxed);
        if cross {
            self.cross_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some((e.specs.clone(), e.warm.clone(), cross))
    }

    /// Whether `idx` is currently memoized.
    pub fn contains(&self, idx: &[usize]) -> bool {
        self.shard(idx)
            .lock()
            .expect("memo shard poisoned")
            .map
            .contains_key(idx)
    }

    fn insert(
        &self,
        idx: &[usize],
        specs: Result<Vec<f64>, SimError>,
        warm: Vec<Option<Vec<f64>>>,
        worker: u64,
    ) {
        let mut shard = self.shard(idx).lock().expect("memo shard poisoned");
        if shard.map.contains_key(idx) {
            // A sibling solved the same point concurrently; keep the
            // first insertion so every later hit serves one consistent
            // value.
            return;
        }
        if shard.map.len() >= self.per_shard_capacity {
            if let Some(oldest) = shard.order.pop_front() {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.order.push_back(idx.to_vec());
        shard.map.insert(
            idx.to_vec(),
            SharedEntry {
                specs,
                warm,
                owner: worker,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Distinct grid points currently memoized across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").map.len())
            .sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookup hits across all workers.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Hits served to a worker other than the one that solved the entry —
    /// the pooling win that a per-env memo cannot provide.
    pub fn cross_hits(&self) -> u64 {
        self.cross_hits.load(Ordering::Relaxed)
    }

    /// Total insertions (solves that were cached).
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Entries evicted FIFO at shard capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of shards (always a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total entry capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Drops every entry, keeping counters (useful between benchmark
    /// configurations sharing one memo allocation).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock().expect("memo shard poisoned");
            s.map.clear();
            s.order.clear();
        }
    }
}

/// How an [`EvalSession`] holds its problem.
#[derive(Clone)]
enum ProblemRef<'p> {
    Borrowed(&'p dyn SizingProblem),
    Shared(Arc<dyn SizingProblem>),
}

impl<'p> ProblemRef<'p> {
    fn get(&self) -> &dyn SizingProblem {
        match self {
            ProblemRef::Borrowed(p) => *p,
            ProblemRef::Shared(p) => p.as_ref(),
        }
    }
}

/// A stateful evaluation pipeline bound to one problem and fidelity: a
/// memo cache of exact parameter-grid revisits consulted before any solve
/// (simulation is deterministic, so revisits are free), plus warm-start
/// state threaded through consecutive DC solves.
///
/// One session per environment/optimizer instance: the RL envs, the GA
/// baselines, and the random agent all evaluate through this type, so
/// they share the same warm+memo pipeline. Warm-started solves converge
/// to the same specs as cold ones up to solver tolerance; memoization
/// makes revisits *exactly* reproducible within a session.
///
/// # Examples
///
/// ```
/// use autockt_circuits::prelude::*;
/// use autockt_circuits::problem::EvalSession;
///
/// # fn main() -> Result<(), autockt_sim::SimError> {
/// let tia = Tia::default();
/// let mut session = EvalSession::borrowed(&tia, SimMode::Schematic);
/// let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
/// let first = session.evaluate(&idx)?;
/// let replay = session.evaluate(&idx)?; // memo hit: identical, no solve
/// assert_eq!(first, replay);
/// assert_eq!(session.solve_count(), 1);
/// assert_eq!(session.memo_hits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct EvalSession<'p> {
    problem: ProblemRef<'p>,
    mode: SimMode,
    warm_start: bool,
    memoize: bool,
    memo_capacity: usize,
    warm: WarmState,
    memo: HashMap<Vec<usize>, MemoEntry>,
    shared: Option<Arc<SharedMemo>>,
    worker_id: u64,
    solves: u64,
    memo_hits: u64,
    cross_hits: u64,
}

impl std::fmt::Debug for EvalSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSession")
            .field("problem", &self.problem.get().name())
            .field("mode", &self.mode)
            .field("warm_start", &self.warm_start)
            .field("memoize", &self.memoize)
            .field("shared", &self.shared.is_some())
            .field("memo_len", &self.memo.len())
            .field("solves", &self.solves)
            .field("memo_hits", &self.memo_hits)
            .field("cross_hits", &self.cross_hits)
            .finish()
    }
}

impl<'p> EvalSession<'p> {
    fn with(problem: ProblemRef<'p>, mode: SimMode) -> Self {
        EvalSession {
            problem,
            mode,
            warm_start: true,
            memoize: true,
            memo_capacity: EvalSession::DEFAULT_MEMO_CAPACITY,
            warm: WarmState::new(),
            memo: HashMap::new(),
            shared: None,
            worker_id: 0,
            solves: 0,
            memo_hits: 0,
            cross_hits: 0,
        }
    }

    /// Creates a session borrowing the problem (optimizer-style callers).
    pub fn borrowed(problem: &'p dyn SizingProblem, mode: SimMode) -> Self {
        EvalSession::with(ProblemRef::Borrowed(problem), mode)
    }

    /// Creates a session sharing ownership of the problem (environments
    /// that must be `'static` and `Clone`).
    pub fn shared(problem: Arc<dyn SizingProblem>, mode: SimMode) -> EvalSession<'static> {
        EvalSession::with(ProblemRef::Shared(problem), mode)
    }

    /// Disables or enables warm-starting (on by default); the cold path is
    /// exactly [`SizingProblem::simulate`].
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Disables or enables the memo cache (on by default).
    pub fn with_memo(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Attaches a [`SharedMemo`] pooled across sessions: lookups and
    /// insertions go to the concurrent sharded map instead of this
    /// session's private cache, so grid points solved by *any* attached
    /// worker serve every other worker's revisits. Implies memoization;
    /// warm-start state remains private to this session (hits restore the
    /// entry's warm snapshot exactly as the private memo does). The
    /// session registers itself as a distinct worker for
    /// [`EvalSession::cross_memo_hits`] accounting.
    pub fn with_shared_memo(mut self, memo: Arc<SharedMemo>) -> Self {
        self.worker_id = memo.register_worker();
        self.shared = Some(memo);
        self.memoize = true;
        self
    }

    /// Default bound on memoized grid points (see
    /// [`EvalSession::with_memo_capacity`]): ~50 MB per session at the
    /// largest topology's entry size, far above any revisit-relevant
    /// working set.
    pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 18;

    /// Bounds the memo cache to `cap` distinct grid points. At capacity,
    /// evaluations still run (and existing entries keep serving hits) but
    /// new results are no longer cached, so explore-heavy workloads —
    /// where exact revisits are rare and nearly every step would insert a
    /// never-reused entry — cannot grow memory linearly with training
    /// length. Episodes restart from the grid center, so the earliest
    /// entries are also the likeliest to be revisited.
    pub fn with_memo_capacity(mut self, cap: usize) -> Self {
        self.memo_capacity = cap;
        self
    }

    /// The problem being evaluated.
    pub fn problem(&self) -> &dyn SizingProblem {
        self.problem.get()
    }

    /// The simulation fidelity of every evaluation in this session.
    pub fn mode(&self) -> SimMode {
        self.mode
    }

    /// Evaluates grid indices `idx`, serving exact revisits from the memo
    /// cache and warm-starting the solver otherwise.
    ///
    /// # Errors
    ///
    /// Same contract as [`SizingProblem::simulate`]; errors are memoized
    /// too (an unsolvable grid point stays unsolvable).
    pub fn evaluate(&mut self, idx: &[usize]) -> Result<Vec<f64>, SimError> {
        if self.memoize {
            if let Some(shared) = &self.shared {
                if let Some((specs, warm, cross)) = shared.get(idx, self.worker_id) {
                    self.memo_hits += 1;
                    if cross {
                        self.cross_hits += 1;
                    }
                    if self.warm_start {
                        self.warm.restore(&warm);
                    }
                    return specs;
                }
            } else if let Some(hit) = self.memo.get(idx) {
                self.memo_hits += 1;
                if self.warm_start {
                    // Re-arm the warm state as of this grid point's solve:
                    // the next cache miss is one notch from *here*, not
                    // from wherever the last fresh solve happened.
                    self.warm.restore(&hit.warm);
                }
                return hit.specs.clone();
            }
        }
        self.solves += 1;
        let res = if self.warm_start {
            self.problem
                .get()
                .simulate_warm(idx, self.mode, &mut self.warm)
        } else {
            self.problem.get().simulate(idx, self.mode)
        };
        if self.memoize {
            let warm = if self.warm_start {
                self.warm.snapshot()
            } else {
                Vec::new()
            };
            if let Some(shared) = &self.shared {
                shared.insert(idx, res.clone(), warm, self.worker_id);
            } else if self.memo.len() < self.memo_capacity {
                self.memo.insert(
                    idx.to_vec(),
                    MemoEntry {
                        specs: res.clone(),
                        warm,
                    },
                );
            }
        }
        res
    }

    /// Whether `idx` is already memoized (no solve would be spent on it).
    pub fn is_memoized(&self, idx: &[usize]) -> bool {
        self.memoize
            && match &self.shared {
                Some(shared) => shared.contains(idx),
                None => self.memo.contains_key(idx),
            }
    }

    /// Clears warm-start state (episode reset), keeping the memo cache —
    /// the grid is the same circuit family across episodes.
    pub fn reset_warm(&mut self) {
        self.warm.reset();
    }

    /// Clears warm state *and* this session's private memo cache and
    /// counters. An attached [`SharedMemo`] is left untouched — it belongs
    /// to every worker, not this session; clear it via
    /// [`SharedMemo::clear`] if that is really intended.
    pub fn clear(&mut self) {
        self.warm.reset();
        self.memo.clear();
        self.solves = 0;
        self.memo_hits = 0;
        self.cross_hits = 0;
    }

    /// Evaluations that actually ran the simulator.
    pub fn solve_count(&self) -> u64 {
        self.solves
    }

    /// Evaluations served from the memo cache (private or shared).
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Shared-memo hits served from an entry solved by a *different*
    /// worker — always 0 without [`EvalSession::with_shared_memo`].
    pub fn cross_memo_hits(&self) -> u64 {
        self.cross_hits
    }

    /// The attached shared memo, if any.
    pub fn shared_memo(&self) -> Option<&Arc<SharedMemo>> {
        self.shared.as_ref()
    }

    /// Distinct grid points memoized so far (across all workers when a
    /// shared memo is attached).
    pub fn memo_len(&self) -> usize {
        match &self.shared {
            Some(shared) => shared.len(),
            None => self.memo.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swept_grid_matches_paper_notation() {
        // Width [2, 10, 2] * 1 um => 2, 4, 6, 8, 10 um.
        let p = ParamSpec::swept("w", 2.0, 10.0, 2.0, 1e-6);
        assert_eq!(p.cardinality(), 5);
        assert!((p.values[0] - 2e-6).abs() < 1e-18);
        assert!((p.values[4] - 10e-6).abs() < 1e-18);
    }

    #[test]
    fn swept_handles_fractional_increments() {
        // Cc [0.1, 10.0, 0.1] * 1 pF: 100 points.
        let p = ParamSpec::swept("cc", 0.1, 10.0, 0.1, 1e-12);
        assert_eq!(p.cardinality(), 100);
    }

    #[test]
    #[should_panic(expected = "bad sweep")]
    fn swept_rejects_zero_increment() {
        let _ = ParamSpec::swept("x", 1.0, 2.0, 0.0, 1.0);
    }

    #[test]
    fn swept_long_sweep_keeps_endpoint_despite_float_error() {
        // increment tiny relative to the values: accumulation `v += inc`
        // drifts past the old `end + 1e-9 * inc` guard and drops the final
        // grid point; index-based generation keeps it.
        let p = ParamSpec::swept("x", 1000.0, 1000.1, 0.001, 1.0);
        assert_eq!(p.cardinality(), 101);
        assert!((p.values[100] - 1000.1).abs() < 1e-9);
    }

    #[test]
    fn swept_values_are_exact_multiples_of_the_increment() {
        let p = ParamSpec::swept("cc", 0.1, 10.0, 0.1, 1e-12);
        assert_eq!(p.cardinality(), 100);
        for (i, v) in p.values.iter().enumerate() {
            let expect = (0.1 + i as f64 * 0.1) * 1e-12;
            assert!((v - expect).abs() < 1e-24, "index {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn session_memo_serves_exact_revisits() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic);
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let a = s.evaluate(&idx).unwrap();
        let b = s.evaluate(&idx).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.solve_count(), 1);
        assert_eq!(s.memo_hits(), 1);
        assert_eq!(s.memo_len(), 1);
        assert!(s.is_memoized(&idx));
    }

    #[test]
    fn session_reset_warm_keeps_memo() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic);
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        s.evaluate(&idx).unwrap();
        s.reset_warm();
        assert!(s.is_memoized(&idx));
        s.evaluate(&idx).unwrap();
        assert_eq!(s.solve_count(), 1, "revisit after reset must be a hit");
        s.clear();
        assert!(!s.is_memoized(&idx));
    }

    #[test]
    fn session_memo_capacity_bounds_insertions() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic).with_memo_capacity(2);
        let cards = tia.cardinalities();
        let point = |i: usize| -> Vec<usize> { cards.iter().map(|k| i % k).collect() };
        for i in 0..4 {
            let _ = s.evaluate(&point(i));
        }
        assert_eq!(s.memo_len(), 2, "insertions stop at capacity");
        // Entries admitted below capacity still serve hits.
        let solves = s.solve_count();
        let _ = s.evaluate(&point(0));
        assert_eq!(s.solve_count(), solves);
        assert!(s.memo_hits() >= 1);
    }

    #[test]
    fn shared_memo_shard_capacity_evicts_fifo() {
        let memo = SharedMemo::new(1, 2); // single shard bounding 2 entries
        memo.insert(&[0], Ok(vec![0.0]), Vec::new(), 0);
        memo.insert(&[1], Ok(vec![1.0]), Vec::new(), 0);
        assert_eq!(memo.len(), 2);
        memo.insert(&[2], Ok(vec![2.0]), Vec::new(), 0);
        assert_eq!(memo.len(), 2, "capacity bound holds");
        assert_eq!(memo.evictions(), 1);
        assert!(!memo.contains(&[0]), "oldest entry evicted first");
        assert!(memo.contains(&[1]) && memo.contains(&[2]));
        // Duplicate insertion keeps the first value (first-solve-wins).
        memo.insert(&[2], Ok(vec![9.0]), Vec::new(), 1);
        let (specs, _, _) = memo.get(&[2], 0).unwrap();
        assert_eq!(specs.unwrap(), vec![2.0]);
    }

    #[test]
    fn shared_memo_rounds_shards_to_power_of_two() {
        let memo = SharedMemo::new(5, 100);
        assert_eq!(memo.num_shards(), 8);
        assert!(memo.capacity() >= 100);
        assert!(memo.is_empty());
    }

    #[test]
    fn shared_memo_pools_across_sessions() {
        let tia = crate::Tia::default();
        let memo = Arc::new(SharedMemo::new(4, 1024));
        let mut a =
            EvalSession::borrowed(&tia, SimMode::Schematic).with_shared_memo(Arc::clone(&memo));
        let mut b =
            EvalSession::borrowed(&tia, SimMode::Schematic).with_shared_memo(Arc::clone(&memo));
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let x = a.evaluate(&idx).unwrap();
        let y = b.evaluate(&idx).unwrap();
        assert_eq!(x, y);
        assert_eq!(a.solve_count(), 1);
        assert_eq!(b.solve_count(), 0, "pooled revisit must not solve");
        assert_eq!(b.memo_hits(), 1);
        assert_eq!(b.cross_memo_hits(), 1);
        // A worker re-reading its own insertion is a hit, not a cross hit.
        a.evaluate(&idx).unwrap();
        assert_eq!(a.memo_hits(), 1);
        assert_eq!(a.cross_memo_hits(), 0);
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.cross_hits(), 1);
        assert!(a.is_memoized(&idx));
        assert_eq!(a.memo_len(), 1);
        // Session clear leaves the pooled entries alone.
        a.clear();
        assert!(a.is_memoized(&idx));
        memo.clear();
        assert!(!a.is_memoized(&idx));
    }

    #[test]
    fn session_without_memo_always_solves() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic).with_memo(false);
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let a = s.evaluate(&idx).unwrap();
        let b = s.evaluate(&idx).unwrap();
        assert_eq!(s.solve_count(), 2);
        assert_eq!(s.memo_hits(), 0);
        // Revisiting the identical grid point warm-started must reproduce
        // the same fixed point to solver tolerance.
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }
}
