//! The sizing-problem abstraction: what AutoCkt needs to know about a
//! circuit in order to size it.
//!
//! A [`SizingProblem`] is the boundary between the learning framework and
//! the simulation environment in Fig. 1 of the paper: a discretized
//! parameter grid, a list of design specifications with their target
//! sampling ranges, and a black-box `parameters -> measured specs`
//! evaluation (schematic or post-layout).

use autockt_sim::dc::WarmState;
use autockt_sim::SimError;
use std::collections::HashMap;
use std::sync::Arc;

/// One tunable circuit parameter with its discrete grid of physical values
/// (the paper's `[start, end, increment]` notation expanded).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name (e.g. `"w_in"`, `"cc"`).
    pub name: &'static str,
    /// The grid of physical values (SI units), strictly increasing.
    pub values: Vec<f64>,
}

impl ParamSpec {
    /// Builds a grid from `[start, end, increment]` inclusive, times a
    /// `scale` factor (matching the array notation used in the paper).
    ///
    /// # Panics
    ///
    /// Panics unless `start <= end` and `increment > 0`.
    pub fn swept(name: &'static str, start: f64, end: f64, increment: f64, scale: f64) -> Self {
        assert!(start <= end && increment > 0.0, "bad sweep for {name}");
        // Generate by integer index: repeated `v += increment` accumulates
        // rounding error, so long sweeps could gain or lose a grid point
        // relative to the paper's `[start, end, increment]` notation.
        let steps = ((end - start) / increment + 1e-6).floor() as usize;
        let values = (0..=steps)
            .map(|i| (start + i as f64 * increment) * scale)
            .collect();
        ParamSpec { name, values }
    }

    /// Number of grid points `K`.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }
}

/// How a design specification enters the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// Hard constraint: measured value must be >= target (gain, bandwidth,
    /// phase margin).
    HardMin,
    /// Hard constraint: measured value must be <= target (settling time,
    /// noise).
    HardMax,
    /// Soft objective minimized subject to the hard constraints (the
    /// paper's `o_th`; bias current / power).
    Minimize,
}

/// One design specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecDef {
    /// Specification name (e.g. `"gain"`).
    pub name: &'static str,
    /// Unit for display (e.g. `"V/V"`, `"Hz"`).
    pub unit: &'static str,
    /// Constraint direction.
    pub kind: SpecKind,
    /// Lower bound of the target sampling range.
    pub lo: f64,
    /// Upper bound of the target sampling range.
    pub hi: f64,
    /// Value reported when the measurement fails outright (e.g. no
    /// unity-gain crossing): maximally pessimistic for the constraint
    /// direction.
    pub fail_value: f64,
}

/// Simulation fidelity requested from [`SizingProblem::simulate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Schematic-level simulation at the nominal PVT corner.
    #[default]
    Schematic,
    /// Post-layout-extracted simulation at the nominal corner.
    Pex,
    /// Post-layout-extracted simulation, worst case across the PVT corner
    /// set (the configuration used for Table IV).
    PexWorstCase,
}

/// A parameterised circuit topology that AutoCkt can size.
///
/// Implementations must be pure: the same parameter indices and mode always
/// produce the same spec vector. All stochastic aspects of the framework
/// (target sampling, policy sampling) live elsewhere.
pub trait SizingProblem: Send + Sync {
    /// Human-readable topology name.
    fn name(&self) -> &'static str;

    /// The discrete parameter grids.
    fn params(&self) -> &[ParamSpec];

    /// The design specifications, in the order `simulate` reports them.
    fn specs(&self) -> &[SpecDef];

    /// Evaluates the circuit at grid indices `idx` (one per parameter).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the operating point cannot be solved at
    /// all; per-measurement failures are reported through each spec's
    /// `fail_value` instead so a partially-working design still produces an
    /// informative observation.
    fn simulate(&self, idx: &[usize], mode: SimMode) -> Result<Vec<f64>, SimError>;

    /// Like [`SizingProblem::simulate`], threading warm-start state through
    /// the DC solve(s): the previous operating point seeds the Newton
    /// iteration, with the usual cold start + gmin homotopy as fallback.
    ///
    /// The default implementation ignores `state` and evaluates cold.
    /// Overrides must converge to the same measured specs as `simulate`
    /// up to solver tolerance (the warm path changes the iteration
    /// trajectory, not the fixed point), and must key `state` slots per
    /// circuit variant (e.g. one per PVT corner).
    ///
    /// # Errors
    ///
    /// Same contract as [`SizingProblem::simulate`].
    fn simulate_warm(
        &self,
        idx: &[usize],
        mode: SimMode,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        let _ = state;
        self.simulate(idx, mode)
    }

    /// Grid cardinalities `K_i`, convenience over [`SizingProblem::params`].
    fn cardinalities(&self) -> Vec<usize> {
        self.params().iter().map(ParamSpec::cardinality).collect()
    }

    /// Physical value of parameter `p` at grid index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `i` is out of range.
    fn value(&self, p: usize, i: usize) -> f64 {
        self.params()[p].values[i]
    }

    /// log10 of the total design-space size (the paper quotes 1e14 for the
    /// two-stage op-amp and 1e11 for the negative-gm OTA).
    fn log10_space_size(&self) -> f64 {
        self.params()
            .iter()
            .map(|p| (p.cardinality() as f64).log10())
            .sum()
    }
}

/// One memoized evaluation: the measured specs plus the warm-start slots
/// as of the solve, restored on cache hits so that a later cache miss
/// still warm-starts from the operating point of the *adjacent* grid
/// point just revisited (never from one arbitrarily many notches back).
#[derive(Clone)]
struct MemoEntry {
    specs: Result<Vec<f64>, SimError>,
    warm: Vec<Option<Vec<f64>>>,
}

/// How an [`EvalSession`] holds its problem.
#[derive(Clone)]
enum ProblemRef<'p> {
    Borrowed(&'p dyn SizingProblem),
    Shared(Arc<dyn SizingProblem>),
}

impl<'p> ProblemRef<'p> {
    fn get(&self) -> &dyn SizingProblem {
        match self {
            ProblemRef::Borrowed(p) => *p,
            ProblemRef::Shared(p) => p.as_ref(),
        }
    }
}

/// A stateful evaluation pipeline bound to one problem and fidelity: a
/// memo cache of exact parameter-grid revisits consulted before any solve
/// (simulation is deterministic, so revisits are free), plus warm-start
/// state threaded through consecutive DC solves.
///
/// One session per environment/optimizer instance: the RL envs, the GA
/// baselines, and the random agent all evaluate through this type, so
/// they share the same warm+memo pipeline. Warm-started solves converge
/// to the same specs as cold ones up to solver tolerance; memoization
/// makes revisits *exactly* reproducible within a session.
///
/// # Examples
///
/// ```
/// use autockt_circuits::prelude::*;
/// use autockt_circuits::problem::EvalSession;
///
/// # fn main() -> Result<(), autockt_sim::SimError> {
/// let tia = Tia::default();
/// let mut session = EvalSession::borrowed(&tia, SimMode::Schematic);
/// let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
/// let first = session.evaluate(&idx)?;
/// let replay = session.evaluate(&idx)?; // memo hit: identical, no solve
/// assert_eq!(first, replay);
/// assert_eq!(session.solve_count(), 1);
/// assert_eq!(session.memo_hits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct EvalSession<'p> {
    problem: ProblemRef<'p>,
    mode: SimMode,
    warm_start: bool,
    memoize: bool,
    memo_capacity: usize,
    warm: WarmState,
    memo: HashMap<Vec<usize>, MemoEntry>,
    solves: u64,
    memo_hits: u64,
}

impl std::fmt::Debug for EvalSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSession")
            .field("problem", &self.problem.get().name())
            .field("mode", &self.mode)
            .field("warm_start", &self.warm_start)
            .field("memoize", &self.memoize)
            .field("memo_len", &self.memo.len())
            .field("solves", &self.solves)
            .field("memo_hits", &self.memo_hits)
            .finish()
    }
}

impl<'p> EvalSession<'p> {
    fn with(problem: ProblemRef<'p>, mode: SimMode) -> Self {
        EvalSession {
            problem,
            mode,
            warm_start: true,
            memoize: true,
            memo_capacity: EvalSession::DEFAULT_MEMO_CAPACITY,
            warm: WarmState::new(),
            memo: HashMap::new(),
            solves: 0,
            memo_hits: 0,
        }
    }

    /// Creates a session borrowing the problem (optimizer-style callers).
    pub fn borrowed(problem: &'p dyn SizingProblem, mode: SimMode) -> Self {
        EvalSession::with(ProblemRef::Borrowed(problem), mode)
    }

    /// Creates a session sharing ownership of the problem (environments
    /// that must be `'static` and `Clone`).
    pub fn shared(problem: Arc<dyn SizingProblem>, mode: SimMode) -> EvalSession<'static> {
        EvalSession::with(ProblemRef::Shared(problem), mode)
    }

    /// Disables or enables warm-starting (on by default); the cold path is
    /// exactly [`SizingProblem::simulate`].
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Disables or enables the memo cache (on by default).
    pub fn with_memo(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Default bound on memoized grid points (see
    /// [`EvalSession::with_memo_capacity`]): ~50 MB per session at the
    /// largest topology's entry size, far above any revisit-relevant
    /// working set.
    pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 18;

    /// Bounds the memo cache to `cap` distinct grid points. At capacity,
    /// evaluations still run (and existing entries keep serving hits) but
    /// new results are no longer cached, so explore-heavy workloads —
    /// where exact revisits are rare and nearly every step would insert a
    /// never-reused entry — cannot grow memory linearly with training
    /// length. Episodes restart from the grid center, so the earliest
    /// entries are also the likeliest to be revisited.
    pub fn with_memo_capacity(mut self, cap: usize) -> Self {
        self.memo_capacity = cap;
        self
    }

    /// The problem being evaluated.
    pub fn problem(&self) -> &dyn SizingProblem {
        self.problem.get()
    }

    /// The simulation fidelity of every evaluation in this session.
    pub fn mode(&self) -> SimMode {
        self.mode
    }

    /// Evaluates grid indices `idx`, serving exact revisits from the memo
    /// cache and warm-starting the solver otherwise.
    ///
    /// # Errors
    ///
    /// Same contract as [`SizingProblem::simulate`]; errors are memoized
    /// too (an unsolvable grid point stays unsolvable).
    pub fn evaluate(&mut self, idx: &[usize]) -> Result<Vec<f64>, SimError> {
        if self.memoize {
            if let Some(hit) = self.memo.get(idx) {
                self.memo_hits += 1;
                if self.warm_start {
                    // Re-arm the warm state as of this grid point's solve:
                    // the next cache miss is one notch from *here*, not
                    // from wherever the last fresh solve happened.
                    self.warm.restore(&hit.warm);
                }
                return hit.specs.clone();
            }
        }
        self.solves += 1;
        let res = if self.warm_start {
            self.problem
                .get()
                .simulate_warm(idx, self.mode, &mut self.warm)
        } else {
            self.problem.get().simulate(idx, self.mode)
        };
        if self.memoize && self.memo.len() < self.memo_capacity {
            let warm = if self.warm_start {
                self.warm.snapshot()
            } else {
                Vec::new()
            };
            self.memo.insert(
                idx.to_vec(),
                MemoEntry {
                    specs: res.clone(),
                    warm,
                },
            );
        }
        res
    }

    /// Whether `idx` is already memoized (no solve would be spent on it).
    pub fn is_memoized(&self, idx: &[usize]) -> bool {
        self.memoize && self.memo.contains_key(idx)
    }

    /// Clears warm-start state (episode reset), keeping the memo cache —
    /// the grid is the same circuit family across episodes.
    pub fn reset_warm(&mut self) {
        self.warm.reset();
    }

    /// Clears warm state *and* the memo cache.
    pub fn clear(&mut self) {
        self.warm.reset();
        self.memo.clear();
        self.solves = 0;
        self.memo_hits = 0;
    }

    /// Evaluations that actually ran the simulator.
    pub fn solve_count(&self) -> u64 {
        self.solves
    }

    /// Evaluations served from the memo cache.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Distinct grid points memoized so far.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swept_grid_matches_paper_notation() {
        // Width [2, 10, 2] * 1 um => 2, 4, 6, 8, 10 um.
        let p = ParamSpec::swept("w", 2.0, 10.0, 2.0, 1e-6);
        assert_eq!(p.cardinality(), 5);
        assert!((p.values[0] - 2e-6).abs() < 1e-18);
        assert!((p.values[4] - 10e-6).abs() < 1e-18);
    }

    #[test]
    fn swept_handles_fractional_increments() {
        // Cc [0.1, 10.0, 0.1] * 1 pF: 100 points.
        let p = ParamSpec::swept("cc", 0.1, 10.0, 0.1, 1e-12);
        assert_eq!(p.cardinality(), 100);
    }

    #[test]
    #[should_panic(expected = "bad sweep")]
    fn swept_rejects_zero_increment() {
        let _ = ParamSpec::swept("x", 1.0, 2.0, 0.0, 1.0);
    }

    #[test]
    fn swept_long_sweep_keeps_endpoint_despite_float_error() {
        // increment tiny relative to the values: accumulation `v += inc`
        // drifts past the old `end + 1e-9 * inc` guard and drops the final
        // grid point; index-based generation keeps it.
        let p = ParamSpec::swept("x", 1000.0, 1000.1, 0.001, 1.0);
        assert_eq!(p.cardinality(), 101);
        assert!((p.values[100] - 1000.1).abs() < 1e-9);
    }

    #[test]
    fn swept_values_are_exact_multiples_of_the_increment() {
        let p = ParamSpec::swept("cc", 0.1, 10.0, 0.1, 1e-12);
        assert_eq!(p.cardinality(), 100);
        for (i, v) in p.values.iter().enumerate() {
            let expect = (0.1 + i as f64 * 0.1) * 1e-12;
            assert!((v - expect).abs() < 1e-24, "index {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn session_memo_serves_exact_revisits() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic);
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let a = s.evaluate(&idx).unwrap();
        let b = s.evaluate(&idx).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.solve_count(), 1);
        assert_eq!(s.memo_hits(), 1);
        assert_eq!(s.memo_len(), 1);
        assert!(s.is_memoized(&idx));
    }

    #[test]
    fn session_reset_warm_keeps_memo() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic);
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        s.evaluate(&idx).unwrap();
        s.reset_warm();
        assert!(s.is_memoized(&idx));
        s.evaluate(&idx).unwrap();
        assert_eq!(s.solve_count(), 1, "revisit after reset must be a hit");
        s.clear();
        assert!(!s.is_memoized(&idx));
    }

    #[test]
    fn session_memo_capacity_bounds_insertions() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic).with_memo_capacity(2);
        let cards = tia.cardinalities();
        let point = |i: usize| -> Vec<usize> { cards.iter().map(|k| i % k).collect() };
        for i in 0..4 {
            let _ = s.evaluate(&point(i));
        }
        assert_eq!(s.memo_len(), 2, "insertions stop at capacity");
        // Entries admitted below capacity still serve hits.
        let solves = s.solve_count();
        let _ = s.evaluate(&point(0));
        assert_eq!(s.solve_count(), solves);
        assert!(s.memo_hits() >= 1);
    }

    #[test]
    fn session_without_memo_always_solves() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic).with_memo(false);
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let a = s.evaluate(&idx).unwrap();
        let b = s.evaluate(&idx).unwrap();
        assert_eq!(s.solve_count(), 2);
        assert_eq!(s.memo_hits(), 0);
        // Revisiting the identical grid point warm-started must reproduce
        // the same fixed point to solver tolerance.
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }
}
