//! The sizing-problem abstraction: what AutoCkt needs to know about a
//! circuit in order to size it.
//!
//! A [`SizingProblem`] is the boundary between the learning framework and
//! the simulation environment in Fig. 1 of the paper: a discretized
//! parameter grid, a list of design specifications with their target
//! sampling ranges, and a black-box `parameters -> measured specs`
//! evaluation (schematic or post-layout).

use autockt_sim::ac::{
    ac_sweep_batch_solvers, ac_sweep_corners, AcBatchWorkspace, AcResponse, AcSolver, AcWorkspace,
};
use autockt_sim::dc::{dc_operating_point_batch, DcBatchWorkspace, DcOptions, OpPoint, WarmState};
use autockt_sim::device::Pvt;
use autockt_sim::netlist::{Circuit, Node};
use autockt_sim::noise::{
    noise_analysis_batch, noise_analysis_cfg, noise_analysis_corners, NoiseResult,
};
use autockt_sim::tran::{step_response_corners, step_response_corners_shared};
use autockt_sim::{Parallelism, SimError, SolverConfig};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One tunable circuit parameter with its discrete grid of physical values
/// (the paper's `[start, end, increment]` notation expanded).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name (e.g. `"w_in"`, `"cc"`).
    pub name: &'static str,
    /// The grid of physical values (SI units), strictly increasing.
    pub values: Vec<f64>,
}

impl ParamSpec {
    /// Builds a grid from `[start, end, increment]` inclusive, times a
    /// `scale` factor (matching the array notation used in the paper).
    ///
    /// # Panics
    ///
    /// Panics unless `start <= end` and `increment > 0`.
    pub fn swept(name: &'static str, start: f64, end: f64, increment: f64, scale: f64) -> Self {
        assert!(start <= end && increment > 0.0, "bad sweep for {name}");
        // Generate by integer index: repeated `v += increment` accumulates
        // rounding error, so long sweeps could gain or lose a grid point
        // relative to the paper's `[start, end, increment]` notation.
        let steps = ((end - start) / increment + 1e-6).floor() as usize;
        let values = (0..=steps)
            .map(|i| (start + i as f64 * increment) * scale)
            .collect();
        ParamSpec { name, values }
    }

    /// Number of grid points `K`.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }
}

/// How a design specification enters the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// Hard constraint: measured value must be >= target (gain, bandwidth,
    /// phase margin).
    HardMin,
    /// Hard constraint: measured value must be <= target (settling time,
    /// noise).
    HardMax,
    /// Soft objective minimized subject to the hard constraints (the
    /// paper's `o_th`; bias current / power).
    Minimize,
}

/// One design specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecDef {
    /// Specification name (e.g. `"gain"`).
    pub name: &'static str,
    /// Unit for display (e.g. `"V/V"`, `"Hz"`).
    pub unit: &'static str,
    /// Constraint direction.
    pub kind: SpecKind,
    /// Lower bound of the target sampling range.
    pub lo: f64,
    /// Upper bound of the target sampling range.
    pub hi: f64,
    /// Value reported when the measurement fails outright (e.g. no
    /// unity-gain crossing): maximally pessimistic for the constraint
    /// direction.
    pub fail_value: f64,
}

/// Simulation fidelity requested from [`SizingProblem::simulate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Schematic-level simulation at the nominal PVT corner.
    #[default]
    Schematic,
    /// Post-layout-extracted simulation at the nominal corner.
    Pex,
    /// Post-layout-extracted simulation, worst case across the PVT corner
    /// set (the configuration used for Table IV).
    PexWorstCase,
}

/// How a worst-case evaluation iterates its corner set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CornerStrategy {
    /// One corner at a time through the scalar kernels — the reference
    /// path (and the pre-batching behaviour), kept for benchmarking and
    /// equivalence testing.
    Serial,
    /// All corners solved in lockstep through the batched DC Newton and
    /// AC sweep kernels (`dc_operating_point_batch` / `ac_sweep_batch`),
    /// with per-corner convergence masks and scalar fallback for
    /// stubborn corners. With warm-start off this is bitwise-identical
    /// to [`CornerStrategy::Serial`] (property-tested per topology).
    #[default]
    Batched,
}

/// Configuration of the engine-run settling stage
/// ([`CornerEvaluator::with_settling`]): how many trapezoidal steps each
/// record integrates and how the shared time window scales with the
/// corner set's bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SettleSpec {
    /// Trapezoidal integration steps per record (the TIA uses 2048).
    pub steps: usize,
    /// Time window as a multiple of the slowest valid corner's cutoff
    /// period: `t_stop = window / min corner cutoff`. Sharing one window
    /// (and therefore one step size `h`) across the corner set is what
    /// lets the batched strategy integrate every corner through one
    /// kernel (the dense propagator / sparse Woodbury dispatch of
    /// [`autockt_sim::tran::step_response_corners`]).
    pub window: f64,
}

/// One corner's settling record from the engine's settle stage: the
/// `(t, y)` step-response samples, or the solver error that corner's
/// integration hit.
pub type SettleRecord = Result<(Vec<f64>, Vec<f64>), SimError>;

/// How a settle stage integrates its corner records.
enum SettleDispatch {
    /// Scalar per-corner kernel — the serial reference.
    Scalar,
    /// Scalar arithmetic with the sparse symbolic analysis shared across
    /// the corner set (cold batched: bitwise-equal to `Scalar`).
    Shared,
    /// Corner-batched sweep — dense propagator or sparse
    /// base-plus-Woodbury by regime (warm batched: within solver
    /// tolerance).
    Corrected,
}

/// The corner list of a worst-case evaluation: which PVT points every
/// design is checked at.
#[derive(Debug, Clone)]
pub struct CornerPlan {
    corners: Vec<Pvt>,
}

impl CornerPlan {
    /// The canonical worst-case PVT plan ([`Pvt::corner_set`]) used by
    /// `SimMode::PexWorstCase` — the paper's Table IV configuration.
    pub fn pvt_worst_case() -> Self {
        CornerPlan {
            corners: Pvt::corner_set(),
        }
    }

    /// A plan over an explicit corner list.
    pub fn from_corners(corners: Vec<Pvt>) -> Self {
        CornerPlan { corners }
    }

    /// The corners, in slot order (warm-start slots are keyed by this
    /// index).
    pub fn corners(&self) -> &[Pvt] {
        &self.corners
    }

    /// Number of corners.
    pub fn len(&self) -> usize {
        self.corners.len()
    }

    /// Whether the plan holds no corners.
    pub fn is_empty(&self) -> bool {
        self.corners.is_empty()
    }
}

/// One corner's concrete evaluation inputs, produced by a topology's
/// builder closure: the (extracted) netlist plus whatever the
/// measurement needs to interpret it.
#[derive(Debug, Clone)]
pub struct CornerCase {
    /// The netlist evaluated at this corner (already PEX-extracted).
    pub ckt: Circuit,
    /// Output node driven and measured by the AC sweep.
    pub out: Node,
    /// Corner temperature (K), for noise analyses.
    pub temp_k: f64,
    /// Index of the supply voltage source, for bias-current measurement.
    pub vdd_src: usize,
}

/// The shared corner-iteration engine behind `SimMode::PexWorstCase`:
/// owns the corner set, the per-corner warm-start slots, and the choice
/// between serial and lockstep-batched dispatch, so a topology
/// contributes only its circuit-builder closure and its per-corner spec
/// measurement (the worst-case fold runs on the topology's spec
/// definitions). The per-corner loops that used to be triplicated across
/// `tia.rs`/`opamp2.rs`/`neggm.rs` live here and nowhere else.
///
/// Batched dispatch cuts through all three stages of a corner
/// evaluation: the B corners' DC operating points solve as one lockstep
/// Newton (`dc_operating_point_batch`, one batched LU per iteration
/// instead of B scalar ones), the AC sweep factors all B systems per
/// frequency through the corner-axis SoA kernel (`ac_sweep_batch`), and
/// only the cheap spec post-processing stays per corner. Results are
/// identical per corner; one stubborn or defective corner falls back to
/// the scalar path alone. When several corners fail, the reported
/// `SimError` is the lowest-slot failure of the stage that surfaced it,
/// which can differ from the serial path's (which stops at the first
/// failing corner's first failing stage) — the Ok/Err outcome per corner
/// never does.
#[derive(Debug, Clone)]
pub struct CornerEvaluator {
    plan: CornerPlan,
    dc_opts: DcOptions,
    freqs: Vec<f64>,
    strategy: CornerStrategy,
    noise_freqs: Option<Vec<f64>>,
    settle: Option<SettleSpec>,
}

impl CornerEvaluator {
    /// Creates an engine over `plan`, solving operating points with
    /// `dc_opts` and sweeping `freqs` at every corner.
    pub fn new(
        plan: CornerPlan,
        dc_opts: DcOptions,
        freqs: Vec<f64>,
        strategy: CornerStrategy,
    ) -> Self {
        CornerEvaluator {
            plan,
            dc_opts,
            freqs,
            strategy,
            noise_freqs: None,
            settle: None,
        }
    }

    /// Overrides the linear-solver backend selection for every solve the
    /// engine runs: the DC Newton iterations (via `DcOptions::solver`),
    /// the per-corner AC sweeps, and the noise analyses all dispatch
    /// dense or sparse from this one config. The default
    /// ([`SolverConfig::default`]) picks automatically by MNA dimension,
    /// so deep-mesh PEX corners factor through the CSC backend while
    /// schematic-sized systems stay on the dense kernels.
    pub fn with_solver_config(mut self, cfg: SolverConfig) -> Self {
        self.dc_opts.solver = cfg;
        self
    }

    /// The linear-solver config every corner solve dispatches on.
    pub fn solver_config(&self) -> SolverConfig {
        self.dc_opts.solver
    }

    /// Sets the parallel-execution policy
    /// ([`autockt_sim::Parallelism`]) on the engine's solver config: the
    /// AC sweeps, noise analyses, and sparse BTF factorizations the
    /// engine runs tile their independent work across threads per this
    /// knob (threaded results are bitwise-identical to serial, so the
    /// engine's dispatch contracts are unaffected). Keeps every other
    /// config field as previously set.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.dc_opts.solver = self.dc_opts.solver.with_parallelism(par);
        self
    }

    /// Enables a per-corner noise analysis over `freqs`, measured at each
    /// corner's output node and temperature, and hands the result to the
    /// measure closure. Running noise *inside* the engine (instead of in
    /// the closure) is what lets the batched strategy corner-correct it:
    /// serial corners run the scalar [`noise_analysis_ws`], cold batched
    /// runs the lockstep [`noise_analysis_batch`] (bitwise-identical per
    /// corner), and warm batched runs the Woodbury-corrected
    /// [`noise_analysis_corners`] with the per-source base solves shared
    /// across the corner set.
    pub fn with_noise(mut self, freqs: Vec<f64>) -> Self {
        self.noise_freqs = Some(freqs);
        self
    }

    /// Enables a per-corner linear step-response settling stage and hands
    /// each corner's `(t, y)` record to the measure closure. The engine
    /// first sweeps every corner, then integrates all valid corners (those
    /// with a positive -3 dB cutoff) over **one shared time window**
    /// `spec.window / min cutoff`; corners without a valid cutoff receive
    /// `None` (topologies map that to the spec's fail value, matching
    /// their pre-engine local measurement).
    ///
    /// Running settling *inside* the engine is what lets the batched
    /// strategy corner-batch it: serial corners integrate through the
    /// scalar [`AcSolver::step_response`], cold batched shares the sparse
    /// symbolic analysis across the set (`step_response_corners_shared`,
    /// bitwise-identical per corner), and warm batched runs
    /// `step_response_corners` — each corner's constant companion folded
    /// into a precomputed affine propagator at dense dims, base-factor +
    /// Woodbury sibling correction at sparse dims.
    pub fn with_settling(mut self, spec: SettleSpec) -> Self {
        self.settle = Some(spec);
        self
    }

    /// The corner plan.
    pub fn plan(&self) -> &CornerPlan {
        &self.plan
    }

    /// Runs the settling stage over the solved corner set: picks the
    /// shared time window from the slowest valid corner cutoff, then
    /// integrates every valid corner through the dispatch's kernel.
    /// Returns `None` when no settle stage is configured; per-corner
    /// `None` marks an invalid cutoff (no settling record).
    fn settle_stage(
        &self,
        solvers: &[AcSolver<'_>],
        outs: &[Node],
        resps: &[AcResponse],
        dispatch: SettleDispatch,
    ) -> Option<Vec<Option<SettleRecord>>> {
        let spec = self.settle?;
        let mut slots: Vec<Option<SettleRecord>> = (0..solvers.len()).map(|_| None).collect();
        let mut live = Vec::new();
        let mut min_cutoff = f64::INFINITY;
        for (i, r) in resps.iter().enumerate() {
            if let Ok(c) = r.f_3db() {
                if c > 0.0 {
                    min_cutoff = min_cutoff.min(c);
                    live.push(i);
                }
            }
        }
        if live.is_empty() {
            return Some(slots);
        }
        let t_stop = spec.window / min_cutoff;
        match dispatch {
            SettleDispatch::Scalar => {
                for &i in &live {
                    slots[i] = Some(solvers[i].step_response(outs[i], t_stop, spec.steps));
                }
            }
            SettleDispatch::Shared | SettleDispatch::Corrected => {
                let ls: Vec<&AcSolver<'_>> = live.iter().map(|&i| &solvers[i]).collect();
                let lo: Vec<Node> = live.iter().map(|&i| outs[i]).collect();
                let recs = match dispatch {
                    SettleDispatch::Shared => {
                        step_response_corners_shared(&ls, &lo, t_stop, spec.steps)
                    }
                    _ => step_response_corners(&ls, &lo, t_stop, spec.steps),
                };
                for (&i, r) in live.iter().zip(recs) {
                    slots[i] = Some(r);
                }
            }
        }
        Some(slots)
    }

    /// Evaluates every corner and reduces the per-corner spec rows to
    /// the worst case in each spec's constraint direction.
    ///
    /// `build` produces corner `slot`'s circuit; `measure` turns corner
    /// `slot`'s operating point, linearization, swept response, and —
    /// when [`CornerEvaluator::with_noise`] /
    /// [`CornerEvaluator::with_settling`] are set — noise analysis and
    /// settling record into a spec row (it receives the session's
    /// [`AcWorkspace`] when warm-started, for allocation-free
    /// measurements). A noise failure is handed to the closure rather
    /// than aborting the corner, so topologies can map it to a spec's
    /// fail value; likewise a settling record's `Err` lets the closure
    /// decide. `state` carries the per-corner warm slots; `None`
    /// evaluates cold.
    ///
    /// # Errors
    ///
    /// Returns the first corner failure (unsolvable operating point,
    /// singular sweep, or measurement error) — same contract as
    /// `SizingProblem::simulate`.
    pub fn evaluate<B, M>(
        &self,
        specs: &[SpecDef],
        build: B,
        measure: M,
        state: Option<&mut WarmState>,
    ) -> Result<Vec<f64>, SimError>
    where
        B: FnMut(usize, &Pvt) -> CornerCase,
        M: FnMut(
            usize,
            &CornerCase,
            &OpPoint,
            &AcSolver<'_>,
            &AcResponse,
            Option<&mut AcWorkspace>,
            Option<&Result<NoiseResult, SimError>>,
            Option<&SettleRecord>,
        ) -> Result<Vec<f64>, SimError>,
    {
        let rows = match self.strategy {
            CornerStrategy::Serial => self.rows_serial(build, measure, state)?,
            CornerStrategy::Batched => self.rows_batched(build, measure, state)?,
        };
        Ok(worst_case(specs, &rows))
    }

    /// The reference path: corner after corner through the scalar
    /// kernels, exactly the loop the topologies used to carry.
    fn rows_serial<B, M>(
        &self,
        mut build: B,
        mut measure: M,
        mut state: Option<&mut WarmState>,
    ) -> Result<Vec<Vec<f64>>, SimError>
    where
        B: FnMut(usize, &Pvt) -> CornerCase,
        M: FnMut(
            usize,
            &CornerCase,
            &OpPoint,
            &AcSolver<'_>,
            &AcResponse,
            Option<&mut AcWorkspace>,
            Option<&Result<NoiseResult, SimError>>,
            Option<&SettleRecord>,
        ) -> Result<Vec<f64>, SimError>,
    {
        if self.settle.is_some() {
            // The shared settling window needs every corner's cutoff
            // before any record integrates, so a settle-enabled serial
            // evaluation runs stage-major instead of corner-major.
            return self.rows_serial_phased(build, measure, state);
        }
        let mut rows = Vec::with_capacity(self.plan.len());
        for (slot, pvt) in self.plan.corners.iter().enumerate() {
            let case = build(slot, pvt);
            let op = match state.as_deref_mut() {
                Some(st) => st.solve(slot, &case.ckt, &self.dc_opts)?,
                None => autockt_sim::dc::dc_operating_point(&case.ckt, &self.dc_opts)?,
            };
            let solver = AcSolver::new(&case.ckt, &op).with_config(self.dc_opts.solver);
            let resp = match state.as_deref_mut() {
                Some(st) => {
                    let h =
                        solver.solve_sources_batch_ws(&self.freqs, case.out, st.ac_workspace())?;
                    AcResponse {
                        freqs: self.freqs.clone(),
                        h,
                    }
                }
                None if self.dc_opts.solver.use_sparse(solver.dim()) => {
                    // The generic dense kernel below is the equivalence
                    // baseline and never dispatches sparse; a forced (or
                    // auto-selected) sparse corner goes through the
                    // workspace path, whose factorization honors the
                    // backend config.
                    let h = solver.solve_sources_batch_ws(
                        &self.freqs,
                        case.out,
                        &mut AcWorkspace::default(),
                    )?;
                    AcResponse {
                        freqs: self.freqs.clone(),
                        h,
                    }
                }
                None => {
                    let mut h = Vec::with_capacity(self.freqs.len());
                    for &f in &self.freqs {
                        let x = solver.solve_sources(f)?;
                        h.push(solver.voltage(&x, case.out));
                    }
                    AcResponse {
                        freqs: self.freqs.clone(),
                        h,
                    }
                }
            };
            // The scalar reference noise path: one analysis per corner
            // through the same SoA kernel the warm serial path uses.
            let noise = self
                .noise_freqs
                .as_ref()
                .map(|nf| match state.as_deref_mut() {
                    Some(st) => noise_analysis_cfg(
                        &case.ckt,
                        &op,
                        case.out,
                        nf,
                        case.temp_k,
                        self.dc_opts.solver,
                        st.ac_workspace(),
                    ),
                    None => noise_analysis_cfg(
                        &case.ckt,
                        &op,
                        case.out,
                        nf,
                        case.temp_k,
                        self.dc_opts.solver,
                        &mut AcWorkspace::default(),
                    ),
                });
            rows.push(measure(
                slot,
                &case,
                &op,
                &solver,
                &resp,
                state.as_deref_mut().map(WarmState::ac_workspace),
                noise.as_ref(),
                None,
            )?);
        }
        Ok(rows)
    }

    /// One corner's scalar AC sweep and optional noise analysis — exactly
    /// the interleaved serial loop's kernels, factored out so the phased
    /// (settle-enabled) serial path produces bitwise-identical responses.
    #[allow(clippy::type_complexity)]
    fn serial_sweep(
        &self,
        case: &CornerCase,
        op: &OpPoint,
        state: &mut Option<&mut WarmState>,
    ) -> Result<(AcResponse, Option<Result<NoiseResult, SimError>>), SimError> {
        let solver = AcSolver::new(&case.ckt, op).with_config(self.dc_opts.solver);
        let resp = match state.as_deref_mut() {
            Some(st) => {
                let h = solver.solve_sources_batch_ws(&self.freqs, case.out, st.ac_workspace())?;
                AcResponse {
                    freqs: self.freqs.clone(),
                    h,
                }
            }
            None if self.dc_opts.solver.use_sparse(solver.dim()) => {
                let h = solver.solve_sources_batch_ws(
                    &self.freqs,
                    case.out,
                    &mut AcWorkspace::default(),
                )?;
                AcResponse {
                    freqs: self.freqs.clone(),
                    h,
                }
            }
            None => {
                let mut h = Vec::with_capacity(self.freqs.len());
                for &f in &self.freqs {
                    let x = solver.solve_sources(f)?;
                    h.push(solver.voltage(&x, case.out));
                }
                AcResponse {
                    freqs: self.freqs.clone(),
                    h,
                }
            }
        };
        let noise = self
            .noise_freqs
            .as_ref()
            .map(|nf| match state.as_deref_mut() {
                Some(st) => noise_analysis_cfg(
                    &case.ckt,
                    op,
                    case.out,
                    nf,
                    case.temp_k,
                    self.dc_opts.solver,
                    st.ac_workspace(),
                ),
                None => noise_analysis_cfg(
                    &case.ckt,
                    op,
                    case.out,
                    nf,
                    case.temp_k,
                    self.dc_opts.solver,
                    &mut AcWorkspace::default(),
                ),
            });
        Ok((resp, noise))
    }

    /// The serial path when a settle stage is configured: corner-by-corner
    /// build/DC/AC/noise in slot order through the same scalar kernels as
    /// the interleaved loop, then the scalar settle stage over the shared
    /// window, then the measurements.
    fn rows_serial_phased<B, M>(
        &self,
        mut build: B,
        mut measure: M,
        mut state: Option<&mut WarmState>,
    ) -> Result<Vec<Vec<f64>>, SimError>
    where
        B: FnMut(usize, &Pvt) -> CornerCase,
        M: FnMut(
            usize,
            &CornerCase,
            &OpPoint,
            &AcSolver<'_>,
            &AcResponse,
            Option<&mut AcWorkspace>,
            Option<&Result<NoiseResult, SimError>>,
            Option<&SettleRecord>,
        ) -> Result<Vec<f64>, SimError>,
    {
        let mut cases = Vec::with_capacity(self.plan.len());
        let mut ops = Vec::with_capacity(self.plan.len());
        let mut resps = Vec::with_capacity(self.plan.len());
        let mut noises = Vec::with_capacity(self.plan.len());
        for (slot, pvt) in self.plan.corners.iter().enumerate() {
            let case = build(slot, pvt);
            let op = match state.as_deref_mut() {
                Some(st) => st.solve(slot, &case.ckt, &self.dc_opts)?,
                None => autockt_sim::dc::dc_operating_point(&case.ckt, &self.dc_opts)?,
            };
            let (resp, noise) = self.serial_sweep(&case, &op, &mut state)?;
            cases.push(case);
            ops.push(op);
            resps.push(resp);
            noises.push(noise);
        }
        let solvers: Vec<AcSolver<'_>> = cases
            .iter()
            .zip(&ops)
            .map(|(c, op)| AcSolver::new(&c.ckt, op).with_config(self.dc_opts.solver))
            .collect();
        let outs: Vec<Node> = cases.iter().map(|c| c.out).collect();
        let settles = self.settle_stage(&solvers, &outs, &resps, SettleDispatch::Scalar);
        let mut rows = Vec::with_capacity(cases.len());
        for (slot, ((case, op), (solver, resp))) in cases
            .iter()
            .zip(&ops)
            .zip(solvers.iter().zip(&resps))
            .enumerate()
        {
            rows.push(measure(
                slot,
                case,
                op,
                solver,
                resp,
                state.as_deref_mut().map(WarmState::ac_workspace),
                noises[slot].as_ref(),
                settles.as_ref().and_then(|v| v[slot].as_ref()),
            )?);
        }
        Ok(rows)
    }

    /// The lockstep path: one batched DC Newton across all corners, one
    /// corner-batched AC sweep, then the per-corner measurements.
    fn rows_batched<B, M>(
        &self,
        mut build: B,
        mut measure: M,
        mut state: Option<&mut WarmState>,
    ) -> Result<Vec<Vec<f64>>, SimError>
    where
        B: FnMut(usize, &Pvt) -> CornerCase,
        M: FnMut(
            usize,
            &CornerCase,
            &OpPoint,
            &AcSolver<'_>,
            &AcResponse,
            Option<&mut AcWorkspace>,
            Option<&Result<NoiseResult, SimError>>,
            Option<&SettleRecord>,
        ) -> Result<Vec<f64>, SimError>,
    {
        let cases: Vec<CornerCase> = self
            .plan
            .corners
            .iter()
            .enumerate()
            .map(|(slot, pvt)| build(slot, pvt))
            .collect();
        let ckts: Vec<&Circuit> = cases.iter().map(|c| &c.ckt).collect();
        let op_results = match state.as_deref_mut() {
            Some(st) => st.solve_batch(0, &ckts, &self.dc_opts),
            None => {
                let warm = vec![None; ckts.len()];
                dc_operating_point_batch(&ckts, &self.dc_opts, &warm, &mut DcBatchWorkspace::new())
            }
        };
        let mut ops = Vec::with_capacity(op_results.len());
        for r in op_results {
            ops.push(r?);
        }
        let solvers: Vec<AcSolver<'_>> = cases
            .iter()
            .zip(&ops)
            .map(|(c, op)| AcSolver::new(&c.ckt, op).with_config(self.dc_opts.solver))
            .collect();
        let outs: Vec<Node> = cases.iter().map(|c| c.out).collect();
        // Warm sessions take the corner-correction sweep (one base
        // factorization per frequency + per-corner low-rank corrections
        // — exact to roundoff, inside the warm path's solver-tolerance
        // contract). The cold path stays on the lockstep batch, whose
        // per-corner arithmetic is bitwise-identical to the serial
        // reference.
        let mut cold_ws = AcBatchWorkspace::new();
        let resp_results = match state.as_deref_mut() {
            Some(st) => ac_sweep_corners(&solvers, &self.freqs, &outs, st.ac_batch_workspace()),
            None => ac_sweep_batch_solvers(&solvers, &self.freqs, &outs, &mut cold_ws),
        };
        let mut resps = Vec::with_capacity(resp_results.len());
        for r in resp_results {
            resps.push(r?);
        }
        // Noise rides the same dispatch: lockstep (bitwise) when cold,
        // corner-corrected (Woodbury, shared per-source base solves)
        // when warm. Per-corner failures stay in the row — the measure
        // closure decides whether a noise failure is fatal.
        let noise_results: Option<Vec<Result<NoiseResult, SimError>>> =
            self.noise_freqs.as_ref().map(|nf| {
                let ops_refs: Vec<&OpPoint> = ops.iter().collect();
                let temps: Vec<f64> = cases.iter().map(|c| c.temp_k).collect();
                match state.as_deref_mut() {
                    Some(st) => noise_analysis_corners(
                        &solvers,
                        &ops_refs,
                        &outs,
                        nf,
                        &temps,
                        st.ac_batch_workspace(),
                    ),
                    None => {
                        noise_analysis_batch(&solvers, &ops_refs, &outs, nf, &temps, &mut cold_ws)
                    }
                }
            });
        // Settling rides the dispatch too: cold shares the sparse
        // symbolic analysis across the set (bitwise-identical to the
        // phased serial reference), warm runs the corner-batched kernel
        // (dense propagator / sparse Woodbury by regime).
        let settles = self.settle_stage(
            &solvers,
            &outs,
            &resps,
            if state.is_some() {
                SettleDispatch::Corrected
            } else {
                SettleDispatch::Shared
            },
        );
        let mut rows = Vec::with_capacity(cases.len());
        for (slot, ((case, op), (solver, resp))) in cases
            .iter()
            .zip(&ops)
            .zip(solvers.iter().zip(&resps))
            .enumerate()
        {
            rows.push(measure(
                slot,
                case,
                op,
                solver,
                resp,
                state.as_deref_mut().map(WarmState::ac_workspace),
                noise_results.as_ref().map(|v| &v[slot]),
                settles.as_ref().and_then(|v| v[slot].as_ref()),
            )?);
        }
        Ok(rows)
    }
}

/// Reduces per-corner spec rows to the worst case in each spec's
/// constraint direction (paper: "taking the worst performing metric as
/// the specification") — the fold every topology's `PexWorstCase`
/// evaluation shares.
///
/// # Panics
///
/// Panics on an empty corner set.
pub fn worst_case(specs: &[SpecDef], per_corner: &[Vec<f64>]) -> Vec<f64> {
    assert!(!per_corner.is_empty());
    let mut out = per_corner[0].clone();
    for row in &per_corner[1..] {
        for (i, v) in row.iter().enumerate() {
            out[i] = match specs[i].kind {
                SpecKind::HardMin => out[i].min(*v),
                SpecKind::HardMax | SpecKind::Minimize => out[i].max(*v),
            };
        }
    }
    out
}

/// A parameterised circuit topology that AutoCkt can size.
///
/// Implementations must be pure: the same parameter indices and mode always
/// produce the same spec vector. All stochastic aspects of the framework
/// (target sampling, policy sampling) live elsewhere.
pub trait SizingProblem: Send + Sync {
    /// Human-readable topology name.
    fn name(&self) -> &'static str;

    /// The discrete parameter grids.
    fn params(&self) -> &[ParamSpec];

    /// The design specifications, in the order `simulate` reports them.
    fn specs(&self) -> &[SpecDef];

    /// Evaluates the circuit at grid indices `idx` (one per parameter).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the operating point cannot be solved at
    /// all; per-measurement failures are reported through each spec's
    /// `fail_value` instead so a partially-working design still produces an
    /// informative observation.
    fn simulate(&self, idx: &[usize], mode: SimMode) -> Result<Vec<f64>, SimError>;

    /// Like [`SizingProblem::simulate`], threading warm-start state through
    /// the DC solve(s): the previous operating point seeds the Newton
    /// iteration, with the usual cold start + gmin homotopy as fallback.
    ///
    /// The default implementation ignores `state` and evaluates cold.
    /// Overrides must converge to the same measured specs as `simulate`
    /// up to solver tolerance (the warm path changes the iteration
    /// trajectory, not the fixed point), and must key `state` slots per
    /// circuit variant (e.g. one per PVT corner).
    ///
    /// # Errors
    ///
    /// Same contract as [`SizingProblem::simulate`].
    fn simulate_warm(
        &self,
        idx: &[usize],
        mode: SimMode,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        let _ = state;
        self.simulate(idx, mode)
    }

    /// The linear-solver backend config this problem's own evaluations
    /// dispatch on when the caller supplies no override. The default
    /// returns [`SolverConfig::default`]; topologies that own a config
    /// override this so sessions can layer single knobs (e.g.
    /// [`EvalSession::with_parallelism`]) on top of the problem's config
    /// instead of silently replacing it.
    fn solver_config(&self) -> SolverConfig {
        SolverConfig::default()
    }

    /// Like [`SizingProblem::simulate`], but overriding the linear-solver
    /// backend config (dense | sparse | auto-by-dimension) for every solve
    /// of the evaluation. The default implementation ignores `cfg`;
    /// topologies that own a [`SolverConfig`] override this so sessions
    /// (and the corner-smoke dense-vs-sparse gate) can force a backend
    /// without rebuilding the problem.
    ///
    /// # Errors
    ///
    /// Same contract as [`SizingProblem::simulate`].
    fn simulate_cfg(
        &self,
        idx: &[usize],
        mode: SimMode,
        cfg: SolverConfig,
    ) -> Result<Vec<f64>, SimError> {
        let _ = cfg;
        self.simulate(idx, mode)
    }

    /// Warm-started variant of [`SizingProblem::simulate_cfg`]; the
    /// default ignores `cfg` and falls back to
    /// [`SizingProblem::simulate_warm`].
    ///
    /// # Errors
    ///
    /// Same contract as [`SizingProblem::simulate`].
    fn simulate_warm_cfg(
        &self,
        idx: &[usize],
        mode: SimMode,
        cfg: SolverConfig,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        let _ = cfg;
        self.simulate_warm(idx, mode, state)
    }

    /// Grid cardinalities `K_i`, convenience over [`SizingProblem::params`].
    fn cardinalities(&self) -> Vec<usize> {
        self.params().iter().map(ParamSpec::cardinality).collect()
    }

    /// Physical value of parameter `p` at grid index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `i` is out of range.
    fn value(&self, p: usize, i: usize) -> f64 {
        self.params()[p].values[i]
    }

    /// log10 of the total design-space size (the paper quotes 1e14 for the
    /// two-stage op-amp and 1e11 for the negative-gm OTA).
    fn log10_space_size(&self) -> f64 {
        self.params()
            .iter()
            .map(|p| (p.cardinality() as f64).log10())
            .sum()
    }
}

/// One memoized evaluation: the measured specs plus the warm-start slots
/// as of the solve, restored on cache hits so that a later cache miss
/// still warm-starts from the operating point of the *adjacent* grid
/// point just revisited (never from one arbitrarily many notches back).
#[derive(Clone)]
struct MemoEntry {
    specs: Result<Vec<f64>, SimError>,
    warm: Vec<Option<Vec<f64>>>,
}

/// One entry of a [`SharedMemo`]: like the per-session `MemoEntry`, plus
/// the id of the worker that inserted it (for cross-worker hit accounting).
#[derive(Clone)]
struct SharedEntry {
    specs: Result<Vec<f64>, SimError>,
    warm: Vec<Option<Vec<f64>>>,
    owner: u64,
}

/// One mutex-guarded shard of a [`SharedMemo`]: the key -> entry map plus
/// an insertion-order queue driving FIFO eviction at capacity.
#[derive(Default)]
struct MemoShard {
    map: HashMap<Vec<usize>, SharedEntry>,
    order: VecDeque<Vec<usize>>,
}

/// Unwraps a shard lock, recovering from poisoning instead of cascading
/// the panic: a poisoned shard means some *other* worker panicked while
/// holding the lock, and every shard mutation (probe, insert, evict,
/// clear) leaves the map/queue pair valid between statements — worst
/// case, FIFO order drifts for a cache whose entries are immutable once
/// inserted. Evaluation must keep running on the surviving workers.
fn recover<'m, T>(
    lock: Result<
        std::sync::MutexGuard<'m, T>,
        std::sync::PoisonError<std::sync::MutexGuard<'m, T>>,
    >,
) -> std::sync::MutexGuard<'m, T> {
    match lock {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A concurrent evaluation memo shared by every rollout worker of a
/// training run: `N` mutex-guarded shards keyed by the discrete parameter
/// index vector, so the 8 training environments pool their grid revisits
/// instead of each re-solving points a sibling already evaluated (episodes
/// all restart from the grid center, so cross-worker overlap is heavy).
///
/// Sharding keeps contention negligible — a key's shard is chosen by hash,
/// and a lock is held only for the microseconds of a map probe or insert,
/// never across a solve. Each shard is capacity-bounded like the per-env
/// memo; at capacity the *oldest* entry in the shard is evicted FIFO (the
/// shared map outlives episodes and workers, so unlike the per-session
/// cache it cannot simply stop inserting without eventually pinning a
/// stale working set).
///
/// Warm-start state stays private per worker: the memo stores warm
/// *snapshots* (restored on hits so a later miss still warm-starts from an
/// adjacent grid point), but each session keeps its own [`WarmState`].
/// With warm-starting disabled, pooled results are bitwise-identical to
/// per-env memo runs (solves are pure); with it enabled, a hit may serve
/// specs solved from another worker's warm trajectory, which agree within
/// solver tolerance (the same contract as `simulate_warm` itself).
///
/// # Examples
///
/// ```
/// use autockt_circuits::prelude::*;
/// use autockt_circuits::problem::{EvalSession, SharedMemo};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), autockt_sim::SimError> {
/// let tia = Tia::default();
/// let memo = Arc::new(SharedMemo::new(8, 1 << 16));
/// let mut a = EvalSession::borrowed(&tia, SimMode::Schematic)
///     .with_shared_memo(Arc::clone(&memo));
/// let mut b = EvalSession::borrowed(&tia, SimMode::Schematic)
///     .with_shared_memo(Arc::clone(&memo));
/// let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
/// let first = a.evaluate(&idx)?; // solved by session a
/// let pooled = b.evaluate(&idx)?; // served from the shared memo
/// assert_eq!(first, pooled);
/// assert_eq!(b.solve_count(), 0);
/// assert_eq!(b.cross_memo_hits(), 1);
/// # Ok(())
/// # }
/// ```
pub struct SharedMemo {
    shards: Vec<Mutex<MemoShard>>,
    /// Per-shard count of lock acquisitions that found the shard already
    /// held (`try_lock` miss → blocking wait): the direct contention
    /// signal for sizing the shard count as worker counts grow.
    contended: Vec<AtomicU64>,
    /// Total hot-path lock acquisitions (probes, inserts, contains) —
    /// the denominator for the contention ratio. Counted at the lock
    /// itself, so a get-miss followed by an insert counts as two.
    acquisitions: AtomicU64,
    per_shard_capacity: usize,
    hits: AtomicU64,
    cross_hits: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    next_worker: AtomicU64,
}

impl std::fmt::Debug for SharedMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemo")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("cross_hits", &self.cross_hits())
            .field("evictions", &self.evictions())
            .field("contended_locks", &self.contended_locks())
            .finish()
    }
}

impl SharedMemo {
    /// Default shard count: comfortably above the 8 training workers, so
    /// two workers probing simultaneously almost never contend.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates a memo with `shards` shards (rounded up to a power of two,
    /// minimum 1) bounding `capacity` total entries across all shards.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        SharedMemo {
            shards: (0..shards)
                .map(|_| Mutex::new(MemoShard::default()))
                .collect(),
            contended: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            acquisitions: AtomicU64::new(0),
            per_shard_capacity: capacity.div_ceil(shards).max(1),
            hits: AtomicU64::new(0),
            cross_hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            next_worker: AtomicU64::new(0),
        }
    }

    /// A memo sized like the per-session default
    /// ([`EvalSession::DEFAULT_MEMO_CAPACITY`]) over
    /// [`SharedMemo::DEFAULT_SHARDS`] shards.
    pub fn with_default_capacity() -> Self {
        SharedMemo::new(
            SharedMemo::DEFAULT_SHARDS,
            EvalSession::DEFAULT_MEMO_CAPACITY,
        )
    }

    /// Registers a new worker, returning its id (used to distinguish
    /// cross-worker hits from a worker re-reading its own insertions).
    pub fn register_worker(&self) -> u64 {
        self.next_worker.fetch_add(1, Ordering::Relaxed)
    }

    fn shard_index(&self, idx: &[usize]) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        idx.hash(&mut h);
        (h.finish() as usize) & (self.shards.len() - 1)
    }

    /// Locks the shard holding `idx`, counting the acquisition as
    /// contended when another worker already holds it (the hot paths all
    /// come through here, so [`SharedMemo::contended_locks`] reflects
    /// real probe/insert contention, not maintenance scans).
    fn lock_shard(&self, idx: &[usize]) -> std::sync::MutexGuard<'_, MemoShard> {
        let s = self.shard_index(idx);
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        match self.shards[s].try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended[s].fetch_add(1, Ordering::Relaxed);
                recover(self.shards[s].lock())
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }

    /// Looks up `idx`, cloning the entry out (the lock is never held
    /// across a solve). Returns the specs, the warm snapshot taken at the
    /// original solve, and whether the entry was inserted by a *different*
    /// worker than `worker`.
    #[allow(clippy::type_complexity)]
    fn get(
        &self,
        idx: &[usize],
        worker: u64,
    ) -> Option<(Result<Vec<f64>, SimError>, Vec<Option<Vec<f64>>>, bool)> {
        let shard = self.lock_shard(idx);
        let e = shard.map.get(idx)?;
        let cross = e.owner != worker;
        self.hits.fetch_add(1, Ordering::Relaxed);
        if cross {
            self.cross_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some((e.specs.clone(), e.warm.clone(), cross))
    }

    /// Whether `idx` is currently memoized.
    pub fn contains(&self, idx: &[usize]) -> bool {
        self.lock_shard(idx).map.contains_key(idx)
    }

    fn insert(
        &self,
        idx: &[usize],
        specs: Result<Vec<f64>, SimError>,
        warm: Vec<Option<Vec<f64>>>,
        worker: u64,
    ) {
        let mut shard = self.lock_shard(idx);
        if shard.map.contains_key(idx) {
            // A sibling solved the same point concurrently; keep the
            // first insertion so every later hit serves one consistent
            // value.
            return;
        }
        if shard.map.len() >= self.per_shard_capacity {
            if let Some(oldest) = shard.order.pop_front() {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.order.push_back(idx.to_vec());
        shard.map.insert(
            idx.to_vec(),
            SharedEntry {
                specs,
                warm,
                owner: worker,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Distinct grid points currently memoized across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| recover(s.lock()).map.len())
            .sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookup hits across all workers.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Hits served to a worker other than the one that solved the entry —
    /// the pooling win that a per-env memo cannot provide.
    pub fn cross_hits(&self) -> u64 {
        self.cross_hits.load(Ordering::Relaxed)
    }

    /// Total insertions (solves that were cached).
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Entries evicted FIFO at shard capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total hot-path lock acquisitions across all shards (every probe,
    /// insert, and containment check) — the denominator for the
    /// contention ratio.
    pub fn lock_acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Total contended lock acquisitions across all shards: probes or
    /// inserts that found their shard held by another worker and had to
    /// wait. The pooling design bets this stays negligible relative to
    /// [`SharedMemo::lock_acquisitions`]; the 32-worker bench rows
    /// record it to check that bet beyond 8 workers.
    pub fn contended_locks(&self) -> u64 {
        self.contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard contended-lock counters, index-aligned with the shard
    /// array — shows whether contention is spread or concentrated on a
    /// hot shard (lockstep workers all probing the same key hash to the
    /// same shard).
    pub fn shard_contention(&self) -> Vec<u64> {
        self.contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of shards (always a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total entry capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Drops every entry, keeping counters (useful between benchmark
    /// configurations sharing one memo allocation).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = recover(s.lock());
            s.map.clear();
            s.order.clear();
        }
    }
}

/// How an [`EvalSession`] holds its problem.
#[derive(Clone)]
enum ProblemRef<'p> {
    Borrowed(&'p dyn SizingProblem),
    Shared(Arc<dyn SizingProblem>),
}

impl<'p> ProblemRef<'p> {
    fn get(&self) -> &dyn SizingProblem {
        match self {
            ProblemRef::Borrowed(p) => *p,
            ProblemRef::Shared(p) => p.as_ref(),
        }
    }
}

/// A stateful evaluation pipeline bound to one problem and fidelity: a
/// memo cache of exact parameter-grid revisits consulted before any solve
/// (simulation is deterministic, so revisits are free), plus warm-start
/// state threaded through consecutive DC solves.
///
/// One session per environment/optimizer instance: the RL envs, the GA
/// baselines, and the random agent all evaluate through this type, so
/// they share the same warm+memo pipeline. Warm-started solves converge
/// to the same specs as cold ones up to solver tolerance; memoization
/// makes revisits *exactly* reproducible within a session.
///
/// # Examples
///
/// ```
/// use autockt_circuits::prelude::*;
/// use autockt_circuits::problem::EvalSession;
///
/// # fn main() -> Result<(), autockt_sim::SimError> {
/// let tia = Tia::default();
/// let mut session = EvalSession::borrowed(&tia, SimMode::Schematic);
/// let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
/// let first = session.evaluate(&idx)?;
/// let replay = session.evaluate(&idx)?; // memo hit: identical, no solve
/// assert_eq!(first, replay);
/// assert_eq!(session.solve_count(), 1);
/// assert_eq!(session.memo_hits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct EvalSession<'p> {
    problem: ProblemRef<'p>,
    mode: SimMode,
    solver: Option<SolverConfig>,
    warm_start: bool,
    memoize: bool,
    memo_capacity: usize,
    warm: WarmState,
    memo: HashMap<Vec<usize>, MemoEntry>,
    shared: Option<Arc<SharedMemo>>,
    worker_id: u64,
    solves: u64,
    memo_hits: u64,
    cross_hits: u64,
}

impl std::fmt::Debug for EvalSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSession")
            .field("problem", &self.problem.get().name())
            .field("mode", &self.mode)
            .field("warm_start", &self.warm_start)
            .field("memoize", &self.memoize)
            .field("shared", &self.shared.is_some())
            .field("memo_len", &self.memo.len())
            .field("solves", &self.solves)
            .field("memo_hits", &self.memo_hits)
            .field("cross_hits", &self.cross_hits)
            .finish()
    }
}

impl<'p> EvalSession<'p> {
    fn with(problem: ProblemRef<'p>, mode: SimMode) -> Self {
        EvalSession {
            problem,
            mode,
            solver: None,
            warm_start: true,
            memoize: true,
            memo_capacity: EvalSession::DEFAULT_MEMO_CAPACITY,
            warm: WarmState::new(),
            memo: HashMap::new(),
            shared: None,
            worker_id: 0,
            solves: 0,
            memo_hits: 0,
            cross_hits: 0,
        }
    }

    /// Creates a session borrowing the problem (optimizer-style callers).
    pub fn borrowed(problem: &'p dyn SizingProblem, mode: SimMode) -> Self {
        EvalSession::with(ProblemRef::Borrowed(problem), mode)
    }

    /// Creates a session sharing ownership of the problem (environments
    /// that must be `'static` and `Clone`).
    pub fn shared(problem: Arc<dyn SizingProblem>, mode: SimMode) -> EvalSession<'static> {
        EvalSession::with(ProblemRef::Shared(problem), mode)
    }

    /// Disables or enables warm-starting (on by default); the cold path is
    /// exactly [`SizingProblem::simulate`].
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Overrides the linear-solver backend config for every evaluation in
    /// this session, routed through [`SizingProblem::simulate_cfg`] /
    /// [`SizingProblem::simulate_warm_cfg`]. Without this (or on problems
    /// that keep the defaulted trait hooks) the problem's own config
    /// applies — [`SolverConfig::default`] selects dense or sparse
    /// automatically by MNA dimension. Memoized entries are keyed by grid
    /// point only, so pick the config before evaluating, not per point.
    pub fn with_solver_config(mut self, cfg: SolverConfig) -> Self {
        self.solver = Some(cfg);
        self
    }

    /// Sets the parallel-execution policy
    /// ([`autockt_sim::Parallelism`]) for every evaluation in this
    /// session, layered on top of the config the session would otherwise
    /// use (an explicit [`EvalSession::with_solver_config`] override if
    /// set, else the problem's own [`SizingProblem::solver_config`]).
    /// Threaded evaluations are bitwise-identical to serial ones, so
    /// memo entries stay valid across the knob.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        let base = self
            .solver
            .unwrap_or_else(|| self.problem.get().solver_config());
        self.solver = Some(base.with_parallelism(par));
        self
    }

    /// Disables or enables the memo cache (on by default).
    pub fn with_memo(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Attaches a [`SharedMemo`] pooled across sessions: lookups and
    /// insertions go to the concurrent sharded map instead of this
    /// session's private cache, so grid points solved by *any* attached
    /// worker serve every other worker's revisits. Implies memoization;
    /// warm-start state remains private to this session (hits restore the
    /// entry's warm snapshot exactly as the private memo does). The
    /// session registers itself as a distinct worker for
    /// [`EvalSession::cross_memo_hits`] accounting.
    pub fn with_shared_memo(mut self, memo: Arc<SharedMemo>) -> Self {
        self.worker_id = memo.register_worker();
        self.shared = Some(memo);
        self.memoize = true;
        self
    }

    /// Default bound on memoized grid points (see
    /// [`EvalSession::with_memo_capacity`]): ~50 MB per session at the
    /// largest topology's entry size, far above any revisit-relevant
    /// working set.
    pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 18;

    /// Bounds the memo cache to `cap` distinct grid points. At capacity,
    /// evaluations still run (and existing entries keep serving hits) but
    /// new results are no longer cached, so explore-heavy workloads —
    /// where exact revisits are rare and nearly every step would insert a
    /// never-reused entry — cannot grow memory linearly with training
    /// length. Episodes restart from the grid center, so the earliest
    /// entries are also the likeliest to be revisited.
    pub fn with_memo_capacity(mut self, cap: usize) -> Self {
        self.memo_capacity = cap;
        self
    }

    /// The problem being evaluated.
    pub fn problem(&self) -> &dyn SizingProblem {
        self.problem.get()
    }

    /// The simulation fidelity of every evaluation in this session.
    pub fn mode(&self) -> SimMode {
        self.mode
    }

    /// Evaluates grid indices `idx`, serving exact revisits from the memo
    /// cache and warm-starting the solver otherwise.
    ///
    /// # Errors
    ///
    /// Same contract as [`SizingProblem::simulate`]; errors are memoized
    /// too (an unsolvable grid point stays unsolvable).
    pub fn evaluate(&mut self, idx: &[usize]) -> Result<Vec<f64>, SimError> {
        if self.memoize {
            if let Some(shared) = &self.shared {
                if let Some((specs, warm, cross)) = shared.get(idx, self.worker_id) {
                    self.memo_hits += 1;
                    if cross {
                        self.cross_hits += 1;
                    }
                    if self.warm_start {
                        self.warm.restore(&warm);
                    }
                    return specs;
                }
            } else if let Some(hit) = self.memo.get(idx) {
                self.memo_hits += 1;
                if self.warm_start {
                    // Re-arm the warm state as of this grid point's solve:
                    // the next cache miss is one notch from *here*, not
                    // from wherever the last fresh solve happened.
                    self.warm.restore(&hit.warm);
                }
                return hit.specs.clone();
            }
        }
        self.solves += 1;
        let res = match (self.warm_start, self.solver) {
            (true, Some(cfg)) => {
                self.problem
                    .get()
                    .simulate_warm_cfg(idx, self.mode, cfg, &mut self.warm)
            }
            (true, None) => self
                .problem
                .get()
                .simulate_warm(idx, self.mode, &mut self.warm),
            (false, Some(cfg)) => self.problem.get().simulate_cfg(idx, self.mode, cfg),
            (false, None) => self.problem.get().simulate(idx, self.mode),
        };
        if self.memoize {
            let warm = if self.warm_start {
                self.warm.snapshot()
            } else {
                Vec::new()
            };
            if let Some(shared) = &self.shared {
                shared.insert(idx, res.clone(), warm, self.worker_id);
            } else if self.memo.len() < self.memo_capacity {
                self.memo.insert(
                    idx.to_vec(),
                    MemoEntry {
                        specs: res.clone(),
                        warm,
                    },
                );
            }
        }
        res
    }

    /// Whether `idx` is already memoized (no solve would be spent on it).
    pub fn is_memoized(&self, idx: &[usize]) -> bool {
        self.memoize
            && match &self.shared {
                Some(shared) => shared.contains(idx),
                None => self.memo.contains_key(idx),
            }
    }

    /// Clears warm-start state (episode reset), keeping the memo cache —
    /// the grid is the same circuit family across episodes.
    pub fn reset_warm(&mut self) {
        self.warm.reset();
    }

    /// Clears warm state *and* this session's private memo cache and
    /// counters. An attached [`SharedMemo`] is left untouched — it belongs
    /// to every worker, not this session; clear it via
    /// [`SharedMemo::clear`] if that is really intended.
    pub fn clear(&mut self) {
        self.warm.reset();
        self.memo.clear();
        self.solves = 0;
        self.memo_hits = 0;
        self.cross_hits = 0;
    }

    /// Evaluations that actually ran the simulator.
    pub fn solve_count(&self) -> u64 {
        self.solves
    }

    /// Evaluations served from the memo cache (private or shared).
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Shared-memo hits served from an entry solved by a *different*
    /// worker — always 0 without [`EvalSession::with_shared_memo`].
    pub fn cross_memo_hits(&self) -> u64 {
        self.cross_hits
    }

    /// The attached shared memo, if any.
    pub fn shared_memo(&self) -> Option<&Arc<SharedMemo>> {
        self.shared.as_ref()
    }

    /// Distinct grid points memoized so far (across all workers when a
    /// shared memo is attached).
    pub fn memo_len(&self) -> usize {
        match &self.shared {
            Some(shared) => shared.len(),
            None => self.memo.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swept_grid_matches_paper_notation() {
        // Width [2, 10, 2] * 1 um => 2, 4, 6, 8, 10 um.
        let p = ParamSpec::swept("w", 2.0, 10.0, 2.0, 1e-6);
        assert_eq!(p.cardinality(), 5);
        assert!((p.values[0] - 2e-6).abs() < 1e-18);
        assert!((p.values[4] - 10e-6).abs() < 1e-18);
    }

    #[test]
    fn swept_handles_fractional_increments() {
        // Cc [0.1, 10.0, 0.1] * 1 pF: 100 points.
        let p = ParamSpec::swept("cc", 0.1, 10.0, 0.1, 1e-12);
        assert_eq!(p.cardinality(), 100);
    }

    #[test]
    #[should_panic(expected = "bad sweep")]
    fn swept_rejects_zero_increment() {
        let _ = ParamSpec::swept("x", 1.0, 2.0, 0.0, 1.0);
    }

    #[test]
    fn swept_long_sweep_keeps_endpoint_despite_float_error() {
        // increment tiny relative to the values: accumulation `v += inc`
        // drifts past the old `end + 1e-9 * inc` guard and drops the final
        // grid point; index-based generation keeps it.
        let p = ParamSpec::swept("x", 1000.0, 1000.1, 0.001, 1.0);
        assert_eq!(p.cardinality(), 101);
        assert!((p.values[100] - 1000.1).abs() < 1e-9);
    }

    #[test]
    fn swept_values_are_exact_multiples_of_the_increment() {
        let p = ParamSpec::swept("cc", 0.1, 10.0, 0.1, 1e-12);
        assert_eq!(p.cardinality(), 100);
        for (i, v) in p.values.iter().enumerate() {
            let expect = (0.1 + i as f64 * 0.1) * 1e-12;
            assert!((v - expect).abs() < 1e-24, "index {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn session_memo_serves_exact_revisits() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic);
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let a = s.evaluate(&idx).unwrap();
        let b = s.evaluate(&idx).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.solve_count(), 1);
        assert_eq!(s.memo_hits(), 1);
        assert_eq!(s.memo_len(), 1);
        assert!(s.is_memoized(&idx));
    }

    #[test]
    fn session_reset_warm_keeps_memo() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic);
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        s.evaluate(&idx).unwrap();
        s.reset_warm();
        assert!(s.is_memoized(&idx));
        s.evaluate(&idx).unwrap();
        assert_eq!(s.solve_count(), 1, "revisit after reset must be a hit");
        s.clear();
        assert!(!s.is_memoized(&idx));
    }

    #[test]
    fn session_memo_capacity_bounds_insertions() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic).with_memo_capacity(2);
        let cards = tia.cardinalities();
        let point = |i: usize| -> Vec<usize> { cards.iter().map(|k| i % k).collect() };
        for i in 0..4 {
            let _ = s.evaluate(&point(i));
        }
        assert_eq!(s.memo_len(), 2, "insertions stop at capacity");
        // Entries admitted below capacity still serve hits.
        let solves = s.solve_count();
        let _ = s.evaluate(&point(0));
        assert_eq!(s.solve_count(), solves);
        assert!(s.memo_hits() >= 1);
    }

    #[test]
    fn shared_memo_shard_capacity_evicts_fifo() {
        let memo = SharedMemo::new(1, 2); // single shard bounding 2 entries
        memo.insert(&[0], Ok(vec![0.0]), Vec::new(), 0);
        memo.insert(&[1], Ok(vec![1.0]), Vec::new(), 0);
        assert_eq!(memo.len(), 2);
        memo.insert(&[2], Ok(vec![2.0]), Vec::new(), 0);
        assert_eq!(memo.len(), 2, "capacity bound holds");
        assert_eq!(memo.evictions(), 1);
        assert!(!memo.contains(&[0]), "oldest entry evicted first");
        assert!(memo.contains(&[1]) && memo.contains(&[2]));
        // Duplicate insertion keeps the first value (first-solve-wins).
        memo.insert(&[2], Ok(vec![9.0]), Vec::new(), 1);
        let (specs, _, _) = memo.get(&[2], 0).unwrap();
        assert_eq!(specs.unwrap(), vec![2.0]);
    }

    #[test]
    fn shared_memo_rounds_shards_to_power_of_two() {
        let memo = SharedMemo::new(5, 100);
        assert_eq!(memo.num_shards(), 8);
        assert!(memo.capacity() >= 100);
        assert!(memo.is_empty());
    }

    #[test]
    fn shared_memo_tracks_lock_contention() {
        let memo = Arc::new(SharedMemo::new(1, 1024)); // one shard: all keys collide
        assert_eq!(memo.contended_locks(), 0);
        assert_eq!(memo.shard_contention(), vec![0]);
        // Hammer the single shard from several threads: every probe and
        // insert routes through the counting lock path (how much
        // contention actually materializes depends on scheduling, so
        // only the counter invariants are asserted).
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let memo = Arc::clone(&memo);
                scope.spawn(move || {
                    for i in 0..2000usize {
                        memo.insert(&[t as usize, i], Ok(vec![i as f64]), Vec::new(), t);
                        let _ = memo.get(&[t as usize, i], t);
                    }
                });
            }
        });
        assert_eq!(memo.shard_contention().len(), memo.num_shards());
        assert_eq!(
            memo.contended_locks(),
            memo.shard_contention().iter().sum::<u64>()
        );
        // Uncontended single-threaded access never counts.
        let quiet = SharedMemo::new(4, 64);
        quiet.insert(&[1], Ok(vec![1.0]), Vec::new(), 0);
        let _ = quiet.get(&[1], 0);
        assert_eq!(quiet.contended_locks(), 0);
    }

    #[test]
    fn shared_memo_pools_across_sessions() {
        let tia = crate::Tia::default();
        let memo = Arc::new(SharedMemo::new(4, 1024));
        let mut a =
            EvalSession::borrowed(&tia, SimMode::Schematic).with_shared_memo(Arc::clone(&memo));
        let mut b =
            EvalSession::borrowed(&tia, SimMode::Schematic).with_shared_memo(Arc::clone(&memo));
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let x = a.evaluate(&idx).unwrap();
        let y = b.evaluate(&idx).unwrap();
        assert_eq!(x, y);
        assert_eq!(a.solve_count(), 1);
        assert_eq!(b.solve_count(), 0, "pooled revisit must not solve");
        assert_eq!(b.memo_hits(), 1);
        assert_eq!(b.cross_memo_hits(), 1);
        // A worker re-reading its own insertion is a hit, not a cross hit.
        a.evaluate(&idx).unwrap();
        assert_eq!(a.memo_hits(), 1);
        assert_eq!(a.cross_memo_hits(), 0);
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.cross_hits(), 1);
        assert!(a.is_memoized(&idx));
        assert_eq!(a.memo_len(), 1);
        // Session clear leaves the pooled entries alone.
        a.clear();
        assert!(a.is_memoized(&idx));
        memo.clear();
        assert!(!a.is_memoized(&idx));
    }

    /// A little two-spec engine over hand-built RC "corners" — the
    /// engine is topology-agnostic, so the tests drive it directly.
    fn rc_engine(strategy: CornerStrategy) -> (CornerEvaluator, Vec<SpecDef>) {
        let engine = CornerEvaluator::new(
            CornerPlan::pvt_worst_case(),
            autockt_sim::dc::DcOptions::default(),
            autockt_sim::ac::log_freqs(1e3, 1e8, 4),
            strategy,
        );
        let specs = vec![
            SpecDef {
                name: "gain",
                unit: "",
                kind: SpecKind::HardMin,
                lo: 0.0,
                hi: 1.0,
                fail_value: 0.0,
            },
            SpecDef {
                name: "mag_hi",
                unit: "",
                kind: SpecKind::HardMax,
                lo: 0.0,
                hi: 1.0,
                fail_value: 9.0,
            },
        ];
        (engine, specs)
    }

    fn rc_case(slot: usize, defective: Option<usize>) -> CornerCase {
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        if defective == Some(slot) {
            // Inconsistent netlist: conflicting parallel sources make
            // every gmin stage singular, so this corner cannot solve.
            ckt.vsource(i, GND, 1.0, 0.0);
            ckt.vsource(i, GND, 2.0, 0.0);
            ckt.resistor(i, o, 1.0e3);
        } else {
            ckt.vsource(i, GND, 0.0, 1.0);
            ckt.resistor(i, o, 1.0e3 * (slot + 1) as f64);
            ckt.capacitor(o, GND, 1e-9);
        }
        CornerCase {
            ckt,
            out: o,
            temp_k: 300.0,
            vdd_src: 0,
        }
    }

    use autockt_sim::netlist::GND;

    fn run_rc_engine(
        strategy: CornerStrategy,
        defective: Option<usize>,
        warm: Option<&mut WarmState>,
    ) -> Result<Vec<f64>, SimError> {
        let (engine, specs) = rc_engine(strategy);
        engine.evaluate(
            &specs,
            |slot, _pvt| rc_case(slot, defective),
            |_slot, _case, _op, _solver, resp, _ws, _noise, _settle| {
                Ok(vec![resp.h[0].norm(), resp.h.last().unwrap().norm()])
            },
            warm,
        )
    }

    /// Engine-level noise wiring: with `with_noise`, both strategies hand
    /// the measure closure a per-corner noise result, and the batched
    /// (lockstep) results are bitwise-identical to the serial reference.
    #[test]
    fn corner_engine_noise_batched_matches_serial_bitwise() {
        let nfreqs = autockt_sim::ac::log_freqs(1e3, 1e8, 4);
        let run = |strategy: CornerStrategy, warm: Option<&mut WarmState>| {
            let (engine, specs) = rc_engine(strategy);
            let engine = engine.with_noise(nfreqs.clone());
            engine.evaluate(
                &specs,
                |slot, _pvt| rc_case(slot, None),
                |_slot, _case, _op, _solver, resp, _ws, noise, _settle| {
                    let nr = noise
                        .expect("engine must run noise")
                        .as_ref()
                        .expect("rc corners are noisy and solvable");
                    Ok(vec![resp.h[0].norm(), nr.out_vrms])
                },
                warm,
            )
        };
        let serial = run(CornerStrategy::Serial, None).unwrap();
        let batched = run(CornerStrategy::Batched, None).unwrap();
        assert_eq!(serial, batched);
        assert!(serial[1] > 0.0, "noisy resistors must produce output noise");
        // Warm runs agree within solver tolerance (linear circuits: the
        // corrected path is exact, so this is tight).
        let mut ws = WarmState::new();
        let mut wb = WarmState::new();
        let s = run(CornerStrategy::Serial, Some(&mut ws)).unwrap();
        let b = run(CornerStrategy::Batched, Some(&mut wb)).unwrap();
        for (x, y) in s.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    /// Engine-level settle wiring: with `with_settling`, both strategies
    /// hand the measure closure a per-corner `(t, y)` settling record
    /// over one shared time window, and the cold batched records
    /// (symbolic-sharing path) are bitwise-identical to the phased
    /// serial reference.
    #[test]
    fn corner_engine_settle_batched_matches_serial_bitwise() {
        let run = |strategy: CornerStrategy, warm: Option<&mut WarmState>| {
            let (engine, specs) = rc_engine(strategy);
            let engine = engine.with_settling(SettleSpec {
                steps: 256,
                window: 8.0,
            });
            engine.evaluate(
                &specs,
                |slot, _pvt| rc_case(slot, None),
                |_slot, _case, _op, _solver, resp, _ws, _noise, settle| {
                    let (t, y) = settle
                        .expect("rc corners have a valid cutoff")
                        .as_ref()
                        .expect("rc settling integrates");
                    assert_eq!(t.len(), 257, "steps + 1 samples per record");
                    assert!(t[t.len() - 1] > 0.0, "shared window must be positive");
                    Ok(vec![resp.h[0].norm(), *y.last().unwrap()])
                },
                warm,
            )
        };
        let serial = run(CornerStrategy::Serial, None).unwrap();
        let batched = run(CornerStrategy::Batched, None).unwrap();
        assert_eq!(serial, batched, "cold settle stage must be bitwise");
        // The RC corners settle toward the driven DC level, so the record
        // end is a real voltage, not a zero placeholder.
        assert!(serial[1].abs() > 0.0);
        // Warm runs agree within solver tolerance (linear circuits: the
        // corrected path is exact to roundoff).
        let mut ws = WarmState::new();
        let mut wb = WarmState::new();
        let s = run(CornerStrategy::Serial, Some(&mut ws)).unwrap();
        let b = run(CornerStrategy::Batched, Some(&mut wb)).unwrap();
        for (x, y) in s.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn corner_engine_batched_matches_serial_bitwise() {
        let serial = run_rc_engine(CornerStrategy::Serial, None, None).unwrap();
        let batched = run_rc_engine(CornerStrategy::Batched, None, None).unwrap();
        assert_eq!(serial, batched);
        // Warm-stated runs agree too (same slots, same kernels).
        let mut ws = WarmState::new();
        let mut wb = WarmState::new();
        for _ in 0..2 {
            let s = run_rc_engine(CornerStrategy::Serial, None, Some(&mut ws)).unwrap();
            let b = run_rc_engine(CornerStrategy::Batched, None, Some(&mut wb)).unwrap();
            assert_eq!(s, b);
            assert_eq!(s, serial, "linear circuit: warm fixed point identical");
        }
    }

    #[test]
    fn corner_engine_defective_corner_fails_without_stalling_siblings() {
        // A deliberately unsolvable corner: both strategies report the
        // failure (the batched path exercises the per-corner mask and
        // scalar fallback), and the defect in one corner does not change
        // what a defect-free evaluation of the *other* corners produces.
        let serial = run_rc_engine(CornerStrategy::Serial, Some(1), None);
        let batched = run_rc_engine(CornerStrategy::Batched, Some(1), None);
        assert!(matches!(serial, Err(SimError::SingularMatrix { .. })));
        assert!(matches!(batched, Err(SimError::SingularMatrix { .. })));
        // Same with the defective corner last (error discovered after
        // every sibling already solved in lockstep).
        let last = CornerPlan::pvt_worst_case().len() - 1;
        let batched_last = run_rc_engine(CornerStrategy::Batched, Some(last), None);
        assert!(batched_last.is_err());
    }

    #[test]
    fn session_without_memo_always_solves() {
        let tia = crate::Tia::default();
        let mut s = EvalSession::borrowed(&tia, SimMode::Schematic).with_memo(false);
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let a = s.evaluate(&idx).unwrap();
        let b = s.evaluate(&idx).unwrap();
        assert_eq!(s.solve_count(), 2);
        assert_eq!(s.memo_hits(), 0);
        // Revisiting the identical grid point warm-started must reproduce
        // the same fixed point to solver tolerance.
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }
}
