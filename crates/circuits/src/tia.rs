//! The simple transimpedance amplifier of Fig. 4: a CMOS inverter with a
//! resistive feedback network, driven by a photodiode-like current source.
//!
//! Parameter space (paper Sec. III-A, `[start, end, increment]`):
//! width `[2, 10, 2] um` and multiplier `[2, 32, 2]` for each of the two
//! transistors, feedback resistors in series `[2, 20, 2]` and in parallel
//! `[1, 20, 1]` with a fixed 5.6 kOhm unit.
//!
//! Specifications: settling time, cutoff (-3 dB) frequency, and integrated
//! output noise.

use crate::problem::{
    CornerCase, CornerEvaluator, CornerPlan, CornerStrategy, ParamSpec, SettleRecord, SettleSpec,
    SimMode, SizingProblem, SpecDef, SpecKind,
};
use autockt_sim::ac::{ac_sweep_cfg, log_freqs, AcResponse, AcSolver, AcWorkspace};
use autockt_sim::dc::{dc_operating_point, DcOptions, OpPoint, WarmState};
use autockt_sim::device::{MosPolarity, Technology};
use autockt_sim::measure::settling_time;
use autockt_sim::netlist::{Circuit, Mosfet, Node, Step, GND};
use autockt_sim::noise::{noise_analysis_cfg, NoiseResult};
use autockt_sim::pex::{extract, PexConfig};
use autockt_sim::tran::{transient, transient_warm, TranOptions};
use autockt_sim::{SimError, SolverConfig};

/// Index constants into the TIA spec vector.
pub mod spec_index {
    /// Settling time (s).
    pub const SETTLING: usize = 0;
    /// Cutoff frequency (Hz).
    pub const CUTOFF: usize = 1;
    /// Integrated output noise (V rms).
    pub const NOISE: usize = 2;
}

/// The transimpedance-amplifier sizing problem.
#[derive(Debug, Clone)]
pub struct Tia {
    tech: Technology,
    params: Vec<ParamSpec>,
    specs: Vec<SpecDef>,
    /// Unit feedback resistance (paper: 5.6 kOhm).
    pub r_unit: f64,
    /// Photodiode capacitance at the input (F).
    pub c_in: f64,
    /// Load capacitance at the output (F).
    pub c_load: f64,
    pex: PexConfig,
    transient_settling: bool,
    corner_strategy: CornerStrategy,
    solver: SolverConfig,
}

impl Default for Tia {
    fn default() -> Self {
        Tia::new(Technology::ptm45())
    }
}

impl Tia {
    /// Creates the TIA problem over a technology (the paper uses 45 nm
    /// BSIM predictive models).
    pub fn new(tech: Technology) -> Self {
        let params = vec![
            ParamSpec::swept("w_n", 2.0, 10.0, 2.0, 1e-6),
            ParamSpec::swept("m_n", 2.0, 32.0, 2.0, 1.0),
            ParamSpec::swept("w_p", 2.0, 10.0, 2.0, 1e-6),
            ParamSpec::swept("m_p", 2.0, 32.0, 2.0, 1.0),
            ParamSpec::swept("r_series", 2.0, 20.0, 2.0, 1.0),
            ParamSpec::swept("r_parallel", 1.0, 20.0, 1.0, 1.0),
        ];
        let specs = vec![
            SpecDef {
                name: "settling_time",
                unit: "s",
                kind: SpecKind::HardMax,
                lo: 150e-12,
                hi: 1000e-12,
                fail_value: 1.0,
            },
            SpecDef {
                name: "cutoff_freq",
                unit: "Hz",
                kind: SpecKind::HardMin,
                lo: 6.0e8,
                hi: 3.5e9,
                fail_value: 0.0,
            },
            SpecDef {
                name: "noise",
                unit: "Vrms",
                kind: SpecKind::HardMax,
                lo: 3.9e-4,
                hi: 6.0e-4,
                fail_value: 1.0,
            },
        ];
        Tia {
            tech,
            params,
            specs,
            r_unit: 5.6e3,
            c_in: 40e-15,
            c_load: 25e-15,
            pex: PexConfig::default(),
            transient_settling: false,
            corner_strategy: CornerStrategy::default(),
            solver: SolverConfig::default(),
        }
    }

    /// Overrides the linear-solver backend config for every solve this
    /// problem runs (DC Newton, AC sweeps, noise, step response,
    /// transient). The default picks dense or sparse automatically by MNA
    /// dimension — schematic-sized TIAs stay dense, deep-mesh PEX
    /// extractions (see [`PexConfig::mesh_depth`]) cross into the CSC
    /// sparse backend.
    pub fn with_solver_config(mut self, cfg: SolverConfig) -> Self {
        self.solver = cfg;
        self
    }

    /// The linear-solver backend config every evaluation dispatches on.
    pub fn solver_config(&self) -> SolverConfig {
        self.solver
    }

    /// Selects how `PexWorstCase` iterates the PVT corner set: batched
    /// lockstep (the default) or one corner at a time through the scalar
    /// kernels. With warm-start off the two produce bitwise-identical
    /// specs (property-tested); serial exists as the reference and
    /// benchmark baseline.
    pub fn with_corner_strategy(mut self, strategy: CornerStrategy) -> Self {
        self.corner_strategy = strategy;
        self
    }

    /// Replaces the parasitic-extraction configuration — e.g. to deepen
    /// the RC mesh (`PexConfig::mesh_depth`) for denser MNA systems.
    pub fn with_pex_config(mut self, pex: PexConfig) -> Self {
        self.pex = pex;
        self
    }

    /// The parasitic-extraction configuration used by `Pex` and
    /// `PexWorstCase` evaluations.
    pub fn pex_config(&self) -> &PexConfig {
        &self.pex
    }

    /// Measures settling with the nonlinear transient engine (a small step
    /// of photodiode current integrated through Newton time stepping)
    /// instead of the small-signal linear step response. Off by default —
    /// the linear response is exact for small-signal settling and orders
    /// of magnitude cheaper — but the transient path exercises large-signal
    /// effects and, evaluated through a session, warm-starts its initial
    /// DC operating point from the session's [`WarmState`] instead of
    /// cold-starting (applies to `Schematic` and `Pex` modes; the
    /// worst-case PVT sweep keeps the linear measurement).
    pub fn with_transient_settling(mut self, on: bool) -> Self {
        self.transient_settling = on;
        self
    }

    /// Builds the netlist at the given grid indices for a technology
    /// variant. Returns the circuit and its output node.
    pub fn build(&self, idx: &[usize], tech: &Technology) -> (Circuit, Node) {
        self.build_inner(idx, tech, None)
    }

    /// Like [`Tia::build`], with the photodiode replaced by a step current
    /// source (`0 -> i_step` at `t = 0`) for nonlinear transient settling
    /// measurements. Element and node order match `build` exactly, so the
    /// MNA structure — and therefore a session's warm-start slot — is
    /// interchangeable with the AC variant's.
    pub fn build_step(&self, idx: &[usize], tech: &Technology, i_step: f64) -> (Circuit, Node) {
        self.build_inner(
            idx,
            tech,
            Some(Step {
                v0: 0.0,
                v1: i_step,
                t_delay: 0.0,
            }),
        )
    }

    fn build_inner(&self, idx: &[usize], tech: &Technology, step: Option<Step>) -> (Circuit, Node) {
        assert_eq!(idx.len(), self.params.len(), "wrong parameter count");
        let w_n = self.params[0].values[idx[0]];
        let m_n = self.params[1].values[idx[1]];
        let w_p = self.params[2].values[idx[2]];
        let m_p = self.params[3].values[idx[3]];
        let n_ser = self.params[4].values[idx[4]];
        let n_par = self.params[5].values[idx[5]];
        let rf = self.r_unit * n_ser / n_par;

        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vdd, GND, tech.vdd, 0.0);
        // Photodiode: AC test current of 1 A (linearity makes magnitude
        // irrelevant), zero DC so the inverter self-biases through Rf.
        match step {
            None => ckt.isource(GND, vin, 0.0, 1.0),
            Some(s) => ckt.isource_step(GND, vin, s, 1.0),
        }
        ckt.capacitor(vin, GND, self.c_in);
        ckt.capacitor(out, GND, self.c_load);
        ckt.resistor(out, vin, rf);
        let l = 2.0 * tech.lmin;
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Nmos,
            d: out,
            g: vin,
            s: GND,
            w: w_n,
            l,
            mult: m_n,
            model: tech.nmos,
        });
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Pmos,
            d: out,
            g: vin,
            s: vdd,
            w: w_p,
            l,
            mult: m_p,
            model: tech.pmos,
        });
        (ckt, out)
    }

    /// The AC sweep grid shared by every fidelity's measurement (the
    /// corner engine and `measure_at` must sweep the same points).
    fn ac_freqs() -> Vec<f64> {
        log_freqs(1e5, 1e12, 10)
    }

    /// The noise integration grid shared by every fidelity's measurement
    /// (the corner engine's batched noise analyses and the single-corner
    /// `measure_at` path must integrate the same points). Public so the
    /// noise-corner benches time the exact production workload.
    pub fn noise_freqs() -> Vec<f64> {
        log_freqs(1e4, 1e11, 8)
    }

    fn dc_opts(&self) -> DcOptions {
        DcOptions {
            initial_v: self.tech.vdd / 2.0,
            solver: self.solver,
            ..DcOptions::default()
        }
    }

    fn measure(&self, ckt: &Circuit, out: Node, temp_k: f64) -> Result<Vec<f64>, SimError> {
        let op = dc_operating_point(ckt, &self.dc_opts())?;
        self.measure_at(ckt, out, temp_k, &op, None)
    }

    fn measure_warm(
        &self,
        ckt: &Circuit,
        out: Node,
        temp_k: f64,
        slot: usize,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        let op = state.solve(slot, ckt, &self.dc_opts())?;
        self.measure_at(ckt, out, temp_k, &op, Some(state.ac_workspace()))
    }

    /// Shared body of `simulate`/`simulate_warm`: `state` selects the
    /// warm (session-threaded) or cold measurement path.
    fn simulate_inner(
        &self,
        idx: &[usize],
        mode: SimMode,
        mut state: Option<&mut WarmState>,
    ) -> Result<Vec<f64>, SimError> {
        let measure = |ckt: &Circuit, out, temp_k, slot, state: Option<&mut WarmState>| match state
        {
            Some(st) => self.measure_warm(ckt, out, temp_k, slot, st),
            None => self.measure(ckt, out, temp_k),
        };
        match mode {
            SimMode::Schematic => {
                let (ckt, out) = self.build(idx, &self.tech);
                let mut specs = measure(&ckt, out, 300.15, 0, state.as_deref_mut())?;
                if self.transient_settling {
                    let (sckt, sout) = self.build_step(idx, &self.tech, Tia::STEP_CURRENT);
                    specs[spec_index::SETTLING] =
                        self.settling_transient(&sckt, sout, specs[spec_index::CUTOFF], state)?;
                }
                Ok(specs)
            }
            SimMode::Pex => {
                let (ckt, out) = self.build(idx, &self.tech);
                let ex = extract(&ckt, &self.pex);
                let mut specs = measure(&ex, out, 300.15, 0, state.as_deref_mut())?;
                if self.transient_settling {
                    let (sckt, sout) = self.build_step(idx, &self.tech, Tia::STEP_CURRENT);
                    let sex = extract(&sckt, &self.pex);
                    specs[spec_index::SETTLING] =
                        self.settling_transient(&sex, sout, specs[spec_index::CUTOFF], state)?;
                }
                Ok(specs)
            }
            SimMode::PexWorstCase => {
                // Noise and settling run inside the engine (`with_noise`
                // / `with_settling`) so the batched strategy can factor
                // them with the corner set: lockstep / symbolic-sharing
                // (bitwise) cold, corner-batched (propagator/Woodbury
                // by regime) warm —
                // the TIA's worst-case step is noise- and settle-bound,
                // so this is where its dense-dim speedup comes from.
                // Settling integrates one shared window scaled to the
                // slowest corner's cutoff (window 8.0, as the per-corner
                // measurement used), 2048 trapezoidal steps.
                let engine = CornerEvaluator::new(
                    CornerPlan::pvt_worst_case(),
                    self.dc_opts(),
                    Tia::ac_freqs(),
                    self.corner_strategy,
                )
                .with_noise(Tia::noise_freqs())
                .with_settling(SettleSpec {
                    steps: 2048,
                    window: 8.0,
                });
                engine.evaluate(
                    &self.specs,
                    |_slot, pvt| {
                        let tech = self.tech.at_corner(*pvt);
                        let (ckt, out) = self.build(idx, &tech);
                        CornerCase {
                            ckt: extract(&ckt, &self.pex),
                            out,
                            temp_k: pvt.temp_kelvin(),
                            vdd_src: 0,
                        }
                    },
                    |_slot, case, op, solver, resp, ws, noise, settle| {
                        self.corner_specs(
                            &case.ckt,
                            case.out,
                            case.temp_k,
                            op,
                            Some(solver),
                            resp,
                            ws,
                            noise,
                            settle,
                        )
                    },
                    state,
                )
            }
        }
    }

    /// Step amplitude for the nonlinear transient settling measurement:
    /// small enough that the response stays in the small-signal regime
    /// (output deviation of a few millivolts), so it cross-checks the
    /// linear step response rather than measuring slewing.
    pub const STEP_CURRENT: f64 = 1e-6;

    /// Settling time from a nonlinear transient of the step-driven
    /// netlist, warm-starting the initial DC operating point from the
    /// session's state when available (the step circuit shares the AC
    /// variant's MNA structure and operating point, so the slot is hot).
    /// Transient non-convergence and an unsettled record report the spec's
    /// fail value; only an unsolvable operating point is an error.
    fn settling_transient(
        &self,
        ckt: &Circuit,
        out: Node,
        cutoff: f64,
        state: Option<&mut WarmState>,
    ) -> Result<f64, SimError> {
        let fail = self.specs[spec_index::SETTLING].fail_value;
        if cutoff <= 0.0 {
            return Ok(fail);
        }
        let mut opts = TranOptions::new(8.0 / cutoff, 512);
        opts.dc = self.dc_opts();
        let res = match state {
            Some(st) => transient_warm(ckt, &opts, 0, st),
            None => transient(ckt, &opts),
        };
        let res = match res {
            Ok(r) => r,
            Err(SimError::TranNoConvergence { .. }) => return Ok(fail),
            Err(e) => return Err(e),
        };
        let w = res.node_waveform(out);
        Ok(settling_time(&res.t, &w, 0.02).unwrap_or(fail))
    }

    fn measure_at(
        &self,
        ckt: &Circuit,
        out: Node,
        temp_k: f64,
        op: &OpPoint,
        mut ac_ws: Option<&mut AcWorkspace>,
    ) -> Result<Vec<f64>, SimError> {
        let freqs = Tia::ac_freqs();
        let resp = match ac_ws.as_deref_mut() {
            Some(ws) => ac_sweep_cfg(ckt, op, &freqs, out, self.solver, ws)?,
            None => ac_sweep_cfg(
                ckt,
                op,
                &freqs,
                out,
                self.solver,
                &mut AcWorkspace::default(),
            )?,
        };
        self.corner_specs(ckt, out, temp_k, op, None, &resp, ac_ws, None, None)
    }

    /// Spec extraction shared by the single-corner measurement and the
    /// corner engine: cutoff from the swept response, settling from the
    /// linear step response — taken from the engine's settle stage when
    /// provided (`settle`: corner-batched over a shared window), run
    /// scalar here otherwise (single-corner fidelities, own-bandwidth
    /// window) — and integrated output noise at `temp_k`, likewise from
    /// the engine's corner-batched analysis when provided (`noise`).
    #[allow(clippy::too_many_arguments)]
    fn corner_specs(
        &self,
        ckt: &Circuit,
        out: Node,
        temp_k: f64,
        op: &OpPoint,
        solver: Option<&AcSolver<'_>>,
        resp: &AcResponse,
        ac_ws: Option<&mut AcWorkspace>,
        noise: Option<&Result<NoiseResult, SimError>>,
        settle: Option<&SettleRecord>,
    ) -> Result<Vec<f64>, SimError> {
        let cutoff = resp
            .f_3db()
            .unwrap_or(self.specs[spec_index::CUTOFF].fail_value);

        // Settling: window scaled to the measured bandwidth so both 5 ps
        // and 500 ps responses resolve on a 2048-step grid. The engine's
        // settle stage (corner evaluations) already integrated the
        // record; an engine-detected invalid cutoff arrives as `None`
        // and falls into the `cutoff <= 0` arm below, matching the
        // local measurement.
        let settling = match settle {
            Some(Ok((t, y))) => {
                settling_time(t, y, 0.02).unwrap_or(self.specs[spec_index::SETTLING].fail_value)
            }
            Some(Err(e)) => return Err(e.clone()),
            None if cutoff > 0.0 => {
                let own;
                let solver = match solver {
                    Some(s) => s,
                    None => {
                        own = AcSolver::new(ckt, op).with_config(self.solver);
                        &own
                    }
                };
                let t_stop = 8.0 / cutoff;
                let (t, y) = solver.step_response(out, t_stop, 2048)?;
                settling_time(&t, &y, 0.02).unwrap_or(self.specs[spec_index::SETTLING].fail_value)
            }
            None => self.specs[spec_index::SETTLING].fail_value,
        };

        // Integrated output noise across the amplifier band: the corner
        // engine already analyzed it (batched/corrected); single-corner
        // paths run the scalar analysis here. A noise failure reports the
        // spec's fail value either way.
        let fail = self.specs[spec_index::NOISE].fail_value;
        let noise = match noise {
            Some(nr) => nr.as_ref().map(|n| n.out_vrms).unwrap_or(fail),
            None => {
                let nfreqs = Tia::noise_freqs();
                match ac_ws {
                    Some(ws) => noise_analysis_cfg(ckt, op, out, &nfreqs, temp_k, self.solver, ws),
                    None => noise_analysis_cfg(
                        ckt,
                        op,
                        out,
                        &nfreqs,
                        temp_k,
                        self.solver,
                        &mut AcWorkspace::default(),
                    ),
                }
                .map(|n| n.out_vrms)
                .unwrap_or(fail)
            }
        };

        Ok(vec![settling, cutoff, noise])
    }
}

impl SizingProblem for Tia {
    fn name(&self) -> &'static str {
        "tia"
    }

    fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    fn specs(&self) -> &[SpecDef] {
        &self.specs
    }

    fn simulate(&self, idx: &[usize], mode: SimMode) -> Result<Vec<f64>, SimError> {
        self.simulate_inner(idx, mode, None)
    }

    fn simulate_warm(
        &self,
        idx: &[usize],
        mode: SimMode,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        self.simulate_inner(idx, mode, Some(state))
    }

    fn solver_config(&self) -> SolverConfig {
        self.solver
    }

    fn simulate_cfg(
        &self,
        idx: &[usize],
        mode: SimMode,
        cfg: SolverConfig,
    ) -> Result<Vec<f64>, SimError> {
        self.clone().with_solver_config(cfg).simulate(idx, mode)
    }

    fn simulate_warm_cfg(
        &self,
        idx: &[usize],
        mode: SimMode,
        cfg: SolverConfig,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        self.clone()
            .with_solver_config(cfg)
            .simulate_warm(idx, mode, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_design_simulates() {
        let tia = Tia::default();
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let specs = tia.simulate(&idx, SimMode::Schematic).unwrap();
        assert_eq!(specs.len(), 3);
        let (ts, fc, vn) = (specs[0], specs[1], specs[2]);
        assert!(ts > 0.0 && ts < 1e-6, "settling {ts}");
        assert!(fc > 1e6 && fc < 1e12, "cutoff {fc}");
        assert!(vn > 1e-9 && vn < 1e-1, "noise {vn}");
    }

    #[test]
    fn more_feedback_resistance_lowers_bandwidth() {
        let tia = Tia::default();
        let mut lo_r: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let mut hi_r = lo_r.clone();
        lo_r[4] = 0; // fewest series units
        lo_r[5] = tia.cardinalities()[5] - 1; // most parallel
        hi_r[4] = tia.cardinalities()[4] - 1;
        hi_r[5] = 0;
        let s_lo = tia.simulate(&lo_r, SimMode::Schematic).unwrap();
        let s_hi = tia.simulate(&hi_r, SimMode::Schematic).unwrap();
        assert!(
            s_hi[spec_index::CUTOFF] < s_lo[spec_index::CUTOFF],
            "bigger Rf must be slower: {} vs {}",
            s_hi[spec_index::CUTOFF],
            s_lo[spec_index::CUTOFF]
        );
    }

    #[test]
    fn transient_settling_cross_checks_linear_and_threads_warm_state() {
        let lin = Tia::default();
        let tran = Tia::default().with_transient_settling(true);
        let idx: Vec<usize> = lin.cardinalities().iter().map(|k| k / 2).collect();
        let s_lin = lin.simulate(&idx, SimMode::Schematic).unwrap();
        // Cold reference path.
        let s_cold = tran.simulate(&idx, SimMode::Schematic).unwrap();
        // Session path: the WarmState threads through the transient's DC.
        let mut session = crate::problem::EvalSession::borrowed(&tran, SimMode::Schematic);
        let s_warm = session.evaluate(&idx).unwrap();
        let (lin_t, cold_t, warm_t) = (
            s_lin[spec_index::SETTLING],
            s_cold[spec_index::SETTLING],
            s_warm[spec_index::SETTLING],
        );
        assert!(cold_t > 0.0 && cold_t < 1e-6, "settling {cold_t}");
        // A small-amplitude step stays small-signal: the nonlinear
        // settling must agree with the linear response up to integration
        // and device-cap modelling differences.
        assert!(
            (cold_t - lin_t).abs() <= 0.5 * lin_t.max(cold_t),
            "transient settling {cold_t} vs linear {lin_t}"
        );
        // Warm and cold transient converge to the same fixed point.
        assert!(
            (warm_t - cold_t).abs() <= 5e-3 * (1.0 + cold_t.abs()),
            "warm {warm_t} vs cold {cold_t}"
        );
        // The flag leaves the other specs untouched.
        assert_eq!(s_cold[spec_index::CUTOFF], s_lin[spec_index::CUTOFF]);
        assert_eq!(s_cold[spec_index::NOISE], s_lin[spec_index::NOISE]);
    }

    #[test]
    fn forced_sparse_backend_matches_dense_specs() {
        let tia = Tia::default();
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let dense = tia.simulate(&idx, SimMode::Schematic).unwrap();
        // Forcing the CSC backend well below the auto crossover must land
        // on the same specs to solver tolerance.
        let sparse = tia
            .simulate_cfg(&idx, SimMode::Schematic, SolverConfig::sparse())
            .unwrap();
        for (d, s) in dense.iter().zip(&sparse) {
            assert!((d - s).abs() <= 5e-3 * (1.0 + d.abs()), "{d} vs {s}");
        }
        // The session-level override routes through the same hook.
        let mut sess = crate::problem::EvalSession::borrowed(&tia, SimMode::Schematic)
            .with_solver_config(SolverConfig::sparse());
        let via_session = sess.evaluate(&idx).unwrap();
        assert_eq!(sess.solve_count(), 1);
        for (v, d) in via_session.iter().zip(&dense) {
            assert!((v - d).abs() <= 5e-3 * (1.0 + d.abs()), "{v} vs {d}");
        }
    }

    #[test]
    fn pex_is_slower_than_schematic() {
        let tia = Tia::default();
        let idx: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
        let sch = tia.simulate(&idx, SimMode::Schematic).unwrap();
        let pex = tia.simulate(&idx, SimMode::Pex).unwrap();
        assert!(pex[spec_index::CUTOFF] < sch[spec_index::CUTOFF]);
    }

    #[test]
    fn simulation_is_deterministic() {
        let tia = Tia::default();
        let idx = vec![1, 3, 2, 5, 4, 9];
        let a = tia.simulate(&idx, SimMode::Schematic).unwrap();
        let b = tia.simulate(&idx, SimMode::Schematic).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn space_size_matches_structure() {
        let tia = Tia::default();
        // 5 * 16 * 5 * 16 * 10 * 20 = 1.28e6
        assert!((tia.log10_space_size() - 6.107).abs() < 0.01);
    }

    #[test]
    fn worst_case_reduction_directions() {
        let specs = vec![
            SpecDef {
                name: "a",
                unit: "",
                kind: SpecKind::HardMin,
                lo: 0.0,
                hi: 1.0,
                fail_value: 0.0,
            },
            SpecDef {
                name: "b",
                unit: "",
                kind: SpecKind::HardMax,
                lo: 0.0,
                hi: 1.0,
                fail_value: 9.0,
            },
        ];
        let rows = vec![vec![3.0, 5.0], vec![2.0, 7.0], vec![4.0, 6.0]];
        assert_eq!(crate::problem::worst_case(&specs, &rows), vec![2.0, 7.0]);
    }
}
