//! # autockt-circuits — the paper's three circuit topologies
//!
//! Parameterised generators for the circuits AutoCkt is evaluated on
//! (Settaluri et al., DATE 2020):
//!
//! - [`tia::Tia`] — simple transimpedance amplifier (Fig. 4, Sec. III-A)
//! - [`opamp2::OpAmp2`] — two-stage op-amp (Fig. 6, Sec. III-B)
//! - [`neggm::NegGmOta`] — two-stage OTA with negative-gm load
//!   (Fig. 9, Sec. III-C/D)
//!
//! Each implements [`problem::SizingProblem`]: a discrete parameter grid, a
//! spec list with target sampling ranges, and a pure
//! `parameters -> measured specs` evaluation at schematic, PEX, or
//! worst-case-PVT PEX fidelity.
//!
//! ## Example
//!
//! ```
//! use autockt_circuits::prelude::*;
//!
//! # fn main() -> Result<(), autockt_sim::SimError> {
//! let tia = Tia::default();
//! let center: Vec<usize> = tia.cardinalities().iter().map(|k| k / 2).collect();
//! let specs = tia.simulate(&center, SimMode::Schematic)?;
//! println!("settling {:.3e} s, cutoff {:.3e} Hz", specs[0], specs[1]);
//! # Ok(())
//! # }
//! ```

pub mod neggm;
pub mod opamp2;
pub mod problem;
pub mod tia;

pub use neggm::NegGmOta;
pub use opamp2::OpAmp2;
pub use problem::{
    CornerCase, CornerEvaluator, CornerPlan, CornerStrategy, EvalSession, ParamSpec, SharedMemo,
    SimMode, SizingProblem, SpecDef, SpecKind,
};
pub use tia::Tia;

/// Commonly used items.
pub mod prelude {
    pub use crate::neggm::NegGmOta;
    pub use crate::opamp2::OpAmp2;
    pub use crate::problem::{
        CornerStrategy, EvalSession, ParamSpec, SharedMemo, SimMode, SizingProblem, SpecDef,
        SpecKind,
    };
    pub use crate::tia::Tia;
}
