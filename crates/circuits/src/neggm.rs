//! The two-stage OTA with negative-gm load of Fig. 9, in the
//! FinFET-16-flavoured technology.
//!
//! The first stage is an NMOS differential pair loaded by PMOS
//! diode-connected devices *and* a PMOS cross-coupled pair. The
//! cross-coupled pair contributes a negative transconductance that
//! partially cancels the diode load, boosting gain — at the cost of
//! positive feedback that makes the stage sensitive to sizing and to
//! layout parasitics, which is exactly why the paper uses it to stress
//! transfer learning (Sec. III-C/D).
//!
//! Parameter space: six independent widths on a 64-point grid
//! (`64^6 ~ 6.9e10`, the paper quotes ~1e11 combinations).
//! Specifications: gain `[1, 40]`, UGBW `[1e6, 2.5e7]` Hz, phase margin
//! `[60, 75]` degrees (a *range* is sampled during training; Sec. III-D
//! explains this aids transfer).

use crate::problem::{
    CornerCase, CornerEvaluator, CornerPlan, CornerStrategy, ParamSpec, SimMode, SizingProblem,
    SpecDef, SpecKind,
};
use autockt_sim::ac::{ac_sweep_cfg, log_freqs, AcResponse, AcWorkspace};
use autockt_sim::dc::{dc_operating_point, DcOptions, OpPoint, WarmState};
use autockt_sim::device::{MosPolarity, Technology};
use autockt_sim::netlist::{Circuit, Mosfet, Node, GND};
use autockt_sim::pex::{extract, PexConfig};
use autockt_sim::{SimError, SolverConfig};

/// Index constants into the OTA spec vector.
pub mod spec_index {
    /// DC gain (V/V).
    pub const GAIN: usize = 0;
    /// Unity-gain bandwidth (Hz).
    pub const UGBW: usize = 1;
    /// Phase margin (degrees).
    pub const PM: usize = 2;
}

/// The negative-gm OTA sizing problem.
#[derive(Debug, Clone)]
pub struct NegGmOta {
    tech: Technology,
    params: Vec<ParamSpec>,
    specs: Vec<SpecDef>,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Input common mode (V).
    pub vcm: f64,
    /// Bias reference current (A).
    pub iref: f64,
    /// Output load capacitance (F).
    pub c_load: f64,
    /// Miller compensation capacitance (F), fixed.
    pub c_comp: f64,
    pex: PexConfig,
    corner_strategy: CornerStrategy,
    solver: SolverConfig,
}

impl Default for NegGmOta {
    fn default() -> Self {
        NegGmOta::new(Technology::finfet16())
    }
}

impl NegGmOta {
    /// Creates the problem over a technology (the paper uses TSMC 16 nm
    /// FinFET via Spectre).
    pub fn new(tech: Technology) -> Self {
        let grid = |name| ParamSpec::swept(name, 1.0, 64.0, 1.0, 0.2e-6);
        let params = vec![
            grid("w_in"),    // M1/M2
            grid("w_diode"), // M3/M4 diode loads
            grid("w_cross"), // M5/M6 cross-coupled (negative gm)
            grid("w_tail"),  // M7
            grid("w_cs"),    // M9 second-stage PMOS common source
            grid("w_sink"),  // M10 second-stage NMOS current sink
        ];
        let specs = vec![
            SpecDef {
                name: "gain",
                unit: "V/V",
                kind: SpecKind::HardMin,
                lo: 10.0,
                hi: 60.0,
                fail_value: 0.0,
            },
            SpecDef {
                name: "ugbw",
                unit: "Hz",
                kind: SpecKind::HardMin,
                lo: 2.0e7,
                hi: 1.5e8,
                fail_value: 0.0,
            },
            SpecDef {
                name: "phase_margin",
                unit: "deg",
                kind: SpecKind::HardMin,
                lo: 60.0,
                hi: 75.0,
                fail_value: 0.0,
            },
        ];
        NegGmOta {
            tech,
            params,
            specs,
            vdd: 0.8,
            vcm: 0.55,
            iref: 20e-6,
            c_load: 4e-12,
            c_comp: 2e-12,
            // This testbench's explicit capacitors are pF-scale, so the
            // extraction model is scaled to match a physically large
            // layout: long routes to the big MiM caps dominate (the paper's
            // Fig. 14 histogram shows tens-of-percent schematic-vs-PEX
            // shifts for this circuit).
            pex: PexConfig {
                cap_per_width: 7e-9,
                cap_fixed: 35e-15,
                spread: 0.35,
                junction_scale: 1.8,
                ..PexConfig::default()
            },
            corner_strategy: CornerStrategy::default(),
            solver: SolverConfig::default(),
        }
    }

    /// Overrides the linear-solver backend config for every solve this
    /// problem runs; the default dispatches dense or sparse automatically
    /// by MNA dimension (see [`SolverConfig`]).
    pub fn with_solver_config(mut self, cfg: SolverConfig) -> Self {
        self.solver = cfg;
        self
    }

    /// The linear-solver backend config every evaluation dispatches on.
    pub fn solver_config(&self) -> SolverConfig {
        self.solver
    }

    /// Selects how `PexWorstCase` iterates the PVT corner set (see
    /// [`CornerStrategy`]; batched lockstep by default).
    pub fn with_corner_strategy(mut self, strategy: CornerStrategy) -> Self {
        self.corner_strategy = strategy;
        self
    }

    /// Replaces the parasitic-extraction configuration — e.g. to deepen
    /// the RC mesh (`PexConfig::mesh_depth`) for denser MNA systems.
    pub fn with_pex_config(mut self, pex: PexConfig) -> Self {
        self.pex = pex;
        self
    }

    /// The parasitic-extraction configuration used by `Pex` and
    /// `PexWorstCase` evaluations.
    pub fn pex_config(&self) -> &PexConfig {
        &self.pex
    }

    /// Overrides the phase-margin target sampling range (Sec. III-D: a
    /// range `[60, 75]` trains better transfer than a fixed lower bound).
    pub fn with_pm_range(mut self, lo: f64, hi: f64) -> Self {
        self.specs[spec_index::PM].lo = lo;
        self.specs[spec_index::PM].hi = hi;
        self
    }

    /// Builds the netlist at grid indices `idx`.
    pub fn build(&self, idx: &[usize], tech: &Technology) -> (Circuit, Node) {
        assert_eq!(idx.len(), self.params.len(), "wrong parameter count");
        let w_in = self.params[0].values[idx[0]];
        let w_diode = self.params[1].values[idx[1]];
        let w_cross = self.params[2].values[idx[2]];
        let w_tail = self.params[3].values[idx[3]];
        let w_cs = self.params[4].values[idx[4]];
        let w_sink = self.params[5].values[idx[5]];
        let l = 2.0 * tech.lmin;
        let w_ref = 2.0e-6; // fixed mirror reference width

        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vinp = ckt.node("vinp");
        let vinn = ckt.node("vinn");
        let bias = ckt.node("bias");
        let tail = ckt.node("tail");
        let x1 = ckt.node("x1");
        let x2 = ckt.node("x2");
        let out = ckt.node("out");

        ckt.vsource(vdd, GND, self.vdd, 0.0);
        ckt.vsource(vinp, GND, self.vcm, 1.0);
        ckt.vsource(vinn, GND, self.vcm, 0.0);
        ckt.isource(vdd, bias, self.iref, 0.0); // NMOS mirror reference
        let mos = |polarity, d, g, s, w| Mosfet {
            polarity,
            d,
            g,
            s,
            w,
            l,
            mult: 1.0,
            model: match polarity {
                MosPolarity::Nmos => tech.nmos,
                MosPolarity::Pmos => tech.pmos,
            },
        };
        // Bias mirror.
        ckt.mosfet(mos(MosPolarity::Nmos, bias, bias, GND, w_ref)); // M8

        // First stage.
        ckt.mosfet(mos(MosPolarity::Nmos, tail, bias, GND, w_tail)); // M7
        ckt.mosfet(mos(MosPolarity::Nmos, x1, vinn, tail, w_in)); // M1
        ckt.mosfet(mos(MosPolarity::Nmos, x2, vinp, tail, w_in)); // M2
        ckt.mosfet(mos(MosPolarity::Pmos, x1, x1, vdd, w_diode)); // M3
        ckt.mosfet(mos(MosPolarity::Pmos, x2, x2, vdd, w_diode)); // M4
        ckt.mosfet(mos(MosPolarity::Pmos, x1, x2, vdd, w_cross)); // M5
        ckt.mosfet(mos(MosPolarity::Pmos, x2, x1, vdd, w_cross)); // M6

        // Second stage: PMOS common source (its gate sits a PMOS vgs below
        // the supply — exactly where the diode-loaded x2 node rests) with a
        // mirrored NMOS sink.
        ckt.mosfet(mos(MosPolarity::Pmos, out, x2, vdd, w_cs)); // M9
        ckt.mosfet(mos(MosPolarity::Nmos, out, bias, GND, w_sink)); // M10
        ckt.capacitor(x2, out, self.c_comp);
        ckt.capacitor(out, GND, self.c_load);
        (ckt, out)
    }

    /// The AC sweep grid shared by every fidelity's measurement (the
    /// corner engine and `measure_at` must sweep the same points).
    fn ac_freqs() -> Vec<f64> {
        log_freqs(1e2, 1e10, 10)
    }

    fn dc_opts(&self) -> DcOptions {
        DcOptions {
            initial_v: self.vdd / 2.0,
            solver: self.solver,
            ..DcOptions::default()
        }
    }

    fn measure(&self, ckt: &Circuit, out: Node) -> Result<Vec<f64>, SimError> {
        let op = dc_operating_point(ckt, &self.dc_opts())?;
        self.measure_at(ckt, out, &op, None)
    }

    fn measure_warm(
        &self,
        ckt: &Circuit,
        out: Node,
        slot: usize,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        let op = state.solve(slot, ckt, &self.dc_opts())?;
        self.measure_at(ckt, out, &op, Some(state.ac_workspace()))
    }

    /// Shared body of `simulate`/`simulate_warm`: `state` selects the
    /// warm (session-threaded) or cold measurement path.
    fn simulate_inner(
        &self,
        idx: &[usize],
        mode: SimMode,
        state: Option<&mut WarmState>,
    ) -> Result<Vec<f64>, SimError> {
        let measure = |ckt: &Circuit, out, slot, state: Option<&mut WarmState>| match state {
            Some(st) => self.measure_warm(ckt, out, slot, st),
            None => self.measure(ckt, out),
        };
        match mode {
            SimMode::Schematic => {
                let (ckt, out) = self.build(idx, &self.tech);
                measure(&ckt, out, 0, state)
            }
            SimMode::Pex => {
                let (ckt, out) = self.build(idx, &self.tech);
                let ex = extract(&ckt, &self.pex);
                measure(&ex, out, 0, state)
            }
            SimMode::PexWorstCase => {
                let engine = CornerEvaluator::new(
                    CornerPlan::pvt_worst_case(),
                    self.dc_opts(),
                    NegGmOta::ac_freqs(),
                    self.corner_strategy,
                );
                engine.evaluate(
                    &self.specs,
                    |_slot, pvt| {
                        let tech = self.tech.at_corner(*pvt);
                        let (ckt, out) = self.build(idx, &tech);
                        CornerCase {
                            ckt: extract(&ckt, &self.pex),
                            out,
                            temp_k: pvt.temp_kelvin(),
                            vdd_src: 0,
                        }
                    },
                    |_slot, _case, _op, _solver, resp, _ws, _noise, _settle| {
                        self.corner_specs(resp)
                    },
                    state,
                )
            }
        }
    }

    fn measure_at(
        &self,
        ckt: &Circuit,
        out: Node,
        op: &OpPoint,
        ac_ws: Option<&mut AcWorkspace>,
    ) -> Result<Vec<f64>, SimError> {
        let freqs = NegGmOta::ac_freqs();
        let resp = match ac_ws {
            Some(ws) => ac_sweep_cfg(ckt, op, &freqs, out, self.solver, ws)?,
            None => ac_sweep_cfg(
                ckt,
                op,
                &freqs,
                out,
                self.solver,
                &mut AcWorkspace::default(),
            )?,
        };
        self.corner_specs(&resp)
    }

    /// Spec extraction shared by the single-corner measurement and the
    /// corner engine.
    fn corner_specs(&self, resp: &AcResponse) -> Result<Vec<f64>, SimError> {
        let gain = resp.dc_gain();
        let ugbw = resp
            .ugbw()
            .unwrap_or(self.specs[spec_index::UGBW].fail_value);
        let pm = resp
            .phase_margin_deg()
            .unwrap_or(self.specs[spec_index::PM].fail_value);
        Ok(vec![gain, ugbw, pm])
    }
}

impl SizingProblem for NegGmOta {
    fn name(&self) -> &'static str {
        "neggm_ota"
    }

    fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    fn specs(&self) -> &[SpecDef] {
        &self.specs
    }

    fn simulate(&self, idx: &[usize], mode: SimMode) -> Result<Vec<f64>, SimError> {
        self.simulate_inner(idx, mode, None)
    }

    fn simulate_warm(
        &self,
        idx: &[usize],
        mode: SimMode,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        self.simulate_inner(idx, mode, Some(state))
    }

    fn solver_config(&self) -> SolverConfig {
        self.solver
    }

    fn simulate_cfg(
        &self,
        idx: &[usize],
        mode: SimMode,
        cfg: SolverConfig,
    ) -> Result<Vec<f64>, SimError> {
        self.clone().with_solver_config(cfg).simulate(idx, mode)
    }

    fn simulate_warm_cfg(
        &self,
        idx: &[usize],
        mode: SimMode,
        cfg: SolverConfig,
        state: &mut WarmState,
    ) -> Result<Vec<f64>, SimError> {
        self.clone()
            .with_solver_config(cfg)
            .simulate_warm(idx, mode, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(p: &NegGmOta) -> Vec<usize> {
        p.cardinalities().iter().map(|k| k / 2).collect()
    }

    #[test]
    fn space_size_is_paper_scale() {
        let p = NegGmOta::default();
        // 64^6 ~ 6.9e10, paper quotes ~1e11.
        assert!((p.log10_space_size() - 10.84).abs() < 0.02);
    }

    #[test]
    fn center_design_simulates() {
        let p = NegGmOta::default();
        let s = p.simulate(&mid(&p), SimMode::Schematic).unwrap();
        assert!(s[spec_index::GAIN] > 0.1, "gain {}", s[spec_index::GAIN]);
        assert!(s[spec_index::PM] >= 0.0 && s[spec_index::PM] <= 180.0);
    }

    #[test]
    fn stronger_cross_coupling_raises_first_stage_gain() {
        let p = NegGmOta::default();
        let mut weak = mid(&p);
        let mut strong = weak.clone();
        weak[2] = 4; // small cross-coupled pair
                     // Strong but still below the diode width at the same index scale:
        strong[2] = weak[1].saturating_sub(8);
        let a = p.simulate(&weak, SimMode::Schematic).unwrap();
        let b = p.simulate(&strong, SimMode::Schematic).unwrap();
        assert!(
            b[spec_index::GAIN] > a[spec_index::GAIN],
            "negative gm should boost gain: {} -> {}",
            a[spec_index::GAIN],
            b[spec_index::GAIN]
        );
    }

    #[test]
    fn deterministic() {
        let p = NegGmOta::default();
        let idx = vec![10, 30, 20, 15, 40, 25];
        assert_eq!(
            p.simulate(&idx, SimMode::Schematic).unwrap(),
            p.simulate(&idx, SimMode::Schematic).unwrap()
        );
    }

    #[test]
    fn pex_worst_case_is_no_better_than_nominal_pex() {
        let p = NegGmOta::default();
        let idx = mid(&p);
        let nom = p.simulate(&idx, SimMode::Pex).unwrap();
        let wc = p.simulate(&idx, SimMode::PexWorstCase).unwrap();
        // Hard-min specs can only get worse (smaller) under worst-case.
        // The corner set includes the nominal corner, so <= holds exactly.
        assert!(wc[spec_index::GAIN] <= nom[spec_index::GAIN] + 1e-9);
        assert!(wc[spec_index::UGBW] <= nom[spec_index::UGBW] + 1e-3);
    }
}
