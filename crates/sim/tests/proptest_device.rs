//! Property-based tests of the MOSFET device model: physical monotonicity
//! and derivative consistency must hold across the whole bias plane.

use autockt_sim::device::Technology;
use proptest::prelude::*;

proptest! {
    /// Drain current is non-decreasing in vgs at fixed vds.
    #[test]
    fn id_monotone_in_vgs(
        vgs1 in 0.0..1.2f64,
        dv in 0.0..0.5f64,
        vds in 0.01..1.2f64,
        w_um in 0.5..50.0f64,
    ) {
        let m = Technology::ptm45().nmos;
        let w = w_um * 1e-6;
        let l = 90e-9;
        let a = m.eval(vgs1, vds, w, l, 1.0);
        let b = m.eval(vgs1 + dv, vds, w, l, 1.0);
        prop_assert!(b.id >= a.id - 1e-18);
    }

    /// Drain current is non-decreasing in vds (lambda > 0 everywhere).
    #[test]
    fn id_monotone_in_vds(
        vgs in 0.45..1.2f64,
        vds1 in 0.0..1.0f64,
        dv in 0.0..0.5f64,
    ) {
        let m = Technology::ptm45().nmos;
        let a = m.eval(vgs, vds1, 2e-6, 90e-9, 1.0);
        let b = m.eval(vgs, vds1 + dv, 2e-6, 90e-9, 1.0);
        prop_assert!(b.id >= a.id - 1e-18);
    }

    /// gm and gds reported by the model match central finite differences.
    #[test]
    fn derivatives_consistent(
        vgs in 0.45..1.1f64,
        vds in 0.05..1.1f64,
        w_um in 0.5..20.0f64,
    ) {
        let m = Technology::finfet16().nmos;
        let w = w_um * 1e-6;
        let l = 32e-9;
        let e = m.eval(vgs, vds, w, l, 1.0);
        let h = 1e-7;
        let gm_fd = (m.eval(vgs + h, vds, w, l, 1.0).id - m.eval(vgs - h, vds, w, l, 1.0).id) / (2.0 * h);
        let gds_fd = (m.eval(vgs, vds + h, w, l, 1.0).id - m.eval(vgs, vds - h, w, l, 1.0).id) / (2.0 * h);
        prop_assert!((e.gm - gm_fd).abs() <= 1e-4 * gm_fd.abs().max(1e-12), "gm {} vs {}", e.gm, gm_fd);
        prop_assert!((e.gds - gds_fd).abs() <= 1e-3 * gds_fd.abs().max(1e-12), "gds {} vs {}", e.gds, gds_fd);
    }

    /// Currents scale linearly with the multiplier.
    #[test]
    fn multiplier_linearity(
        vgs in 0.45..1.1f64,
        vds in 0.0..1.1f64,
        mult in 1.0..32.0f64,
    ) {
        let m = Technology::ptm45().pmos;
        let one = m.eval(vgs, vds, 1e-6, 90e-9, 1.0);
        let many = m.eval(vgs, vds, 1e-6, 90e-9, mult);
        prop_assert!((many.id - mult * one.id).abs() <= 1e-9 * (1.0 + many.id.abs()));
        prop_assert!((many.gm - mult * one.gm).abs() <= 1e-9 * (1.0 + many.gm.abs()));
    }
}
