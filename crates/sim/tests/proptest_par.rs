//! Property-based tests for the tile scheduler (`autockt_sim::par`):
//! every threaded walk — the scalar AC sweep, the scalar noise
//! analysis, and the per-block BTF factorization — must be *bitwise*
//! equal to its serial reference under any forced lane count, and the
//! process-wide workspace pools must preserve that equality when they
//! are re-used across calls of differing dimension.
//!
//! `Parallelism::Threads(n)` is the forced mode: it bypasses the
//! small-dimension Auto gates, so these properties exercise real
//! multi-lane schedules even on dimensions the Auto policy would run
//! serially.

use autockt_sim::ac::{ac_sweep_cfg, AcWorkspace};
use autockt_sim::dc::{dc_operating_point, DcOptions};
use autockt_sim::linalg::sparse::{CscMatrix, TripletList};
use autockt_sim::linalg::structure::BtfLu;
use autockt_sim::netlist::{Circuit, Node, GND};
use autockt_sim::noise::noise_analysis_cfg;
use autockt_sim::{Parallelism, SolverConfig};
use proptest::prelude::*;

/// The forced lane counts every property sweeps over (ISSUE 10): a
/// degenerate single lane, even splits, and a count that leaves a
/// ragged tail chunk.
const LANES: [usize; 4] = [1, 2, 4, 7];

/// An `n`-segment RC ladder with an AC-driven source (magnitude 1), so
/// both the transfer function and the noise signal gain are nonzero.
/// MNA dimension `n + 2`: `n` internal nodes, the drive node, and the
/// vsource branch current.
fn noisy_ladder(n: usize, r_scale: f64) -> (Circuit, Node) {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("drive");
    ckt.vsource(prev, GND, 1.0, 1.0);
    for i in 0..n {
        let node = ckt.node(&format!("n{i}"));
        ckt.resistor(prev, node, r_scale * (1.0 + i as f64));
        ckt.capacitor(node, GND, 1e-12);
        prev = node;
    }
    // A resistive path to ground so the DC solution is nontrivial.
    ckt.resistor(prev, GND, 10.0 * r_scale);
    (ckt, prev)
}

/// A strictly increasing frequency grid spanning several decades.
fn freq_grid(npts: usize) -> Vec<f64> {
    (0..npts).map(|k| 1e3 * 2f64.powi(k as i32)).collect()
}

/// A block-diagonal, diagonally dominant matrix with `dims`-sized
/// irreducible (banded, pattern-symmetric) diagonal blocks, plus one
/// acyclic coupling entry between consecutive blocks so the matrix is
/// not merely block-diagonal. The BTF decomposition recovers exactly
/// these blocks as its strongly connected components.
fn block_diag_dominant(dims: &[usize], entries: &[f64]) -> CscMatrix<f64> {
    let n: usize = dims.iter().sum();
    let mut dense = vec![vec![0.0f64; n]; n];
    let mut e = 0usize;
    let val = |e: &mut usize| {
        let v = entries[*e % entries.len()].clamp(-10.0, 10.0);
        *e += 1;
        v
    };
    let mut start = 0usize;
    let mut prev_start: Option<usize> = None;
    for &d in dims {
        for r in 0..d {
            for c in (r + 1)..d.min(r + 3) {
                let v = val(&mut e);
                dense[start + r][start + c] = v;
                // Pattern-symmetric (so the block is one SCC) but not
                // value-symmetric: keep the elimination generic.
                dense[start + c][start + r] = 0.5 * v - 0.25;
            }
        }
        // One-way edge from the previous block: cannot close a cycle,
        // so the SCCs stay the diagonal blocks.
        if let Some(p) = prev_start {
            dense[p][start] = val(&mut e);
        }
        prev_start = Some(start);
        start += d;
    }
    for (r, row) in dense.iter_mut().enumerate() {
        let rowsum: f64 = row
            .iter()
            .enumerate()
            .filter(|&(c, _)| c != r)
            .map(|(_, v)| v.abs())
            .sum();
        row[r] = rowsum + 1.0;
    }
    let mut t = TripletList::new(n);
    for (r, row) in dense.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if v != 0.0 {
                t.push(r, c, v);
            }
        }
    }
    let mut csc = CscMatrix::empty();
    t.compress_into(&mut csc);
    csc
}

proptest! {
    /// The threaded scalar AC sweep is bitwise-equal to the serial
    /// sweep for every forced lane count, with the MNA dimension and
    /// the dense/sparse crossover varied against each other so both
    /// per-point factorization routes are covered.
    #[test]
    fn threaded_ac_sweep_is_bitwise_serial(
        segs in 3usize..32,
        npts in 2usize..14,
        crossover in 2usize..40,
        r_scale in 10.0..1e4f64,
    ) {
        let (ckt, out) = noisy_ladder(segs, r_scale);
        let op = dc_operating_point(&ckt, &DcOptions::default()).expect("ladder solves");
        let freqs = freq_grid(npts);
        let base = SolverConfig { crossover, ..SolverConfig::default() };
        let mut ws = AcWorkspace::new();
        let serial = ac_sweep_cfg(
            &ckt, &op, &freqs, out,
            base.with_parallelism(Parallelism::Off),
            &mut ws,
        ).expect("serial sweep");
        for t in LANES {
            let mut wt = AcWorkspace::new();
            let threaded = ac_sweep_cfg(
                &ckt, &op, &freqs, out,
                base.with_parallelism(Parallelism::Threads(t)),
                &mut wt,
            ).expect("threaded sweep");
            prop_assert_eq!(&serial.h, &threaded.h, "lanes={}", t);
        }
    }

    /// The threaded scalar noise analysis is bitwise-equal to the
    /// serial walk — every derived field, including the integrated rms
    /// figures whose trapezoid accumulation order must survive the
    /// tiling — for every forced lane count.
    #[test]
    fn threaded_noise_analysis_is_bitwise_serial(
        segs in 3usize..24,
        npts in 2usize..12,
        crossover in 2usize..40,
        r_scale in 10.0..1e4f64,
    ) {
        let (ckt, out) = noisy_ladder(segs, r_scale);
        let op = dc_operating_point(&ckt, &DcOptions::default()).expect("ladder solves");
        let freqs = freq_grid(npts);
        let base = SolverConfig { crossover, ..SolverConfig::default() };
        let mut ws = AcWorkspace::new();
        let serial = noise_analysis_cfg(
            &ckt, &op, out, &freqs, 300.0,
            base.with_parallelism(Parallelism::Off),
            &mut ws,
        ).expect("serial noise");
        for t in LANES {
            let mut wt = AcWorkspace::new();
            let threaded = noise_analysis_cfg(
                &ckt, &op, out, &freqs, 300.0,
                base.with_parallelism(Parallelism::Threads(t)),
                &mut wt,
            ).expect("threaded noise");
            prop_assert_eq!(&serial.out_psd, &threaded.out_psd, "lanes={}", t);
            prop_assert_eq!(&serial.gain, &threaded.gain, "lanes={}", t);
            prop_assert_eq!(serial.out_vrms, threaded.out_vrms, "lanes={}", t);
            prop_assert_eq!(
                serial.input_referred_rms, threaded.input_referred_rms,
                "lanes={}", t
            );
        }
    }

    /// Threaded BTF block factoring is bitwise-equal to serial for
    /// every forced lane count, both on a cold factorization and on a
    /// warm same-pattern `refactor` that re-uses the instance's block
    /// workspaces.
    #[test]
    fn threaded_btf_factor_is_bitwise_serial(
        dims in prop::collection::vec(1usize..28, 2..5),
        entries in prop::collection::vec(-10.0..10.0f64, 64),
        rhs in prop::collection::vec(-100.0..100.0f64, 112),
    ) {
        let a = block_diag_dominant(&dims, &entries);
        let n: usize = dims.iter().sum();
        let b = &rhs[..n];
        let mut serial = BtfLu::empty();
        serial.set_parallelism(Parallelism::Off);
        serial.refactor(&a, 1e-300).expect("dominant");
        let xs = serial.solve(b);
        for t in LANES {
            let mut btf = BtfLu::empty();
            btf.set_parallelism(Parallelism::Threads(t));
            btf.refactor(&a, 1e-300).expect("dominant");
            prop_assert_eq!(btf.nblocks(), serial.nblocks());
            prop_assert_eq!(btf.factor_nnz(), serial.factor_nnz());
            prop_assert_eq!(btf.solve(b), xs.clone(), "cold, lanes={}", t);
            // Warm refactor: same pattern, scaled values, through the
            // same instance (per-block factor buffers re-used).
            let scaled: Vec<f64> = entries.iter().map(|v| v * 1.5 + 0.125).collect();
            let a2 = block_diag_dominant(&dims, &scaled);
            prop_assert_eq!(a.col_ptr(), a2.col_ptr());
            prop_assert_eq!(a.row_idx(), a2.row_idx());
            btf.refactor(&a2, 1e-300).expect("dominant");
            let mut fresh = BtfLu::empty();
            fresh.set_parallelism(Parallelism::Off);
            fresh.refactor(&a2, 1e-300).expect("dominant");
            prop_assert_eq!(btf.solve(b), fresh.solve(b), "warm, lanes={}", t);
            prop_assert_eq!(btf.factor_nnz(), fresh.factor_nnz());
        }
    }

    /// Re-using the process-wide workspace pools across calls of
    /// *different* dimension keeps every call bitwise-equal to serial:
    /// a pooled lane workspace checked out for a large sweep must be
    /// indistinguishable from a fresh one when a smaller sweep checks
    /// it out next (and vice versa).
    #[test]
    fn workspace_pool_reuse_across_calls_stays_bitwise(
        segs in prop::collection::vec(3usize..32, 3..6),
        npts in 2usize..10,
        crossover in 2usize..40,
        r_scale in 10.0..1e4f64,
    ) {
        let freqs = freq_grid(npts);
        let base = SolverConfig { crossover, ..SolverConfig::default() };
        for (i, &s) in segs.iter().enumerate() {
            let t = LANES[i % LANES.len()].max(2);
            let (ckt, out) = noisy_ladder(s, r_scale);
            let op = dc_operating_point(&ckt, &DcOptions::default()).expect("ladder solves");
            let mut ws = AcWorkspace::new();
            let serial = ac_sweep_cfg(
                &ckt, &op, &freqs, out,
                base.with_parallelism(Parallelism::Off),
                &mut ws,
            ).expect("serial sweep");
            let threaded = ac_sweep_cfg(
                &ckt, &op, &freqs, out,
                base.with_parallelism(Parallelism::Threads(t)),
                &mut ws,
            ).expect("threaded sweep");
            prop_assert_eq!(&serial.h, &threaded.h, "call #{} segs={} lanes={}", i, s, t);
            let sn = noise_analysis_cfg(
                &ckt, &op, out, &freqs, 300.0,
                base.with_parallelism(Parallelism::Off),
                &mut ws,
            ).expect("serial noise");
            let tn = noise_analysis_cfg(
                &ckt, &op, out, &freqs, 300.0,
                base.with_parallelism(Parallelism::Threads(t)),
                &mut ws,
            ).expect("threaded noise");
            prop_assert_eq!(&sn.out_psd, &tn.out_psd, "call #{} segs={}", i, s);
            prop_assert_eq!(sn.out_vrms, tn.out_vrms, "call #{} segs={}", i, s);
        }
    }
}
