//! Property-based tests for the sparse (CSC + AMD + left-looking LU)
//! backend: it must agree with the dense reference kernels on any
//! well-conditioned system, its `refactor` fast path must be bitwise
//! equal to a fresh factorization, and the AMD ordering must be a valid
//! permutation that never *increases* fill on mesh-structured patterns.

use autockt_sim::dc::{dc_operating_point, DcOptions};
use autockt_sim::linalg::sparse::{amd_order, CscMatrix, SparseLu, TripletList};
use autockt_sim::linalg::{LuFactors, Matrix};
use autockt_sim::netlist::{Circuit, GND};
use autockt_sim::{SolverBackend, SolverConfig};
use proptest::prelude::*;

/// A banded, symmetric, diagonally dominant matrix: nonsingular by
/// construction, and the column-dominant diagonal keeps partial pivoting
/// on the natural pivots so sparse and dense eliminations stay
/// numerically comparable.
fn banded_dominant(n: usize, band: usize, entries: &[f64]) -> Matrix<f64> {
    let mut m = Matrix::zeros(n, n);
    let mut k = 0;
    for r in 0..n {
        for c in (r + 1)..n.min(r + band + 1) {
            let v = entries[k % entries.len()].clamp(-10.0, 10.0);
            k += 1;
            m[(r, c)] = v;
            m[(c, r)] = v;
        }
    }
    for r in 0..n {
        let rowsum: f64 = (0..n).filter(|&c| c != r).map(|c| m[(r, c)].abs()).sum();
        let sign = if entries[(k + r) % entries.len()] >= 0.0 {
            1.0
        } else {
            -1.0
        };
        m[(r, r)] = sign * (rowsum + 1.0);
    }
    m
}

/// The sparsity pattern of a `k x k` 2D grid Laplacian (the RC-mesh
/// shape PEX extraction produces), with diagonally dominant values.
fn mesh_dominant(k: usize, entries: &[f64]) -> Matrix<f64> {
    let n = k * k;
    let mut m = Matrix::zeros(n, n);
    let mut e = 0;
    let mut couple = |m: &mut Matrix<f64>, a: usize, b: usize| {
        let v = 0.1 + entries[e % entries.len()].abs().clamp(0.0, 10.0);
        e += 1;
        m[(a, b)] = -v;
        m[(b, a)] = -v;
    };
    for r in 0..k {
        for c in 0..k {
            let i = r * k + c;
            if c + 1 < k {
                couple(&mut m, i, i + 1);
            }
            if r + 1 < k {
                couple(&mut m, i, i + k);
            }
        }
    }
    for i in 0..n {
        let rowsum: f64 = (0..n).filter(|&c| c != i).map(|c| m[(i, c)].abs()).sum();
        m[(i, i)] = rowsum + 1.0;
    }
    m
}

/// An `n`-segment RC ladder driven by a voltage source: MNA dimension
/// `n + 1`, the shape whose DC solve exercises the crossover dispatch.
fn rc_ladder(n: usize, r_scale: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("drive");
    ckt.vsource(prev, GND, 1.0, 0.0);
    for i in 0..n {
        let node = ckt.node(&format!("n{i}"));
        ckt.resistor(prev, node, r_scale * (1.0 + i as f64));
        ckt.capacitor(node, GND, 1e-12);
        prev = node;
    }
    // A resistive path to ground so the DC solution is nontrivial.
    ckt.resistor(prev, GND, 10.0 * r_scale);
    ckt
}

proptest! {
    /// Cold sparse solves match the dense kernel on banded dominant
    /// systems to solver tolerance.
    #[test]
    fn sparse_matches_dense_on_banded_systems(
        n in 2usize..24,
        band in 1usize..5,
        entries in prop::collection::vec(-10.0..10.0f64, 64),
        x in prop::collection::vec(-100.0..100.0f64, 24),
    ) {
        let a = banded_dominant(n, band, &entries);
        let xt = &x[..n];
        let b = a.mul_vec(xt);
        let dense = LuFactors::factor(a.clone(), 1e-300).expect("dominant");
        let slu = SparseLu::factor(&CscMatrix::from_dense(&a), 1e-300).expect("dominant");
        let xd = dense.solve(&b);
        let xs = slu.solve(&b);
        for ((d, s), t) in xd.iter().zip(&xs).zip(xt) {
            prop_assert!((d - s).abs() <= 1e-9 * (1.0 + t.abs()), "{d} vs {s}");
            prop_assert!((s - t).abs() <= 1e-7 * (1.0 + t.abs()), "{s} vs {t}");
        }
    }

    /// `refactor` on a same-pattern matrix is bitwise identical to a
    /// fresh `factor` of the new values.
    #[test]
    fn sparse_refactor_is_bitwise_equal_to_fresh_factor(
        n in 2usize..16,
        band in 1usize..4,
        ea in prop::collection::vec(-10.0..10.0f64, 64),
        eb in prop::collection::vec(-10.0..10.0f64, 64),
        b in prop::collection::vec(-100.0..100.0f64, 16),
    ) {
        let a1 = banded_dominant(n, band, &ea);
        // Same zero/nonzero structure, different values: scale `a1`'s
        // off-diagonals by a strictly positive factor and rebuild the
        // dominant diagonal.
        let mut a2 = a1.clone();
        for r in 0..n {
            for c in 0..n {
                if r != c && a2[(r, c)] != 0.0 {
                    a2[(r, c)] *= 1.0 + 0.05 * eb[(r * n + c) % eb.len()].abs();
                }
            }
        }
        for r in 0..n {
            let rowsum: f64 = (0..n).filter(|&c| c != r).map(|c| a2[(r, c)].abs()).sum();
            a2[(r, r)] = rowsum + 1.0;
        }
        let c1 = CscMatrix::from_dense(&a1);
        let c2 = CscMatrix::from_dense(&a2);
        assert_eq!(c1.col_ptr(), c2.col_ptr());
        assert_eq!(c1.row_idx(), c2.row_idx());
        let fresh = SparseLu::factor(&c2, 1e-300).expect("dominant");
        let mut warm = SparseLu::factor(&c1, 1e-300).expect("dominant");
        warm.refactor(&c2, 1e-300).expect("dominant");
        let rhs = &b[..n];
        prop_assert_eq!(warm.solve(rhs), fresh.solve(rhs));
        prop_assert_eq!(warm.factor_nnz(), fresh.factor_nnz());
        prop_assert_eq!(warm.col_order(), fresh.col_order());
    }

    /// AMD returns a valid permutation, and on mesh patterns its fill
    /// never exceeds the natural (identity) ordering's.
    #[test]
    fn amd_is_a_permutation_and_does_not_increase_mesh_fill(
        k in 2usize..7,
        entries in prop::collection::vec(-10.0..10.0f64, 64),
    ) {
        let a = mesh_dominant(k, &entries);
        let n = k * k;
        let csc = CscMatrix::from_dense(&a);
        let order = amd_order(n, csc.col_ptr(), csc.row_idx());
        prop_assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for &j in &order {
            prop_assert!(j < n && !seen[j], "not a permutation: {:?}", order);
            seen[j] = true;
        }
        let natural: Vec<usize> = (0..n).collect();
        let amd = SparseLu::factor_with_order(&csc, &order, 1e-300).expect("dominant");
        let nat = SparseLu::factor_with_order(&csc, &natural, 1e-300).expect("dominant");
        prop_assert!(
            amd.factor_nnz() <= nat.factor_nnz(),
            "AMD fill {} vs natural {}",
            amd.factor_nnz(),
            nat.factor_nnz()
        );
        // Both factorizations still solve the system.
        let b = a.mul_vec(&vec![1.0; n]);
        for (x, y) in amd.solve(&b).iter().zip(nat.solve(&b)) {
            prop_assert!((x - 1.0).abs() < 1e-7 && (y - 1.0).abs() < 1e-7, "{x} {y}");
        }
    }

    /// Duplicate (row, col) triplets merge at compression time: pushing
    /// a stamp in arbitrary split pieces compresses to the same CSC
    /// matrix as pushing it whole.
    #[test]
    fn triplet_duplicates_merge_like_dense_accumulation(
        n in 2usize..10,
        m in 1usize..40,
        slots in prop::collection::vec(0usize..100, 40),
        vals in prop::collection::vec(-10.0..10.0f64, 40),
        pieces in prop::collection::vec(2usize..5, 40),
    ) {
        let mut dense: Matrix<f64> = Matrix::zeros(n, n);
        let mut trip: TripletList<f64> = TripletList::new(n);
        for i in 0..m {
            let (r, c) = (slots[i] / 10 % n, slots[i] % n);
            let (v, p) = (vals[i], pieces[i]);
            dense[(r, c)] += v;
            // Same total, pushed as `p` separate triplets.
            for _ in 0..p {
                trip.push(r, c, v / p as f64);
            }
        }
        let mut csc = CscMatrix::empty();
        trip.compress_into(&mut csc);
        let got = csc.to_dense();
        for r in 0..n {
            for c in 0..n {
                let (g, d) = (got[(r, c)], dense[(r, c)]);
                prop_assert!((g - d).abs() <= 1e-12 * (1.0 + d.abs()), "{g} vs {d}");
            }
        }
    }

    /// The Auto backend dispatches bitwise-identically to whichever
    /// forced backend its crossover selects, end to end through the DC
    /// operating-point solve.
    #[test]
    fn auto_crossover_dispatch_is_bitwise(
        segs in 3usize..12,
        crossover in 2usize..20,
        r_scale in 10.0..1e4f64,
    ) {
        let ckt = rc_ladder(segs, r_scale);
        let dim = segs + 2; // segs internal nodes + drive node + vsource branch
        let solve_with = |backend: SolverBackend| {
            let opts = DcOptions {
                solver: SolverConfig {
                    backend,
                    crossover,
                    ..SolverConfig::default()
                },
                ..DcOptions::default()
            };
            dc_operating_point(&ckt, &opts).expect("rc ladder solves").mna_vector()
        };
        let auto = solve_with(SolverBackend::Auto);
        let forced = if dim >= crossover {
            solve_with(SolverBackend::Sparse)
        } else {
            solve_with(SolverBackend::Dense)
        };
        prop_assert_eq!(auto, forced);
    }
}
