//! Property: the corner-batched noise analyses are equivalent to the
//! scalar per-corner reference.
//!
//! [`noise_analysis_batch`] performs the scalar kernels' arithmetic in
//! the scalar kernels' order per corner, so it must agree **bitwise**
//! with [`noise_analysis_ws`] corner for corner — no tolerance to hide
//! behind. [`noise_analysis_corners`] recovers each sibling through the
//! base-plus-Woodbury correction, which is algebraically exact, so it
//! must agree to roundoff (far inside the warm path's solver-tolerance
//! contract); at stock dims (`n <= 16`) it falls back to the scalar
//! path and the comparison tightens back to bitwise.

use autockt_sim::ac::{log_freqs, AcBatchWorkspace, AcSolver, AcWorkspace};
use autockt_sim::dc::{dc_operating_point, DcOptions, OpPoint};
use autockt_sim::device::{MosPolarity, Technology};
use autockt_sim::netlist::{Circuit, Mosfet, Node, GND};
use autockt_sim::noise::{noise_analysis_batch, noise_analysis_corners, noise_analysis_ws};
use autockt_sim::SimError;
use proptest::prelude::*;

/// A common-source amplifier driving a `depth`-segment RC mesh — the
/// worst-case-PVT shape: the mesh (and every passive) is shared by all
/// corners, only the device stamps differ with `w`.
fn amp_with_mesh(w: f64, depth: usize) -> (Circuit, Node) {
    let t = Technology::ptm45();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let d = ckt.node("d");
    ckt.vsource(vdd, GND, 1.0, 0.0);
    ckt.vsource(g, GND, 0.55, 1.0);
    ckt.resistor(vdd, d, 5.0e3);
    ckt.mosfet(Mosfet {
        polarity: MosPolarity::Nmos,
        d,
        g,
        s: GND,
        w,
        l: 90e-9,
        mult: 1.0,
        model: t.nmos,
    });
    let mut prev = d;
    for s in 0..depth {
        let n = ckt.node(&format!("m{s}"));
        ckt.resistor(prev, n, 1.0e3);
        ckt.capacitor(n, GND, 2e-15);
        prev = n;
    }
    let out = ckt.node("out");
    ckt.resistor(prev, out, 1.0e3);
    ckt.capacitor(out, GND, 1e-13);
    (ckt, out)
}

/// Builds the corner set, solves every operating point cold, and returns
/// everything the batched entry points need.
#[allow(clippy::type_complexity)]
fn corner_set(widths: &[f64], depth: usize) -> (Vec<(Circuit, Node)>, Vec<OpPoint>, Vec<f64>) {
    let variants: Vec<(Circuit, Node)> = widths.iter().map(|&w| amp_with_mesh(w, depth)).collect();
    let ops: Vec<OpPoint> = variants
        .iter()
        .map(|(ckt, _)| dc_operating_point(ckt, &DcOptions::default()).expect("amp solves"))
        .collect();
    // Corner temperatures vary like a PVT set (enters the PSD weights).
    let temps: Vec<f64> = (0..widths.len())
        .map(|i| 233.15 + 50.0 * i as f64)
        .collect();
    (variants, ops, temps)
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

/// Runs the scalar reference per corner, then checks both batched paths.
fn check_equivalence(widths: &[f64], depth: usize, bitwise_corners: bool) -> Result<(), String> {
    let (variants, ops, temps) = corner_set(widths, depth);
    let solvers: Vec<AcSolver<'_>> = variants
        .iter()
        .zip(&ops)
        .map(|((ckt, _), op)| AcSolver::new(ckt, op))
        .collect();
    let op_refs: Vec<&OpPoint> = ops.iter().collect();
    let outs: Vec<Node> = variants.iter().map(|(_, o)| *o).collect();
    let freqs = log_freqs(1e4, 1e10, 5);

    let mut sws = AcWorkspace::new();
    let scalar: Vec<_> = variants
        .iter()
        .zip(ops.iter().zip(&temps))
        .map(|((ckt, out), (op, &t))| noise_analysis_ws(ckt, op, *out, &freqs, t, &mut sws))
        .collect();

    let mut ws = AcBatchWorkspace::new();
    let batch = noise_analysis_batch(&solvers, &op_refs, &outs, &freqs, &temps, &mut ws);
    for (b, (bb, ss)) in batch.iter().zip(&scalar).enumerate() {
        match (bb, ss) {
            (Ok(bb), Ok(ss)) => {
                if bb != ss {
                    return Err(format!("batch diverged bitwise at corner {b}"));
                }
            }
            (Err(_), Err(_)) => {}
            _ => {
                return Err(format!(
                    "batch outcome diverged at corner {b}: {bb:?} vs {ss:?}"
                ))
            }
        }
    }

    let corr = noise_analysis_corners(&solvers, &op_refs, &outs, &freqs, &temps, &mut ws);
    for (b, (cc, ss)) in corr.iter().zip(&scalar).enumerate() {
        match (cc, ss) {
            (Ok(cc), Ok(ss)) => {
                if bitwise_corners {
                    if cc != ss {
                        return Err(format!(
                            "corrected path diverged bitwise at stock dims, corner {b}"
                        ));
                    }
                    continue;
                }
                if !rel_close(cc.out_vrms, ss.out_vrms, 1e-9)
                    || !rel_close(cc.input_referred_rms, ss.input_referred_rms, 1e-9)
                {
                    return Err(format!(
                        "corrected integrals diverged at corner {b}: {} vs {}",
                        cc.out_vrms, ss.out_vrms
                    ));
                }
                for (i, ((pc, ps), (gc, gs))) in cc
                    .out_psd
                    .iter()
                    .zip(&ss.out_psd)
                    .zip(cc.gain.iter().zip(&ss.gain))
                    .enumerate()
                {
                    if !rel_close(*pc, *ps, 1e-8) || !rel_close(*gc, *gs, 1e-8) {
                        return Err(format!(
                            "corrected point {i} diverged at corner {b}: psd {pc} vs {ps}, gain {gc} vs {gs}"
                        ));
                    }
                }
            }
            (Err(_), Err(_)) => {}
            _ => {
                return Err(format!(
                    "corrected outcome diverged at corner {b}: {cc:?} vs {ss:?}"
                ))
            }
        }
    }
    Ok(())
}

proptest! {
    /// Dense mesh (dim > 16): lockstep bitwise, corrected to roundoff.
    #[test]
    fn noise_batch_bitwise_and_corrected_close_dense(
        base_w in 0.8e-6..4.0e-6f64,
        deltas in prop::collection::vec(-0.3..0.3f64, 5),
        depth in 18usize..30,
    ) {
        let widths: Vec<f64> = std::iter::once(base_w)
            .chain(deltas.iter().map(|d| base_w * (1.0 + d)))
            .collect();
        let r = check_equivalence(&widths, depth, false);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Stock dims (dim <= 16): both batched paths reduce to the scalar
    /// arithmetic, so even the corrected path is bitwise.
    #[test]
    fn noise_batch_bitwise_at_stock_dims(
        base_w in 0.8e-6..4.0e-6f64,
        deltas in prop::collection::vec(-0.3..0.3f64, 5),
        depth in 0usize..8,
    ) {
        let widths: Vec<f64> = std::iter::once(base_w)
            .chain(deltas.iter().map(|d| base_w * (1.0 + d)))
            .collect();
        let r = check_equivalence(&widths, depth, true);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}

#[test]
fn single_corner_and_empty_batches() {
    let (variants, ops, temps) = corner_set(&[2e-6], 20);
    let solvers: Vec<AcSolver<'_>> = variants
        .iter()
        .zip(&ops)
        .map(|((ckt, _), op)| AcSolver::new(ckt, op))
        .collect();
    let op_refs: Vec<&OpPoint> = ops.iter().collect();
    let outs: Vec<Node> = variants.iter().map(|(_, o)| *o).collect();
    let freqs = log_freqs(1e4, 1e10, 4);
    let mut ws = AcBatchWorkspace::new();
    // Single corner: both entry points run the scalar path, bitwise.
    let scalar = noise_analysis_ws(
        &variants[0].0,
        &ops[0],
        outs[0],
        &freqs,
        temps[0],
        &mut AcWorkspace::new(),
    )
    .unwrap();
    let batch = noise_analysis_batch(&solvers, &op_refs, &outs, &freqs, &temps, &mut ws);
    assert_eq!(batch.len(), 1);
    assert_eq!(batch[0].as_ref().unwrap(), &scalar);
    let corr = noise_analysis_corners(&solvers, &op_refs, &outs, &freqs, &temps, &mut ws);
    assert_eq!(corr[0].as_ref().unwrap(), &scalar);
    // Empty batch: empty result, no panic.
    assert!(noise_analysis_batch(&[], &[], &[], &freqs, &[], &mut ws).is_empty());
    assert!(noise_analysis_corners(&[], &[], &[], &freqs, &[], &mut ws).is_empty());
}

#[test]
fn degenerate_grid_reports_invalid_options_per_corner() {
    let (variants, ops, temps) = corner_set(&[2e-6, 2.4e-6], 20);
    let solvers: Vec<AcSolver<'_>> = variants
        .iter()
        .zip(&ops)
        .map(|((ckt, _), op)| AcSolver::new(ckt, op))
        .collect();
    let op_refs: Vec<&OpPoint> = ops.iter().collect();
    let outs: Vec<Node> = variants.iter().map(|(_, o)| *o).collect();
    let mut ws = AcBatchWorkspace::new();
    for bad in [vec![], vec![1e6, 1e3], vec![-1.0, 1e3]] {
        let batch = noise_analysis_batch(&solvers, &op_refs, &outs, &bad, &temps, &mut ws);
        assert_eq!(batch.len(), 2);
        for r in &batch {
            assert!(matches!(r, Err(SimError::InvalidOptions { .. })), "{r:?}");
        }
        let corr = noise_analysis_corners(&solvers, &op_refs, &outs, &bad, &temps, &mut ws);
        for r in &corr {
            assert!(matches!(r, Err(SimError::InvalidOptions { .. })), "{r:?}");
        }
    }
}

/// Workspace reuse across back-to-back analyses (the session pattern)
/// must not perturb results.
#[test]
fn workspace_reuse_is_stable() {
    let (variants, ops, temps) = corner_set(&[2e-6, 1.6e-6, 2.8e-6], 22);
    let solvers: Vec<AcSolver<'_>> = variants
        .iter()
        .zip(&ops)
        .map(|((ckt, _), op)| AcSolver::new(ckt, op))
        .collect();
    let op_refs: Vec<&OpPoint> = ops.iter().collect();
    let outs: Vec<Node> = variants.iter().map(|(_, o)| *o).collect();
    let freqs = log_freqs(1e4, 1e10, 4);
    let mut ws = AcBatchWorkspace::new();
    let a = noise_analysis_corners(&solvers, &op_refs, &outs, &freqs, &temps, &mut ws);
    let sweep = autockt_sim::ac::ac_sweep_corners(&solvers, &freqs, &outs, &mut ws);
    assert!(sweep.iter().all(Result::is_ok));
    let b = noise_analysis_corners(&solvers, &op_refs, &outs, &freqs, &temps, &mut ws);
    assert_eq!(
        a.iter().map(|r| r.as_ref().unwrap()).collect::<Vec<_>>(),
        b.iter().map(|r| r.as_ref().unwrap()).collect::<Vec<_>>()
    );
    let c = noise_analysis_batch(&solvers, &op_refs, &outs, &freqs, &temps, &mut ws);
    let d = noise_analysis_batch(&solvers, &op_refs, &outs, &freqs, &temps, &mut ws);
    assert_eq!(
        c.iter().map(|r| r.as_ref().unwrap()).collect::<Vec<_>>(),
        d.iter().map(|r| r.as_ref().unwrap()).collect::<Vec<_>>()
    );
}
