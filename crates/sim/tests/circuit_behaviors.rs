//! Physics-level integration tests of the simulator: canonical circuits
//! with hand-computable answers, exercised through the public API exactly
//! the way the circuit generators use it.

use autockt_sim::prelude::*;

#[test]
fn wheatstone_bridge_balances() {
    // A balanced bridge has zero differential voltage.
    let mut ckt = Circuit::new();
    let top = ckt.node("top");
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource(top, GND, 1.0, 0.0);
    ckt.resistor(top, a, 1.0e3);
    ckt.resistor(a, GND, 2.0e3);
    ckt.resistor(top, b, 5.0e3);
    ckt.resistor(b, GND, 10.0e3);
    let op = dc_operating_point(&ckt, &DcOptions::default()).expect("solves");
    // The gmin regularization (1e-12 S per node) perturbs the two arms by
    // different Thevenin resistances, so exact equality is relaxed to the
    // microvolt level.
    assert!((op.voltage(a) - op.voltage(b)).abs() < 1e-6);
}

#[test]
fn miller_effect_multiplies_feedback_capacitance() {
    // An inverting stage with C_f from input to output shows an input pole
    // at roughly 1/(2 pi R_s C_f (1+|A|)) — far below the pole R_s C_f
    // alone would give.
    let tech = Technology::ptm45();
    let build = |cf: f64| {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("vin");
        let g = ckt.node("g");
        let o = ckt.node("o");
        ckt.vsource(vdd, GND, 1.2, 0.0);
        ckt.vsource(vin, GND, 0.55, 1.0);
        ckt.resistor_noiseless(vin, g, 100.0e3); // source resistance
        ckt.resistor_noiseless(vdd, o, 20.0e3);
        ckt.capacitor(g, o, cf);
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Nmos,
            d: o,
            g,
            s: GND,
            w: 4e-6,
            l: 90e-9,
            mult: 1.0,
            model: tech.nmos,
        });
        (ckt, o)
    };
    let f3 = |cf: f64| {
        let (ckt, o) = build(cf);
        let op = dc_operating_point(&ckt, &DcOptions::default()).expect("op");
        ac_sweep(&ckt, &op, &log_freqs(1e2, 1e11, 20), o)
            .expect("sweep")
            .f_3db()
            .expect("pole in band")
    };
    let wide = f3(1e-15);
    let narrow = f3(100e-15);
    // 100x the feedback cap shrinks bandwidth by roughly (1+|A|)x more
    // than the cap ratio alone would if Miller multiplication is modeled.
    assert!(
        narrow < wide / 10.0,
        "miller: {narrow:.3e} should be << {wide:.3e}"
    );
}

#[test]
fn source_follower_gain_below_unity() {
    let tech = Technology::ptm45();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let s = ckt.node("s");
    ckt.vsource(vdd, GND, 1.2, 0.0);
    ckt.vsource(g, GND, 0.9, 1.0);
    ckt.mosfet(Mosfet {
        polarity: MosPolarity::Nmos,
        d: vdd,
        g,
        s,
        w: 10e-6,
        l: 90e-9,
        mult: 1.0,
        model: tech.nmos,
    });
    ckt.resistor_noiseless(s, GND, 10.0e3);
    let op = dc_operating_point(&ckt, &DcOptions::default()).expect("op");
    let resp = ac_sweep(&ckt, &op, &[1e3], s).expect("sweep");
    let a = resp.h[0].norm();
    assert!(a > 0.5 && a < 1.0, "follower gain {a} must be just below 1");
    // Non-inverting: phase near 0.
    assert!(resp.h[0].arg().to_degrees().abs() < 10.0);
}

#[test]
fn cascaded_rc_has_two_poles_in_phase() {
    let mut ckt = Circuit::new();
    let i = ckt.node("in");
    let m = ckt.node("mid");
    let o = ckt.node("out");
    ckt.vsource(i, GND, 0.0, 1.0);
    ckt.resistor(i, m, 1.0e3);
    ckt.capacitor(m, GND, 1e-9);
    // Buffer the second section with a VCCS to isolate the poles.
    let o2 = ckt.node("buf");
    ckt.vccs(GND, o2, m, GND, 1e-3);
    ckt.resistor(o2, GND, 1.0e3);
    ckt.resistor(o2, o, 1.0e3);
    ckt.capacitor(o, GND, 1e-9);
    let op = dc_operating_point(&ckt, &DcOptions::default()).expect("op");
    let resp = ac_sweep(&ckt, &op, &log_freqs(1e3, 1e9, 20), o).expect("sweep");
    let ph = resp.phase_unwrapped_deg();
    let total_shift = ph.last().expect("nonempty") - ph[0];
    // Two isolated RC poles asymptote to -180 degrees of phase.
    assert!(
        (total_shift + 180.0).abs() < 15.0,
        "two poles give ~-180 deg, got {total_shift}"
    );
}

#[test]
fn transient_matches_ac_time_constant() {
    // The settling time measured by the nonlinear transient engine must
    // agree with the linearized step response for a linear circuit.
    let mut ckt = Circuit::new();
    let i = ckt.node("in");
    let o = ckt.node("out");
    ckt.vsource_step(
        i,
        GND,
        Step {
            v0: 0.0,
            v1: 0.5,
            t_delay: 0.0,
        },
        1.0,
    );
    ckt.resistor(i, o, 2.0e3);
    ckt.capacitor(o, GND, 1e-9);
    let res = transient(&ckt, &TranOptions::new(20e-6, 4000)).expect("tran");
    let w = res.node_waveform(o);
    let ts_tran = settling_time(&res.t, &w, 0.02).expect("settles");

    let op = dc_operating_point(&ckt, &DcOptions::default()).expect("op");
    let solver = autockt_sim::ac::AcSolver::new(&ckt, &op);
    let (t, y) = solver.step_response(o, 20e-6, 4000).expect("lin step");
    let ts_lin = settling_time(&t, &y, 0.02).expect("settles");
    assert!(
        (ts_tran - ts_lin).abs() / ts_lin < 0.05,
        "tran {ts_tran:.3e} vs linear {ts_lin:.3e}"
    );
}

#[test]
fn noise_grows_with_temperature() {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let o = ckt.node("o");
    ckt.vsource(inp, GND, 0.0, 1.0);
    ckt.resistor(inp, o, 10.0e3);
    ckt.capacitor(o, GND, 1e-12);
    let f = log_freqs(1e3, 1e6, 10);
    let op = dc_operating_point(&ckt, &DcOptions::default()).expect("op");
    let cold = noise_analysis(&ckt, &op, o, &f, 250.0).expect("cold");
    let hot = noise_analysis(&ckt, &op, o, &f, 400.0).expect("hot");
    assert!(hot.out_vrms > cold.out_vrms);
}

#[test]
fn pvt_corners_order_device_current() {
    // FF > TT > SS drain current for the same bias — the ordering every
    // worst-case methodology relies on.
    let id_at = |tech: &Technology| {
        let m = tech.nmos;
        m.eval(0.7, 0.9, 2e-6, 90e-9, 1.0).id
    };
    let nom = Technology::ptm45();
    let ss = nom.at_corner(Pvt {
        process: ProcessCorner::Ss,
        vdd_scale: 1.0,
        temp_c: 27.0,
    });
    let ff = nom.at_corner(Pvt {
        process: ProcessCorner::Ff,
        vdd_scale: 1.0,
        temp_c: 27.0,
    });
    let (i_ss, i_tt, i_ff) = (id_at(&ss), id_at(&nom), id_at(&ff));
    assert!(i_ss < i_tt && i_tt < i_ff, "{i_ss} < {i_tt} < {i_ff}");

    // Heat also degrades drive at fixed corner (mobility dominates).
    let hot = nom.at_corner(Pvt {
        process: ProcessCorner::Tt,
        vdd_scale: 1.0,
        temp_c: 125.0,
    });
    // At high vgs the mobility term dominates the vth drop.
    let i_hot = hot.nmos.eval(0.9, 0.9, 2e-6, 90e-9, 1.0).id;
    let i_cold = nom.nmos.eval(0.9, 0.9, 2e-6, 90e-9, 1.0).id;
    assert!(i_hot < i_cold, "hot {i_hot} vs cold {i_cold}");
}
