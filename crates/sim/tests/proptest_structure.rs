//! Property-based tests for the structural-analysis layer
//! (`linalg::structure`): maximum matching must compute the true
//! structural rank (== numeric rank for generic values), the BTF
//! decomposition must be a valid block-upper-triangular permutation, the
//! BTF factorization must agree with the plain sparse path and be
//! bitwise-stable across same-pattern refactors, and the structural
//! preflight must reject a floating-node circuit before any Newton work.

use autockt_sim::dc::{dc_operating_point, DcOptions};
use autockt_sim::linalg::sparse::{CscMatrix, SparseLu, TripletList};
use autockt_sim::linalg::structure::{
    btf_decompose, maximum_matching, structural_check, BtfLu, UNMATCHED,
};
use autockt_sim::netlist::{Circuit, GND};
use autockt_sim::{SimError, SolverConfig};
use proptest::prelude::*;

/// Builds an `n x n` CSC pattern from `(slot -> (row, col))` picks, with
/// values chosen to be "generic": spread magnitudes, no structured
/// cancellation, so the numeric rank equals the structural rank with
/// probability 1.
fn random_pattern(n: usize, slots: &[usize], vals: &[f64]) -> CscMatrix<f64> {
    let mut t = TripletList::new(n);
    for (i, &s) in slots.iter().enumerate() {
        let (r, c) = (s / n % n, s % n);
        // Strictly positive, spread over two decades, perturbed per slot:
        // duplicate (r, c) picks merge additively and stay nonzero.
        let v = (1.0 + vals[i % vals.len()].abs()) * (1.0 + 0.01 * i as f64);
        t.push(r, c, v);
    }
    let mut csc = CscMatrix::empty();
    t.compress_into(&mut csc);
    csc
}

/// Numeric rank of a dense copy via complete-pivoting Gaussian
/// elimination. Complete pivoting keeps the growth factor tame, so at
/// these sizes a relative threshold cleanly separates "zero by
/// structure" from roundoff.
#[allow(clippy::needless_range_loop)] // index pairs mirror the math
fn numeric_rank(a: &CscMatrix<f64>) -> usize {
    let n = a.dim();
    let mut m = vec![vec![0.0f64; n]; n];
    for j in 0..n {
        for p in a.col_ptr()[j]..a.col_ptr()[j + 1] {
            m[a.row_idx()[p]][j] = a.values()[p];
        }
    }
    let scale: f64 = m
        .iter()
        .flatten()
        .fold(0.0f64, |acc, v| acc.max(v.abs()))
        .max(1.0);
    let mut rank = 0;
    for step in 0..n {
        let mut best = (step, step, 0.0f64);
        for r in step..n {
            for c in step..n {
                if m[r][c].abs() > best.2 {
                    best = (r, c, m[r][c].abs());
                }
            }
        }
        if best.2 <= 1e-10 * scale {
            break;
        }
        m.swap(step, best.0);
        for row in m.iter_mut() {
            row.swap(step, best.1);
        }
        rank += 1;
        let piv = m[step][step];
        for r in (step + 1)..n {
            let f = m[r][step] / piv;
            for c in step..n {
                let upd = f * m[step][c];
                m[r][c] -= upd;
            }
        }
    }
    rank
}

/// A diagonally dominant matrix over a random sparsity pattern with a
/// full diagonal: structurally and numerically nonsingular, and with
/// enough sparsity that the BTF decomposition regularly finds several
/// blocks.
fn dominant_on_pattern(n: usize, slots: &[usize], vals: &[f64]) -> CscMatrix<f64> {
    let mut dense = vec![vec![0.0f64; n]; n];
    for (i, &s) in slots.iter().enumerate() {
        let (r, c) = (s / n % n, s % n);
        if r != c {
            dense[r][c] = vals[i % vals.len()].clamp(-10.0, 10.0);
        }
    }
    for (r, row) in dense.iter_mut().enumerate() {
        let rowsum: f64 = row.iter().map(|v| v.abs()).sum();
        row[r] = rowsum + 1.0;
    }
    let mut t = TripletList::new(n);
    for (r, row) in dense.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if v != 0.0 {
                t.push(r, c, v);
            }
        }
    }
    let mut csc = CscMatrix::empty();
    t.compress_into(&mut csc);
    csc
}

proptest! {
    /// The matching size equals the numeric rank of the pattern filled
    /// with generic values: the matching is neither optimistic (it never
    /// exceeds any achievable numeric rank) nor pessimistic (generic
    /// values achieve it).
    #[test]
    fn structural_rank_equals_generic_numeric_rank(
        n in 1usize..10,
        slots in prop::collection::vec(0usize..100, 0..40),
        vals in prop::collection::vec(-10.0..10.0f64, 40),
    ) {
        let a = random_pattern(n, &slots, &vals);
        let (rank, match_row) = maximum_matching(n, a.col_ptr(), a.row_idx());
        prop_assert_eq!(rank, numeric_rank(&a));
        // The matching itself must be consistent: matched rows distinct,
        // each matched row actually present in its column's pattern.
        let mut used = vec![false; n];
        let mut counted = 0;
        for (j, &r) in match_row.iter().enumerate() {
            if r == UNMATCHED {
                continue;
            }
            counted += 1;
            prop_assert!(r < n && !used[r], "row matched twice");
            used[r] = true;
            let col = &a.row_idx()[a.col_ptr()[j]..a.col_ptr()[j + 1]];
            prop_assert!(col.contains(&r), "matched row not in column pattern");
        }
        prop_assert_eq!(counted, rank);
    }

    /// On full-structural-rank patterns the BTF decomposition is a valid
    /// permutation pair: blocks tile `0..n`, the permuted diagonal is
    /// structurally nonzero, and every entry lands in a block row at or
    /// above its block column (block upper triangular).
    #[test]
    fn btf_is_a_block_upper_triangular_permutation(
        n in 1usize..12,
        slots in prop::collection::vec(0usize..150, 0..50),
        vals in prop::collection::vec(-10.0..10.0f64, 40),
    ) {
        let a = dominant_on_pattern(n, &slots, &vals);
        let match_row = structural_check(n, a.col_ptr(), a.row_idx()).expect("full diagonal");
        let btf = btf_decompose(n, a.col_ptr(), a.row_idx(), &match_row);
        // Permutation validity.
        for perm in [&btf.row_perm, &btf.col_perm] {
            prop_assert_eq!(perm.len(), n);
            let mut seen = vec![false; n];
            for &p in perm {
                prop_assert!(p < n && !seen[p], "not a permutation");
                seen[p] = true;
            }
        }
        // Blocks tile the index range exactly.
        prop_assert_eq!(*btf.block_ptr.first().expect("nonempty block_ptr"), 0);
        prop_assert_eq!(*btf.block_ptr.last().expect("nonempty block_ptr"), n);
        prop_assert!(btf.block_ptr.windows(2).all(|w| w[0] < w[1]));
        let mut rpos = vec![0usize; n];
        for (k, &r) in btf.row_perm.iter().enumerate() {
            rpos[r] = k;
        }
        let mut block_of = vec![0usize; n];
        for b in 0..btf.nblocks() {
            for pos in block_of
                .iter_mut()
                .take(btf.block_ptr[b + 1])
                .skip(btf.block_ptr[b])
            {
                *pos = b;
            }
        }
        for (k, &j) in btf.col_perm.iter().enumerate() {
            let col = &a.row_idx()[a.col_ptr()[j]..a.col_ptr()[j + 1]];
            // Structurally nonzero diagonal (the matching, permuted).
            prop_assert!(col.contains(&btf.row_perm[k]), "zero-free diagonal violated");
            for &i in col {
                prop_assert!(
                    block_of[rpos[i]] <= block_of[k],
                    "entry below the diagonal blocks"
                );
            }
        }
    }

    /// BTF and plain sparse factorizations agree on the solution to
    /// solver tolerance, and a same-pattern BTF refactor is bitwise
    /// identical to a freshly decomposed factorization of the same
    /// values.
    #[test]
    fn btf_solve_matches_plain_and_refactor_is_bitwise(
        n in 1usize..12,
        slots in prop::collection::vec(0usize..150, 0..50),
        vals in prop::collection::vec(-10.0..10.0f64, 40),
        rhs in prop::collection::vec(-100.0..100.0f64, 12),
    ) {
        let a = dominant_on_pattern(n, &slots, &vals);
        let mut btf = BtfLu::empty();
        btf.refactor(&a, 1e-300).expect("dominant");
        let plain = SparseLu::factor(&a, 1e-300).expect("dominant");
        let b = &rhs[..n];
        let xb = btf.solve(b);
        let xp = plain.solve(b);
        for (u, v) in xb.iter().zip(&xp) {
            prop_assert!((u - v).abs() <= 1e-9 * (1.0 + v.abs()), "{u} vs {v}");
        }
        // Same-pattern refactor with scaled values: warm path vs fresh
        // decomposition must produce bitwise-equal solutions.
        let mut t = TripletList::new(n);
        for j in 0..n {
            for p in a.col_ptr()[j]..a.col_ptr()[j + 1] {
                t.push(a.row_idx()[p], j, a.values()[p] * 1.5);
            }
        }
        let mut a2 = CscMatrix::empty();
        t.compress_into(&mut a2);
        prop_assert_eq!(a.col_ptr(), a2.col_ptr());
        prop_assert_eq!(a.row_idx(), a2.row_idx());
        btf.refactor(&a2, 1e-300).expect("dominant");
        let mut fresh = BtfLu::empty();
        fresh.refactor(&a2, 1e-300).expect("dominant");
        prop_assert_eq!(btf.solve(b), fresh.solve(b));
        prop_assert_eq!(btf.factor_nnz(), fresh.factor_nnz());
        prop_assert_eq!(btf.nblocks(), fresh.nblocks());
    }

    /// Deleting a column's every entry from a full-rank pattern drops the
    /// structural rank, and `structural_check` names that exact column.
    #[test]
    fn emptied_column_is_diagnosed_by_name(
        n in 2usize..10,
        victim in 0usize..10,
        slots in prop::collection::vec(0usize..100, 0..40),
        vals in prop::collection::vec(-10.0..10.0f64, 40),
    ) {
        let victim = victim % n;
        let full = dominant_on_pattern(n, &slots, &vals);
        let mut t = TripletList::new(n);
        for j in 0..n {
            if j == victim {
                continue;
            }
            for p in full.col_ptr()[j]..full.col_ptr()[j + 1] {
                t.push(full.row_idx()[p], j, full.values()[p]);
            }
        }
        let mut a = CscMatrix::empty();
        t.compress_into(&mut a);
        match structural_check(n, a.col_ptr(), a.row_idx()) {
            Err(SimError::StructurallySingular { column, structural_rank, dim }) => {
                prop_assert_eq!(column, victim);
                prop_assert_eq!(structural_rank, n - 1);
                prop_assert_eq!(dim, n);
            }
            other => prop_assert!(false, "expected StructurallySingular, got {other:?}"),
        }
    }
}

/// Builds a resistive grid (the PEX-mesh shape) hanging off a driven
/// node, with one interior node coupled to its neighbours through
/// capacitors only — open circuits at DC, so that node's MNA column is
/// structurally empty once gmin regularization is disabled.
fn floating_mesh_circuit(k: usize) -> (Circuit, usize) {
    let mut ckt = Circuit::new();
    let drive = ckt.node("drive");
    ckt.vsource(drive, GND, 1.0, 0.0);
    let nodes: Vec<_> = (0..k * k).map(|i| ckt.node(&format!("m{i}"))).collect();
    ckt.resistor(drive, nodes[0], 100.0);
    for r in 0..k {
        for c in 0..k {
            let i = r * k + c;
            if c + 1 < k {
                ckt.resistor(nodes[i], nodes[i + 1], 50.0);
            }
            if r + 1 < k {
                ckt.resistor(nodes[i], nodes[i + k], 50.0);
            }
        }
    }
    ckt.resistor(nodes[k * k - 1], GND, 200.0);
    // The floating victim: capacitively coupled to two mesh corners,
    // no DC path anywhere.
    let float = ckt.node("float");
    ckt.capacitor(float, nodes[0], 1e-15);
    ckt.capacitor(float, nodes[k * k - 1], 2e-15);
    // MNA column: node voltages occupy columns 0..nv-1 in node order,
    // ground excluded.
    (ckt, float.index() - 1)
}

/// With gmin disabled, the floating mesh node must be rejected by the
/// structural preflight — [`SimError::StructurallySingular`] naming its
/// MNA column — with zero Newton iterations taken: the diagnosis comes
/// out of the pattern before the first linear solve, not from a numeric
/// pivot failure (`SingularSparse`) or iteration exhaustion
/// (`DcNoConvergence`) later.
#[test]
fn floating_mesh_node_fails_structural_preflight_before_newton() {
    let (ckt, float_col) = floating_mesh_circuit(4);
    let opts = DcOptions {
        gmin: 0.0,
        solver: SolverConfig::sparse(),
        ..DcOptions::default()
    };
    match dc_operating_point(&ckt, &opts) {
        Err(SimError::StructurallySingular {
            column,
            structural_rank,
            dim,
        }) => {
            assert_eq!(column, float_col, "diagnosis must name the floating node");
            assert_eq!(structural_rank, dim - 1);
        }
        other => panic!("expected StructurallySingular, got {other:?}"),
    }
    // The same topology with default gmin regularization solves: the
    // failure above is a property of the gmin-free pattern, and the
    // preflight never rejects a pattern the factorization could handle.
    let regularized = DcOptions {
        solver: SolverConfig::sparse(),
        ..DcOptions::default()
    };
    let op = dc_operating_point(&ckt, &regularized).expect("gmin regularizes the floating node");
    assert!(op.iterations() >= 1);
}

/// The BTF mode must deliver the same DC answer as the plain sparse mode
/// on a real circuit solve, end to end through the Newton loop.
#[test]
fn btf_and_plain_sparse_dc_agree_on_mesh() {
    let (ckt, _) = floating_mesh_circuit(5);
    let solve = |btf: bool| {
        let opts = DcOptions {
            solver: SolverConfig::sparse().with_btf(btf),
            ..DcOptions::default()
        };
        dc_operating_point(&ckt, &opts).expect("regularized mesh solves")
    };
    let with_btf = solve(true);
    let plain = solve(false);
    for (a, b) in with_btf.voltages().iter().zip(plain.voltages()) {
        assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
    }
}
