//! Property-based tests for the linear-algebra kernel: LU solves must
//! invert `mul_vec` for any well-conditioned system, real or complex.

use autockt_sim::complex::Complex;
use autockt_sim::linalg::{solve, ComplexLuBatch, ComplexLuSoa, LuFactors, Matrix, RealLuBatch};
use proptest::prelude::*;

/// Builds a diagonally dominant matrix from arbitrary entries — guaranteed
/// nonsingular, so the roundtrip property is well-posed.
fn dominant_from(entries: Vec<f64>, n: usize) -> Matrix<f64> {
    let mut m = Matrix::zeros(n, n);
    for r in 0..n {
        let mut rowsum = 0.0;
        for c in 0..n {
            if r != c {
                let v = entries[r * n + c].clamp(-10.0, 10.0);
                m[(r, c)] = v;
                rowsum += v.abs();
            }
        }
        let sign = if entries[r * n + r] >= 0.0 { 1.0 } else { -1.0 };
        m[(r, r)] = sign * (rowsum + 1.0 + entries[r * n + r].abs().clamp(0.0, 10.0));
    }
    m
}

proptest! {
    #[test]
    fn lu_roundtrip_real(
        n in 1usize..8,
        entries in prop::collection::vec(-10.0..10.0f64, 64),
        x in prop::collection::vec(-100.0..100.0f64, 8),
    ) {
        let a = dominant_from(entries, n);
        let xt = &x[..n];
        let b = a.mul_vec(xt);
        let got = solve(a, &b).expect("dominant matrix is nonsingular");
        for (g, t) in got.iter().zip(xt) {
            prop_assert!((g - t).abs() < 1e-7 * (1.0 + t.abs()), "{g} vs {t}");
        }
    }

    #[test]
    fn lu_roundtrip_complex(
        n in 1usize..6,
        re in prop::collection::vec(-5.0..5.0f64, 36),
        im in prop::collection::vec(-5.0..5.0f64, 36),
        xre in prop::collection::vec(-10.0..10.0f64, 6),
    ) {
        let mut a = Matrix::<Complex>::zeros(n, n);
        for r in 0..n {
            let mut rowsum = 0.0;
            for c in 0..n {
                if r != c {
                    let v = Complex::new(re[r * n + c], im[r * n + c]);
                    a[(r, c)] = v;
                    rowsum += v.norm();
                }
            }
            a[(r, r)] = Complex::new(rowsum + 1.0, im[r * n + r]);
        }
        let xt: Vec<Complex> = xre[..n].iter().map(|v| Complex::new(*v, -v * 0.5)).collect();
        let b = a.mul_vec(&xt);
        let got = solve(a, &b).expect("dominant complex matrix");
        for (g, t) in got.iter().zip(&xt) {
            prop_assert!((*g - *t).norm() < 1e-7 * (1.0 + t.norm()));
        }
    }

    /// The structure-of-arrays complex LU performs the same operations in
    /// the same order as the generic `LuFactors<Complex>` kernel, so its
    /// factors and solutions are *bitwise* equal — not merely within
    /// tolerance — for any solvable system, including ill-scaled ones
    /// (no diagonal-dominance conditioning here: whenever the generic
    /// kernel factors, the SoA kernel must agree exactly).
    #[test]
    fn soa_complex_lu_matches_generic_kernel_bitwise(
        n in 1usize..8,
        re in prop::collection::vec(-50.0..50.0f64, 64),
        im in prop::collection::vec(-50.0..50.0f64, 64),
        bre in prop::collection::vec(-10.0..10.0f64, 8),
        bim in prop::collection::vec(-10.0..10.0f64, 8),
    ) {
        let mut a = Matrix::<Complex>::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = Complex::new(re[r * n + c], im[r * n + c]);
            }
        }
        let b: Vec<Complex> = bre[..n]
            .iter()
            .zip(&bim[..n])
            .map(|(&br, &bi)| Complex::new(br, bi))
            .collect();
        let aos = LuFactors::factor(a.clone(), 1e-300);
        let soa = ComplexLuSoa::factor(&a, 1e-300);
        match (aos, soa) {
            (Ok(aos), Ok(soa)) => {
                let xa = aos.solve(&b);
                let xs = soa.solve(&b);
                prop_assert_eq!(xa, xs);
            }
            (Err(ea), Err(es)) => prop_assert_eq!(ea, es),
            (a, s) => prop_assert!(false, "kernels disagree on solvability: {a:?} vs {s:?}"),
        }
    }

    /// Each system of a real lockstep batch performs the same operations
    /// in the same order as the scalar `LuFactors<f64>` kernel, so its
    /// factors and solutions are *bitwise* equal — including batches that
    /// mix solvable and singular systems (a singular sibling must be
    /// masked off without perturbing anyone else's lanes).
    #[test]
    fn real_lu_batch_matches_scalar_kernel_bitwise(
        n in 1usize..7,
        batch in 1usize..6,
        entries in prop::collection::vec(-50.0..50.0f64, 6 * 49),
        rhs in prop::collection::vec(-10.0..10.0f64, 6 * 7),
        degenerate in prop::collection::vec(0usize..5, 6),
    ) {
        // Per-system dense matrices; some systems are deliberately made
        // rank-deficient by duplicating a row.
        let mats: Vec<Matrix<f64>> = (0..batch)
            .map(|b| {
                let mut m = Matrix::zeros(n, n);
                for r in 0..n {
                    for c in 0..n {
                        m[(r, c)] = entries[(b * n + r) * n + c];
                    }
                }
                if degenerate[b] == 0 && n > 1 {
                    for c in 0..n {
                        let v = m[(0, c)];
                        m[(1, c)] = v;
                    }
                }
                m
            })
            .collect();
        let mut lu = RealLuBatch::empty();
        lu.refactor_with(n, batch, 1e-300, |data| {
            for (b, m) in mats.iter().enumerate() {
                for r in 0..n {
                    for c in 0..n {
                        data[(r * n + c) * batch + b] = m[(r, c)];
                    }
                }
            }
        });
        let mut brhs = vec![0.0; n * batch];
        for i in 0..n {
            for b in 0..batch {
                brhs[i * batch + b] = rhs[b * n + i];
            }
        }
        let (mut x, mut acc) = (Vec::new(), Vec::new());
        lu.solve_batch_into(&brhs, &mut x, &mut acc);
        for (b, m) in mats.iter().enumerate() {
            let scalar = LuFactors::factor(m.clone(), 1e-300);
            match (scalar, lu.singular(b)) {
                (Ok(f), None) => {
                    let xs = f.solve(&rhs[b * n..(b + 1) * n]);
                    let xb: Vec<f64> = (0..n).map(|i| x[i * batch + b]).collect();
                    prop_assert_eq!(xs, xb, "system {} diverged", b);
                }
                (Err(autockt_sim::SimError::SingularMatrix { column }), Some(col)) => {
                    prop_assert_eq!(column, col, "system {} failing column", b);
                }
                (s, bs) => prop_assert!(
                    false,
                    "system {} disagrees on solvability: {:?} vs {:?}",
                    b, s, bs
                ),
            }
        }
    }

    /// The complex lockstep batch against the SoA kernel (itself bitwise
    /// against the generic kernel): per-system bitwise equality, mixed
    /// solvable/singular batches included.
    #[test]
    fn complex_lu_batch_matches_soa_kernel_bitwise(
        n in 1usize..6,
        batch in 1usize..6,
        re in prop::collection::vec(-50.0..50.0f64, 6 * 36),
        im in prop::collection::vec(-50.0..50.0f64, 6 * 36),
        bre in prop::collection::vec(-10.0..10.0f64, 6 * 6),
        bim in prop::collection::vec(-10.0..10.0f64, 6 * 6),
        degenerate in prop::collection::vec(0usize..5, 6),
    ) {
        let mats: Vec<Matrix<Complex>> = (0..batch)
            .map(|b| {
                let mut m = Matrix::zeros(n, n);
                for r in 0..n {
                    for c in 0..n {
                        let i = (b * n + r) * n + c;
                        m[(r, c)] = Complex::new(re[i], im[i]);
                    }
                }
                if degenerate[b] == 0 && n > 1 {
                    for c in 0..n {
                        let v = m[(0, c)];
                        m[(1, c)] = v;
                    }
                }
                m
            })
            .collect();
        let mut lu = ComplexLuBatch::empty();
        lu.refactor_with(n, batch, 1e-300, |dre, dim| {
            for (b, m) in mats.iter().enumerate() {
                for r in 0..n {
                    for c in 0..n {
                        dre[(r * n + c) * batch + b] = m[(r, c)].re;
                        dim[(r * n + c) * batch + b] = m[(r, c)].im;
                    }
                }
            }
        });
        let mut rhs_re = vec![0.0; n * batch];
        let mut rhs_im = vec![0.0; n * batch];
        for i in 0..n {
            for b in 0..batch {
                rhs_re[i * batch + b] = bre[b * n + i];
                rhs_im[i * batch + b] = bim[b * n + i];
            }
        }
        let (mut xr, mut xi) = (Vec::new(), Vec::new());
        let (mut ar, mut ai) = (Vec::new(), Vec::new());
        lu.solve_batch_into(&rhs_re, &rhs_im, &mut xr, &mut xi, &mut ar, &mut ai);
        for (b, m) in mats.iter().enumerate() {
            let rhs: Vec<Complex> = (0..n)
                .map(|i| Complex::new(bre[b * n + i], bim[b * n + i]))
                .collect();
            match (ComplexLuSoa::factor(m, 1e-300), lu.singular(b)) {
                (Ok(f), None) => {
                    let xs = f.solve(&rhs);
                    let xb: Vec<Complex> = (0..n)
                        .map(|i| Complex::new(xr[i * batch + b], xi[i * batch + b]))
                        .collect();
                    prop_assert_eq!(xs, xb, "system {} diverged", b);
                }
                (Err(autockt_sim::SimError::SingularMatrix { column }), Some(col)) => {
                    prop_assert_eq!(column, col, "system {} failing column", b);
                }
                (s, bs) => prop_assert!(
                    false,
                    "system {} disagrees on solvability: {:?} vs {:?}",
                    b, s, bs
                ),
            }
        }
    }

    #[test]
    fn complex_field_axioms(
        ar in -100.0..100.0f64, ai in -100.0..100.0f64,
        br in -100.0..100.0f64, bi in -100.0..100.0f64,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        // Commutativity.
        let d1 = a * b - b * a;
        prop_assert!(d1.norm() < 1e-9);
        // |ab| = |a||b| up to rounding.
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-6 * (1.0 + a.norm() * b.norm()));
        // Conjugate product is the squared norm.
        let c = a * a.conj();
        prop_assert!((c.re - a.norm_sqr()).abs() < 1e-9 * (1.0 + a.norm_sqr()));
        prop_assert!(c.im.abs() < 1e-9 * (1.0 + a.norm_sqr()));
    }
}
