//! Property-based tests for the linear-algebra kernel: LU solves must
//! invert `mul_vec` for any well-conditioned system, real or complex.

use autockt_sim::complex::Complex;
use autockt_sim::linalg::{solve, ComplexLuSoa, LuFactors, Matrix};
use proptest::prelude::*;

/// Builds a diagonally dominant matrix from arbitrary entries — guaranteed
/// nonsingular, so the roundtrip property is well-posed.
fn dominant_from(entries: Vec<f64>, n: usize) -> Matrix<f64> {
    let mut m = Matrix::zeros(n, n);
    for r in 0..n {
        let mut rowsum = 0.0;
        for c in 0..n {
            if r != c {
                let v = entries[r * n + c].clamp(-10.0, 10.0);
                m[(r, c)] = v;
                rowsum += v.abs();
            }
        }
        let sign = if entries[r * n + r] >= 0.0 { 1.0 } else { -1.0 };
        m[(r, r)] = sign * (rowsum + 1.0 + entries[r * n + r].abs().clamp(0.0, 10.0));
    }
    m
}

proptest! {
    #[test]
    fn lu_roundtrip_real(
        n in 1usize..8,
        entries in prop::collection::vec(-10.0..10.0f64, 64),
        x in prop::collection::vec(-100.0..100.0f64, 8),
    ) {
        let a = dominant_from(entries, n);
        let xt = &x[..n];
        let b = a.mul_vec(xt);
        let got = solve(a, &b).expect("dominant matrix is nonsingular");
        for (g, t) in got.iter().zip(xt) {
            prop_assert!((g - t).abs() < 1e-7 * (1.0 + t.abs()), "{g} vs {t}");
        }
    }

    #[test]
    fn lu_roundtrip_complex(
        n in 1usize..6,
        re in prop::collection::vec(-5.0..5.0f64, 36),
        im in prop::collection::vec(-5.0..5.0f64, 36),
        xre in prop::collection::vec(-10.0..10.0f64, 6),
    ) {
        let mut a = Matrix::<Complex>::zeros(n, n);
        for r in 0..n {
            let mut rowsum = 0.0;
            for c in 0..n {
                if r != c {
                    let v = Complex::new(re[r * n + c], im[r * n + c]);
                    a[(r, c)] = v;
                    rowsum += v.norm();
                }
            }
            a[(r, r)] = Complex::new(rowsum + 1.0, im[r * n + r]);
        }
        let xt: Vec<Complex> = xre[..n].iter().map(|v| Complex::new(*v, -v * 0.5)).collect();
        let b = a.mul_vec(&xt);
        let got = solve(a, &b).expect("dominant complex matrix");
        for (g, t) in got.iter().zip(&xt) {
            prop_assert!((*g - *t).norm() < 1e-7 * (1.0 + t.norm()));
        }
    }

    /// The structure-of-arrays complex LU performs the same operations in
    /// the same order as the generic `LuFactors<Complex>` kernel, so its
    /// factors and solutions are *bitwise* equal — not merely within
    /// tolerance — for any solvable system, including ill-scaled ones
    /// (no diagonal-dominance conditioning here: whenever the generic
    /// kernel factors, the SoA kernel must agree exactly).
    #[test]
    fn soa_complex_lu_matches_generic_kernel_bitwise(
        n in 1usize..8,
        re in prop::collection::vec(-50.0..50.0f64, 64),
        im in prop::collection::vec(-50.0..50.0f64, 64),
        bre in prop::collection::vec(-10.0..10.0f64, 8),
        bim in prop::collection::vec(-10.0..10.0f64, 8),
    ) {
        let mut a = Matrix::<Complex>::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = Complex::new(re[r * n + c], im[r * n + c]);
            }
        }
        let b: Vec<Complex> = bre[..n]
            .iter()
            .zip(&bim[..n])
            .map(|(&br, &bi)| Complex::new(br, bi))
            .collect();
        let aos = LuFactors::factor(a.clone(), 1e-300);
        let soa = ComplexLuSoa::factor(&a, 1e-300);
        match (aos, soa) {
            (Ok(aos), Ok(soa)) => {
                let xa = aos.solve(&b);
                let xs = soa.solve(&b);
                prop_assert_eq!(xa, xs);
            }
            (Err(ea), Err(es)) => prop_assert_eq!(ea, es),
            (a, s) => prop_assert!(false, "kernels disagree on solvability: {a:?} vs {s:?}"),
        }
    }

    #[test]
    fn complex_field_axioms(
        ar in -100.0..100.0f64, ai in -100.0..100.0f64,
        br in -100.0..100.0f64, bi in -100.0..100.0f64,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        // Commutativity.
        let d1 = a * b - b * a;
        prop_assert!(d1.norm() < 1e-9);
        // |ab| = |a||b| up to rounding.
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-6 * (1.0 + a.norm() * b.norm()));
        // Conjugate product is the squared norm.
        let c = a * a.conj();
        prop_assert!((c.re - a.norm_sqr()).abs() < 1e-9 * (1.0 + a.norm_sqr()));
        prop_assert!(c.im.abs() < 1e-9 * (1.0 + a.norm_sqr()));
    }
}
