//! Property: the corner-batched settling integrations are equivalent to
//! the scalar per-corner reference.
//!
//! [`step_response_corners`] is two kernels behind one dispatch. At
//! dense-routed dims each corner's constant companion is folded into a
//! precomputed affine propagator `x1 = M x0 + k` — algebraically the
//! scalar update, but with the solve roundoff committed into `M` once —
//! so every corner must agree with the scalar
//! [`AcSolver::step_response`] to roundoff. At sparse-routed dims it
//! factors only the base corner's companion and recovers each sibling
//! through the low-rank Woodbury correction, which is algebraically
//! exact — siblings must agree to roundoff, while the base corner and
//! any corner whose device stamps match the base (empty diff) run the
//! scalar arithmetic in the scalar order and must agree **bitwise**. At
//! stock dims (`n <= 16`), on corner sets whose dims differ, and on
//! singular/unprofitable bases the kernel falls back to the scalar path
//! per corner, so every lane tightens back to bitwise. [`step_response_corners_shared`] shares one symbolic
//! analysis + AMD ordering across the corner set and refactors per
//! sibling — same-pattern refactor is bitwise-stable, so every corner
//! must match the scalar path bitwise.

use autockt_sim::ac::AcSolver;
use autockt_sim::dc::{dc_operating_point, DcOptions, OpPoint};
use autockt_sim::device::{MosPolarity, Technology};
use autockt_sim::netlist::{Circuit, Mosfet, Node, GND};
use autockt_sim::tran::{step_response_corners, step_response_corners_shared};
use autockt_sim::SolverConfig;
use proptest::prelude::*;

/// Shared settling window and step count for every equivalence check:
/// a few output time constants of the fixture (R ~ 7 kΩ into 0.1 pF),
/// enough steps to exercise the multi-lane back-substitution without
/// slowing the suite down.
const T_STOP: f64 = 4.0e-8;
const STEPS: usize = 96;

/// A common-source amplifier driving a `depth`-segment RC mesh — the
/// worst-case-PVT shape: the mesh (and every passive) is shared by all
/// corners, only the device stamps differ with `w`.
fn amp_with_mesh(w: f64, depth: usize) -> (Circuit, Node) {
    let t = Technology::ptm45();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let d = ckt.node("d");
    ckt.vsource(vdd, GND, 1.0, 0.0);
    ckt.vsource(g, GND, 0.55, 1.0);
    ckt.resistor(vdd, d, 5.0e3);
    ckt.mosfet(Mosfet {
        polarity: MosPolarity::Nmos,
        d,
        g,
        s: GND,
        w,
        l: 90e-9,
        mult: 1.0,
        model: t.nmos,
    });
    let mut prev = d;
    for s in 0..depth {
        let n = ckt.node(&format!("m{s}"));
        ckt.resistor(prev, n, 1.0e3);
        ckt.capacitor(n, GND, 2e-15);
        prev = n;
    }
    let out = ckt.node("out");
    ckt.resistor(prev, out, 1.0e3);
    ckt.capacitor(out, GND, 1e-13);
    (ckt, out)
}

/// Builds the corner set and solves every operating point cold.
fn corner_set(widths: &[f64], depth: usize) -> (Vec<(Circuit, Node)>, Vec<OpPoint>) {
    let variants: Vec<(Circuit, Node)> = widths.iter().map(|&w| amp_with_mesh(w, depth)).collect();
    let ops: Vec<OpPoint> = variants
        .iter()
        .map(|(ckt, _)| dc_operating_point(ckt, &DcOptions::default()).expect("amp solves"))
        .collect();
    (variants, ops)
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

/// Which lanes of the corrected kernel must match the scalar reference
/// bitwise (the rest must match to roundoff).
#[derive(Clone, Copy, PartialEq)]
enum Bitwise {
    /// Scalar fallback regimes: every lane.
    All,
    /// Sparse Woodbury regime: the base corner and empty-diff siblings.
    BaseLanes,
    /// Dense propagator regime: no lane — `M` commits solve roundoff.
    None,
}

/// Runs the scalar reference per corner, then checks the corrected
/// kernel: lanes selected by `mode` must match exactly, the rest to
/// roundoff.
fn check_corrected(
    widths: &[f64],
    depth: usize,
    cfg: SolverConfig,
    mode: Bitwise,
) -> Result<(), String> {
    let (variants, ops) = corner_set(widths, depth);
    let solvers: Vec<AcSolver<'_>> = variants
        .iter()
        .zip(&ops)
        .map(|((ckt, _), op)| AcSolver::new(ckt, op).with_config(cfg))
        .collect();
    let refs: Vec<&AcSolver<'_>> = solvers.iter().collect();
    let outs: Vec<Node> = variants.iter().map(|(_, o)| *o).collect();

    let scalar: Vec<_> = refs
        .iter()
        .zip(&outs)
        .map(|(s, &o)| s.step_response(o, T_STOP, STEPS))
        .collect();
    let corr = step_response_corners(&refs, &outs, T_STOP, STEPS);
    if corr.len() != scalar.len() {
        return Err(format!(
            "corrected returned {} records for {} corners",
            corr.len(),
            scalar.len()
        ));
    }
    for (b, (cc, ss)) in corr.iter().zip(&scalar).enumerate() {
        match (cc, ss) {
            (Ok((ct, cy)), Ok((st, sy))) => {
                // The time axis is h = t_stop/steps scaled by the step
                // index on both paths — always bitwise.
                if ct != st {
                    return Err(format!("time axis diverged at corner {b}"));
                }
                let bitwise = match mode {
                    Bitwise::All => true,
                    Bitwise::BaseLanes => b == 0 || widths[b] == widths[0],
                    Bitwise::None => false,
                };
                if bitwise {
                    if cy != sy {
                        return Err(format!("scalar-lane corner {b} diverged bitwise"));
                    }
                    continue;
                }
                for (i, (c, s)) in cy.iter().zip(sy).enumerate() {
                    if !rel_close(*c, *s, 1e-9) {
                        return Err(format!(
                            "corrected sample {i} diverged at corner {b}: {c} vs {s}"
                        ));
                    }
                }
            }
            (Err(_), Err(_)) => {}
            _ => {
                return Err(format!(
                    "corrected outcome diverged at corner {b}: {cc:?} vs {ss:?}"
                ))
            }
        }
    }
    Ok(())
}

proptest! {
    /// Dense dims (16 < dim < crossover): the propagator kernel — every
    /// corner agrees with the scalar path to roundoff, duplicates and
    /// spread-out siblings alike. A duplicate corner rides along to
    /// cover the equal-stamps lane too.
    #[test]
    fn settle_propagator_dense_is_close(
        base_w in 0.8e-6..4.0e-6f64,
        deltas in prop::collection::vec(-0.3..0.3f64, 4),
        depth in 18usize..30,
    ) {
        let widths: Vec<f64> = std::iter::once(base_w)
            .chain(std::iter::once(base_w)) // duplicate corner: equal stamps
            .chain(deltas.iter().map(|d| base_w * (1.0 + d)))
            .collect();
        let r = check_corrected(&widths, depth, SolverConfig::default(), Bitwise::None);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Stock dims (dim <= 16): the kernel falls back to the scalar path
    /// per corner, so every lane is bitwise.
    #[test]
    fn settle_corrected_bitwise_at_stock_dims(
        base_w in 0.8e-6..4.0e-6f64,
        deltas in prop::collection::vec(-0.3..0.3f64, 5),
        depth in 0usize..8,
    ) {
        let widths: Vec<f64> = std::iter::once(base_w)
            .chain(deltas.iter().map(|d| base_w * (1.0 + d)))
            .collect();
        let r = check_corrected(&widths, depth, SolverConfig::default(), Bitwise::All);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Sparse base (forced sparse backend, BTF off so the scalar path
    /// factors the same plain sparse LU as the corrected base): base
    /// corner bitwise, corrected siblings to roundoff.
    #[test]
    fn settle_corrected_close_sparse_base(
        base_w in 0.8e-6..4.0e-6f64,
        deltas in prop::collection::vec(-0.3..0.3f64, 3),
        depth in 18usize..26,
    ) {
        let widths: Vec<f64> = std::iter::once(base_w)
            .chain(deltas.iter().map(|d| base_w * (1.0 + d)))
            .collect();
        let cfg = SolverConfig::sparse().with_btf(false);
        let r = check_corrected(&widths, depth, cfg, Bitwise::BaseLanes);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Symbolic-shared sparse path: one analysis + AMD ordering,
    /// `refactor` per corner — every corner bitwise against a fresh
    /// per-corner factorization (the scalar path), BTF on and off.
    #[test]
    fn settle_shared_refactor_is_bitwise(
        base_w in 0.8e-6..4.0e-6f64,
        deltas in prop::collection::vec(-0.3..0.3f64, 4),
        depth in 18usize..26,
        btf in 0usize..2,
    ) {
        let widths: Vec<f64> = std::iter::once(base_w)
            .chain(deltas.iter().map(|d| base_w * (1.0 + d)))
            .collect();
        let cfg = SolverConfig::sparse().with_btf(btf == 1);
        let (variants, ops) = corner_set(&widths, depth);
        let solvers: Vec<AcSolver<'_>> = variants
            .iter()
            .zip(&ops)
            .map(|((ckt, _), op)| AcSolver::new(ckt, op).with_config(cfg))
            .collect();
        let refs: Vec<&AcSolver<'_>> = solvers.iter().collect();
        let outs: Vec<Node> = variants.iter().map(|(_, o)| *o).collect();
        let scalar: Vec<_> = refs
            .iter()
            .zip(&outs)
            .map(|(s, &o)| s.step_response(o, T_STOP, STEPS))
            .collect();
        let shared = step_response_corners_shared(&refs, &outs, T_STOP, STEPS);
        for (b, (sh, sc)) in shared.iter().zip(&scalar).enumerate() {
            prop_assert_eq!(sh, sc, "shared-symbolic corner {} diverged", b);
        }
    }
}

/// Corners whose MNA dims differ (structural mismatch) must fall back
/// to the scalar path per corner — bitwise, no cross-corner sharing.
#[test]
fn dim_mismatch_falls_back_to_scalar_bitwise() {
    let depths = [20usize, 24, 22];
    let variants: Vec<(Circuit, Node)> = depths.iter().map(|&d| amp_with_mesh(2.0e-6, d)).collect();
    let ops: Vec<OpPoint> = variants
        .iter()
        .map(|(ckt, _)| dc_operating_point(ckt, &DcOptions::default()).expect("amp solves"))
        .collect();
    let solvers: Vec<AcSolver<'_>> = variants
        .iter()
        .zip(&ops)
        .map(|((ckt, _), op)| AcSolver::new(ckt, op))
        .collect();
    let refs: Vec<&AcSolver<'_>> = solvers.iter().collect();
    let outs: Vec<Node> = variants.iter().map(|(_, o)| *o).collect();
    let corr = step_response_corners(&refs, &outs, T_STOP, STEPS);
    assert_eq!(corr.len(), refs.len());
    for (b, (cc, (s, &o))) in corr.iter().zip(refs.iter().zip(&outs)).enumerate() {
        let sc = s.step_response(o, T_STOP, STEPS);
        assert_eq!(cc, &sc, "fallback corner {b} diverged from scalar");
    }
}

/// Single-corner and empty corner sets run (or skip) the scalar path.
#[test]
fn single_corner_and_empty_batches() {
    let (variants, ops) = corner_set(&[2.0e-6], 20);
    let solvers: Vec<AcSolver<'_>> = variants
        .iter()
        .zip(&ops)
        .map(|((ckt, _), op)| AcSolver::new(ckt, op))
        .collect();
    let refs: Vec<&AcSolver<'_>> = solvers.iter().collect();
    let outs: Vec<Node> = variants.iter().map(|(_, o)| *o).collect();
    let scalar = refs[0].step_response(outs[0], T_STOP, STEPS);
    let corr = step_response_corners(&refs, &outs, T_STOP, STEPS);
    assert_eq!(corr.len(), 1);
    assert_eq!(&corr[0], &scalar);
    let shared = step_response_corners_shared(&refs, &outs, T_STOP, STEPS);
    assert_eq!(&shared[0], &scalar);
    assert!(step_response_corners(&[], &[], T_STOP, STEPS).is_empty());
    assert!(step_response_corners_shared(&[], &[], T_STOP, STEPS).is_empty());
}
