//! Small-signal noise analysis.
//!
//! Every thermal resistor and MOSFET contributes a current-noise power
//! spectral density between its terminals. For each frequency the complex
//! MNA system is factored once and solved per noise source (unit current
//! injection), giving the squared transfer to the output; the weighted sum
//! is the output noise PSD, and dividing by the squared signal gain refers
//! it to the input.
//!
//! Worst-case PVT evaluations run the analysis over a *corner set* of
//! same-structure circuits. Two batched entry points serve that shape:
//!
//! - [`noise_analysis_batch`] eliminates all corner systems in lockstep
//!   through [`crate::linalg::ComplexLuBatch`]; per corner its arithmetic
//!   is bitwise-identical to [`noise_analysis_ws`], making it the cold
//!   (exact) backbone of the corner engine.
//! - [`noise_analysis_corners`] factors the **base corner once per
//!   frequency** and recovers every sibling through the same Woodbury
//!   correction as [`crate::ac::ac_sweep_corners`] — and, because the
//!   corners share their injection nodes and source vector, the
//!   per-source unit-injection base solves are computed once and shared
//!   by the whole corner set. Exact to roundoff (the warm path's
//!   solver-tolerance contract), and the dense-dim fast path.

use crate::ac::{
    ac_batch_ws_pool, ac_ws_pool, grid_parallelism, AcBatchWorkspace, AcSolver, AcWorkspace,
    STOCK_DIM_MAX,
};
use crate::complex::Complex;
use crate::dc::OpPoint;
use crate::device::BOLTZMANN;
use crate::error::SimError;
use crate::linalg::correction::{
    corrected_entry, factor_correction, solve_correction_basis, CornerDiff,
};
use crate::linalg::sparse::SolverConfig;
use crate::linalg::ComplexLuSoa;
use crate::measure::integrate_trapezoid;
use crate::netlist::{Circuit, Element, Node};
use crate::par::{run_chunks, would_parallelize, Parallelism};

/// Result of a noise analysis over a frequency grid.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseResult {
    /// Frequency grid (Hz).
    pub freqs: Vec<f64>,
    /// Output noise voltage PSD (V^2/Hz) at each grid point.
    pub out_psd: Vec<f64>,
    /// Signal gain magnitude from the netlist's AC sources to the output.
    pub gain: Vec<f64>,
    /// Total integrated output noise (V rms).
    pub out_vrms: f64,
    /// Input-referred integrated noise (rms, in units of the AC source:
    /// volts for a voltage-driven circuit, amperes for current-driven).
    /// Grid points whose gain is below [`GAIN_FLOOR_REL`] of the peak
    /// gain (a notch, or a point far past the poles) are excluded from
    /// the referral integral instead of dividing by a near-zero gain.
    pub input_referred_rms: f64,
}

/// Relative gain floor for input referral: a grid point whose signal gain
/// is below this fraction of the peak gain carries no usable signal, so
/// dividing the output PSD by its squared gain would let a single notch
/// or far-past-the-poles point dominate (astronomically inflate) the
/// input-referred integral. Such points are excluded segment-wise from
/// the referral integration; the output-noise integral is unaffected.
pub const GAIN_FLOOR_REL: f64 = 1e-6;

struct NoiseSource {
    p: Node,
    n: Node,
    /// (thermal/white PSD, gm-squared flicker prefactor) — evaluated as
    /// `white + flicker_pref / f`.
    white: f64,
    flicker_pref: f64,
}

impl NoiseSource {
    /// Current-noise PSD at frequency `f` (A^2/Hz). The flicker term is
    /// clamped at 1 mHz — the 1/f integral diverges toward DC, and the
    /// frequency grid is validated strictly positive before any analysis.
    fn psd_at(&self, f: f64) -> f64 {
        self.white + self.flicker_pref / f.max(1e-3)
    }
}

/// Validates a noise frequency grid the way `TranOptions::validate`
/// guards time grids: empty, non-positive/non-finite, or non-increasing
/// grids would silently produce a zero or garbage integral (and feed the
/// flicker term's 1 mHz clamp out-of-band values), so they are rejected
/// up front.
fn validate_freqs(freqs: &[f64]) -> Result<(), SimError> {
    if freqs.is_empty() {
        return Err(SimError::InvalidOptions {
            what: "noise frequency grid is empty",
        });
    }
    if freqs.iter().any(|f| !f.is_finite() || *f <= 0.0) {
        return Err(SimError::InvalidOptions {
            what: "noise frequencies must be finite and positive",
        });
    }
    if freqs.windows(2).any(|w| w[1] <= w[0]) {
        return Err(SimError::InvalidOptions {
            what: "noise frequency grid must be strictly increasing",
        });
    }
    Ok(())
}

/// Enumerates the circuit's noise sources at `temp_k`, pairing each MOS
/// element with its operating-point entry. A circuit/op mismatch is a
/// caller bug but not a library panic: it reports
/// [`SimError::BadNetlist`] (the deployment path learned in PR 3 that
/// library code must fail, not abort, on inconsistent inputs).
fn collect_sources(ckt: &Circuit, op: &OpPoint, temp_k: f64) -> Result<Vec<NoiseSource>, SimError> {
    let n_mos = ckt
        .elements()
        .iter()
        .filter(|e| matches!(e, Element::Mos(_)))
        .count();
    if n_mos != op.mosfets().len() {
        return Err(SimError::BadNetlist {
            what: format!(
                "operating point out of sync with circuit: {} MOS operating entries for {n_mos} MOS elements",
                op.mosfets().len()
            ),
        });
    }
    let mut sources = Vec::new();
    let mut mos_iter = op.mosfets().iter();
    for e in ckt.elements() {
        match e {
            Element::Resistor { p, n, r, noisy } if *noisy => {
                sources.push(NoiseSource {
                    p: *p,
                    n: *n,
                    white: 4.0 * BOLTZMANN * temp_k / r,
                    flicker_pref: 0.0,
                });
            }
            Element::Mos(m) => {
                // lint:allow(panic) — MOS counts are verified against the
                // operating point above, so the iterator cannot run dry.
                let mi = mos_iter.next().expect("MOS count verified");
                let white = m.model.thermal_noise_psd(mi.gm, temp_k);
                // flicker psd(f) = kf gm^2 / (Cox W L f)
                let flicker_pref = m.model.kf * mi.gm * mi.gm / (m.model.cox * m.w * m.l * m.mult);
                sources.push(NoiseSource {
                    p: mi.a_d,
                    n: mi.a_s,
                    white,
                    flicker_pref,
                });
            }
            _ => {}
        }
    }
    Ok(sources)
}

/// The per-frequency factor + per-source solve loop of the scalar
/// analysis, appending one output-PSD and gain sample per grid point.
/// [`AcSolver::prepare_workspace`] must have been called for this solver.
fn noise_points_ws(
    solver: &AcSolver<'_>,
    sources: &[NoiseSource],
    out: Node,
    freqs: &[f64],
    ws: &mut AcWorkspace,
    out_psd: &mut Vec<f64>,
    gain: &mut Vec<f64>,
) -> Result<(), SimError> {
    for &f in freqs {
        let (g, psd) = noise_point_ws(solver, sources, out, f, ws)?;
        gain.push(g);
        out_psd.push(psd);
    }
    Ok(())
}

/// One grid point of the scalar analysis: factor, gain solve, per-source
/// unit-injection solves with the PSD accumulated in source order —
/// the tile body shared by the serial loop and the threaded lanes (the
/// per-source loop stays serial inside a tile, which is what keeps the
/// accumulation order, and hence the sum, bitwise-stable under any
/// schedule). Returns `(gain, psd)`.
fn noise_point_ws(
    solver: &AcSolver<'_>,
    sources: &[NoiseSource],
    out: Node,
    f: f64,
    ws: &mut AcWorkspace,
) -> Result<(f64, f64), SimError> {
    let ckt = solver.circuit();
    let dim = solver.dim();
    solver.factor_at_ws(f, ws)?;
    let AcWorkspace { lu, x, rhs, .. } = &mut *ws;
    // Signal gain.
    lu.solve_into(solver.source_rhs(), x);
    let g = solver.voltage(x, out).norm();
    // Sum over noise sources.
    let mut psd = 0.0;
    rhs.clear();
    rhs.resize(dim, Complex::ZERO);
    for s in sources {
        rhs.iter_mut().for_each(|v| *v = Complex::ZERO);
        // Unit AC current from p to n inside the source.
        if let Some(ip) = ckt.mna_index(s.p) {
            rhs[ip] -= Complex::ONE;
        }
        if let Some(in_) = ckt.mna_index(s.n) {
            rhs[in_] += Complex::ONE;
        }
        lu.solve_into(rhs, x);
        let h2 = solver.voltage(x, out).norm_sqr();
        psd += h2 * s.psd_at(f);
    }
    Ok((g, psd))
}

/// Integrates the sampled PSDs into the result: total output noise over
/// the whole grid, input-referred noise over the segments whose gain
/// clears the per-point floor (see [`GAIN_FLOOR_REL`]).
fn finalize(freqs: &[f64], out_psd: Vec<f64>, gain: Vec<f64>) -> Result<NoiseResult, SimError> {
    let out_v2 = integrate_trapezoid(freqs, &out_psd);
    let out_vrms = out_v2.sqrt();
    let max_gain = gain.iter().cloned().fold(0.0f64, f64::max);
    if max_gain <= 0.0 || !max_gain.is_finite() {
        return Err(SimError::MeasureFailed {
            what: "zero signal gain; cannot refer noise to input",
        });
    }
    // Input-referred: divide the PSD by |gain|^2 pointwise and integrate
    // trapezoid segments whose *both* endpoints carry usable gain. A point
    // below the floor (a notch, or a grid point far past the poles) is
    // excluded rather than clamped — the old `(g*g).max(1e-30)` clamp let
    // one such point inflate the integral by many orders of magnitude
    // while the `max_gain > 0` check still passed.
    let floor = GAIN_FLOOR_REL * max_gain;
    let mut in_v2 = 0.0;
    let mut any_segment = false;
    for i in 1..freqs.len() {
        let (g0, g1) = (gain[i - 1], gain[i]);
        if g0 > floor && g1 > floor {
            let p0 = out_psd[i - 1] / (g0 * g0);
            let p1 = out_psd[i] / (g1 * g1);
            in_v2 += 0.5 * (p1 + p0) * (freqs[i] - freqs[i - 1]);
            any_segment = true;
        }
    }
    if freqs.len() > 1 && !any_segment {
        // Every segment had a below-floor endpoint: there is no band to
        // refer noise through. Reporting 0.0 here would read downstream
        // as "infinitely quiet" — fail honestly instead, like the
        // zero-gain case above.
        return Err(SimError::MeasureFailed {
            what: "no usable-gain segment; cannot refer noise to input",
        });
    }
    let input_referred_rms = in_v2.sqrt();

    Ok(NoiseResult {
        freqs: freqs.to_vec(),
        out_psd,
        gain,
        out_vrms,
        input_referred_rms,
    })
}

/// Runs a noise analysis at temperature `temp_k`, referred to the circuit's
/// own AC sources, measuring at node `out`.
///
/// # Errors
///
/// [`SimError::InvalidOptions`] for a degenerate frequency grid (empty,
/// non-positive, or not strictly increasing), [`SimError::BadNetlist`]
/// when `op` does not belong to `ckt` (MOS count mismatch),
/// [`SimError::MeasureFailed`] if the signal gain is zero (nothing to
/// refer to), and propagates factorization failures.
pub fn noise_analysis(
    ckt: &Circuit,
    op: &OpPoint,
    out: Node,
    freqs: &[f64],
    temp_k: f64,
) -> Result<NoiseResult, SimError> {
    noise_analysis_ws(ckt, op, out, freqs, temp_k, &mut AcWorkspace::new())
}

/// [`noise_analysis`] with reusable workspace buffers — no per-frequency
/// or per-source allocation; results are identical. Each frequency point
/// is factored once through the vectorized SoA complex kernel
/// ([`crate::linalg::ComplexLuSoa`]) and back-substituted per noise
/// source. Warm evaluation sessions route their noise analyses through
/// this entry point.
///
/// # Errors
///
/// Same contract as [`noise_analysis`].
pub fn noise_analysis_ws(
    ckt: &Circuit,
    op: &OpPoint,
    out: Node,
    freqs: &[f64],
    temp_k: f64,
    ws: &mut AcWorkspace,
) -> Result<NoiseResult, SimError> {
    noise_analysis_cfg(ckt, op, out, freqs, temp_k, SolverConfig::default(), ws)
}

/// [`noise_analysis_ws`] with an explicit linear-solver backend policy:
/// the per-frequency factorization and every per-source back-substitution
/// run dense or sparse per `cfg` (identical results within solver
/// tolerance). This is how the sizing topologies thread their
/// [`SolverConfig`] into the serial noise path.
///
/// # Errors
///
/// Same contract as [`noise_analysis`].
pub fn noise_analysis_cfg(
    ckt: &Circuit,
    op: &OpPoint,
    out: Node,
    freqs: &[f64],
    temp_k: f64,
    cfg: SolverConfig,
    ws: &mut AcWorkspace,
) -> Result<NoiseResult, SimError> {
    validate_freqs(freqs)?;
    let sources = collect_sources(ckt, op, temp_k)?;
    let solver = AcSolver::new(ckt, op).with_config(cfg);
    let par = solver.sweep_parallelism();
    if would_parallelize(par, freqs.len()) {
        let (out_psd, gain) = noise_points_par(&solver, &sources, out, freqs, par)?;
        return finalize(freqs, out_psd, gain);
    }
    solver.prepare_workspace(ws);
    let mut out_psd = Vec::with_capacity(freqs.len());
    let mut gain = Vec::with_capacity(freqs.len());
    noise_points_ws(&solver, &sources, out, freqs, ws, &mut out_psd, &mut gain)?;
    finalize(freqs, out_psd, gain)
}

/// Threaded scalar noise sweep: every frequency factors and solves into
/// its own slot through a per-lane pooled workspace, exactly the
/// per-point arithmetic of [`noise_points_ws`] (each point's per-source
/// accumulation stays serial inside its tile), so the result is
/// bitwise-equal to the serial walk under any schedule. The in-order
/// drain recovers the serial path's first-failing-frequency abort.
fn noise_points_par(
    solver: &AcSolver<'_>,
    sources: &[NoiseSource],
    out: Node,
    freqs: &[f64],
    par: Parallelism,
) -> Result<(Vec<f64>, Vec<f64>), SimError> {
    let mut slots: Vec<Result<(f64, f64), SimError>> =
        freqs.iter().map(|_| Ok((0.0, 0.0))).collect();
    run_chunks(
        par,
        &mut slots,
        ac_ws_pool(),
        AcWorkspace::new,
        |off, chunk, ws| {
            solver.prepare_lane(freqs[0], ws);
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = noise_point_ws(solver, sources, out, freqs[off + k], ws);
                if slot.is_err() {
                    break;
                }
            }
        },
    );
    let mut out_psd = Vec::with_capacity(freqs.len());
    let mut gain = Vec::with_capacity(freqs.len());
    for s in slots {
        let (g, p) = s?;
        gain.push(g);
        out_psd.push(p);
    }
    Ok((out_psd, gain))
}

/// Per-corner scalar reference path of the batched analyses: each corner
/// runs the exact [`noise_analysis_ws`] pipeline (same kernel, same
/// order) through the batch workspace's scalar buffers. This is the
/// fallback for structural mismatches, single-corner batches, and stock
/// dims where neither lockstep nor correction pays — bitwise-equal to
/// calling [`noise_analysis_ws`] per corner.
fn scalar_noise_ws(
    solvers: &[AcSolver<'_>],
    ops: &[&OpPoint],
    outs: &[Node],
    freqs: &[f64],
    temps: &[f64],
    ws: &mut AcBatchWorkspace,
) -> Vec<Result<NoiseResult, SimError>> {
    solvers
        .iter()
        .zip(ops)
        .zip(outs.iter().zip(temps))
        .map(|((solver, op), (&out, &temp_k))| {
            let sources = collect_sources(solver.circuit(), op, temp_k)?;
            solver.prepare_workspace(&mut ws.scalar);
            let mut out_psd = Vec::with_capacity(freqs.len());
            let mut gain = Vec::with_capacity(freqs.len());
            noise_points_ws(
                solver,
                &sources,
                out,
                freqs,
                &mut ws.scalar,
                &mut out_psd,
                &mut gain,
            )?;
            finalize(freqs, out_psd, gain)
        })
        .collect()
}

/// Collects each corner's noise sources, or `None` when any corner fails
/// or the corner lists disagree in length (the lockstep and corrected
/// paths need one source index space across the batch) — callers then
/// route through the scalar path, which reports per-corner failures
/// individually.
fn collect_corner_sources(
    solvers: &[AcSolver<'_>],
    ops: &[&OpPoint],
    temps: &[f64],
) -> Option<Vec<Vec<NoiseSource>>> {
    let mut all = Vec::with_capacity(solvers.len());
    for ((s, op), &t) in solvers.iter().zip(ops).zip(temps) {
        all.push(collect_sources(s.circuit(), op, t).ok()?);
    }
    let n_src = all[0].len();
    if all.iter().any(|s| s.len() != n_src) {
        return None;
    }
    Some(all)
}

/// Corner-batched noise analysis in **lockstep**: at every frequency the
/// B corner systems are stamped into one
/// [`crate::linalg::ComplexLuBatch`] and eliminated together, then
/// back-substituted against each corner's source vector and against every
/// noise source's unit injection. Per corner the arithmetic (pivot
/// selection, update order, PSD accumulation order) is identical to
/// [`noise_analysis_ws`], so per-corner results are **bitwise-equal** to
/// the serial path — this is the cold backbone of the corner evaluation
/// engine, mirroring [`crate::ac::ac_sweep_batch_solvers`]'s contract.
///
/// Failures are per corner: a corner whose system goes singular reports
/// the error of its first failing frequency, exactly like the scalar
/// path, and is masked off without disturbing its siblings. Mismatched
/// dimensions, differing source counts, single-corner batches, and dense
/// systems (where the batch-innermost layout stops paying) run the
/// scalar path per corner — also bitwise-equal, so the dispatch is pure
/// performance policy. A degenerate frequency grid returns
/// [`SimError::InvalidOptions`] for every corner.
///
/// # Panics
///
/// Panics unless `solvers`, `ops`, `outs`, and `temps` have equal length.
pub fn noise_analysis_batch(
    solvers: &[AcSolver<'_>],
    ops: &[&OpPoint],
    outs: &[Node],
    freqs: &[f64],
    temps: &[f64],
    ws: &mut AcBatchWorkspace,
) -> Vec<Result<NoiseResult, SimError>> {
    assert_eq!(solvers.len(), ops.len(), "one operating point per corner");
    assert_eq!(solvers.len(), outs.len(), "one output node per corner");
    assert_eq!(solvers.len(), temps.len(), "one temperature per corner");
    let bt = solvers.len();
    if bt == 0 {
        return Vec::new();
    }
    if let Err(e) = validate_freqs(freqs) {
        return (0..bt).map(|_| Err(e.clone())).collect();
    }
    let par = grid_parallelism(solvers);
    if would_parallelize(par, bt * freqs.len()) {
        // Threaded cold grid: per-corner scalar points across the
        // (corner × frequency) tiles. Per corner that is exactly the
        // scalar reference arithmetic, which both cold routes below are
        // bitwise-equal to — so the dispatch stays pure performance
        // policy.
        return threaded_grid_noise(solvers, ops, outs, freqs, temps, par);
    }
    let dim = solvers[0].dim();
    if bt == 1
        || solvers.iter().any(|s| s.dim() != dim)
        || dim > STOCK_DIM_MAX
        || solvers.iter().any(|s| s.config().use_sparse(s.dim()))
    {
        // Lockstep pays while each corner's factors fit in cache (stock
        // dims, ~1.1x); at dense dims the batch-innermost layout thrashes
        // (measured ~0.65x), so the cold path runs the scalar kernel per
        // corner there. Both are bitwise-equal to the serial reference,
        // so the dispatch is pure performance policy. Sparse-routed dims
        // take the same scalar route: the lockstep kernel is dense-only,
        // and the scalar path dispatches each corner's factorizations
        // through its own backend.
        return scalar_noise_ws(solvers, ops, outs, freqs, temps, ws);
    }
    let Some(sources) = collect_corner_sources(solvers, ops, temps) else {
        return scalar_noise_ws(solvers, ops, outs, freqs, temps, ws);
    };
    let n_src = sources[0].len();

    ws.patterns.resize(bt, Vec::new());
    for (pat, s) in ws.patterns.iter_mut().zip(solvers) {
        s.collect_pattern(pat);
    }
    // Gain right-hand sides, stamped once (frequency-independent).
    ws.rhs_re.clear();
    ws.rhs_re.resize(dim * bt, 0.0);
    ws.rhs_im.clear();
    ws.rhs_im.resize(dim * bt, 0.0);
    for (b, s) in solvers.iter().enumerate() {
        for (i, v) in s.source_rhs().iter().enumerate() {
            ws.rhs_re[i * bt + b] = v.re;
            ws.rhs_im[i * bt + b] = v.im;
        }
    }
    let oi: Vec<Option<usize>> = solvers
        .iter()
        .zip(outs)
        .map(|(s, &o)| s.mna_index(o))
        .collect();
    // Per-source unit-injection right-hand sides, stamped once — they
    // depend only on the source's terminal nodes, never the frequency
    // (each corner resolves through its own circuit; structure is shared
    // across a corner set). The imaginary part is identically zero.
    let mut inj_re: Vec<Vec<f64>> = vec![vec![0.0; dim * bt]; n_src];
    for (b, (s, srcs)) in solvers.iter().zip(&sources).enumerate() {
        for (src, inj) in srcs.iter().zip(inj_re.iter_mut()) {
            if let Some(ip) = s.circuit().mna_index(src.p) {
                inj[ip * bt + b] -= 1.0;
            }
            if let Some(in_) = s.circuit().mna_index(src.n) {
                inj[in_ * bt + b] += 1.0;
            }
        }
    }
    let inj_im = vec![0.0; dim * bt];

    let mut out_psd: Vec<Vec<f64>> = vec![Vec::with_capacity(freqs.len()); bt];
    let mut gain: Vec<Vec<f64>> = vec![Vec::with_capacity(freqs.len()); bt];
    let mut errs: Vec<Option<SimError>> = vec![None; bt];
    let mut psd = vec![0.0; bt];
    for &fq in freqs {
        let w = 2.0 * std::f64::consts::PI * fq;
        let AcBatchWorkspace {
            lu,
            patterns,
            rhs_re,
            rhs_im,
            x_re,
            x_im,
            acc_re,
            acc_im,
            ..
        } = ws;
        lu.refactor_with(dim, bt, 1e-300, |re, im| {
            for (b, pat) in patterns.iter().enumerate() {
                if errs[b].is_some() {
                    // Dead corner: identity keeps the lockstep
                    // elimination trivially nonsingular.
                    for i in 0..dim {
                        re[(i * dim + i) * bt + b] = 1.0;
                    }
                    continue;
                }
                for &(r, c, gg, cc) in pat {
                    re[(r * dim + c) * bt + b] = gg;
                    im[(r * dim + c) * bt + b] = w * cc;
                }
            }
        });
        for (b, e) in errs.iter_mut().enumerate() {
            if e.is_none() {
                if let Some(column) = lu.singular(b) {
                    *e = Some(SimError::SingularMatrix { column });
                }
            }
        }
        // Signal gains, all corners at once.
        lu.solve_batch_into(rhs_re, rhs_im, x_re, x_im, acc_re, acc_im);
        for (b, gb) in gain.iter_mut().enumerate() {
            if errs[b].is_none() {
                gb.push(match oi[b] {
                    None => 0.0,
                    Some(i) => Complex::new(x_re[i * bt + b], x_im[i * bt + b]).norm(),
                });
            }
        }
        // Per noise source: one lockstep solve of the unit injections.
        // Dead corners' lanes solve against the precomputed stamps too,
        // but lanes are independent and dead lanes are never read.
        psd.fill(0.0);
        for s in 0..n_src {
            let AcBatchWorkspace {
                lu,
                x_re,
                x_im,
                acc_re,
                acc_im,
                ..
            } = ws;
            lu.solve_batch_into(&inj_re[s], &inj_im, x_re, x_im, acc_re, acc_im);
            for (b, p) in psd.iter_mut().enumerate() {
                if errs[b].is_none() {
                    let h2 = match oi[b] {
                        None => 0.0,
                        Some(i) => Complex::new(x_re[i * bt + b], x_im[i * bt + b]).norm_sqr(),
                    };
                    *p += h2 * sources[b][s].psd_at(fq);
                }
            }
        }
        for (b, ob) in out_psd.iter_mut().enumerate() {
            if errs[b].is_none() {
                ob.push(psd[b]);
            }
        }
    }
    errs.iter_mut()
        .zip(out_psd.into_iter().zip(gain))
        .map(|(e, (ob, gb))| match e.take() {
            Some(e) => Err(e),
            None => finalize(freqs, ob, gb),
        })
        .collect()
}

/// Threaded cold corner analysis: the (corner × frequency) grid is
/// flattened into tiles (`tile = corner * nf + freq`), each running the
/// full scalar point into its own slot through a per-lane pooled
/// workspace; a lane crossing a corner boundary re-prepares its workspace
/// for the new corner. Per-corner source collection stays serial up
/// front — a corner whose collection fails is skipped by every lane and
/// reports its collection error, exactly like the scalar route. The
/// in-order per-corner assembly recovers the serial
/// first-failing-frequency abort.
fn threaded_grid_noise(
    solvers: &[AcSolver<'_>],
    ops: &[&OpPoint],
    outs: &[Node],
    freqs: &[f64],
    temps: &[f64],
    par: Parallelism,
) -> Vec<Result<NoiseResult, SimError>> {
    let bt = solvers.len();
    let nf = freqs.len();
    let sources: Vec<Result<Vec<NoiseSource>, SimError>> = solvers
        .iter()
        .zip(ops)
        .zip(temps)
        .map(|((s, op), &t)| collect_sources(s.circuit(), op, t))
        .collect();
    let mut slots: Vec<Result<(f64, f64), SimError>> =
        (0..bt * nf).map(|_| Ok((0.0, 0.0))).collect();
    run_chunks(
        par,
        &mut slots,
        ac_ws_pool(),
        AcWorkspace::new,
        |off, chunk, ws| {
            let mut cur = usize::MAX;
            for (k, slot) in chunk.iter_mut().enumerate() {
                let t = off + k;
                let (b, i) = (t / nf, t % nf);
                let Ok(srcs) = &sources[b] else { continue };
                if b != cur {
                    solvers[b].prepare_lane(freqs[0], ws);
                    cur = b;
                }
                *slot = noise_point_ws(&solvers[b], srcs, outs[b], freqs[i], ws);
            }
        },
    );
    sources
        .into_iter()
        .enumerate()
        .map(|(b, srcs)| {
            srcs?;
            let mut out_psd = Vec::with_capacity(nf);
            let mut gain = Vec::with_capacity(nf);
            for slot in &slots[b * nf..(b + 1) * nf] {
                match slot {
                    Ok((g, p)) => {
                        gain.push(*g);
                        out_psd.push(*p);
                    }
                    Err(e) => return Err(e.clone()),
                }
            }
            finalize(freqs, out_psd, gain)
        })
        .collect()
}

/// Factors corner `b`'s full system at one frequency into the spare
/// buffer and runs the full scalar point (gain + per-source solves) — the
/// per-point fallback of [`noise_analysis_corners`] when the base factor
/// or a correction system is singular. Matches the scalar path's
/// arithmetic exactly at that point.
#[allow(clippy::too_many_arguments)]
fn direct_noise_point(
    spare: &mut ComplexLuSoa,
    unit: &mut Vec<Complex>,
    xcol: &mut Vec<Complex>,
    pat: &[(usize, usize, f64, f64)],
    n: usize,
    w_ang: f64,
    rhs0: &[Complex],
    o: Option<usize>,
    sources_b: &[NoiseSource],
    inj: &[(Option<usize>, Option<usize>)],
    fq: f64,
) -> Result<(f64, f64), SimError> {
    spare.refactor_with(n, 1e-300, |re, im| {
        for &(r, c, g, cc) in pat {
            re[r * n + c] = g;
            im[r * n + c] = w_ang * cc;
        }
    })?;
    spare.solve_into(rhs0, xcol);
    let g = o.map_or(0.0, |i| xcol[i].norm());
    let mut psd = 0.0;
    for (s, &(ip, in_)) in sources_b.iter().zip(inj) {
        unit.clear();
        unit.resize(n, Complex::ZERO);
        if let Some(ip) = ip {
            unit[ip] -= Complex::ONE;
        }
        if let Some(in_) = in_ {
            unit[in_] += Complex::ONE;
        }
        spare.solve_into(unit, xcol);
        let h2 = o.map_or(0.0, |i| xcol[i].norm_sqr());
        psd += h2 * s.psd_at(fq);
    }
    Ok((g, psd))
}

/// Corner-**corrected** noise analysis: the fast path of the warm batched
/// corner engine. PVT corner systems differ only in their device stamps —
/// the parasitic mesh, passives, sources, and regularization are shared —
/// so per frequency this factors the base corner once, computes the
/// Woodbury correction basis `W = A0^{-1} P_R` over the difference
/// support `R`, and solves the shared source vector **and every noise
/// source's unit injection once against the base factor**; each sibling
/// corner then recovers its gain and per-source transfers through an
/// `|R| x |R|` solve per right-hand side instead of a full
/// factorization + back-substitution. Per frequency that is
/// `1` factorization + `(1 + S + |R|)` back-substitutions +
/// `B` small factors, instead of the serial path's `B` factorizations +
/// `B (1 + S)` back-substitutions.
///
/// The correction is algebraically exact; in floating point it agrees
/// with the direct per-corner analysis to roundoff — inside the warm
/// evaluation path's solver-tolerance contract. The *cold* (bitwise)
/// path is [`noise_analysis_batch`]. Falls back to the scalar per-corner
/// path at stock dims (`n <= 16`), on structural mismatch (dims, source
/// lists, injection nodes, source vectors), or when the difference
/// support is too wide to pay; falls back to direct per-corner
/// factorization at any frequency where the base factor or a correction
/// system is singular.
///
/// # Panics
///
/// Panics unless `solvers`, `ops`, `outs`, and `temps` have equal length.
pub fn noise_analysis_corners(
    solvers: &[AcSolver<'_>],
    ops: &[&OpPoint],
    outs: &[Node],
    freqs: &[f64],
    temps: &[f64],
    ws: &mut AcBatchWorkspace,
) -> Vec<Result<NoiseResult, SimError>> {
    assert_eq!(solvers.len(), ops.len(), "one operating point per corner");
    assert_eq!(solvers.len(), outs.len(), "one output node per corner");
    assert_eq!(solvers.len(), temps.len(), "one temperature per corner");
    let bt = solvers.len();
    if bt == 0 {
        return Vec::new();
    }
    if let Err(e) = validate_freqs(freqs) {
        return (0..bt).map(|_| Err(e.clone())).collect();
    }
    let n = solvers[0].dim();
    if bt == 1
        || solvers.iter().any(|s| s.dim() != n)
        || n <= STOCK_DIM_MAX
        || solvers.iter().any(|s| s.config().use_sparse(s.dim()))
    {
        // At stock extraction dims the difference support spans most of
        // the system, so the correction cannot pay — run the scalar
        // per-corner analysis (the warm serial path's exact arithmetic).
        // Sparse-routed dims also run scalar: the Woodbury correction
        // machinery (dense base factor and basis) assumes the dense
        // kernel, while the scalar path dispatches per backend.
        return scalar_noise_ws(solvers, ops, outs, freqs, temps, ws);
    }
    let rhs0 = solvers[0].source_rhs();
    if solvers.iter().any(|s| s.source_rhs() != rhs0) {
        return scalar_noise_ws(solvers, ops, outs, freqs, temps, ws);
    }
    let Some(sources) = collect_corner_sources(solvers, ops, temps) else {
        return scalar_noise_ws(solvers, ops, outs, freqs, temps, ws);
    };
    // Shared base solves need shared injection nodes; corner sets always
    // satisfy this (same netlist structure), so this is a safety valve.
    if sources[1..].iter().any(|srcs| {
        srcs.iter()
            .zip(&sources[0])
            .any(|(a, b)| a.p != b.p || a.n != b.n)
    }) {
        return scalar_noise_ws(solvers, ops, outs, freqs, temps, ws);
    }
    let inj: Vec<(Option<usize>, Option<usize>)> = sources[0]
        .iter()
        .map(|s| {
            (
                solvers[0].circuit().mna_index(s.p),
                solvers[0].circuit().mna_index(s.n),
            )
        })
        .collect();

    ws.patterns.resize(bt, Vec::new());
    for (pat, s) in ws.patterns.iter_mut().zip(solvers) {
        s.collect_pattern(pat);
    }
    let cd = CornerDiff::from_patterns(&ws.patterns, n);
    if !cd.profitable(n) {
        return scalar_noise_ws(solvers, ops, outs, freqs, temps, ws);
    }
    let rn = cd.support();

    let oi: Vec<Option<usize>> = solvers
        .iter()
        .zip(outs)
        .map(|(s, &o)| s.mna_index(o))
        .collect();
    // Every frequency's full corner row is an independent tile, exactly
    // as in [`crate::ac::ac_sweep_corners`]: the base factor, correction
    // basis, shared per-source base solves, and per-corner recoveries at
    // one `fq` read nothing a sibling frequency wrote, so the serial walk
    // and the threaded schedule run the exact same row body. Values a
    // corner computes past its first failing frequency are discarded by
    // the in-order assembly, matching the serial abort contract.
    let patterns = std::mem::take(&mut ws.patterns);
    let mut rows: Vec<Vec<Result<(f64, f64), SimError>>> = (0..freqs.len())
        .map(|_| (0..bt).map(|_| Ok((0.0, 0.0))).collect())
        .collect();
    let par = grid_parallelism(solvers);
    if would_parallelize(par, freqs.len()) {
        run_chunks(
            par,
            &mut rows,
            ac_batch_ws_pool(),
            AcBatchWorkspace::new,
            |off, chunk, lane| {
                let mut u = vec![Complex::ZERO; rn];
                let mut z = Vec::new();
                for (k, row) in chunk.iter_mut().enumerate() {
                    corrected_noise_row(
                        &patterns[..bt],
                        &cd,
                        rn,
                        n,
                        rhs0,
                        &oi,
                        &sources,
                        &inj,
                        freqs[off + k],
                        lane,
                        &mut u,
                        &mut z,
                        row,
                    );
                }
            },
        );
    } else {
        let mut u = vec![Complex::ZERO; rn];
        let mut z = Vec::new();
        for (i, row) in rows.iter_mut().enumerate() {
            corrected_noise_row(
                &patterns[..bt],
                &cd,
                rn,
                n,
                rhs0,
                &oi,
                &sources,
                &inj,
                freqs[i],
                ws,
                &mut u,
                &mut z,
                row,
            );
        }
    }
    ws.patterns = patterns;
    (0..bt)
        .map(|b| {
            let mut out_psd = Vec::with_capacity(freqs.len());
            let mut gain = Vec::with_capacity(freqs.len());
            for row in &rows {
                match &row[b] {
                    Ok((g, p)) => {
                        gain.push(*g);
                        out_psd.push(*p);
                    }
                    Err(e) => return Err(e.clone()),
                }
            }
            finalize(freqs, out_psd, gain)
        })
        .collect()
}

/// One frequency tile of the corrected noise analysis: base factor +
/// shared correction basis + per-source base solves + per-corner Woodbury
/// recoveries, writing every corner's `(gain, psd)` (or error) into
/// `row`. Identical arithmetic whether called from the serial loop
/// (caller workspace) or a threaded lane (pooled workspace): the dense
/// refactor is a full restamp, so the workspace carries no
/// cross-frequency history.
#[allow(clippy::too_many_arguments)]
fn corrected_noise_row(
    patterns: &[Vec<(usize, usize, f64, f64)>],
    cd: &CornerDiff,
    rn: usize,
    n: usize,
    rhs0: &[Complex],
    oi: &[Option<usize>],
    sources: &[Vec<NoiseSource>],
    inj: &[(Option<usize>, Option<usize>)],
    fq: f64,
    ws: &mut AcBatchWorkspace,
    u: &mut Vec<Complex>,
    z: &mut Vec<Complex>,
    row: &mut [Result<(f64, f64), SimError>],
) {
    let w_ang = 2.0 * std::f64::consts::PI * fq;
    let base_ok = ws
        .base
        .refactor_with(n, 1e-300, |re, im| {
            for &(r, c, g, cc) in &patterns[0] {
                re[r * n + c] = g;
                im[r * n + c] = w_ang * cc;
            }
        })
        .is_ok();
    if !base_ok {
        // Base corner singular at this point: run every corner through
        // the direct scalar point instead.
        for (b, slot) in row.iter_mut().enumerate() {
            let AcBatchWorkspace {
                spare, unit, xcol, ..
            } = &mut *ws;
            *slot = direct_noise_point(
                spare,
                unit,
                xcol,
                &patterns[b],
                n,
                w_ang,
                rhs0,
                oi[b],
                &sources[b],
                inj,
                fq,
            );
        }
        return;
    }
    ws.base.solve_into(rhs0, &mut ws.y0);
    {
        let AcBatchWorkspace {
            base,
            unit,
            xcol,
            wflat,
            ..
        } = &mut *ws;
        solve_correction_basis(&*base, &cd.rows, n, unit, xcol, wflat);
    }
    // Per-source base solves, computed once and shared by the whole
    // corner set — the structural win of the corrected analysis.
    ws.ys.clear();
    for &(ip, in_) in inj {
        let AcBatchWorkspace {
            base,
            unit,
            xcol,
            ys,
            ..
        } = &mut *ws;
        unit.clear();
        unit.resize(n, Complex::ZERO);
        if let Some(ip) = ip {
            unit[ip] -= Complex::ONE;
        }
        if let Some(in_) = in_ {
            unit[in_] += Complex::ONE;
        }
        base.solve_into(unit, xcol);
        ys.extend_from_slice(xcol);
    }
    for (b, slot) in row.iter_mut().enumerate() {
        let diff = &cd.diffs[b];
        if diff.is_empty() {
            // Corner identical to the base: its solves *are* the base
            // solves.
            let g = oi[b].map_or(0.0, |i| ws.y0[i].norm());
            let mut p = 0.0;
            for (s, src) in sources[b].iter().enumerate() {
                let h2 = oi[b].map_or(0.0, |i| ws.ys[s * n + i].norm_sqr());
                p += h2 * src.psd_at(fq);
            }
            *slot = Ok((g, p));
            continue;
        }
        let ok = factor_correction(
            &mut ws.small,
            diff,
            &cd.row_pos,
            rn,
            n,
            |dg, dc| Complex::new(dg, w_ang * dc),
            &ws.wflat,
        )
        .is_ok();
        if !ok {
            let AcBatchWorkspace {
                spare, unit, xcol, ..
            } = &mut *ws;
            *slot = direct_noise_point(
                spare,
                unit,
                xcol,
                &patterns[b],
                n,
                w_ang,
                rhs0,
                oi[b],
                &sources[b],
                inj,
                fq,
            );
            continue;
        }
        let g = corrected_entry(
            &ws.small,
            diff,
            &cd.row_pos,
            &ws.wflat,
            &ws.y0,
            oi[b],
            |dg, dc| Complex::new(dg, w_ang * dc),
            n,
            rn,
            u,
            z,
        )
        .norm();
        let mut p = 0.0;
        for (s, src) in sources[b].iter().enumerate() {
            let h = corrected_entry(
                &ws.small,
                diff,
                &cd.row_pos,
                &ws.wflat,
                &ws.ys[s * n..(s + 1) * n],
                oi[b],
                |dg, dc| Complex::new(dg, w_ang * dc),
                n,
                rn,
                u,
                z,
            );
            p += h.norm_sqr() * src.psd_at(fq);
        }
        *slot = Ok((g, p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::log_freqs;
    use crate::dc::{dc_operating_point, DcOptions};
    use crate::netlist::GND;

    /// kT/C: integrated output noise of an RC filter is sqrt(kT/C)
    /// regardless of R.
    #[test]
    fn ktc_noise_of_rc_filter() {
        for r in [1.0e3, 10.0e3, 100.0e3] {
            let c = 1e-12;
            let mut ckt = Circuit::new();
            let i = ckt.node("in");
            let o = ckt.node("out");
            ckt.vsource(i, GND, 0.0, 1.0);
            ckt.resistor(i, o, r);
            ckt.capacitor(o, GND, c);
            let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
            // Integrate far past the pole so the Lorentzian tail is
            // captured: pole at 1/(2 pi R C).
            let fp = 1.0 / (2.0 * std::f64::consts::PI * r * c);
            let freqs = log_freqs(fp * 1e-3, fp * 1e3, 40);
            let nr = noise_analysis(&ckt, &op, o, &freqs, 300.0).unwrap();
            let expect = (BOLTZMANN * 300.0 / c).sqrt();
            let rel = (nr.out_vrms - expect).abs() / expect;
            assert!(
                rel < 0.05,
                "kT/C mismatch at R={r}: {} vs {expect}",
                nr.out_vrms
            );
        }
    }

    #[test]
    fn resistor_divider_input_referred_matches_output_over_gain() {
        // Divider gain 0.5: input-referred noise should be output noise / 0.5.
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.vsource(i, GND, 0.0, 1.0);
        ckt.resistor(i, o, 1e3);
        ckt.resistor(o, GND, 1e3);
        ckt.capacitor(o, GND, 1e-12);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        // Integrate well below the output pole (~318 MHz) where the divider
        // gain is flat at 0.5, so input-referred = output / gain exactly.
        let freqs = log_freqs(1e3, 1e7, 30);
        let nr = noise_analysis(&ckt, &op, o, &freqs, 300.0).unwrap();
        let ratio = nr.input_referred_rms / nr.out_vrms;
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn noiseless_resistor_is_silent() {
        let mut a = Circuit::new();
        let o1 = a.node("o");
        a.vsource(o1, GND, 0.0, 1.0);
        a.resistor_noiseless(o1, GND, 1e3);
        // A circuit whose only resistor is noiseless: output PSD ~ 0.
        let op = dc_operating_point(&a, &DcOptions::default()).unwrap();
        let nr = noise_analysis(&a, &op, o1, &log_freqs(1e3, 1e6, 10), 300.0).unwrap();
        assert!(nr.out_vrms < 1e-15);
    }

    #[test]
    fn mosfet_noise_increases_with_gm() {
        use crate::device::{MosPolarity, Technology};
        use crate::netlist::Mosfet;
        let t = Technology::ptm45();
        let build = |w: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let g = ckt.node("g");
            let o = ckt.node("o");
            ckt.vsource(vdd, GND, 1.0, 0.0);
            ckt.vsource(g, GND, 0.55, 1.0);
            ckt.resistor_noiseless(vdd, o, 5.0e3);
            ckt.capacitor(o, GND, 1e-13);
            ckt.mosfet(Mosfet {
                polarity: MosPolarity::Nmos,
                d: o,
                g,
                s: GND,
                w,
                l: 90e-9,
                mult: 1.0,
                model: t.nmos,
            });
            ckt
        };
        let freqs = log_freqs(1e4, 1e11, 20);
        let mut vals = Vec::new();
        for w in [1e-6, 4e-6] {
            let ckt = build(w);
            let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
            let nr = noise_analysis(&ckt, &op, crate::netlist::Node(3), &freqs, 300.0).unwrap();
            vals.push(nr.out_vrms);
        }
        // Wider device: more gm, more output noise current into the same
        // load (but also slightly different pole) — the dominant effect at
        // fixed load is increased noise.
        assert!(vals[1] > vals[0]);
    }

    /// A symmetric twin-T notch: exact transmission null at
    /// `f0 = 1/(2 pi R C)`, where the measured gain collapses to
    /// floating-point dust.
    fn twin_t_notch() -> (Circuit, Node, f64) {
        let r = 10.0e3;
        let c = 1e-9;
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let a = ckt.node("a");
        let b = ckt.node("b");
        let o = ckt.node("out");
        ckt.vsource(i, GND, 0.0, 1.0);
        // Low-pass T.
        ckt.resistor(i, a, r);
        ckt.resistor(a, o, r);
        ckt.capacitor(a, GND, 2.0 * c);
        // High-pass T.
        ckt.capacitor(i, b, c);
        ckt.capacitor(b, o, c);
        ckt.resistor(b, GND, r / 2.0);
        // Light load so `out` is a live MNA node.
        ckt.resistor_noiseless(o, GND, 10.0e6);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        (ckt, o, f0)
    }

    #[test]
    fn notch_point_does_not_inflate_input_referred_noise() {
        // Regression: a single near-zero-gain grid point (the notch) used
        // to divide the output PSD by ~0 and dominate the input-referred
        // integral by tens of orders of magnitude, while the `max_gain`
        // check still passed. Such points are now excluded per point.
        let (ckt, o, f0) = twin_t_notch();
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let mut with_notch = log_freqs(f0 * 1e-2, f0 * 1e2, 6);
        with_notch.push(f0);
        with_notch.sort_by(|a, b| a.partial_cmp(b).unwrap());
        with_notch.dedup();
        let without_notch: Vec<f64> = with_notch.iter().cloned().filter(|f| *f != f0).collect();
        let nr_with = noise_analysis(&ckt, &op, o, &with_notch, 300.0).unwrap();
        let nr_without = noise_analysis(&ckt, &op, o, &without_notch, 300.0).unwrap();
        // The notch gain really is floating-point dust relative to peak.
        let min_g = nr_with.gain.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_g = nr_with.gain.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            min_g < GAIN_FLOOR_REL * max_g,
            "notch not deep enough: {min_g} vs {max_g}"
        );
        // Including the notch point must not blow the referral up; the
        // old clamp produced a ratio of ~1e8 or worse here.
        let ratio = nr_with.input_referred_rms / nr_without.input_referred_rms;
        assert!(
            ratio < 3.0,
            "notch point inflated input-referred noise {ratio}x"
        );
        // The output-side integral is untouched by the exclusion.
        assert!(
            (nr_with.out_vrms - nr_without.out_vrms).abs() <= 0.05 * nr_without.out_vrms.max(1e-30)
        );
    }

    #[test]
    fn all_segments_excluded_is_an_error_not_silent_zero() {
        // A two-point grid whose second point sits in the notch: the
        // max-gain check passes (point one is healthy) but every
        // trapezoid segment has a below-floor endpoint, so there is no
        // band to refer through — that must fail, not report 0.0 rms
        // (which downstream worst-case folds would read as "infinitely
        // quiet").
        let (ckt, o, f0) = twin_t_notch();
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let r = noise_analysis(&ckt, &op, o, &[f0 * 0.1, f0], 300.0);
        assert!(
            matches!(r, Err(SimError::MeasureFailed { .. })),
            "expected MeasureFailed, got {r:?}"
        );
    }

    #[test]
    fn out_of_sync_operating_point_is_an_error_not_a_panic() {
        use crate::device::{MosPolarity, Technology};
        use crate::netlist::Mosfet;
        let t = Technology::ptm45();
        // Circuit A: plain RC — its op has zero MOS entries.
        let mut a = Circuit::new();
        let ia = a.node("in");
        let oa = a.node("out");
        a.vsource(ia, GND, 0.0, 1.0);
        a.resistor(ia, oa, 1e3);
        a.capacitor(oa, GND, 1e-12);
        let op_a = dc_operating_point(&a, &DcOptions::default()).unwrap();
        // Circuit B: same nodes plus a MOSFET.
        let mut b = Circuit::new();
        let ib = b.node("in");
        let ob = b.node("out");
        b.vsource(ib, GND, 0.55, 1.0);
        b.resistor(ib, ob, 1e3);
        b.capacitor(ob, GND, 1e-12);
        b.mosfet(Mosfet {
            polarity: MosPolarity::Nmos,
            d: ob,
            g: ib,
            s: GND,
            w: 1e-6,
            l: 90e-9,
            mult: 1.0,
            model: t.nmos,
        });
        let r = noise_analysis(&b, &op_a, ob, &log_freqs(1e3, 1e6, 4), 300.0);
        assert!(
            matches!(r, Err(SimError::BadNetlist { .. })),
            "expected BadNetlist, got {r:?}"
        );
    }

    #[test]
    fn degenerate_frequency_grids_are_rejected() {
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.vsource(i, GND, 0.0, 1.0);
        ckt.resistor(i, o, 1e3);
        ckt.capacitor(o, GND, 1e-12);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let bad: [&[f64]; 5] = [
            &[],
            &[0.0, 1e3],
            &[-1.0, 1e3],
            &[1e3, 1e2],
            &[1e3, 1e3, 1e4],
        ];
        for freqs in bad {
            let r = noise_analysis(&ckt, &op, o, freqs, 300.0);
            assert!(
                matches!(r, Err(SimError::InvalidOptions { .. })),
                "grid {freqs:?} accepted: {r:?}"
            );
        }
        // A valid grid still passes.
        assert!(noise_analysis(&ckt, &op, o, &[1e3, 1e4, 1e5], 300.0).is_ok());
    }
}
