//! Small-signal noise analysis.
//!
//! Every thermal resistor and MOSFET contributes a current-noise power
//! spectral density between its terminals. For each frequency the complex
//! MNA system is factored once and solved per noise source (unit current
//! injection), giving the squared transfer to the output; the weighted sum
//! is the output noise PSD, and dividing by the squared signal gain refers
//! it to the input.

use crate::ac::{AcSolver, AcWorkspace};
use crate::complex::Complex;
use crate::dc::OpPoint;
use crate::device::BOLTZMANN;
use crate::error::SimError;
use crate::measure::integrate_trapezoid;
use crate::netlist::{Circuit, Element, Node};

/// Result of a noise analysis over a frequency grid.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseResult {
    /// Frequency grid (Hz).
    pub freqs: Vec<f64>,
    /// Output noise voltage PSD (V^2/Hz) at each grid point.
    pub out_psd: Vec<f64>,
    /// Signal gain magnitude from the netlist's AC sources to the output.
    pub gain: Vec<f64>,
    /// Total integrated output noise (V rms).
    pub out_vrms: f64,
    /// Input-referred integrated noise (rms, in units of the AC source:
    /// volts for a voltage-driven circuit, amperes for current-driven).
    pub input_referred_rms: f64,
}

struct NoiseSource {
    p: Node,
    n: Node,
    /// (thermal/white PSD, gm-squared flicker prefactor) — evaluated as
    /// `white + flicker_pref / f`.
    white: f64,
    flicker_pref: f64,
}

/// Runs a noise analysis at temperature `temp_k`, referred to the circuit's
/// own AC sources, measuring at node `out`.
///
/// # Errors
///
/// [`SimError::MeasureFailed`] if the signal gain is zero (nothing to refer
/// to), or propagates factorization failures.
pub fn noise_analysis(
    ckt: &Circuit,
    op: &OpPoint,
    out: Node,
    freqs: &[f64],
    temp_k: f64,
) -> Result<NoiseResult, SimError> {
    noise_analysis_ws(ckt, op, out, freqs, temp_k, &mut AcWorkspace::new())
}

/// [`noise_analysis`] with reusable workspace buffers — no per-frequency
/// or per-source allocation; results are identical. Each frequency point
/// is factored once through the vectorized SoA complex kernel
/// ([`crate::linalg::ComplexLuSoa`]) and back-substituted per noise
/// source. Warm evaluation sessions route their noise analyses through
/// this entry point.
///
/// # Errors
///
/// Same contract as [`noise_analysis`].
pub fn noise_analysis_ws(
    ckt: &Circuit,
    op: &OpPoint,
    out: Node,
    freqs: &[f64],
    temp_k: f64,
    ws: &mut AcWorkspace,
) -> Result<NoiseResult, SimError> {
    let solver = AcSolver::new(ckt, op);
    solver.prepare_workspace(ws);
    let dim = solver.dim();

    // Enumerate noise sources.
    let mut sources = Vec::new();
    let mut mos_iter = op.mosfets().iter();
    for e in ckt.elements() {
        match e {
            Element::Resistor { p, n, r, noisy } if *noisy => {
                sources.push(NoiseSource {
                    p: *p,
                    n: *n,
                    white: 4.0 * BOLTZMANN * temp_k / r,
                    flicker_pref: 0.0,
                });
            }
            Element::Mos(m) => {
                let mi = mos_iter.next().expect("op out of sync");
                let white = m.model.thermal_noise_psd(mi.gm, temp_k);
                // flicker psd(f) = kf gm^2 / (Cox W L f)
                let flicker_pref = m.model.kf * mi.gm * mi.gm / (m.model.cox * m.w * m.l * m.mult);
                sources.push(NoiseSource {
                    p: mi.a_d,
                    n: mi.a_s,
                    white,
                    flicker_pref,
                });
            }
            _ => {}
        }
    }

    let mut out_psd = Vec::with_capacity(freqs.len());
    let mut gain = Vec::with_capacity(freqs.len());
    for &f in freqs {
        solver.factor_at_ws(f, ws)?;
        let AcWorkspace { lu, x, rhs, .. } = &mut *ws;
        // Signal gain.
        lu.solve_into(solver.source_rhs(), x);
        let g = solver.voltage(x, out).norm();
        gain.push(g);
        // Sum over noise sources.
        let mut psd = 0.0;
        rhs.clear();
        rhs.resize(dim, Complex::ZERO);
        for s in &sources {
            rhs.iter_mut().for_each(|v| *v = Complex::ZERO);
            // Unit AC current from p to n inside the source.
            if let Some(ip) = ckt.mna_index(s.p) {
                rhs[ip] -= Complex::ONE;
            }
            if let Some(in_) = ckt.mna_index(s.n) {
                rhs[in_] += Complex::ONE;
            }
            lu.solve_into(rhs, x);
            let h2 = solver.voltage(x, out).norm_sqr();
            let s_psd = s.white + s.flicker_pref / f.max(1e-3);
            psd += h2 * s_psd;
        }
        out_psd.push(psd);
    }

    let out_v2 = integrate_trapezoid(freqs, &out_psd);
    let out_vrms = out_v2.sqrt();
    // Input-referred: divide the PSD by |gain|^2 pointwise and integrate.
    let max_gain = gain.iter().cloned().fold(0.0f64, f64::max);
    if max_gain <= 0.0 {
        return Err(SimError::MeasureFailed {
            what: "zero signal gain; cannot refer noise to input",
        });
    }
    let in_psd: Vec<f64> = out_psd
        .iter()
        .zip(&gain)
        .map(|(p, g)| p / (g * g).max(1e-30))
        .collect();
    let input_referred_rms = integrate_trapezoid(freqs, &in_psd).sqrt();

    Ok(NoiseResult {
        freqs: freqs.to_vec(),
        out_psd,
        gain,
        out_vrms,
        input_referred_rms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::log_freqs;
    use crate::dc::{dc_operating_point, DcOptions};
    use crate::netlist::GND;

    /// kT/C: integrated output noise of an RC filter is sqrt(kT/C)
    /// regardless of R.
    #[test]
    fn ktc_noise_of_rc_filter() {
        for r in [1.0e3, 10.0e3, 100.0e3] {
            let c = 1e-12;
            let mut ckt = Circuit::new();
            let i = ckt.node("in");
            let o = ckt.node("out");
            ckt.vsource(i, GND, 0.0, 1.0);
            ckt.resistor(i, o, r);
            ckt.capacitor(o, GND, c);
            let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
            // Integrate far past the pole so the Lorentzian tail is
            // captured: pole at 1/(2 pi R C).
            let fp = 1.0 / (2.0 * std::f64::consts::PI * r * c);
            let freqs = log_freqs(fp * 1e-3, fp * 1e3, 40);
            let nr = noise_analysis(&ckt, &op, o, &freqs, 300.0).unwrap();
            let expect = (BOLTZMANN * 300.0 / c).sqrt();
            let rel = (nr.out_vrms - expect).abs() / expect;
            assert!(
                rel < 0.05,
                "kT/C mismatch at R={r}: {} vs {expect}",
                nr.out_vrms
            );
        }
    }

    #[test]
    fn resistor_divider_input_referred_matches_output_over_gain() {
        // Divider gain 0.5: input-referred noise should be output noise / 0.5.
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.vsource(i, GND, 0.0, 1.0);
        ckt.resistor(i, o, 1e3);
        ckt.resistor(o, GND, 1e3);
        ckt.capacitor(o, GND, 1e-12);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        // Integrate well below the output pole (~318 MHz) where the divider
        // gain is flat at 0.5, so input-referred = output / gain exactly.
        let freqs = log_freqs(1e3, 1e7, 30);
        let nr = noise_analysis(&ckt, &op, o, &freqs, 300.0).unwrap();
        let ratio = nr.input_referred_rms / nr.out_vrms;
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn noiseless_resistor_is_silent() {
        let mut a = Circuit::new();
        let o1 = a.node("o");
        a.vsource(o1, GND, 0.0, 1.0);
        a.resistor_noiseless(o1, GND, 1e3);
        // A circuit whose only resistor is noiseless: output PSD ~ 0.
        let op = dc_operating_point(&a, &DcOptions::default()).unwrap();
        let nr = noise_analysis(&a, &op, o1, &log_freqs(1e3, 1e6, 10), 300.0).unwrap();
        assert!(nr.out_vrms < 1e-15);
    }

    #[test]
    fn mosfet_noise_increases_with_gm() {
        use crate::device::{MosPolarity, Technology};
        use crate::netlist::Mosfet;
        let t = Technology::ptm45();
        let build = |w: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let g = ckt.node("g");
            let o = ckt.node("o");
            ckt.vsource(vdd, GND, 1.0, 0.0);
            ckt.vsource(g, GND, 0.55, 1.0);
            ckt.resistor_noiseless(vdd, o, 5.0e3);
            ckt.capacitor(o, GND, 1e-13);
            ckt.mosfet(Mosfet {
                polarity: MosPolarity::Nmos,
                d: o,
                g,
                s: GND,
                w,
                l: 90e-9,
                mult: 1.0,
                model: t.nmos,
            });
            ckt
        };
        let freqs = log_freqs(1e4, 1e11, 20);
        let mut vals = Vec::new();
        for w in [1e-6, 4e-6] {
            let ckt = build(w);
            let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
            let nr = noise_analysis(&ckt, &op, crate::netlist::Node(3), &freqs, 300.0).unwrap();
            vals.push(nr.out_vrms);
        }
        // Wider device: more gm, more output noise current into the same
        // load (but also slightly different pole) — the dominant effect at
        // fixed load is increased noise.
        assert!(vals[1] > vals[0]);
    }
}
