//! Error types for the simulator.

use std::fmt;

/// Errors produced by circuit construction and analysis.
///
/// All analyses return `Result<_, SimError>`; an error means the requested
/// quantity could not be computed (singular system, non-convergent Newton
/// iteration, or a measurement that does not exist for the response, such
/// as a unity-gain crossing for an amplifier with sub-unity gain).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The MNA matrix was singular to working precision.
    SingularMatrix {
        /// Column at which elimination failed.
        column: usize,
    },
    /// The sparse-backend MNA matrix was singular to working precision:
    /// no acceptable pivot survived in some column of the sparse LU. Kept
    /// distinct from [`SimError::SingularMatrix`] so callers can tell
    /// which backend rejected the system; the reported column is in the
    /// original (unpermuted) matrix numbering, like the dense variant's.
    SingularSparse {
        /// Original-matrix column at which elimination failed.
        column: usize,
    },
    /// The MNA matrix is *structurally* singular: no assignment of
    /// matrix entries can make it numerically nonsingular, because some
    /// column cannot be matched to a distinct row holding one of its
    /// structural nonzeros (maximum bipartite matching on the sparsity
    /// pattern falls short of the dimension). Detected by the structural
    /// preflight of the sparse backend *before* any factorization work —
    /// typically a floating node (only capacitive coupling with gmin
    /// disabled) or a dangling net. Unlike the numeric singular variants
    /// this is a property of the circuit topology alone, so retrying with
    /// different values (gmin stepping, source ramping) cannot help.
    StructurallySingular {
        /// First unmatched column, in original MNA numbering (node
        /// voltages first, then voltage-source branch currents).
        column: usize,
        /// Size of the maximum matching (the structural rank).
        structural_rank: usize,
        /// Dimension of the MNA system.
        dim: usize,
    },
    /// The Newton–Raphson DC solve did not converge.
    DcNoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// Transient time stepping failed to converge at a time point.
    TranNoConvergence {
        /// Simulation time at which the failure occurred.
        time: f64,
    },
    /// A measurement could not be extracted from the response.
    MeasureFailed {
        /// Human-readable description of the missing feature.
        what: &'static str,
    },
    /// Analysis options are degenerate (e.g. a transient with zero steps,
    /// whose derived `dt` is infinite); caught up front instead of
    /// silently producing an empty or NaN sweep.
    InvalidOptions {
        /// Human-readable description of the defect.
        what: &'static str,
    },
    /// The netlist is structurally invalid.
    BadNetlist {
        /// Human-readable description of the defect.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SingularMatrix { column } => {
                write!(f, "singular MNA matrix at column {column}")
            }
            SimError::SingularSparse { column } => {
                write!(f, "singular sparse MNA matrix at column {column}")
            }
            SimError::StructurallySingular {
                column,
                structural_rank,
                dim,
            } => write!(
                f,
                "structurally singular MNA matrix: column {column} unmatched (structural rank {structural_rank} of {dim})"
            ),
            SimError::DcNoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "dc operating point did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SimError::TranNoConvergence { time } => {
                write!(f, "transient solve did not converge at t = {time:.3e} s")
            }
            SimError::MeasureFailed { what } => write!(f, "measurement failed: {what}"),
            SimError::InvalidOptions { what } => write!(f, "invalid analysis options: {what}"),
            SimError::BadNetlist { what } => write!(f, "bad netlist: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            SimError::SingularMatrix { column: 3 },
            SimError::SingularSparse { column: 3 },
            SimError::StructurallySingular {
                column: 3,
                structural_rank: 5,
                dim: 6,
            },
            SimError::DcNoConvergence {
                iterations: 50,
                residual: 1.0,
            },
            SimError::TranNoConvergence { time: 1e-9 },
            SimError::MeasureFailed { what: "no ugbw" },
            SimError::InvalidOptions { what: "dt = 0" },
            SimError::BadNetlist {
                what: "dangling node".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
