//! Measurement utilities: the quantities the AutoCkt design specifications
//! are written in (DC gain, unity-gain bandwidth, phase margin, -3 dB
//! bandwidth, settling time, integrated noise).

use crate::ac::AcResponse;
use crate::error::SimError;

/// Converts a magnitude to decibels (`20 log10 |x|`).
pub fn db20(x: f64) -> f64 {
    20.0 * x.abs().max(1e-300).log10()
}

impl AcResponse {
    /// Low-frequency (first-point) gain magnitude.
    pub fn dc_gain(&self) -> f64 {
        self.h.first().map_or(0.0, |c| c.norm())
    }

    /// Magnitudes at every grid point.
    pub fn magnitudes(&self) -> Vec<f64> {
        self.h.iter().map(|c| c.norm()).collect()
    }

    /// Phase in degrees, unwrapped so that no step between adjacent points
    /// exceeds 180 degrees. The first point anchors the branch.
    pub fn phase_unwrapped_deg(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.h.len());
        let mut prev = 0.0f64;
        for (i, c) in self.h.iter().enumerate() {
            let mut p = c.arg().to_degrees();
            if i > 0 {
                while p - prev > 180.0 {
                    p -= 360.0;
                }
                while p - prev < -180.0 {
                    p += 360.0;
                }
            }
            prev = p;
            out.push(p);
        }
        out
    }

    /// Returns an error unless the grid has at least two points — no
    /// crossing or interpolation measurement is defined on an empty or
    /// single-point sweep (previously these paths panicked on unchecked
    /// `freqs[0]` indexing).
    fn require_grid(&self) -> Result<(), SimError> {
        if self.freqs.len() < 2 || self.h.len() < 2 {
            return Err(SimError::MeasureFailed {
                what: "fewer than two frequency points in sweep",
            });
        }
        Ok(())
    }

    /// Frequency at which the magnitude first falls to `1/sqrt(2)` of the
    /// low-frequency gain (the -3 dB bandwidth), log-interpolated.
    ///
    /// # Errors
    ///
    /// [`SimError::MeasureFailed`] if the response never drops below the
    /// -3 dB level inside the sweep, or the sweep has fewer than two
    /// points.
    pub fn f_3db(&self) -> Result<f64, SimError> {
        self.require_grid()?;
        let target = self.dc_gain() * std::f64::consts::FRAC_1_SQRT_2;
        self.crossing_down(target).ok_or(SimError::MeasureFailed {
            what: "no -3 dB crossing in sweep",
        })
    }

    /// Unity-gain frequency: first downward crossing of `|H| = 1`,
    /// log-interpolated.
    ///
    /// # Errors
    ///
    /// [`SimError::MeasureFailed`] if the gain never crosses unity from
    /// above (e.g. the amplifier has sub-unity DC gain) or the sweep has
    /// fewer than two points.
    pub fn ugbw(&self) -> Result<f64, SimError> {
        self.require_grid()?;
        if self.dc_gain() < 1.0 {
            return Err(SimError::MeasureFailed {
                what: "dc gain below unity; no ugbw",
            });
        }
        self.crossing_down(1.0).ok_or(SimError::MeasureFailed {
            what: "no unity-gain crossing in sweep",
        })
    }

    /// Phase margin in degrees: `180 - |phase(f_ugbw) - phase(f_min)|`
    /// using the unwrapped phase, so inverting and non-inverting
    /// amplifiers are treated uniformly.
    ///
    /// # Errors
    ///
    /// Propagates [`AcResponse::ugbw`] failure.
    pub fn phase_margin_deg(&self) -> Result<f64, SimError> {
        let fu = self.ugbw()?;
        let ph = self.phase_unwrapped_deg();
        let shift = (self.interp_at(&ph, fu) - ph[0]).abs();
        Ok(180.0 - shift)
    }

    /// Bracketing segment of `f` on the first `n` grid points with its
    /// log-frequency interpolation weight: `Ok((i, t))` means
    /// `freqs[i] <= f <= freqs[i + 1]` with `t` in `[0, 1]`; `Err(j)`
    /// means `f` clamps to grid index `j` (outside the grid, or a
    /// single-point grid). Callers must guarantee `1 <= n <= freqs.len()`.
    fn bracket(&self, n: usize, f: f64) -> Result<(usize, f64), usize> {
        if n == 1 || f <= self.freqs[0] {
            return Err(0);
        }
        if f >= self.freqs[n - 1] {
            return Err(n - 1);
        }
        let lf = f.ln();
        for i in 0..n - 1 {
            if f <= self.freqs[i + 1] {
                let l0 = self.freqs[i].ln();
                let l1 = self.freqs[i + 1].ln();
                let t = if l1 > l0 { (lf - l0) / (l1 - l0) } else { 0.5 };
                return Ok((i, t));
            }
        }
        Err(n - 1)
    }

    /// Magnitude at an arbitrary frequency inside the grid, interpolated in
    /// (log f, dB) space using only the two bracketing points (no per-call
    /// allocation). An empty response reads as zero gain; outside the grid
    /// the nearest endpoint is returned.
    pub fn gain_at(&self, f: f64) -> f64 {
        let n = self.freqs.len().min(self.h.len());
        if n == 0 {
            return 0.0;
        }
        match self.bracket(n, f) {
            Err(j) => self.h[j].norm(),
            Ok((i, t)) => {
                let d0 = db20(self.h[i].norm());
                let d1 = db20(self.h[i + 1].norm());
                10f64.powf((d0 + t * (d1 - d0)) / 20.0)
            }
        }
    }

    /// Linear interpolation of a per-point quantity `y` at frequency `f`
    /// using log-frequency as the abscissa. Clamps outside the grid; a
    /// degenerate grid (empty or single-point) reads as the first sample
    /// or zero.
    fn interp_at(&self, y: &[f64], f: f64) -> f64 {
        let n = self.freqs.len().min(y.len());
        if n == 0 {
            return 0.0;
        }
        match self.bracket(n, f) {
            Err(j) => y[j],
            Ok((i, t)) => y[i] + t * (y[i + 1] - y[i]),
        }
    }

    /// First index `i` where `|h[i]| >= level > |h[i+1]|`, interpolated in
    /// (log f, dB) space; `None` if no downward crossing exists.
    fn crossing_down(&self, level: f64) -> Option<f64> {
        let mags = self.magnitudes();
        for i in 0..mags.len().saturating_sub(1) {
            if mags[i] >= level && mags[i + 1] < level {
                let d0 = db20(mags[i]);
                let d1 = db20(mags[i + 1]);
                let dl = db20(level);
                // A magnitude sample of exactly 0 pins db20 at its floor
                // (and a raw dB conversion would yield -inf, making
                // `t = inf/inf` NaN); such segments carry no log-domain
                // information, so interpolate them linearly in magnitude.
                let degenerate = !d0.is_finite()
                    || !d1.is_finite()
                    || !dl.is_finite()
                    || mags[i] <= 0.0
                    || mags[i + 1] <= 0.0
                    || level <= 0.0;
                let t = if degenerate {
                    let denom = mags[i + 1] - mags[i];
                    if denom.abs() < 1e-300 {
                        0.5
                    } else {
                        (level - mags[i]) / denom
                    }
                } else if (d1 - d0).abs() < 1e-18 {
                    0.5
                } else {
                    (dl - d0) / (d1 - d0)
                };
                let t = t.clamp(0.0, 1.0);
                let l0 = self.freqs[i].ln();
                let l1 = self.freqs[i + 1].ln();
                return Some((l0 + t * (l1 - l0)).exp());
            }
        }
        None
    }
}

/// Settling time of a step response: the time after which the waveform
/// stays within `tol_frac` of the total transition `|y_final - y_initial|`
/// around the final value.
///
/// # Errors
///
/// [`SimError::MeasureFailed`] if the waveform has not settled by the end
/// of the record or the record is degenerate (fewer than two points or no
/// transition).
///
/// # Examples
///
/// ```
/// use autockt_sim::measure::settling_time;
///
/// let t: Vec<f64> = (0..1000).map(|i| i as f64 * 1e-9).collect();
/// let y: Vec<f64> = t.iter().map(|&t| 1.0 - (-t / 50e-9_f64).exp()).collect();
/// let ts = settling_time(&t, &y, 0.02).unwrap();
/// // 2% settling of a single pole is ~3.9 tau.
/// assert!((ts - 3.9 * 50e-9).abs() < 15e-9);
/// ```
pub fn settling_time(t: &[f64], y: &[f64], tol_frac: f64) -> Result<f64, SimError> {
    if t.len() != y.len() || t.len() < 2 {
        return Err(SimError::MeasureFailed {
            what: "degenerate waveform",
        });
    }
    let y_final = y[y.len() - 1];
    let y_init = y[0];
    let swing = (y_final - y_init).abs();
    if swing < 1e-15 {
        return Err(SimError::MeasureFailed {
            what: "no transition to settle",
        });
    }
    let band = tol_frac * swing;
    // Last sample that lies outside the band determines settling.
    let mut last_out = None;
    for (i, yy) in y.iter().enumerate() {
        if (yy - y_final).abs() > band {
            last_out = Some(i);
        }
    }
    // Require at least one fully in-band sample after the settling point
    // besides the final sample itself (which is trivially in band), so an
    // oscillation that only touches the band at the very end is rejected.
    match last_out {
        None => Ok(t[0]),
        Some(i) if i + 2 < t.len() => Ok(t[i + 1]),
        Some(_) => Err(SimError::MeasureFailed {
            what: "waveform did not settle in record",
        }),
    }
}

/// Trapezoidal integral of samples `y` over abscissa `x`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn integrate_trapezoid(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let mut acc = 0.0;
    for i in 1..x.len() {
        acc += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    fn single_pole(a0: f64, fp: f64, freqs: &[f64]) -> AcResponse {
        let h = freqs
            .iter()
            .map(|&f| Complex::from_re(a0) / Complex::new(1.0, f / fp))
            .collect();
        AcResponse {
            freqs: freqs.to_vec(),
            h,
        }
    }

    #[test]
    fn single_pole_measurements() {
        let freqs = crate::ac::log_freqs(1e2, 1e10, 40);
        let r = single_pole(100.0, 1e5, &freqs);
        assert!((r.dc_gain() - 100.0).abs() < 1e-3);
        let f3 = r.f_3db().unwrap();
        assert!((f3 - 1e5).abs() / 1e5 < 0.02);
        // UGBW of a single pole = a0 * fp.
        let fu = r.ugbw().unwrap();
        assert!((fu - 1e7).abs() / 1e7 < 0.02);
        // Phase margin of a single-pole system ~ 90 degrees.
        let pm = r.phase_margin_deg().unwrap();
        assert!((pm - 90.0).abs() < 2.0, "pm = {pm}");
    }

    #[test]
    fn two_pole_phase_margin_drops() {
        let freqs = crate::ac::log_freqs(1e2, 1e10, 40);
        let h = freqs
            .iter()
            .map(|&f| {
                Complex::from_re(1000.0) / (Complex::new(1.0, f / 1e4) * Complex::new(1.0, f / 1e7))
            })
            .collect();
        let r = AcResponse {
            freqs: freqs.clone(),
            h,
        };
        let pm = r.phase_margin_deg().unwrap();
        // Crossover at ~1e7 where the second pole contributes ~45 degrees.
        assert!(pm > 30.0 && pm < 60.0, "pm = {pm}");
    }

    #[test]
    fn subunity_gain_has_no_ugbw() {
        let freqs = crate::ac::log_freqs(1e2, 1e8, 20);
        let r = single_pole(0.5, 1e5, &freqs);
        assert!(r.ugbw().is_err());
    }

    #[test]
    fn settling_time_monotone_in_tolerance() {
        let t: Vec<f64> = (0..2000).map(|i| i as f64 * 1e-9).collect();
        let y: Vec<f64> = t.iter().map(|&t| 1.0 - (-t / 100e-9_f64).exp()).collect();
        let t2 = settling_time(&t, &y, 0.02).unwrap();
        let t5 = settling_time(&t, &y, 0.05).unwrap();
        assert!(t5 < t2, "looser tolerance settles earlier");
    }

    #[test]
    fn settling_rejects_unsettled() {
        let t: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = t.iter().map(|&t| (t * 0.5).sin()).collect();
        assert!(settling_time(&t, &y, 0.01).is_err());
    }

    #[test]
    fn integrate_constant() {
        let x = [0.0, 1.0, 2.0, 4.0];
        let y = [3.0, 3.0, 3.0, 3.0];
        assert!((integrate_trapezoid(&x, &y) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_grid_reports_measure_failed_not_panic() {
        let r = AcResponse {
            freqs: vec![],
            h: vec![],
        };
        assert!(matches!(r.f_3db(), Err(SimError::MeasureFailed { .. })));
        assert!(matches!(r.ugbw(), Err(SimError::MeasureFailed { .. })));
        assert!(matches!(
            r.phase_margin_deg(),
            Err(SimError::MeasureFailed { .. })
        ));
        assert_eq!(r.gain_at(1e6), 0.0);
        assert_eq!(r.dc_gain(), 0.0);
    }

    #[test]
    fn single_point_grid_reports_measure_failed_not_panic() {
        let r = AcResponse {
            freqs: vec![1e3],
            h: vec![Complex::from_re(100.0)],
        };
        assert!(matches!(r.f_3db(), Err(SimError::MeasureFailed { .. })));
        assert!(matches!(r.ugbw(), Err(SimError::MeasureFailed { .. })));
        assert!(matches!(
            r.phase_margin_deg(),
            Err(SimError::MeasureFailed { .. })
        ));
        // Interpolation clamps to the single sample at any frequency.
        assert!((r.gain_at(1.0) - 100.0).abs() < 1e-12);
        assert!((r.gain_at(1e9) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn exact_zero_magnitude_sample_yields_finite_crossings() {
        // A response that plunges to exactly 0 mid-sweep: the crossing
        // interpolation must stay finite and inside the bracketing segment.
        let freqs = crate::ac::log_freqs(1e2, 1e8, 10);
        let mut h: Vec<Complex> = freqs
            .iter()
            .map(|&f| Complex::from_re(100.0) / Complex::new(1.0, f / 1e4))
            .collect();
        let cut = h.len() / 2;
        for c in h.iter_mut().skip(cut) {
            *c = Complex::ZERO;
        }
        let r = AcResponse {
            freqs: freqs.clone(),
            h,
        };
        let fu = r.ugbw().unwrap();
        assert!(fu.is_finite(), "ugbw = {fu}");
        assert!(fu >= freqs[0] && fu <= freqs[freqs.len() - 1]);
        let f3 = r.f_3db().unwrap();
        assert!(f3.is_finite(), "f_3db = {f3}");
        assert!(f3 >= freqs[0] && f3 <= freqs[freqs.len() - 1]);
    }

    #[test]
    fn all_zero_response_has_no_spurious_crossing() {
        let freqs = crate::ac::log_freqs(1e2, 1e6, 5);
        let h = vec![Complex::ZERO; freqs.len()];
        let r = AcResponse { freqs, h };
        // dc gain 0 => target level 0; nothing is ever strictly below it.
        assert!(r.f_3db().is_err());
        assert!(r.ugbw().is_err());
    }

    #[test]
    fn gain_at_matches_bracketing_interpolation() {
        let freqs = crate::ac::log_freqs(1e2, 1e10, 40);
        let r = single_pole(100.0, 1e5, &freqs);
        // On-grid query returns the sample magnitude exactly.
        let i = freqs.len() / 3;
        assert!((r.gain_at(freqs[i]) - r.h[i].norm()).abs() / r.h[i].norm() < 1e-9);
        // Off-grid query lies between the bracketing magnitudes.
        let f = (freqs[i] * freqs[i + 1]).sqrt();
        let g = r.gain_at(f);
        let (lo, hi) = (
            r.h[i + 1].norm().min(r.h[i].norm()),
            r.h[i + 1].norm().max(r.h[i].norm()),
        );
        assert!(g >= lo && g <= hi, "{g} outside [{lo}, {hi}]");
    }

    #[test]
    fn db20_of_unity_is_zero() {
        assert!((db20(1.0)).abs() < 1e-12);
        assert!((db20(10.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn inverting_amp_phase_margin_uses_relative_phase() {
        // Same single pole but with negative sign (inverting): PM must be
        // identical because it is measured relative to the DC phase.
        let freqs = crate::ac::log_freqs(1e2, 1e10, 40);
        let h = freqs
            .iter()
            .map(|&f| Complex::from_re(-100.0) / Complex::new(1.0, f / 1e5))
            .collect();
        let r = AcResponse {
            freqs: freqs.clone(),
            h,
        };
        let pm = r.phase_margin_deg().unwrap();
        assert!((pm - 90.0).abs() < 2.0, "pm = {pm}");
    }
}
