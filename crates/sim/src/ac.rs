//! Small-signal AC analysis.
//!
//! The circuit is linearized at a DC operating point ([`crate::dc`]); the
//! complex system `(G + j w C) x = b` is then factored and solved per
//! frequency point. The real `G` and `C` matrices are assembled once per
//! linearization and reused across the sweep, and the per-frequency LU
//! factorization is exposed so the noise analysis can reuse it for many
//! right-hand sides.

use crate::complex::Complex;
use crate::dc::OpPoint;
use crate::error::SimError;
use crate::linalg::correction::{
    corrected_entry, factor_correction, solve_correction_basis, CornerDiff,
};
use crate::linalg::sparse::{CscMatrix, SolverConfig, TripletList};
use crate::linalg::structure::SparseSolver;
use crate::linalg::{ComplexLuBatch, ComplexLuSoa, LinearSolver, LuFactors, Matrix};
use crate::netlist::{Circuit, Element, Node};
use crate::par::{run_chunks, would_parallelize, Parallelism, WorkspacePool};

/// The per-frequency complex factorization of an [`AcWorkspace`]: the
/// dense structure-of-arrays kernel below the sparse crossover, the CSC
/// sparse LU above it (or when forced by [`SolverConfig`]). Carrying the
/// backend inside the workspace keeps every downstream back-substitution
/// site — the sweep loops here and the per-source solves in
/// [`crate::noise`] — backend-agnostic: they just call
/// [`ComplexLu::solve_into`] against whatever [`AcSolver::factor_at_ws`]
/// produced.
// One long-lived instance per workspace, so the dense/sparse size skew
// is irrelevant — boxing would only add an indirection to the hot solve.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum ComplexLu {
    /// Dense split re/im kernel (bitwise-equal to `LuFactors<Complex>`).
    Dense(ComplexLuSoa),
    /// Sparse factorization (plain or BTF per the solver's
    /// [`SolverConfig`]) over the CSC image of the stamp pattern.
    Sparse(SparseSolver<Complex>),
}

impl Default for ComplexLu {
    fn default() -> Self {
        ComplexLu::Dense(ComplexLuSoa::empty())
    }
}

impl ComplexLu {
    /// Back-substitutes `b` through whichever backend holds the current
    /// factorization.
    pub(crate) fn solve_into(&self, b: &[Complex], x: &mut Vec<Complex>) {
        match self {
            ComplexLu::Dense(lu) => lu.solve_into(b, x),
            ComplexLu::Sparse(slu) => slu.solve_into(b, x),
        }
    }
}

/// Reusable buffers for repeated AC factor/solve calls: the complex system
/// matrix lives inside the LU factors and is stamped in place per
/// frequency from a sparse pattern collected once per linearization, so a
/// whole sweep (and consecutive sweeps of a warm evaluation session)
/// performs no per-point allocation.
///
/// The factorization buffer is the structure-of-arrays
/// [`ComplexLuSoa`] kernel — split re/im storage that the compiler
/// autovectorizes — producing results bitwise-equal to the generic
/// `LuFactors<Complex>` path of [`AcSolver::factor_at`].
#[derive(Debug, Clone, Default)]
pub struct AcWorkspace {
    pub(crate) lu: ComplexLu,
    pub(crate) pattern: Vec<(usize, usize, f64, f64)>,
    /// CSC image of the stamp pattern (sparse backend only): built once
    /// per linearization, revalued per frequency.
    pub(crate) csc: CscMatrix<Complex>,
    /// Unscaled per-entry stamps aligned with `csc`'s value order:
    /// `re` holds the conductance, `im` the (unscaled) capacitance, so
    /// each frequency point is a pure value rewrite `g + j*w*c`.
    pub(crate) gc: Vec<Complex>,
    pub(crate) trip: TripletList<Complex>,
    pub(crate) x: Vec<Complex>,
    pub(crate) rhs: Vec<Complex>,
    /// Whether this sweep's dense-by-fill decision has been taken (at the
    /// first successful factorization after
    /// [`AcSolver::prepare_workspace`]). Pinning the decision to one
    /// frequency point makes the sparse-vs-dense route a pure function of
    /// the sweep's inputs, which is what lets threaded lanes replicate it
    /// instead of each flipping at their own chunk-local point.
    pub(crate) fill_checked: bool,
}

impl AcWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        AcWorkspace::default()
    }
}

/// Reusable buffers for corner-batched AC sweeps ([`ac_sweep_batch`] and
/// [`ac_sweep_corners`]) and the corner-batched noise analyses
/// ([`crate::noise::noise_analysis_batch`] /
/// [`crate::noise::noise_analysis_corners`]): the lockstep complex batch
/// LU, one sparse stamp pattern per corner, batch-layout
/// right-hand-side/solution buffers, and the base-factor/correction
/// scratch of the corner-correction paths.
#[derive(Debug, Clone, Default)]
pub struct AcBatchWorkspace {
    pub(crate) lu: ComplexLuBatch,
    pub(crate) patterns: Vec<Vec<(usize, usize, f64, f64)>>,
    pub(crate) rhs_re: Vec<f64>,
    pub(crate) rhs_im: Vec<f64>,
    pub(crate) x_re: Vec<f64>,
    pub(crate) x_im: Vec<f64>,
    pub(crate) acc_re: Vec<f64>,
    pub(crate) acc_im: Vec<f64>,
    pub(crate) base: ComplexLuSoa,
    pub(crate) spare: ComplexLuSoa,
    pub(crate) small: LuFactors<Complex>,
    pub(crate) y0: Vec<Complex>,
    pub(crate) unit: Vec<Complex>,
    pub(crate) xcol: Vec<Complex>,
    pub(crate) wflat: Vec<Complex>,
    /// Flattened per-source base solutions (`ys[s*n..(s+1)*n]`) shared by
    /// every corner of a frequency point in the corrected noise analysis.
    pub(crate) ys: Vec<Complex>,
    /// Scalar-path workspace for the per-corner fallbacks of the noise
    /// analyses (mismatched structures, stock dims).
    pub(crate) scalar: AcWorkspace,
}

impl AcBatchWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        AcBatchWorkspace::default()
    }
}

/// A reusable small-signal solver bound to a circuit and operating point.
#[derive(Debug)]
pub struct AcSolver<'a> {
    ckt: &'a Circuit,
    g: Matrix<f64>,
    c: Matrix<f64>,
    rhs: Vec<Complex>,
    dim: usize,
    cfg: SolverConfig,
}

impl<'a> AcSolver<'a> {
    /// Builds the small-signal stamps for `ckt` linearized at `op`.
    pub fn new(ckt: &'a Circuit, op: &OpPoint) -> Self {
        let dim = ckt.mna_dim();
        let nnodes = ckt.num_nodes();
        let mut g = Matrix::zeros(dim, dim);
        let mut c = Matrix::zeros(dim, dim);
        let mut rhs = vec![Complex::ZERO; dim];
        let idx = |n: Node| ckt.mna_index(n);

        // Same gmin regularization as the DC solve keeps conditioning
        // consistent between analyses.
        for i in 0..(nnodes - 1) {
            g[(i, i)] += 1e-12;
        }

        let stamp_g = |m: &mut Matrix<f64>, p: Node, n: Node, val: f64| {
            if let Some(ip) = idx(p) {
                m[(ip, ip)] += val;
                if let Some(in_) = idx(n) {
                    m[(ip, in_)] -= val;
                }
            }
            if let Some(in_) = idx(n) {
                m[(in_, in_)] += val;
                if let Some(ip) = idx(p) {
                    m[(in_, ip)] -= val;
                }
            }
        };
        let stamp_vccs = |m: &mut Matrix<f64>, op_: Node, on: Node, cp: Node, cn: Node, gm: f64| {
            if let Some(io) = idx(op_) {
                if let Some(icp) = idx(cp) {
                    m[(io, icp)] += gm;
                }
                if let Some(icn) = idx(cn) {
                    m[(io, icn)] -= gm;
                }
            }
            if let Some(io) = idx(on) {
                if let Some(icp) = idx(cp) {
                    m[(io, icp)] -= gm;
                }
                if let Some(icn) = idx(cn) {
                    m[(io, icn)] += gm;
                }
            }
        };

        let mut vk = 0usize;
        let mut mos_iter = op.mosfets().iter();
        for e in ckt.elements() {
            match e {
                Element::Resistor { p, n, r, .. } => stamp_g(&mut g, *p, *n, 1.0 / r),
                Element::Capacitor { p, n, c: cap } => stamp_g(&mut c, *p, *n, *cap),
                Element::Vsource { p, n, ac, .. } => {
                    let row = nnodes - 1 + vk;
                    if let Some(ip) = idx(*p) {
                        g[(ip, row)] += 1.0;
                        g[(row, ip)] += 1.0;
                    }
                    if let Some(in_) = idx(*n) {
                        g[(in_, row)] -= 1.0;
                        g[(row, in_)] -= 1.0;
                    }
                    rhs[row] += Complex::from_re(*ac);
                    vk += 1;
                }
                Element::Isource { p, n, ac, .. } => {
                    if let Some(ip) = idx(*p) {
                        rhs[ip] -= Complex::from_re(*ac);
                    }
                    if let Some(in_) = idx(*n) {
                        rhs[in_] += Complex::from_re(*ac);
                    }
                }
                Element::Vccs {
                    op: o,
                    on,
                    cp,
                    cn,
                    gm,
                } => {
                    stamp_vccs(&mut g, *o, *on, *cp, *cn, *gm);
                }
                Element::Mos(m) => {
                    // lint:allow(panic) — `op` carries one MosOp per MOS
                    // element of the circuit it was solved on; a foreign
                    // operating point is a caller bug, and this constructor
                    // has no error channel to report it.
                    let mi = mos_iter.next().expect("op and circuit out of sync");
                    stamp_g(&mut g, mi.a_d, mi.a_s, mi.gds);
                    stamp_vccs(&mut g, mi.a_d, mi.a_s, mi.g, mi.a_s, mi.gm);
                    stamp_g(&mut c, m.g, mi.a_s, mi.cgs);
                    stamp_g(&mut c, m.g, mi.a_d, mi.cgd);
                    stamp_g(&mut c, mi.a_d, crate::netlist::GND, mi.cdb);
                    stamp_g(&mut c, mi.a_s, crate::netlist::GND, mi.csb);
                }
            }
        }
        AcSolver {
            ckt,
            g,
            c,
            rhs,
            dim,
            cfg: SolverConfig::default(),
        }
    }

    /// Overrides the linear-solver backend selection for every
    /// workspace-based factorization this solver performs (the allocating
    /// reference paths [`AcSolver::factor_at`] / [`AcSolver::solve_sources`]
    /// stay on the dense generic kernel — they are the equivalence
    /// baseline the other paths are tested against).
    pub fn with_config(mut self, cfg: SolverConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The backend selection policy this solver factors under.
    pub fn config(&self) -> SolverConfig {
        self.cfg
    }

    /// Dimension of the MNA system.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The circuit this solver was linearized from — the noise analyses
    /// need it again for noise-source enumeration and node indexing.
    pub fn circuit(&self) -> &'a Circuit {
        self.ckt
    }

    /// Assembles the dense complex system matrix `G + j*2*pi*f*C` at
    /// frequency `f` (Hz) — what [`AcSolver::factor_at`] eliminates.
    /// Exposed so kernel benchmarks and tests can drive both LU layouts
    /// over the identical system.
    pub fn system_matrix(&self, f: f64) -> Matrix<Complex> {
        let w = 2.0 * std::f64::consts::PI * f;
        let mut y = Matrix::<Complex>::zeros(self.dim, self.dim);
        for r in 0..self.dim {
            for cidx in 0..self.dim {
                let gg = self.g[(r, cidx)];
                let cc = self.c[(r, cidx)];
                // lint:allow(float-eq) — exact-zero sparsity guard: only
                // bitwise-zero stamps are skipped; rounded values stay.
                if gg != 0.0 || cc != 0.0 {
                    y[(r, cidx)] = Complex::new(gg, w * cc);
                }
            }
        }
        y
    }

    /// Factors the complex system `G + j*2*pi*f*C` at frequency `f` (Hz).
    ///
    /// # Errors
    ///
    /// [`SimError::SingularMatrix`] for a singular small-signal system.
    pub fn factor_at(&self, f: f64) -> Result<LuFactors<Complex>, SimError> {
        LuFactors::factor(self.system_matrix(f), 1e-300)
    }

    /// Right-hand side driven by the netlist's AC source magnitudes.
    pub fn source_rhs(&self) -> &[Complex] {
        &self.rhs
    }

    /// Solves for node voltages at frequency `f` with the netlist's own AC
    /// sources driving. Returns the full MNA solution vector.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix failures from the factorization.
    pub fn solve_sources(&self, f: f64) -> Result<Vec<Complex>, SimError> {
        Ok(self.factor_at(f)?.solve(&self.rhs))
    }

    /// Collects this linearization's sparse `(row, col, g, c)` stamp
    /// pattern into `ws`; call once before any `_ws` solve. When the
    /// solver's [`SolverConfig`] routes this dimension to the sparse
    /// backend, the pattern is additionally compressed into a CSC matrix
    /// whose values are rewritten (not rebuilt) per frequency point.
    pub fn prepare_workspace(&self, ws: &mut AcWorkspace) {
        self.collect_pattern(&mut ws.pattern);
        ws.fill_checked = false;
        if self.cfg.use_sparse(self.dim) {
            ws.trip.clear(self.dim);
            for &(r, c, gg, cc) in &ws.pattern {
                // Encode (g, c) as one complex entry; the per-frequency
                // rewrite scales the imaginary part by w.
                ws.trip.push(r, c, Complex::new(gg, cc));
            }
            ws.trip.compress_into(&mut ws.csc);
            ws.gc.clear();
            ws.gc.extend_from_slice(ws.csc.values());
            match &mut ws.lu {
                ComplexLu::Sparse(slu) => slu.ensure_mode(self.cfg.btf),
                lu => *lu = ComplexLu::Sparse(SparseSolver::empty(self.cfg.btf)),
            }
            if let ComplexLu::Sparse(slu) = &mut ws.lu {
                slu.set_parallelism(self.cfg.par);
            }
        } else if !matches!(ws.lu, ComplexLu::Dense(_)) {
            ws.lu = ComplexLu::Dense(ComplexLuSoa::empty());
        }
    }

    /// Collects the sparse `(row, col, g, c)` stamp pattern into a
    /// caller-provided buffer (cleared first) — the per-corner analogue
    /// of [`AcSolver::prepare_workspace`] used by [`ac_sweep_batch`].
    pub fn collect_pattern(&self, pattern: &mut Vec<(usize, usize, f64, f64)>) {
        pattern.clear();
        for r in 0..self.dim {
            for c in 0..self.dim {
                let gg = self.g[(r, c)];
                let cc = self.c[(r, c)];
                // lint:allow(float-eq) — exact-zero sparsity guard: the
                // CSC pattern must keep every bitwise-nonzero stamp.
                if gg != 0.0 || cc != 0.0 {
                    pattern.push((r, c, gg, cc));
                }
            }
        }
    }

    /// Factors `G + j*2*pi*f*C` into the workspace buffers with zero
    /// per-point allocation. On the dense backend (the default below the
    /// sparse crossover) the result is identical (bitwise) to
    /// [`AcSolver::factor_at`], through the vectorized split re/im
    /// kernel; on the sparse backend the CSC values are rewritten in
    /// place and refactored reusing the symbolic analysis (the pattern
    /// never changes across a sweep). [`AcSolver::prepare_workspace`]
    /// must have been called for this solver first.
    ///
    /// # Errors
    ///
    /// [`SimError::SingularMatrix`] for a singular small-signal system on
    /// the dense backend, [`SimError::SingularSparse`] on the sparse one.
    pub fn factor_at_ws(&self, f: f64, ws: &mut AcWorkspace) -> Result<(), SimError> {
        let w = 2.0 * std::f64::consts::PI * f;
        let n = self.dim;
        let AcWorkspace {
            lu,
            pattern,
            csc,
            gc,
            fill_checked,
            ..
        } = ws;
        match lu {
            ComplexLu::Dense(lu) => lu.refactor_with(n, 1e-300, |re, im| {
                for &(r, c, gg, cc) in pattern.iter() {
                    re[r * n + c] = gg;
                    im[r * n + c] = w * cc;
                }
            }),
            ComplexLu::Sparse(slu) => {
                for (v, base) in csc.values_mut().iter_mut().zip(gc.iter()) {
                    *v = Complex::new(base.re, w * base.im);
                }
                slu.refactor(csc, 1e-300)?;
                if !*fill_checked {
                    *fill_checked = true;
                    if self.cfg.dense_by_fill(n, slu.factor_nnz()) {
                        // The measured factor fill crossed the config's
                        // limit: this pattern is too dense for the sparse
                        // traversal to pay, so flip the workspace to the
                        // dense kernel and refactor this same point there —
                        // every later point of the sweep (and of reuses of
                        // this workspace until the next
                        // [`AcSolver::prepare_workspace`]) then takes the
                        // dense branch directly. Costs one throwaway sparse
                        // factorization per sweep. The check runs only at
                        // the sweep's first successful factorization, so
                        // the route is a deterministic function of the
                        // sweep inputs — threaded lanes replicate it by
                        // probing the sweep's first frequency.
                        let mut dense = ComplexLuSoa::empty();
                        dense.refactor_with(n, 1e-300, |re, im| {
                            for &(r, c, gg, cc) in pattern.iter() {
                                re[r * n + c] = gg;
                                im[r * n + c] = w * cc;
                            }
                        })?;
                        *lu = ComplexLu::Dense(dense);
                    }
                }
                Ok(())
            }
        }
    }

    /// Like [`AcSolver::solve_sources`], reusing workspace buffers; the
    /// solution lives in the workspace and is returned as a slice.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix failures from the factorization.
    pub fn solve_sources_ws<'w>(
        &self,
        f: f64,
        ws: &'w mut AcWorkspace,
    ) -> Result<&'w [Complex], SimError> {
        self.factor_at_ws(f, ws)?;
        let AcWorkspace { lu, x, .. } = ws;
        lu.solve_into(&self.rhs, x);
        Ok(x)
    }

    /// Batched multi-frequency solve: refactors and solves the
    /// source-driven system at *every* frequency in `freqs` through the
    /// SoA kernel in one pass, recording the transfer to `out`. The sparse
    /// pattern is prepared once and the factor/solution buffers are reused
    /// across all points, so the whole batch allocates only the output
    /// vector. Point-for-point results equal [`AcSolver::solve_sources`].
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix failures at any frequency point.
    pub fn solve_sources_batch_ws(
        &self,
        freqs: &[f64],
        out: Node,
        ws: &mut AcWorkspace,
    ) -> Result<Vec<Complex>, SimError> {
        let par = self.sweep_parallelism();
        if would_parallelize(par, freqs.len()) {
            return self.solve_sources_batch_par(par, freqs, out);
        }
        self.prepare_workspace(ws);
        let mut h = Vec::with_capacity(freqs.len());
        for &f in freqs {
            self.factor_at_ws(f, ws)?;
            let AcWorkspace { lu, x, .. } = &mut *ws;
            lu.solve_into(&self.rhs, x);
            h.push(self.voltage(x, out));
        }
        Ok(h)
    }

    /// One sweep point through a prepared workspace: factor, solve the
    /// source vector, read the output voltage — the tile body of the
    /// threaded sweep, arithmetically identical to one iteration of the
    /// serial loop in [`AcSolver::solve_sources_batch_ws`].
    fn point_ws(&self, f: f64, out: Node, ws: &mut AcWorkspace) -> Result<Complex, SimError> {
        self.factor_at_ws(f, ws)?;
        let AcWorkspace { lu, x, .. } = ws;
        lu.solve_into(&self.rhs, x);
        Ok(self.voltage(x, out))
    }

    /// Per-lane prologue of every threaded sweep: prepare a pooled
    /// workspace for this solver, keep block-level parallelism out of the
    /// lane (the sweep already owns the lanes), and replicate the sweep's
    /// dense-by-fill route decision by probing the first frequency — so a
    /// lane whose chunk starts mid-sweep factors through the same kernel
    /// the serial walk would use there. A singular probe is ignored: the
    /// lane owning that tile reports it in order.
    pub(crate) fn prepare_lane(&self, first_freq: f64, ws: &mut AcWorkspace) {
        self.prepare_workspace(ws);
        if let ComplexLu::Sparse(slu) = &mut ws.lu {
            slu.set_parallelism(Parallelism::Off);
        }
        let _ = self.factor_at_ws(first_freq, ws);
    }

    /// The frequency-tile policy of this solver's sweeps: at stock
    /// extraction dims a factorization is far cheaper than a lane spawn,
    /// so [`Parallelism::Auto`] resolves to serial there; forced modes
    /// pass through.
    pub(crate) fn sweep_parallelism(&self) -> Parallelism {
        match self.cfg.par {
            Parallelism::Auto if self.dim <= STOCK_DIM_MAX => Parallelism::Off,
            p => p,
        }
    }

    /// Threaded frequency sweep: every frequency point factors and solves
    /// into its own result slot through a per-lane pooled workspace.
    /// Bitwise-equal to the serial loop (history-free factorizations; the
    /// route decision is replicated per lane), with the serial error
    /// contract recovered by the in-order scan: the sweep's first failing
    /// frequency is always computed by the lane that owns it.
    fn solve_sources_batch_par(
        &self,
        par: Parallelism,
        freqs: &[f64],
        out: Node,
    ) -> Result<Vec<Complex>, SimError> {
        let mut slots: Vec<Result<Complex, SimError>> =
            freqs.iter().map(|_| Ok(Complex::ZERO)).collect();
        run_chunks(
            par,
            &mut slots,
            ac_ws_pool(),
            AcWorkspace::new,
            |off, chunk, ws| {
                self.prepare_lane(freqs[0], ws);
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = self.point_ws(freqs[off + k], out, ws);
                    if slot.is_err() {
                        // The serial sweep aborts here; every later value is
                        // discarded by the in-order scan below.
                        break;
                    }
                }
            },
        );
        slots.into_iter().collect()
    }

    /// Extracts the voltage of `node` from an MNA solution vector.
    pub fn voltage(&self, x: &[Complex], node: Node) -> Complex {
        match self.ckt.mna_index(node) {
            None => Complex::ZERO,
            Some(i) => x[i],
        }
    }

    /// MNA index of `node` in this solver's system (`None` for ground).
    pub fn mna_index(&self, node: Node) -> Option<usize> {
        self.ckt.mna_index(node)
    }

    /// The `(G, C)` small-signal stamp matrices of this linearization —
    /// the corner-batched settling integration in [`crate::tran`]
    /// assembles per-corner trapezoidal companions straight from them.
    pub(crate) fn stamps(&self) -> (&Matrix<f64>, &Matrix<f64>) {
        (&self.g, &self.c)
    }

    /// Small-signal step response at `out`: integrates
    /// `C x' + G x = b u(t)` (with `b` the AC-source right-hand side and
    /// zero initial state) by the trapezoidal rule. The companion matrix
    /// `A = G + 2C/h` is constant over the record, so it is factored
    /// **once** — on whichever backend the solver's [`SolverConfig`]
    /// selects for this dimension — and every step costs one sparse
    /// companion product plus one back-substitution. The companion
    /// right-hand-side stamps `2C/h - G` are likewise collected once as a
    /// nonzero list: on an extracted mesh the MNA matrices are mostly
    /// zeros, so the old dense `O(n^2)`-per-step accumulation was the
    /// settling path's real bound, not the factorization.
    ///
    /// Returns `(t, y)` with `y` the small-signal deviation of `out`.
    ///
    /// # Errors
    ///
    /// [`SimError::SingularMatrix`] (dense backend) or
    /// [`SimError::SingularSparse`] (sparse backend) if `2C/h + G` is
    /// singular.
    pub fn step_response(
        &self,
        out: Node,
        t_stop: f64,
        steps: usize,
    ) -> Result<(Vec<f64>, Vec<f64>), SimError> {
        self.step_response_via(out, t_stop, steps, &mut SparseSolver::empty(self.cfg.btf))
    }

    /// [`AcSolver::step_response`] against a caller-held sparse solver:
    /// the corner-batched settling path passes one solver across a whole
    /// corner set, so the symbolic analysis + AMD ordering are computed
    /// once (corners share their stamp pattern) and every sibling runs a
    /// values-only refactor. Same-pattern refactors are bitwise-equal to
    /// fresh factorizations (property-tested), and the scalar
    /// [`AcSolver::step_response`] is literally this function with a
    /// fresh solver — so sharing cannot perturb results.
    pub(crate) fn step_response_via(
        &self,
        out: Node,
        t_stop: f64,
        steps: usize,
        shared: &mut SparseSolver<f64>,
    ) -> Result<(Vec<f64>, Vec<f64>), SimError> {
        let h = t_stop / steps as f64;
        let n = self.dim;
        // A = G + 2C/h (factored once); per step:
        // A x1 = 2 b + (2C/h - G) x0  =>  rhs = 2 b + (2C/h) x0 - G x0.
        // The companion stamps (r, c, 2C/h - G) are collected row-major so
        // the per-step accumulation visits each row's nonzeros in the same
        // order the dense loop did.
        let mut comp: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..n {
            for c in 0..n {
                let v = 2.0 * self.c[(r, c)] / h - self.g[(r, c)];
                // lint:allow(float-eq) — exact-zero sparsity guard.
                if v != 0.0 {
                    comp.push((r, c, v));
                }
            }
        }
        // Sparse-route the companion when configured, but drop back to
        // the dense kernel if the measured factor fill crosses the
        // config's limit — the 2048 back-substitutions are cheaper dense
        // then, at the cost of one throwaway sparse factorization.
        let mut use_sparse = false;
        if self.cfg.use_sparse(n) {
            let mut trip = TripletList::new(n);
            for r in 0..n {
                for c in 0..n {
                    let v = self.g[(r, c)] + 2.0 * self.c[(r, c)] / h;
                    // lint:allow(float-eq) — exact-zero sparsity guard.
                    if v != 0.0 {
                        trip.push(r, c, v);
                    }
                }
            }
            let mut csc = CscMatrix::empty();
            trip.compress_into(&mut csc);
            shared.ensure_mode(self.cfg.btf);
            shared.set_parallelism(self.cfg.par);
            shared.refactor(&csc, 1e-300)?;
            use_sparse = !self.cfg.dense_by_fill(n, shared.factor_nnz());
        }
        let dense_lu;
        let lu: &dyn LinearSolver<f64> = if use_sparse {
            &*shared
        } else {
            let mut a = Matrix::<f64>::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    a[(r, c)] = self.g[(r, c)] + 2.0 * self.c[(r, c)] / h;
                }
            }
            dense_lu = crate::linalg::LuFactors::factor(a, 1e-300)?;
            &dense_lu
        };
        let b: Vec<f64> = self.rhs.iter().map(|c| c.re).collect();
        let mut x = vec![0.0; n];
        let oi = self.ckt.mna_index(out);
        let mut t_out = Vec::with_capacity(steps + 1);
        let mut y_out = Vec::with_capacity(steps + 1);
        t_out.push(0.0);
        y_out.push(0.0);
        let mut rhs = vec![0.0; n];
        for s in 1..=steps {
            // rhs = 2 b + (2C/h) x - G x, touching only the stored
            // companion nonzeros.
            for (r, rv) in rhs.iter_mut().enumerate() {
                *rv = 2.0 * b[r];
            }
            for &(r, c, v) in &comp {
                rhs[r] += v * x[c];
            }
            // `rhs` is fully formed, so `x` can be overwritten in place —
            // one allocation for the whole record instead of one per step.
            lu.solve_into(&rhs, &mut x);
            t_out.push(s as f64 * h);
            y_out.push(oi.map_or(0.0, |i| x[i]));
        }
        Ok((t_out, y_out))
    }
}

/// A frequency response: paired frequency grid and complex values.
#[derive(Debug, Clone, PartialEq)]
pub struct AcResponse {
    /// Frequency grid (Hz), strictly increasing.
    pub freqs: Vec<f64>,
    /// Complex response at each grid point.
    pub h: Vec<Complex>,
}

/// Runs an AC sweep and records the transfer to `out` (driven by the
/// netlist's AC sources).
///
/// # Errors
///
/// Propagates solver failures at any frequency point.
///
/// # Examples
///
/// An RC low-pass has its -3 dB point at `1/(2 pi R C)`:
///
/// ```
/// use autockt_sim::netlist::{Circuit, GND};
/// use autockt_sim::dc::{dc_operating_point, DcOptions};
/// use autockt_sim::ac::{ac_sweep, log_freqs};
///
/// # fn main() -> Result<(), autockt_sim::SimError> {
/// let mut ckt = Circuit::new();
/// let i = ckt.node("in");
/// let o = ckt.node("out");
/// ckt.vsource(i, GND, 0.0, 1.0);
/// ckt.resistor(i, o, 1.0e3);
/// ckt.capacitor(o, GND, 1e-9);
/// let op = dc_operating_point(&ckt, &DcOptions::default())?;
/// let resp = ac_sweep(&ckt, &op, &log_freqs(1e3, 1e8, 20), o)?;
/// let f3db = resp.f_3db()?;
/// let expect = 1.0 / (2.0 * std::f64::consts::PI * 1.0e3 * 1e-9);
/// assert!((f3db - expect).abs() / expect < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn ac_sweep(
    ckt: &Circuit,
    op: &OpPoint,
    freqs: &[f64],
    out: Node,
) -> Result<AcResponse, SimError> {
    let solver = AcSolver::new(ckt, op);
    let mut h = Vec::with_capacity(freqs.len());
    for &f in freqs {
        let x = solver.solve_sources(f)?;
        h.push(solver.voltage(&x, out));
    }
    Ok(AcResponse {
        freqs: freqs.to_vec(),
        h,
    })
}

/// [`ac_sweep`] with reusable workspace buffers: the whole sweep is one
/// batched pass through the vectorized SoA kernel — the complex system is
/// stamped and factored in place per point, so the sweep allocates nothing
/// per frequency. Produces results identical to [`ac_sweep`] (same
/// assembly, same elimination order); the warm evaluation sessions route
/// their sweeps through this entry point.
///
/// # Errors
///
/// Propagates solver failures at any frequency point.
pub fn ac_sweep_ws(
    ckt: &Circuit,
    op: &OpPoint,
    freqs: &[f64],
    out: Node,
    ws: &mut AcWorkspace,
) -> Result<AcResponse, SimError> {
    ac_sweep_cfg(ckt, op, freqs, out, SolverConfig::default(), ws)
}

/// [`ac_sweep_ws`] with an explicit linear-solver backend policy: the
/// per-point factorization runs dense or sparse per `cfg` (identical
/// results within solver tolerance; the dense route is bitwise-equal to
/// [`ac_sweep`]). This is how the sizing topologies thread their
/// [`SolverConfig`] into the serial evaluation path.
///
/// # Errors
///
/// Propagates solver failures at any frequency point.
pub fn ac_sweep_cfg(
    ckt: &Circuit,
    op: &OpPoint,
    freqs: &[f64],
    out: Node,
    cfg: SolverConfig,
    ws: &mut AcWorkspace,
) -> Result<AcResponse, SimError> {
    let solver = AcSolver::new(ckt, op).with_config(cfg);
    let h = solver.solve_sources_batch_ws(freqs, out, ws)?;
    Ok(AcResponse {
        freqs: freqs.to_vec(),
        h,
    })
}

/// Corner-batched AC sweep: runs [`ac_sweep`] over a batch of
/// *same-structure* circuits (the PVT corner set of a worst-case
/// evaluation, each linearized at its own operating point) in lockstep.
/// At every frequency the B complex systems `G_b + j w C_b` are stamped
/// into one [`ComplexLuBatch`] and eliminated together — SIMD over the
/// corner axis — then back-substituted against each corner's own source
/// vector.
///
/// Per corner the result is bitwise-equal to
/// [`ac_sweep`]`(ckts[b], ops[b], ..)` (and therefore to
/// [`ac_sweep_ws`]). Failures are per corner: a corner whose system goes
/// singular reports the error of its *first* failing frequency, exactly
/// like the scalar sweep, and is masked off without disturbing its
/// siblings. Mismatched dimensions and single-corner batches run the
/// scalar path.
pub fn ac_sweep_batch(
    ckts: &[&Circuit],
    ops: &[&OpPoint],
    freqs: &[f64],
    out: Node,
    ws: &mut AcBatchWorkspace,
) -> Vec<Result<AcResponse, SimError>> {
    assert_eq!(ckts.len(), ops.len(), "one operating point per circuit");
    let solvers: Vec<AcSolver<'_>> = ckts
        .iter()
        .zip(ops)
        .map(|(c, op)| AcSolver::new(c, op))
        .collect();
    let outs = vec![out; ckts.len()];
    ac_sweep_batch_solvers(&solvers, freqs, &outs, ws)
}

/// [`ac_sweep_batch`] over caller-built solvers with a per-corner output
/// node — the entry point of the corner evaluation engine, which needs
/// the linearizations again for the per-corner measurements (settling,
/// noise) and so builds them once.
pub fn ac_sweep_batch_solvers(
    solvers: &[AcSolver<'_>],
    freqs: &[f64],
    outs: &[Node],
    ws: &mut AcBatchWorkspace,
) -> Vec<Result<AcResponse, SimError>> {
    assert_eq!(solvers.len(), outs.len(), "one output node per corner");
    let bt = solvers.len();
    if bt == 0 {
        return Vec::new();
    }
    let par = grid_parallelism(solvers);
    if would_parallelize(par, bt * freqs.len()) {
        return threaded_grid_sweeps(solvers, freqs, outs, par);
    }
    let dim = solvers[0].dim();
    if solvers.iter().any(|s| s.config().use_sparse(s.dim())) {
        // Sparse-routed dims: the lockstep batch kernel is dense-only, so
        // each corner sweeps through its own sparse factor/solve path —
        // which preserves the per-corner equivalence contract trivially
        // (every corner runs exactly the scalar arithmetic).
        return sparse_scalar_sweeps(solvers, freqs, outs, ws);
    }
    if bt == 1 || solvers.iter().any(|s| s.dim() != dim) {
        return scalar_sweeps(solvers, freqs, outs);
    }
    ws.patterns.resize(bt, Vec::new());
    for (pat, s) in ws.patterns.iter_mut().zip(solvers) {
        s.collect_pattern(pat);
    }
    ws.rhs_re.clear();
    ws.rhs_re.resize(dim * bt, 0.0);
    ws.rhs_im.clear();
    ws.rhs_im.resize(dim * bt, 0.0);
    for (b, s) in solvers.iter().enumerate() {
        for (i, v) in s.source_rhs().iter().enumerate() {
            ws.rhs_re[i * bt + b] = v.re;
            ws.rhs_im[i * bt + b] = v.im;
        }
    }
    let oi: Vec<Option<usize>> = solvers
        .iter()
        .zip(outs)
        .map(|(s, &o)| s.mna_index(o))
        .collect();
    let mut h: Vec<Vec<Complex>> = vec![Vec::with_capacity(freqs.len()); bt];
    let mut errs: Vec<Option<SimError>> = vec![None; bt];
    for &fq in freqs {
        let w = 2.0 * std::f64::consts::PI * fq;
        let AcBatchWorkspace {
            lu,
            patterns,
            rhs_re,
            rhs_im,
            x_re,
            x_im,
            acc_re,
            acc_im,
            ..
        } = ws;
        lu.refactor_with(dim, bt, 1e-300, |re, im| {
            for (b, pat) in patterns.iter().enumerate() {
                if errs[b].is_some() {
                    // Dead corner: identity keeps the lockstep
                    // elimination trivially nonsingular.
                    for i in 0..dim {
                        re[(i * dim + i) * bt + b] = 1.0;
                    }
                    continue;
                }
                for &(r, c, gg, cc) in pat {
                    re[(r * dim + c) * bt + b] = gg;
                    im[(r * dim + c) * bt + b] = w * cc;
                }
            }
        });
        for (b, e) in errs.iter_mut().enumerate() {
            if e.is_none() {
                if let Some(column) = lu.singular(b) {
                    *e = Some(SimError::SingularMatrix { column });
                }
            }
        }
        lu.solve_batch_into(rhs_re, rhs_im, x_re, x_im, acc_re, acc_im);
        for (b, hb) in h.iter_mut().enumerate() {
            if errs[b].is_none() {
                hb.push(match oi[b] {
                    None => Complex::ZERO,
                    Some(i) => Complex::new(ws.x_re[i * bt + b], ws.x_im[i * bt + b]),
                });
            }
        }
    }
    errs.iter_mut()
        .zip(h)
        .map(|(e, hb)| match e.take() {
            Some(e) => Err(e),
            None => Ok(AcResponse {
                freqs: freqs.to_vec(),
                h: hb,
            }),
        })
        .collect()
}

/// Process-wide pool of per-lane sweep workspaces: threaded sweeps check
/// lanes' workspaces out of one shared pool, so repeated sweeps reuse the
/// same factorization buffers across calls — the threaded analogue of the
/// serial paths' caller-held workspace.
pub(crate) fn ac_ws_pool() -> &'static WorkspacePool<AcWorkspace> {
    static POOL: WorkspacePool<AcWorkspace> = WorkspacePool::new();
    &POOL
}

/// Process-wide pool of per-lane corner-sweep workspaces (the threaded
/// warm corner paths need the full batch scratch per lane).
pub(crate) fn ac_batch_ws_pool() -> &'static WorkspacePool<AcBatchWorkspace> {
    static POOL: WorkspacePool<AcBatchWorkspace> = WorkspacePool::new();
    &POOL
}

/// The (corner × frequency)-grid policy of the cold batch sweep: same
/// dim gate as [`AcSolver::sweep_parallelism`], applied across the corner
/// set (corner sets share one topology-chosen config, so corner 0's knob
/// speaks for all).
pub(crate) fn grid_parallelism(solvers: &[AcSolver<'_>]) -> Parallelism {
    match solvers[0].config().par {
        Parallelism::Auto if solvers.iter().all(|s| s.dim() <= STOCK_DIM_MAX) => Parallelism::Off,
        p => p,
    }
}

/// Threaded cold corner sweep: the (corner × frequency) grid is
/// flattened into tiles (`tile = corner * nf + freq`), each factoring and
/// solving into its own slot through a per-lane pooled workspace; a lane
/// crossing a corner boundary re-prepares its workspace for the new
/// corner. Per corner the arithmetic is exactly the scalar per-point
/// path, which the lockstep batch kernel is bitwise-equal to (tested), so
/// this dispatch preserves [`ac_sweep_batch_solvers`]'s cold bitwise
/// contract. Per-corner first-failing-frequency errors are recovered by
/// the in-order assembly scan.
fn threaded_grid_sweeps(
    solvers: &[AcSolver<'_>],
    freqs: &[f64],
    outs: &[Node],
    par: Parallelism,
) -> Vec<Result<AcResponse, SimError>> {
    let bt = solvers.len();
    let nf = freqs.len();
    let mut slots: Vec<Result<Complex, SimError>> =
        (0..bt * nf).map(|_| Ok(Complex::ZERO)).collect();
    run_chunks(
        par,
        &mut slots,
        ac_ws_pool(),
        AcWorkspace::new,
        |off, chunk, ws| {
            let mut cur = usize::MAX;
            for (k, slot) in chunk.iter_mut().enumerate() {
                let t = off + k;
                let (b, i) = (t / nf, t % nf);
                if b != cur {
                    solvers[b].prepare_lane(freqs[0], ws);
                    cur = b;
                }
                *slot = solvers[b].point_ws(freqs[i], outs[b], ws);
            }
        },
    );
    (0..bt)
        .map(|b| {
            let mut h = Vec::with_capacity(nf);
            for slot in &slots[b * nf..(b + 1) * nf] {
                match slot {
                    Ok(v) => h.push(*v),
                    // The corner's first failing frequency, like the
                    // serial per-corner abort; later values discarded.
                    Err(e) => return Err(e.clone()),
                }
            }
            Ok(AcResponse {
                freqs: freqs.to_vec(),
                h,
            })
        })
        .collect()
}

/// Scalar reference sweep per corner (mismatched structures and
/// single-corner batches): same per-point factor/solve as [`ac_sweep`],
/// reusing the caller's solvers.
fn scalar_sweeps(
    solvers: &[AcSolver<'_>],
    freqs: &[f64],
    outs: &[Node],
) -> Vec<Result<AcResponse, SimError>> {
    solvers
        .iter()
        .zip(outs)
        .map(|(s, &o)| {
            let mut h = Vec::with_capacity(freqs.len());
            for &f in freqs {
                let x = s.solve_sources(f)?;
                h.push(s.voltage(&x, o));
            }
            Ok(AcResponse {
                freqs: freqs.to_vec(),
                h,
            })
        })
        .collect()
}

/// Per-corner sweep through the batch workspace's scalar buffers with
/// each solver's own backend dispatch — the corner-path route for
/// sparse-routed dimensions, where neither the lockstep batch kernel nor
/// the dense Woodbury correction applies. Identical per corner to
/// [`AcSolver::solve_sources_batch_ws`] on a fresh workspace.
fn sparse_scalar_sweeps(
    solvers: &[AcSolver<'_>],
    freqs: &[f64],
    outs: &[Node],
    ws: &mut AcBatchWorkspace,
) -> Vec<Result<AcResponse, SimError>> {
    // Corner sets share their stamp *pattern* (same netlist structure),
    // and every corner here sweeps through the one `ws.scalar` sparse
    // solver — so `SparseSolver::refactor`'s same-pattern check reuses the
    // symbolic analysis + AMD ordering across the whole corner set, and
    // only corner 0 pays the full analysis. Same-pattern refactors are
    // bitwise-equal to fresh factorizations (property-tested), which is
    // what keeps this path on the cold bitwise contract.
    solvers
        .iter()
        .zip(outs)
        .map(|(s, &o)| {
            let h = s.solve_sources_batch_ws(freqs, o, &mut ws.scalar)?;
            Ok(AcResponse {
                freqs: freqs.to_vec(),
                h,
            })
        })
        .collect()
}

/// Corner-correction AC sweep for sparse-routed dimensions — the warm
/// batched corner engine's fast path above the crossover. The base
/// corner's system is factored **sparsely** once per frequency (symbolic
/// analysis + AMD ordering shared across the sweep via the workspace's
/// refactor fast path) and every sibling is recovered through the same
/// Woodbury correction as the dense [`ac_sweep_corners`] — the
/// correction basis and small systems are dense but only `|R| x n`, so
/// the sparse factor's fill advantage is kept where it matters. Falls
/// back to [`sparse_scalar_sweeps`] on structural mismatch, unprofitable
/// support, or mismatched sources, and to a direct per-corner sparse
/// solve at any frequency where the base factor or a correction system
/// is singular.
fn sparse_corner_sweeps(
    solvers: &[AcSolver<'_>],
    freqs: &[f64],
    outs: &[Node],
    ws: &mut AcBatchWorkspace,
) -> Vec<Result<AcResponse, SimError>> {
    let bt = solvers.len();
    let n = solvers[0].dim();
    if bt == 1 || solvers.iter().any(|s| s.dim() != n) {
        return sparse_scalar_sweeps(solvers, freqs, outs, ws);
    }
    let rhs0 = solvers[0].source_rhs();
    if solvers.iter().any(|s| s.source_rhs() != rhs0) {
        return sparse_scalar_sweeps(solvers, freqs, outs, ws);
    }
    ws.patterns.resize(bt, Vec::new());
    for (pat, s) in ws.patterns.iter_mut().zip(solvers) {
        s.collect_pattern(pat);
    }
    let cd = CornerDiff::from_patterns(&ws.patterns, n);
    if !cd.profitable(n) {
        return sparse_scalar_sweeps(solvers, freqs, outs, ws);
    }
    let rn = cd.support();

    let oi: Vec<Option<usize>> = solvers
        .iter()
        .zip(outs)
        .map(|(s, &o)| s.mna_index(o))
        .collect();
    // As in the dense corner sweep, every frequency's corner row is an
    // independent tile; the sparse base factorization is history-free
    // (same-pattern refactors are bitwise-equal to fresh ones), so the
    // threaded schedule runs the exact arithmetic of the serial loop.
    let mut rows = corner_rows(bt, freqs.len());
    let par = grid_parallelism(solvers);
    if would_parallelize(par, freqs.len()) {
        run_chunks(
            par,
            &mut rows,
            ac_batch_ws_pool(),
            AcBatchWorkspace::new,
            |off, chunk, lane| {
                solvers[0].prepare_lane(freqs[0], &mut lane.scalar);
                let mut u = vec![Complex::ZERO; rn];
                let mut z = Vec::new();
                let mut spare = AcWorkspace::new();
                for (k, row) in chunk.iter_mut().enumerate() {
                    sparse_corner_row(
                        solvers,
                        &cd,
                        rn,
                        &oi,
                        freqs[off + k],
                        lane,
                        &mut spare,
                        &mut u,
                        &mut z,
                        row,
                    );
                }
            },
        );
    } else {
        let mut u = vec![Complex::ZERO; rn];
        let mut z = Vec::new();
        // Rare-path scratch: per-corner direct solves on base/correction
        // singularities re-prepare this workspace for whichever corner
        // needs it.
        let mut spare = AcWorkspace::new();
        solvers[0].prepare_workspace(&mut ws.scalar);
        for (i, row) in rows.iter_mut().enumerate() {
            sparse_corner_row(
                solvers, &cd, rn, &oi, freqs[i], ws, &mut spare, &mut u, &mut z, row,
            );
        }
    }
    assemble_corner_rows(&rows, freqs, bt)
}

/// One frequency tile of the sparse warm corner sweep: sparse base factor
/// through the workspace's scalar solver (symbolic analysis reused across
/// the lane's whole chunk), dense correction basis, per-corner Woodbury
/// corrections — the sparse sibling of [`dense_corner_row`].
#[allow(clippy::too_many_arguments)]
fn sparse_corner_row(
    solvers: &[AcSolver<'_>],
    cd: &CornerDiff,
    rn: usize,
    oi: &[Option<usize>],
    fq: f64,
    ws: &mut AcBatchWorkspace,
    spare: &mut AcWorkspace,
    u: &mut Vec<Complex>,
    z: &mut Vec<Complex>,
    row: &mut [Result<Complex, SimError>],
) {
    let n = solvers[0].dim();
    let rhs0 = solvers[0].source_rhs();
    let w_ang = 2.0 * std::f64::consts::PI * fq;
    let base_ok = solvers[0].factor_at_ws(fq, &mut ws.scalar).is_ok();
    if !base_ok {
        for (b, slot) in row.iter_mut().enumerate() {
            *slot = direct_sparse_corner_point(&solvers[b], fq, spare, oi[b]);
        }
        return;
    }
    {
        let AcBatchWorkspace {
            scalar,
            y0,
            unit,
            xcol,
            wflat,
            ..
        } = &mut *ws;
        let base: &dyn LinearSolver<Complex> = match &scalar.lu {
            ComplexLu::Dense(lu) => lu,
            ComplexLu::Sparse(slu) => slu,
        };
        base.solve_into(rhs0, y0);
        solve_correction_basis(base, &cd.rows, n, unit, xcol, wflat);
    }
    for (b, slot) in row.iter_mut().enumerate() {
        let base_v = oi[b].map_or(Complex::ZERO, |i| ws.y0[i]);
        let diff = &cd.diffs[b];
        if diff.is_empty() {
            *slot = Ok(base_v);
            continue;
        }
        let ok = factor_correction(
            &mut ws.small,
            diff,
            &cd.row_pos,
            rn,
            n,
            |dg, dc| Complex::new(dg, w_ang * dc),
            &ws.wflat,
        )
        .is_ok();
        *slot = if ok {
            Ok(corrected_entry(
                &ws.small,
                diff,
                &cd.row_pos,
                &ws.wflat,
                &ws.y0,
                oi[b],
                |dg, dc| Complex::new(dg, w_ang * dc),
                n,
                rn,
                u,
                z,
            ))
        } else {
            direct_sparse_corner_point(&solvers[b], fq, spare, oi[b])
        };
    }
}

/// Factors corner `b`'s full system at one frequency through its own
/// backend dispatch into `spare` and solves its source vector — the
/// per-point fallback of [`sparse_corner_sweeps`].
fn direct_sparse_corner_point(
    s: &AcSolver<'_>,
    fq: f64,
    spare: &mut AcWorkspace,
    oi: Option<usize>,
) -> Result<Complex, SimError> {
    s.prepare_workspace(spare);
    s.factor_at_ws(fq, spare)?;
    let AcWorkspace { lu, x, .. } = spare;
    lu.solve_into(s.source_rhs(), x);
    Ok(oi.map_or(Complex::ZERO, |i| x[i]))
}

/// Allocation-free scalar sweep per corner through the batch workspace's
/// SoA buffers — what [`ac_sweep_corners`] falls back to when the
/// correction cannot pay. Bitwise-equal to [`scalar_sweeps`] (the SoA and
/// generic kernels agree exactly) but matches the warm serial path's
/// per-point cost instead of allocating per frequency.
fn scalar_sweeps_ws(
    solvers: &[AcSolver<'_>],
    freqs: &[f64],
    outs: &[Node],
    ws: &mut AcBatchWorkspace,
) -> Vec<Result<AcResponse, SimError>> {
    solvers
        .iter()
        .zip(outs)
        .map(|(s, &o)| {
            let n = s.dim();
            s.collect_pattern(&mut ws.patterns[0]);
            let mut h = Vec::with_capacity(freqs.len());
            for &f in freqs {
                let w = 2.0 * std::f64::consts::PI * f;
                let AcBatchWorkspace { base, patterns, .. } = &mut *ws;
                base.refactor_with(n, 1e-300, |re, im| {
                    for &(r, c, gg, cc) in &patterns[0] {
                        re[r * n + c] = gg;
                        im[r * n + c] = w * cc;
                    }
                })?;
                ws.base.solve_into(s.source_rhs(), &mut ws.xcol);
                h.push(s.voltage(&ws.xcol, o));
            }
            Ok(AcResponse {
                freqs: freqs.to_vec(),
                h,
            })
        })
        .collect()
}

/// Dimension boundary between "stock" and "dense" extraction regimes for
/// the corner paths. At or below it the Woodbury correction cannot pay
/// (the difference support spans most of the system) and the lockstep
/// batch kernels still fit their per-corner working set in cache; above
/// it the correction wins and the batch-innermost layout starts to
/// thrash (measured ~0.65x on the dense noise batch), so cold dense
/// noise runs the scalar kernel per corner instead — bitwise-identical
/// either way.
pub(crate) const STOCK_DIM_MAX: usize = 16;

/// Corner-correction AC sweep: the fast path of the *warm* batched corner
/// engine. The B corner systems of a worst-case evaluation differ only in
/// their device stamps — the parasitic mesh, passives, sources, and gmin
/// regularization are identical across PVT corners — so instead of B full
/// factorizations per frequency this factors the **base corner once** and
/// recovers every sibling's output voltage through the Woodbury identity:
///
/// `A_b = A0 + P_R N_b  =>  x_b = y0 - W (I + N_b W)^{-1} N_b y0`
///
/// where `R` is the set of rows any corner's stamps differ on (device
/// terminal rows — a handful, independent of mesh depth), `W = A0^{-1}
/// P_R` costs `|R|` extra back-substitutions shared by all corners, and
/// the per-corner work collapses to an `|R| x |R|` solve plus one dot
/// product (only the output node's voltage is needed). Per frequency that
/// is ~`1 + |R|/n` factorization-equivalents instead of `B`, which is
/// where the batched engine's dense-mesh speedup comes from.
///
/// The correction is algebraically exact; in floating point it agrees
/// with the direct per-corner factorization to roundoff amplified by the
/// base system's conditioning — far inside the warm evaluation path's
/// solver-tolerance contract, which is why the *cold* (bitwise) path uses
/// [`ac_sweep_batch_solvers`] instead. Falls back to the lockstep batch
/// when the difference support is too wide to pay (`3|R| >= n`), to the
/// scalar sweep on structural mismatch, and to direct per-corner
/// factorization at any frequency where the base factor or a correction
/// system is singular.
pub fn ac_sweep_corners(
    solvers: &[AcSolver<'_>],
    freqs: &[f64],
    outs: &[Node],
    ws: &mut AcBatchWorkspace,
) -> Vec<Result<AcResponse, SimError>> {
    assert_eq!(solvers.len(), outs.len(), "one output node per corner");
    let bt = solvers.len();
    if bt == 0 {
        return Vec::new();
    }
    let n = solvers[0].dim();
    if solvers.iter().any(|s| s.config().use_sparse(s.dim())) {
        // Sparse-routed dims get their own corrected sweep: sparse base
        // factor per frequency (symbolic analysis shared across the
        // sweep), dense low-rank correction per sibling.
        return sparse_corner_sweeps(solvers, freqs, outs, ws);
    }
    if bt == 1 || solvers.iter().any(|s| s.dim() != n) {
        return scalar_sweeps(solvers, freqs, outs);
    }
    ws.patterns.resize(bt.max(1), Vec::new());
    if n <= STOCK_DIM_MAX {
        // At stock extraction dims the difference support spans most of
        // the system (every node touches a device), so the correction
        // cannot pay — skip its setup and sweep each corner through the
        // scalar kernel (bitwise-equal, and free of lockstep overhead).
        return scalar_sweeps_ws(solvers, freqs, outs, ws);
    }
    let rhs0 = solvers[0].source_rhs();
    if solvers.iter().any(|s| s.source_rhs() != rhs0) {
        // One shared base solve needs one shared source vector; corner
        // sets always satisfy this (same netlist structure), so this is
        // a safety valve, not a hot path.
        return scalar_sweeps_ws(solvers, freqs, outs, ws);
    }

    // Dense base images of G and C, plus per-corner stamp differences.
    ws.patterns.resize(bt, Vec::new());
    for (pat, s) in ws.patterns.iter_mut().zip(solvers) {
        s.collect_pattern(pat);
    }
    let cd = CornerDiff::from_patterns(&ws.patterns, n);
    if !cd.profitable(n) {
        // Correction support too wide relative to the system to pay.
        return scalar_sweeps_ws(solvers, freqs, outs, ws);
    }
    let rn = cd.support();

    let oi: Vec<Option<usize>> = solvers
        .iter()
        .zip(outs)
        .map(|(s, &o)| s.mna_index(o))
        .collect();
    // Every frequency's full corner row is an independent tile: the base
    // factor, correction basis, and per-corner corrections at one `fq`
    // read nothing a sibling frequency wrote, so the serial walk and the
    // threaded schedule run the exact same row body.
    let patterns = std::mem::take(&mut ws.patterns);
    let mut rows = corner_rows(bt, freqs.len());
    let par = grid_parallelism(solvers);
    if would_parallelize(par, freqs.len()) {
        run_chunks(
            par,
            &mut rows,
            ac_batch_ws_pool(),
            AcBatchWorkspace::new,
            |off, chunk, lane| {
                let mut u = vec![Complex::ZERO; rn];
                let mut z = Vec::new();
                for (k, row) in chunk.iter_mut().enumerate() {
                    dense_corner_row(
                        &patterns[..bt],
                        &cd,
                        rn,
                        n,
                        rhs0,
                        &oi,
                        freqs[off + k],
                        lane,
                        &mut u,
                        &mut z,
                        row,
                    );
                }
            },
        );
    } else {
        let mut u = vec![Complex::ZERO; rn];
        let mut z = Vec::new();
        for (i, row) in rows.iter_mut().enumerate() {
            dense_corner_row(
                &patterns[..bt],
                &cd,
                rn,
                n,
                rhs0,
                &oi,
                freqs[i],
                ws,
                &mut u,
                &mut z,
                row,
            );
        }
    }
    ws.patterns = patterns;
    assemble_corner_rows(&rows, freqs, bt)
}

/// Preallocated (frequency × corner) result grid of the corner sweeps:
/// one row per frequency tile, one slot per corner.
fn corner_rows(bt: usize, nf: usize) -> Vec<Vec<Result<Complex, SimError>>> {
    (0..nf)
        .map(|_| (0..bt).map(|_| Ok(Complex::ZERO)).collect())
        .collect()
}

/// Per-corner assembly of a corner sweep's row grid: frequencies in
/// order up to the corner's first failing point, exactly the serial
/// per-corner abort contract (values computed past a corner's first
/// error are discarded).
fn assemble_corner_rows(
    rows: &[Vec<Result<Complex, SimError>>],
    freqs: &[f64],
    bt: usize,
) -> Vec<Result<AcResponse, SimError>> {
    (0..bt)
        .map(|b| {
            let mut h = Vec::with_capacity(freqs.len());
            for row in rows {
                match &row[b] {
                    Ok(v) => h.push(*v),
                    Err(e) => return Err(e.clone()),
                }
            }
            Ok(AcResponse {
                freqs: freqs.to_vec(),
                h,
            })
        })
        .collect()
}

/// One frequency tile of the dense warm corner sweep: base factor +
/// shared correction basis + per-corner Woodbury corrections, writing
/// every corner's value (or error) into `row`. Identical arithmetic
/// whether called from the serial loop (caller workspace) or a threaded
/// lane (pooled workspace): the dense refactor is a full restamp, so the
/// workspace carries no cross-frequency history.
#[allow(clippy::too_many_arguments)]
fn dense_corner_row(
    patterns: &[Vec<(usize, usize, f64, f64)>],
    cd: &CornerDiff,
    rn: usize,
    n: usize,
    rhs0: &[Complex],
    oi: &[Option<usize>],
    fq: f64,
    ws: &mut AcBatchWorkspace,
    u: &mut Vec<Complex>,
    z: &mut Vec<Complex>,
    row: &mut [Result<Complex, SimError>],
) {
    let w_ang = 2.0 * std::f64::consts::PI * fq;
    let base_ok = ws
        .base
        .refactor_with(n, 1e-300, |re, im| {
            for &(r, c, g, cc) in &patterns[0] {
                re[r * n + c] = g;
                im[r * n + c] = w_ang * cc;
            }
        })
        .is_ok();
    if !base_ok {
        // Base corner singular at this point: factor every corner
        // directly instead.
        for (b, slot) in row.iter_mut().enumerate() {
            *slot = direct_corner_point(
                &mut ws.spare,
                &mut ws.xcol,
                &patterns[b],
                n,
                w_ang,
                rhs0,
                oi[b],
            );
        }
        return;
    }
    ws.base.solve_into(rhs0, &mut ws.y0);
    // W = A0^{-1} P_R : one extra back-substitution per support row,
    // shared by every corner at this frequency.
    {
        let AcBatchWorkspace {
            base,
            unit,
            xcol,
            wflat,
            ..
        } = &mut *ws;
        solve_correction_basis(&*base, &cd.rows, n, unit, xcol, wflat);
    }
    for (b, slot) in row.iter_mut().enumerate() {
        let base_v = oi[b].map_or(Complex::ZERO, |i| ws.y0[i]);
        let diff = &cd.diffs[b];
        if diff.is_empty() {
            *slot = Ok(base_v);
            continue;
        }
        // S = I + N_b W and u = N_b y0, accumulated straight from
        // the sparse stamp differences — into the reused small-LU
        // buffer, so the per-(corner, frequency) correction
        // allocates nothing.
        let ok = factor_correction(
            &mut ws.small,
            diff,
            &cd.row_pos,
            rn,
            n,
            |dg, dc| Complex::new(dg, w_ang * dc),
            &ws.wflat,
        )
        .is_ok();
        *slot = if ok {
            Ok(corrected_entry(
                &ws.small,
                diff,
                &cd.row_pos,
                &ws.wflat,
                &ws.y0,
                oi[b],
                |dg, dc| Complex::new(dg, w_ang * dc),
                n,
                rn,
                u,
                z,
            ))
        } else {
            // Correction system singular (a corner shifted the
            // base too hard): solve this corner directly.
            direct_corner_point(
                &mut ws.spare,
                &mut ws.xcol,
                &patterns[b],
                n,
                w_ang,
                rhs0,
                oi[b],
            )
        };
    }
}

/// Factors corner `b`'s full system at one frequency into the spare
/// buffer and solves the shared source vector — the per-point fallback of
/// [`ac_sweep_corners`].
fn direct_corner_point(
    spare: &mut ComplexLuSoa,
    xcol: &mut Vec<Complex>,
    pat: &[(usize, usize, f64, f64)],
    n: usize,
    w_ang: f64,
    rhs: &[Complex],
    oi: Option<usize>,
) -> Result<Complex, SimError> {
    spare.refactor_with(n, 1e-300, |re, im| {
        for &(r, c, g, cc) in pat {
            re[r * n + c] = g;
            im[r * n + c] = w_ang * cc;
        }
    })?;
    spare.solve_into(rhs, xcol);
    Ok(oi.map_or(Complex::ZERO, |i| xcol[i]))
}

/// Builds a logarithmically spaced frequency grid from `fstart` to `fstop`
/// with `points_per_decade` points per decade (endpoints included).
///
/// # Panics
///
/// Panics unless `0 < fstart < fstop` and `points_per_decade >= 1`.
pub fn log_freqs(fstart: f64, fstop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(fstart > 0.0 && fstop > fstart && points_per_decade >= 1);
    let decades = (fstop / fstart).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..=n)
        .map(|i| fstart * 10f64.powf(decades * i as f64 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};
    use crate::device::{MosPolarity, Technology};
    use crate::netlist::{Mosfet, GND};

    #[test]
    fn rc_lowpass_magnitude_and_phase() {
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.vsource(i, GND, 0.0, 1.0);
        ckt.resistor(i, o, 1.0e3);
        ckt.capacitor(o, GND, 1e-9);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let resp = ac_sweep(&ckt, &op, &[fc], o).unwrap();
        // At the corner: magnitude 1/sqrt(2), phase -45 degrees.
        assert!((resp.h[0].norm() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!((resp.h[0].arg().to_degrees() + 45.0).abs() < 0.1);
    }

    #[test]
    fn log_freqs_monotone_and_bounded() {
        let f = log_freqs(1e2, 1e6, 10);
        assert!((f[0] - 1e2).abs() / 1e2 < 1e-12);
        assert!((f.last().unwrap() - 1e6).abs() / 1e6 < 1e-9);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn common_source_gain_matches_gm_ro() {
        // NMOS common-source with ideal current-source-like load resistor:
        // |A| = gm * (ro || RL) at low frequency.
        let t = Technology::ptm45();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let o = ckt.node("o");
        ckt.vsource(vdd, GND, 1.0, 0.0);
        ckt.vsource(g, GND, 0.55, 1.0);
        ckt.resistor_noiseless(vdd, o, 20.0e3);
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Nmos,
            d: o,
            g,
            s: GND,
            w: 2e-6,
            l: 90e-9,
            mult: 1.0,
            model: t.nmos,
        });
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let m = &op.mosfets()[0];
        let expect = m.gm * (1.0 / (m.gds + 1.0 / 20.0e3));
        let resp = ac_sweep(&ckt, &op, &[1.0e3], o).unwrap();
        let got = resp.h[0].norm();
        assert!(
            (got - expect).abs() / expect < 1e-3,
            "gain {got} vs gm*rout {expect}"
        );
        // Inverting stage: phase near 180 degrees.
        assert!((resp.h[0].arg().to_degrees().abs() - 180.0).abs() < 1.0);
    }

    #[test]
    fn linear_step_response_matches_rc_analytic() {
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.vsource(i, GND, 0.0, 1.0);
        ckt.resistor(i, o, 1.0e3);
        ckt.capacitor(o, GND, 1e-9);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let solver = AcSolver::new(&ckt, &op);
        let (t, y) = solver.step_response(o, 5e-6, 2000).unwrap();
        for (ti, yi) in t.iter().zip(&y).skip(10) {
            let expect = 1.0 - (-ti / 1e-6).exp();
            assert!((yi - expect).abs() < 5e-3, "at t={ti}: {yi} vs {expect}");
        }
    }

    #[test]
    fn batched_sweep_matches_scalar_bitwise() {
        // Three same-structure RC variants (the corner-set shape): the
        // lockstep sweep must reproduce each scalar sweep bit for bit.
        let build = |r: f64, c: f64| {
            let mut ckt = Circuit::new();
            let i = ckt.node("in");
            let o = ckt.node("out");
            ckt.vsource(i, GND, 0.0, 1.0);
            ckt.resistor(i, o, r);
            ckt.capacitor(o, GND, c);
            (ckt, o)
        };
        let variants = [
            build(1.0e3, 1e-9),
            build(1.3e3, 0.8e-9),
            build(0.7e3, 1.4e-9),
        ];
        let ops: Vec<OpPoint> = variants
            .iter()
            .map(|(ckt, _)| dc_operating_point(ckt, &DcOptions::default()).unwrap())
            .collect();
        let ckts: Vec<&Circuit> = variants.iter().map(|(c, _)| c).collect();
        let oprefs: Vec<&OpPoint> = ops.iter().collect();
        let out = variants[0].1;
        let freqs = log_freqs(1e3, 1e8, 5);
        let mut ws = AcBatchWorkspace::new();
        let batch = ac_sweep_batch(&ckts, &oprefs, &freqs, out, &mut ws);
        for ((ckt, _), (op, res)) in variants.iter().zip(ops.iter().zip(&batch)) {
            let scalar = ac_sweep(ckt, op, &freqs, out).unwrap();
            assert_eq!(res.as_ref().unwrap(), &scalar);
        }
        // Workspace reuse across a second batch stays bitwise too.
        let again = ac_sweep_batch(&ckts, &oprefs, &freqs, out, &mut ws);
        assert_eq!(batch, again);
    }

    #[test]
    fn corner_correction_sweep_matches_direct_factorization() {
        // Corner variants that differ only in a "device" conductance at
        // one node — the worst-case-PVT shape: shared mesh, tiny stamp
        // difference. The Woodbury sweep must agree with the direct
        // per-corner factorization to roundoff.
        let build = |g_dev: f64| {
            let mut ckt = Circuit::new();
            let i = ckt.node("in");
            ckt.vsource(i, GND, 0.0, 1.0);
            // A 20-segment RC mesh (shared by all corners) between the
            // source and the corner-dependent element, so the system is
            // dense enough for the correction to engage (dim > 16).
            let mut prev = i;
            for s in 0..20 {
                let nn = ckt.node(&format!("m{s}"));
                ckt.resistor(prev, nn, 1.0e3);
                ckt.capacitor(nn, GND, 2e-12);
                prev = nn;
            }
            let o = ckt.node("out");
            ckt.resistor(prev, o, 1.0 / g_dev); // the corner-dependent part
            ckt.capacitor(o, GND, 1e-9);
            (ckt, o)
        };
        let variants = [build(1e-3), build(1.12e-3), build(0.88e-3), build(1e-3)];
        let ops: Vec<OpPoint> = variants
            .iter()
            .map(|(ckt, _)| dc_operating_point(ckt, &DcOptions::default()).unwrap())
            .collect();
        let solvers: Vec<AcSolver<'_>> = variants
            .iter()
            .zip(&ops)
            .map(|((ckt, _), op)| AcSolver::new(ckt, op))
            .collect();
        let outs = vec![variants[0].1; variants.len()];
        let freqs = log_freqs(1e3, 1e8, 6);
        let mut ws = AcBatchWorkspace::new();
        let corr = ac_sweep_corners(&solvers, &freqs, &outs, &mut ws);
        for ((ckt, out), (op, res)) in variants.iter().zip(ops.iter().zip(&corr)) {
            let direct = ac_sweep(ckt, op, &freqs, *out).unwrap();
            let got = res.as_ref().unwrap();
            for (a, b) in got.h.iter().zip(&direct.h) {
                assert!(
                    (*a - *b).norm() <= 1e-9 * (1.0 + b.norm()),
                    "correction diverged: {a} vs {b}"
                );
            }
        }
        // Corner 3 is identical to the base: the correction must be a
        // no-op, bit for bit.
        assert_eq!(corr[3].as_ref().unwrap().h, corr[0].as_ref().unwrap().h);
    }

    #[test]
    fn forced_sparse_sweep_matches_dense_within_tolerance() {
        // A 30-segment RC ladder (dim ~32): forced-sparse AC solves must
        // agree with the dense reference to solver tolerance at every
        // frequency, and the forced-dense config must stay bitwise on the
        // default path.
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        ckt.vsource(i, GND, 0.0, 1.0);
        let mut prev = i;
        for s in 0..30 {
            let nn = ckt.node(&format!("m{s}"));
            ckt.resistor(prev, nn, 1.0e3);
            ckt.capacitor(nn, GND, 1e-12);
            prev = nn;
        }
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let freqs = log_freqs(1e3, 1e9, 4);
        let dense = ac_sweep(&ckt, &op, &freqs, prev).unwrap();
        let mut ws = AcWorkspace::new();
        let sparse = ac_sweep_cfg(
            &ckt,
            &op,
            &freqs,
            prev,
            crate::linalg::sparse::SolverConfig::sparse(),
            &mut ws,
        )
        .unwrap();
        for (a, b) in sparse.h.iter().zip(&dense.h) {
            assert!(
                (*a - *b).norm() <= 1e-9 * (1.0 + b.norm()),
                "sparse diverged: {a} vs {b}"
            );
        }
        // Workspace reuse flips cleanly back to the dense backend.
        let again = ac_sweep_cfg(
            &ckt,
            &op,
            &freqs,
            prev,
            crate::linalg::sparse::SolverConfig::dense(),
            &mut ws,
        )
        .unwrap();
        assert_eq!(again, dense);
    }

    #[test]
    fn forced_sparse_step_response_matches_dense() {
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.vsource(i, GND, 0.0, 1.0);
        ckt.resistor(i, o, 1.0e3);
        ckt.capacitor(o, GND, 1e-9);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let dense = AcSolver::new(&ckt, &op);
        let sparse =
            AcSolver::new(&ckt, &op).with_config(crate::linalg::sparse::SolverConfig::sparse());
        let (_, yd) = dense.step_response(o, 5e-6, 500).unwrap();
        let (_, ys) = sparse.step_response(o, 5e-6, 500).unwrap();
        for (a, b) in ys.iter().zip(&yd) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_routed_corner_sweep_matches_dense_corner_sweep() {
        // Forced-sparse corner solvers must route around the lockstep and
        // Woodbury machinery and still agree with the dense batch result.
        let build = |r: f64, c: f64| {
            let mut ckt = Circuit::new();
            let i = ckt.node("in");
            let o = ckt.node("out");
            ckt.vsource(i, GND, 0.0, 1.0);
            ckt.resistor(i, o, r);
            ckt.capacitor(o, GND, c);
            (ckt, o)
        };
        let variants = [
            build(1.0e3, 1e-9),
            build(1.3e3, 0.8e-9),
            build(0.7e3, 1.4e-9),
        ];
        let ops: Vec<OpPoint> = variants
            .iter()
            .map(|(ckt, _)| dc_operating_point(ckt, &DcOptions::default()).unwrap())
            .collect();
        let freqs = log_freqs(1e3, 1e8, 5);
        let outs = vec![variants[0].1; variants.len()];
        let dense_solvers: Vec<AcSolver<'_>> = variants
            .iter()
            .zip(&ops)
            .map(|((ckt, _), op)| AcSolver::new(ckt, op))
            .collect();
        let sparse_solvers: Vec<AcSolver<'_>> = variants
            .iter()
            .zip(&ops)
            .map(|((ckt, _), op)| {
                AcSolver::new(ckt, op).with_config(crate::linalg::sparse::SolverConfig::sparse())
            })
            .collect();
        let mut ws = AcBatchWorkspace::new();
        let dense = ac_sweep_batch_solvers(&dense_solvers, &freqs, &outs, &mut ws);
        let sparse = ac_sweep_batch_solvers(&sparse_solvers, &freqs, &outs, &mut ws);
        for (d, s) in dense.iter().zip(&sparse) {
            let (d, s) = (d.as_ref().unwrap(), s.as_ref().unwrap());
            for (a, b) in s.h.iter().zip(&d.h) {
                assert!(
                    (*a - *b).norm() <= 1e-9 * (1.0 + b.norm()),
                    "sparse corner diverged: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn current_source_drive_transimpedance() {
        // 1 A AC into a resistor reads R volts.
        let mut ckt = Circuit::new();
        let o = ckt.node("o");
        ckt.isource(GND, o, 0.0, 1.0);
        ckt.resistor(o, GND, 123.0);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let resp = ac_sweep(&ckt, &op, &[1e3], o).unwrap();
        assert!((resp.h[0].norm() - 123.0).abs() < 1e-6);
    }
}
