//! Small-signal AC analysis.
//!
//! The circuit is linearized at a DC operating point ([`crate::dc`]); the
//! complex system `(G + j w C) x = b` is then factored and solved per
//! frequency point. The real `G` and `C` matrices are assembled once per
//! linearization and reused across the sweep, and the per-frequency LU
//! factorization is exposed so the noise analysis can reuse it for many
//! right-hand sides.

use crate::complex::Complex;
use crate::dc::OpPoint;
use crate::error::SimError;
use crate::linalg::{ComplexLuSoa, LuFactors, Matrix};
use crate::netlist::{Circuit, Element, Node};

/// Reusable buffers for repeated AC factor/solve calls: the complex system
/// matrix lives inside the LU factors and is stamped in place per
/// frequency from a sparse pattern collected once per linearization, so a
/// whole sweep (and consecutive sweeps of a warm evaluation session)
/// performs no per-point allocation.
///
/// The factorization buffer is the structure-of-arrays
/// [`ComplexLuSoa`] kernel — split re/im storage that the compiler
/// autovectorizes — producing results bitwise-equal to the generic
/// `LuFactors<Complex>` path of [`AcSolver::factor_at`].
#[derive(Debug, Clone, Default)]
pub struct AcWorkspace {
    pub(crate) lu: ComplexLuSoa,
    pub(crate) pattern: Vec<(usize, usize, f64, f64)>,
    pub(crate) x: Vec<Complex>,
    pub(crate) rhs: Vec<Complex>,
}

impl AcWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        AcWorkspace::default()
    }
}

/// A reusable small-signal solver bound to a circuit and operating point.
#[derive(Debug)]
pub struct AcSolver<'a> {
    ckt: &'a Circuit,
    g: Matrix<f64>,
    c: Matrix<f64>,
    rhs: Vec<Complex>,
    dim: usize,
}

impl<'a> AcSolver<'a> {
    /// Builds the small-signal stamps for `ckt` linearized at `op`.
    pub fn new(ckt: &'a Circuit, op: &OpPoint) -> Self {
        let dim = ckt.mna_dim();
        let nnodes = ckt.num_nodes();
        let mut g = Matrix::zeros(dim, dim);
        let mut c = Matrix::zeros(dim, dim);
        let mut rhs = vec![Complex::ZERO; dim];
        let idx = |n: Node| ckt.mna_index(n);

        // Same gmin regularization as the DC solve keeps conditioning
        // consistent between analyses.
        for i in 0..(nnodes - 1) {
            g[(i, i)] += 1e-12;
        }

        let stamp_g = |m: &mut Matrix<f64>, p: Node, n: Node, val: f64| {
            if let Some(ip) = idx(p) {
                m[(ip, ip)] += val;
                if let Some(in_) = idx(n) {
                    m[(ip, in_)] -= val;
                }
            }
            if let Some(in_) = idx(n) {
                m[(in_, in_)] += val;
                if let Some(ip) = idx(p) {
                    m[(in_, ip)] -= val;
                }
            }
        };
        let stamp_vccs = |m: &mut Matrix<f64>, op_: Node, on: Node, cp: Node, cn: Node, gm: f64| {
            if let Some(io) = idx(op_) {
                if let Some(icp) = idx(cp) {
                    m[(io, icp)] += gm;
                }
                if let Some(icn) = idx(cn) {
                    m[(io, icn)] -= gm;
                }
            }
            if let Some(io) = idx(on) {
                if let Some(icp) = idx(cp) {
                    m[(io, icp)] -= gm;
                }
                if let Some(icn) = idx(cn) {
                    m[(io, icn)] += gm;
                }
            }
        };

        let mut vk = 0usize;
        let mut mos_iter = op.mosfets().iter();
        for e in ckt.elements() {
            match e {
                Element::Resistor { p, n, r, .. } => stamp_g(&mut g, *p, *n, 1.0 / r),
                Element::Capacitor { p, n, c: cap } => stamp_g(&mut c, *p, *n, *cap),
                Element::Vsource { p, n, ac, .. } => {
                    let row = nnodes - 1 + vk;
                    if let Some(ip) = idx(*p) {
                        g[(ip, row)] += 1.0;
                        g[(row, ip)] += 1.0;
                    }
                    if let Some(in_) = idx(*n) {
                        g[(in_, row)] -= 1.0;
                        g[(row, in_)] -= 1.0;
                    }
                    rhs[row] += Complex::from_re(*ac);
                    vk += 1;
                }
                Element::Isource { p, n, ac, .. } => {
                    if let Some(ip) = idx(*p) {
                        rhs[ip] -= Complex::from_re(*ac);
                    }
                    if let Some(in_) = idx(*n) {
                        rhs[in_] += Complex::from_re(*ac);
                    }
                }
                Element::Vccs {
                    op: o,
                    on,
                    cp,
                    cn,
                    gm,
                } => {
                    stamp_vccs(&mut g, *o, *on, *cp, *cn, *gm);
                }
                Element::Mos(m) => {
                    let mi = mos_iter
                        .next()
                        .expect("operating point and circuit out of sync");
                    stamp_g(&mut g, mi.a_d, mi.a_s, mi.gds);
                    stamp_vccs(&mut g, mi.a_d, mi.a_s, mi.g, mi.a_s, mi.gm);
                    stamp_g(&mut c, m.g, mi.a_s, mi.cgs);
                    stamp_g(&mut c, m.g, mi.a_d, mi.cgd);
                    stamp_g(&mut c, mi.a_d, crate::netlist::GND, mi.cdb);
                    stamp_g(&mut c, mi.a_s, crate::netlist::GND, mi.csb);
                }
            }
        }
        AcSolver {
            ckt,
            g,
            c,
            rhs,
            dim,
        }
    }

    /// Dimension of the MNA system.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Assembles the dense complex system matrix `G + j*2*pi*f*C` at
    /// frequency `f` (Hz) — what [`AcSolver::factor_at`] eliminates.
    /// Exposed so kernel benchmarks and tests can drive both LU layouts
    /// over the identical system.
    pub fn system_matrix(&self, f: f64) -> Matrix<Complex> {
        let w = 2.0 * std::f64::consts::PI * f;
        let mut y = Matrix::<Complex>::zeros(self.dim, self.dim);
        for r in 0..self.dim {
            for cidx in 0..self.dim {
                let gg = self.g[(r, cidx)];
                let cc = self.c[(r, cidx)];
                if gg != 0.0 || cc != 0.0 {
                    y[(r, cidx)] = Complex::new(gg, w * cc);
                }
            }
        }
        y
    }

    /// Factors the complex system `G + j*2*pi*f*C` at frequency `f` (Hz).
    ///
    /// # Errors
    ///
    /// [`SimError::SingularMatrix`] for a singular small-signal system.
    pub fn factor_at(&self, f: f64) -> Result<LuFactors<Complex>, SimError> {
        LuFactors::factor(self.system_matrix(f), 1e-300)
    }

    /// Right-hand side driven by the netlist's AC source magnitudes.
    pub fn source_rhs(&self) -> &[Complex] {
        &self.rhs
    }

    /// Solves for node voltages at frequency `f` with the netlist's own AC
    /// sources driving. Returns the full MNA solution vector.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix failures from the factorization.
    pub fn solve_sources(&self, f: f64) -> Result<Vec<Complex>, SimError> {
        Ok(self.factor_at(f)?.solve(&self.rhs))
    }

    /// Collects this linearization's sparse `(row, col, g, c)` stamp
    /// pattern into `ws`; call once before any `_ws` solve.
    pub fn prepare_workspace(&self, ws: &mut AcWorkspace) {
        ws.pattern.clear();
        for r in 0..self.dim {
            for c in 0..self.dim {
                let gg = self.g[(r, c)];
                let cc = self.c[(r, c)];
                if gg != 0.0 || cc != 0.0 {
                    ws.pattern.push((r, c, gg, cc));
                }
            }
        }
    }

    /// Factors `G + j*2*pi*f*C` into the workspace buffers — identical
    /// (bitwise) result to [`AcSolver::factor_at`], with zero per-point
    /// allocation, through the vectorized split re/im kernel.
    /// [`AcSolver::prepare_workspace`] must have been called for this
    /// solver first.
    ///
    /// # Errors
    ///
    /// [`SimError::SingularMatrix`] for a singular small-signal system.
    pub fn factor_at_ws(&self, f: f64, ws: &mut AcWorkspace) -> Result<(), SimError> {
        let w = 2.0 * std::f64::consts::PI * f;
        let n = self.dim;
        let AcWorkspace { lu, pattern, .. } = ws;
        lu.refactor_with(n, 1e-300, |re, im| {
            for &(r, c, gg, cc) in pattern.iter() {
                re[r * n + c] = gg;
                im[r * n + c] = w * cc;
            }
        })
    }

    /// Like [`AcSolver::solve_sources`], reusing workspace buffers; the
    /// solution lives in the workspace and is returned as a slice.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix failures from the factorization.
    pub fn solve_sources_ws<'w>(
        &self,
        f: f64,
        ws: &'w mut AcWorkspace,
    ) -> Result<&'w [Complex], SimError> {
        self.factor_at_ws(f, ws)?;
        let AcWorkspace { lu, x, .. } = ws;
        lu.solve_into(&self.rhs, x);
        Ok(x)
    }

    /// Batched multi-frequency solve: refactors and solves the
    /// source-driven system at *every* frequency in `freqs` through the
    /// SoA kernel in one pass, recording the transfer to `out`. The sparse
    /// pattern is prepared once and the factor/solution buffers are reused
    /// across all points, so the whole batch allocates only the output
    /// vector. Point-for-point results equal [`AcSolver::solve_sources`].
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix failures at any frequency point.
    pub fn solve_sources_batch_ws(
        &self,
        freqs: &[f64],
        out: Node,
        ws: &mut AcWorkspace,
    ) -> Result<Vec<Complex>, SimError> {
        self.prepare_workspace(ws);
        let mut h = Vec::with_capacity(freqs.len());
        for &f in freqs {
            self.factor_at_ws(f, ws)?;
            let AcWorkspace { lu, x, .. } = &mut *ws;
            lu.solve_into(&self.rhs, x);
            h.push(self.voltage(x, out));
        }
        Ok(h)
    }

    /// Extracts the voltage of `node` from an MNA solution vector.
    pub fn voltage(&self, x: &[Complex], node: Node) -> Complex {
        match self.ckt.mna_index(node) {
            None => Complex::ZERO,
            Some(i) => x[i],
        }
    }

    /// Small-signal step response at `out`: integrates
    /// `C x' + G x = b u(t)` (with `b` the AC-source right-hand side and
    /// zero initial state) by the trapezoidal rule. The system matrix is
    /// factored once, so this costs one LU plus `steps` back-substitutions —
    /// orders of magnitude cheaper than a nonlinear transient, and exact for
    /// the small-signal settling measurements the TIA environment needs.
    ///
    /// Returns `(t, y)` with `y` the small-signal deviation of `out`.
    ///
    /// # Errors
    ///
    /// [`SimError::SingularMatrix`] if `2C/h + G` is singular.
    pub fn step_response(
        &self,
        out: Node,
        t_stop: f64,
        steps: usize,
    ) -> Result<(Vec<f64>, Vec<f64>), SimError> {
        let h = t_stop / steps as f64;
        let n = self.dim;
        // A = G + 2C/h (factored once); per step:
        // A x1 = 2 b + (2C/h - G) x0  =>  rhs = 2 b + (2C/h) x0 - G x0.
        let mut a = Matrix::<f64>::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = self.g[(r, c)] + 2.0 * self.c[(r, c)] / h;
            }
        }
        let lu = crate::linalg::LuFactors::factor(a, 1e-300)?;
        let b: Vec<f64> = self.rhs.iter().map(|c| c.re).collect();
        let mut x = vec![0.0; n];
        let oi = self.ckt.mna_index(out);
        let mut t_out = Vec::with_capacity(steps + 1);
        let mut y_out = Vec::with_capacity(steps + 1);
        t_out.push(0.0);
        y_out.push(0.0);
        let mut rhs = vec![0.0; n];
        for s in 1..=steps {
            // rhs = 2 b + (2C/h) x - G x
            for r in 0..n {
                let mut acc = 2.0 * b[r];
                for (c, &xc) in x.iter().enumerate() {
                    acc += (2.0 * self.c[(r, c)] / h - self.g[(r, c)]) * xc;
                }
                rhs[r] = acc;
            }
            // `rhs` is fully formed, so `x` can be overwritten in place —
            // one allocation for the whole record instead of one per step.
            lu.solve_into(&rhs, &mut x);
            t_out.push(s as f64 * h);
            y_out.push(oi.map_or(0.0, |i| x[i]));
        }
        Ok((t_out, y_out))
    }
}

/// A frequency response: paired frequency grid and complex values.
#[derive(Debug, Clone, PartialEq)]
pub struct AcResponse {
    /// Frequency grid (Hz), strictly increasing.
    pub freqs: Vec<f64>,
    /// Complex response at each grid point.
    pub h: Vec<Complex>,
}

/// Runs an AC sweep and records the transfer to `out` (driven by the
/// netlist's AC sources).
///
/// # Errors
///
/// Propagates solver failures at any frequency point.
///
/// # Examples
///
/// An RC low-pass has its -3 dB point at `1/(2 pi R C)`:
///
/// ```
/// use autockt_sim::netlist::{Circuit, GND};
/// use autockt_sim::dc::{dc_operating_point, DcOptions};
/// use autockt_sim::ac::{ac_sweep, log_freqs};
///
/// # fn main() -> Result<(), autockt_sim::SimError> {
/// let mut ckt = Circuit::new();
/// let i = ckt.node("in");
/// let o = ckt.node("out");
/// ckt.vsource(i, GND, 0.0, 1.0);
/// ckt.resistor(i, o, 1.0e3);
/// ckt.capacitor(o, GND, 1e-9);
/// let op = dc_operating_point(&ckt, &DcOptions::default())?;
/// let resp = ac_sweep(&ckt, &op, &log_freqs(1e3, 1e8, 20), o)?;
/// let f3db = resp.f_3db()?;
/// let expect = 1.0 / (2.0 * std::f64::consts::PI * 1.0e3 * 1e-9);
/// assert!((f3db - expect).abs() / expect < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn ac_sweep(
    ckt: &Circuit,
    op: &OpPoint,
    freqs: &[f64],
    out: Node,
) -> Result<AcResponse, SimError> {
    let solver = AcSolver::new(ckt, op);
    let mut h = Vec::with_capacity(freqs.len());
    for &f in freqs {
        let x = solver.solve_sources(f)?;
        h.push(solver.voltage(&x, out));
    }
    Ok(AcResponse {
        freqs: freqs.to_vec(),
        h,
    })
}

/// [`ac_sweep`] with reusable workspace buffers: the whole sweep is one
/// batched pass through the vectorized SoA kernel — the complex system is
/// stamped and factored in place per point, so the sweep allocates nothing
/// per frequency. Produces results identical to [`ac_sweep`] (same
/// assembly, same elimination order); the warm evaluation sessions route
/// their sweeps through this entry point.
///
/// # Errors
///
/// Propagates solver failures at any frequency point.
pub fn ac_sweep_ws(
    ckt: &Circuit,
    op: &OpPoint,
    freqs: &[f64],
    out: Node,
    ws: &mut AcWorkspace,
) -> Result<AcResponse, SimError> {
    let solver = AcSolver::new(ckt, op);
    let h = solver.solve_sources_batch_ws(freqs, out, ws)?;
    Ok(AcResponse {
        freqs: freqs.to_vec(),
        h,
    })
}

/// Builds a logarithmically spaced frequency grid from `fstart` to `fstop`
/// with `points_per_decade` points per decade (endpoints included).
///
/// # Panics
///
/// Panics unless `0 < fstart < fstop` and `points_per_decade >= 1`.
pub fn log_freqs(fstart: f64, fstop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(fstart > 0.0 && fstop > fstart && points_per_decade >= 1);
    let decades = (fstop / fstart).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..=n)
        .map(|i| fstart * 10f64.powf(decades * i as f64 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};
    use crate::device::{MosPolarity, Technology};
    use crate::netlist::{Mosfet, GND};

    #[test]
    fn rc_lowpass_magnitude_and_phase() {
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.vsource(i, GND, 0.0, 1.0);
        ckt.resistor(i, o, 1.0e3);
        ckt.capacitor(o, GND, 1e-9);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let resp = ac_sweep(&ckt, &op, &[fc], o).unwrap();
        // At the corner: magnitude 1/sqrt(2), phase -45 degrees.
        assert!((resp.h[0].norm() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!((resp.h[0].arg().to_degrees() + 45.0).abs() < 0.1);
    }

    #[test]
    fn log_freqs_monotone_and_bounded() {
        let f = log_freqs(1e2, 1e6, 10);
        assert!((f[0] - 1e2).abs() / 1e2 < 1e-12);
        assert!((f.last().unwrap() - 1e6).abs() / 1e6 < 1e-9);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn common_source_gain_matches_gm_ro() {
        // NMOS common-source with ideal current-source-like load resistor:
        // |A| = gm * (ro || RL) at low frequency.
        let t = Technology::ptm45();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let o = ckt.node("o");
        ckt.vsource(vdd, GND, 1.0, 0.0);
        ckt.vsource(g, GND, 0.55, 1.0);
        ckt.resistor_noiseless(vdd, o, 20.0e3);
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Nmos,
            d: o,
            g,
            s: GND,
            w: 2e-6,
            l: 90e-9,
            mult: 1.0,
            model: t.nmos,
        });
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let m = &op.mosfets()[0];
        let expect = m.gm * (1.0 / (m.gds + 1.0 / 20.0e3));
        let resp = ac_sweep(&ckt, &op, &[1.0e3], o).unwrap();
        let got = resp.h[0].norm();
        assert!(
            (got - expect).abs() / expect < 1e-3,
            "gain {got} vs gm*rout {expect}"
        );
        // Inverting stage: phase near 180 degrees.
        assert!((resp.h[0].arg().to_degrees().abs() - 180.0).abs() < 1.0);
    }

    #[test]
    fn linear_step_response_matches_rc_analytic() {
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.vsource(i, GND, 0.0, 1.0);
        ckt.resistor(i, o, 1.0e3);
        ckt.capacitor(o, GND, 1e-9);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let solver = AcSolver::new(&ckt, &op);
        let (t, y) = solver.step_response(o, 5e-6, 2000).unwrap();
        for (ti, yi) in t.iter().zip(&y).skip(10) {
            let expect = 1.0 - (-ti / 1e-6).exp();
            assert!((yi - expect).abs() < 5e-3, "at t={ti}: {yi} vs {expect}");
        }
    }

    #[test]
    fn current_source_drive_transimpedance() {
        // 1 A AC into a resistor reads R volts.
        let mut ckt = Circuit::new();
        let o = ckt.node("o");
        ckt.isource(GND, o, 0.0, 1.0);
        ckt.resistor(o, GND, 123.0);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let resp = ac_sweep(&ckt, &op, &[1e3], o).unwrap();
        assert!((resp.h[0].norm() - 123.0).abs() < 1e-6);
    }
}
