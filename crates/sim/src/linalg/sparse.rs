//! Sparse linear-algebra backend: CSC storage, triplet assembly with
//! duplicate merging, a fill-reducing minimum-degree ordering, and a
//! left-looking sparse LU with partial pivoting and a same-pattern
//! `refactor` fast path.
//!
//! Post-layout extraction meshes push the MNA dimension into the hundreds,
//! where the dense O(n³) elimination in [`super`] loses to a factorization
//! that only touches structural nonzeros. The kernel here is the classic
//! Gilbert–Peierls left-looking LU: for each column, a depth-first search
//! over the partially built `L` discovers the column's fill pattern in
//! time proportional to the work, then the numeric elimination scatters
//! into a dense accumulator over exactly that pattern. Columns are
//! pre-permuted by a minimum-degree ordering ([`amd_order`]) computed on
//! the symmetrized pattern; rows are pivoted for stability during the
//! numeric phase, so the factorization is `PAQ = LU`.
//!
//! [`SparseLu::refactor`] mirrors [`super::LuFactors::refactor`]: it
//! reuses every allocation *and* the fill-reducing column order whenever
//! the nonzero pattern is unchanged — the common case for Newton
//! re-solves, where only values move between iterations — and is
//! bitwise-equal to a fresh factorization on the same pattern.
//!
//! Backend choice between the dense kernels and this module is expressed
//! by [`SolverConfig`]: automatic by dimension with a crossover, or
//! forced either way (the CI smoke gate diffs the two backends on the
//! same designs by forcing each in turn).

use super::{LinearSolver, Matrix, Scalar};
use crate::error::SimError;
use crate::par::Parallelism;

/// Sentinel for "row not yet chosen as a pivot" in `pinv`.
const UNPIVOTED: usize = usize::MAX;

/// Default dimension at or above which [`SolverBackend::Auto`] switches
/// from the dense kernels to the sparse backend.
///
/// Schematic-level MNA systems in this repo are well below this (the
/// deepest pre-existing bench mesh was dim ~38), so automatic selection
/// leaves every schematic path on the dense kernels it was tuned on;
/// extraction meshes with hundreds of nodes land on the sparse side.
pub const DEFAULT_CROSSOVER: usize = 64;

/// Which factorization backend a solve path should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Pick by dimension: dense below [`SolverConfig::crossover`], sparse
    /// at or above it.
    #[default]
    Auto,
    /// Always the dense kernels.
    Dense,
    /// Always the sparse kernels.
    Sparse,
}

/// Backend-selection policy threaded from the evaluation session down to
/// the individual DC/AC/noise/transient solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Backend choice (automatic by default).
    pub backend: SolverBackend,
    /// Dimension at which [`SolverBackend::Auto`] switches to sparse.
    pub crossover: usize,
    /// Whether sparse factorizations use the block-triangular-form (BTF)
    /// decomposition of [`super::structure`]: permute to block upper
    /// triangular via Dulmage–Mendelsohn, factor only the diagonal
    /// blocks, and solve by block back-substitution. On by default for
    /// the sparse backend; irrelevant to the dense kernels. Irreducible
    /// systems (a single block) degenerate to the plain sparse path up
    /// to the one-time decomposition cost per pattern.
    pub btf: bool,
    /// Fill-ratio escape hatch for [`SolverBackend::Auto`]: once a system
    /// has been factored sparsely, workspaces compare the measured factor
    /// nnz against `fill_limit_pct` percent of the dense `n²` and drop
    /// back to the dense kernels when the factors are no longer sparse
    /// enough to pay for the indirection (ROADMAP: "tuning the crossover
    /// by fill rather than dim alone"). `0` disables the check. Stored as
    /// an integer percentage so the config stays `Eq`/hashable.
    pub fill_limit_pct: u8,
    /// How sweeps and block factorizations under this config may use the
    /// scoped-thread tile scheduler in [`crate::par`]: serial
    /// ([`Parallelism::Off`]), budget-governed ([`Parallelism::Auto`],
    /// the default — degrades to serial on a spent budget or where
    /// threading measures as a loss), or an explicit lane count
    /// ([`Parallelism::Threads`]). Threaded schedules are bitwise-equal
    /// to serial, so this knob is pure performance policy.
    pub par: Parallelism,
}

/// Default [`SolverConfig::fill_limit_pct`]: past ~35% structural fill the
/// left-looking sparse kernels lose their traversal advantage over the
/// vectorized dense elimination (measured on randomized near-dense meshes
/// in the crossover unit tests).
pub const DEFAULT_FILL_LIMIT_PCT: u8 = 35;

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            backend: SolverBackend::Auto,
            crossover: DEFAULT_CROSSOVER,
            btf: true,
            fill_limit_pct: DEFAULT_FILL_LIMIT_PCT,
            par: Parallelism::Auto,
        }
    }
}

impl SolverConfig {
    /// A config that always uses the dense kernels.
    pub const fn dense() -> Self {
        SolverConfig {
            backend: SolverBackend::Dense,
            crossover: DEFAULT_CROSSOVER,
            btf: true,
            fill_limit_pct: DEFAULT_FILL_LIMIT_PCT,
            par: Parallelism::Auto,
        }
    }

    /// A config that always uses the sparse kernels.
    pub const fn sparse() -> Self {
        SolverConfig {
            backend: SolverBackend::Sparse,
            crossover: DEFAULT_CROSSOVER,
            btf: true,
            fill_limit_pct: DEFAULT_FILL_LIMIT_PCT,
            par: Parallelism::Auto,
        }
    }

    /// The same config with the BTF mode switched as given.
    pub const fn with_btf(mut self, btf: bool) -> Self {
        self.btf = btf;
        self
    }

    /// The same config with the tile-scheduler policy switched as given
    /// (see [`SolverConfig::par`]).
    pub const fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The same config with the fill-ratio limit switched as given
    /// (`0` disables the fill-based dense fallback).
    pub const fn with_fill_limit_pct(mut self, pct: u8) -> Self {
        self.fill_limit_pct = pct;
        self
    }

    /// Whether a system of dimension `dim` should use the sparse backend.
    pub fn use_sparse(&self, dim: usize) -> bool {
        match self.backend {
            SolverBackend::Dense => false,
            SolverBackend::Sparse => true,
            SolverBackend::Auto => dim >= self.crossover,
        }
    }

    /// Whether an `Auto`-selected sparse factorization whose measured
    /// factor holds `factor_nnz` structural nonzeros should fall back to
    /// the dense kernels: true once the fill ratio reaches
    /// `fill_limit_pct` percent of the dense `dim²`. Forced
    /// [`SolverBackend::Sparse`] (and `Dense`) configs never flip, and
    /// `fill_limit_pct == 0` disables the check.
    pub fn dense_by_fill(&self, dim: usize, factor_nnz: usize) -> bool {
        self.backend == SolverBackend::Auto
            && self.fill_limit_pct > 0
            && dim > 0
            && factor_nnz * 100 >= usize::from(self.fill_limit_pct) * dim * dim
    }
}

/// Destination for MNA stamps: either a dense matrix (`+=` into the
/// entry) or a [`TripletList`] (append; duplicates are merged at
/// compression time). Assembly code is generic over this trait so both
/// backends are fed from one stamping code path.
pub trait StampSink {
    /// Prepares the sink for a fresh `n x n` assembly, reusing its
    /// allocations (zero the dense matrix, clear the triplet list).
    fn reset(&mut self, n: usize);

    /// Accumulates `v` into entry `(r, c)`.
    fn add(&mut self, r: usize, c: usize, v: f64);
}

impl StampSink for Matrix<f64> {
    fn reset(&mut self, n: usize) {
        if self.rows() != n || self.cols() != n {
            *self = Matrix::zeros(n, n);
        } else {
            self.fill_zero();
        }
    }
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        self[(r, c)] += v;
    }
}

impl StampSink for TripletList<f64> {
    fn reset(&mut self, n: usize) {
        self.clear(n);
    }
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        self.push(r, c, v);
    }
}

/// Unordered coordinate-format assembly buffer.
///
/// MNA stamping appends `(row, col, value)` entries freely — the same
/// entry any number of times — and [`TripletList::compress_into`] sorts
/// and *merges duplicates by accumulation* into well-formed CSC. This is
/// the sparse analogue of the dense path's `+=` on a zeroed matrix.
#[derive(Debug, Clone, Default)]
pub struct TripletList<T> {
    n: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> TripletList<T> {
    /// Creates an empty list for an `n x n` system.
    pub fn new(n: usize) -> Self {
        TripletList {
            n,
            entries: Vec::new(),
        }
    }

    /// Clears the entries and resets the dimension, keeping the
    /// allocation (Newton loops re-stamp every iteration).
    pub fn clear(&mut self, n: usize) {
        self.n = n;
        self.entries.clear();
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of (unmerged) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry; duplicates of the same `(r, c)` accumulate at
    /// compression time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `r` or `c` is out of range.
    #[inline]
    pub fn push(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.n && c < self.n, "triplet ({r}, {c}) out of range");
        self.entries.push((r, c, v));
    }

    /// Sorts the entries column-major and merges duplicate `(r, c)`
    /// coordinates by accumulation, writing well-formed CSC into `out`
    /// (allocations reused). The list itself is left sorted but intact.
    pub fn compress_into(&mut self, out: &mut CscMatrix<T>) {
        self.entries.sort_unstable_by_key(|e| (e.1, e.0));
        out.n = self.n;
        out.col_ptr.clear();
        out.row_idx.clear();
        out.values.clear();
        out.col_ptr.push(0);
        let mut col = 0usize;
        let mut prev: Option<(usize, usize)> = None;
        for &(r, c, v) in &self.entries {
            if prev == Some((r, c)) {
                // lint:allow(panic) — `prev` is only `Some` after a prior
                // iteration pushed a value, so `values` is nonempty here.
                *out.values.last_mut().expect("merge follows a push") += v;
                continue;
            }
            while col < c {
                out.col_ptr.push(out.row_idx.len());
                col += 1;
            }
            out.row_idx.push(r);
            out.values.push(v);
            prev = Some((r, c));
        }
        while col < self.n {
            out.col_ptr.push(out.row_idx.len());
            col += 1;
        }
    }

    /// Accumulates every entry into a dense matrix with `+=` — the
    /// reference semantics the compressed form must reproduce
    /// (equivalence-tested against [`TripletList::compress_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `m` is smaller than the triplet dimension.
    pub fn scatter_add(&self, m: &mut Matrix<T>) {
        for &(r, c, v) in &self.entries {
            m[(r, c)] += v;
        }
    }
}

/// Compressed-sparse-column matrix: column `j`'s entries live at
/// `col_ptr[j]..col_ptr[j+1]` in `row_idx`/`values`, rows ascending
/// within a column, no duplicates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CscMatrix<T> {
    pub(crate) n: usize,
    pub(crate) col_ptr: Vec<usize>,
    pub(crate) row_idx: Vec<usize>,
    pub(crate) values: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// An empty 0-dimensional matrix whose buffers
    /// [`TripletList::compress_into`] or [`CscMatrix::from_dense_into`]
    /// fill.
    pub fn empty() -> Self {
        CscMatrix {
            n: 0,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column pointer array (`n + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices, column-major.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Values, column-major, parallel to [`CscMatrix::row_idx`].
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable values — rewrite in place when only numbers change and the
    /// pattern is fixed (the AC sweep rewrites `G + jwC` per frequency).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Row indices of column `j`.
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Gathers the structural nonzeros of a dense matrix (exact zeros are
    /// dropped) into this matrix, reusing its allocations. The transient
    /// Newton loop rescans its dense Jacobian through this every
    /// iteration; an unchanged pattern then hits the
    /// [`SparseLu::refactor`] symbolic fast path.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not square.
    pub fn from_dense_into(&mut self, m: &Matrix<T>) {
        assert_eq!(m.rows(), m.cols(), "CSC conversion requires square");
        let n = m.rows();
        self.n = n;
        self.col_ptr.clear();
        self.row_idx.clear();
        self.values.clear();
        self.col_ptr.push(0);
        for c in 0..n {
            for r in 0..n {
                let v = m[(r, c)];
                if v != T::zero() {
                    self.row_idx.push(r);
                    self.values.push(v);
                }
            }
            self.col_ptr.push(self.row_idx.len());
        }
    }

    /// [`CscMatrix::from_dense_into`] into a fresh matrix.
    pub fn from_dense(m: &Matrix<T>) -> Self {
        let mut out = CscMatrix::empty();
        out.from_dense_into(m);
        out
    }

    /// Expands to a dense matrix (tests and diagnostics).
    pub fn to_dense(&self) -> Matrix<T> {
        let mut m = Matrix::zeros(self.n, self.n);
        for j in 0..self.n {
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                m[(self.row_idx[p], j)] += self.values[p];
            }
        }
        m
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the dimension.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![T::zero(); self.n];
        for (j, &xj) in x.iter().enumerate() {
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                y[self.row_idx[p]] += self.values[p] * xj;
            }
        }
        y
    }
}

/// Fill-reducing column ordering: minimum degree on the symmetrized
/// pattern `A + Aᵀ` (the AMD family, without the "approximate" degree
/// update — exact degrees are affordable at the few-hundred dimensions
/// this backend targets).
///
/// Deterministic: ties break toward the smallest node index, so the same
/// pattern always yields the same ordering. Returns `q` with `q[k]` the
/// original column eliminated at step `k` — always a valid permutation,
/// even for patterns with empty columns.
pub fn amd_order(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> Vec<usize> {
    use std::collections::BTreeSet;
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for j in 0..n {
        for &i in &row_idx[col_ptr[j]..col_ptr[j + 1]] {
            if i != j {
                adj[i].insert(j);
                adj[j].insert(i);
            }
        }
    }
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| (adj[v].len(), v))
            // lint:allow(panic) — exactly one node is retired per step, so
            // after `k < n` steps `n - k > 0` nodes remain alive.
            .expect("one alive node per step");
        order.push(v);
        alive[v] = false;
        let neighbors: Vec<usize> = adj[v].iter().copied().collect();
        // Eliminating v turns its neighborhood into a clique.
        for (ai, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[ai + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        for &u in &neighbors {
            adj[u].remove(&v);
        }
        adj[v].clear();
    }
    order
}

/// Sparse LU factorization `PAQ = LU` with partial pivoting.
///
/// Columns are pre-permuted by the fill-reducing [`amd_order`] (`Q`);
/// rows are pivoted for stability during the numeric phase (`P`). The
/// factorization is the Gilbert–Peierls left-looking algorithm: each
/// column's fill pattern is discovered by a depth-first search over the
/// partially built `L`, then eliminated through a dense accumulator over
/// exactly that pattern.
///
/// [`SparseLu::refactor`] is the same-pattern fast path mirroring
/// [`super::LuFactors::refactor`]: when the input pattern is unchanged it
/// reuses the cached column ordering and every allocation, and its result
/// is bitwise-equal to a fresh [`SparseLu::factor`] of the same matrix
/// (property-tested in `tests/proptest_sparse.rs`).
#[derive(Debug, Clone, Default)]
pub struct SparseLu<T> {
    n: usize,
    /// Fill-reducing column order: column `q[k]` eliminated at step `k`.
    q: Vec<usize>,
    /// Row pivots: original row `p[k]` pivoted at step `k`.
    p: Vec<usize>,
    /// Inverse row pivots: `pinv[i]` = step at which original row `i`
    /// became pivotal ([`UNPIVOTED`] during factorization).
    pinv: Vec<usize>,
    l_colptr: Vec<usize>,
    l_rowidx: Vec<usize>,
    l_values: Vec<T>,
    u_colptr: Vec<usize>,
    u_rowidx: Vec<usize>,
    u_values: Vec<T>,
    /// Pattern of the last factored matrix, for the refactor fast path.
    a_colptr: Vec<usize>,
    a_rowidx: Vec<usize>,
    /// Dense accumulator for the current column.
    xw: Vec<T>,
    /// DFS visited marks, keyed by elimination step.
    flag: Vec<usize>,
    /// Reach of the current column in topological order (`xi[top..n]`).
    xi: Vec<usize>,
    /// DFS node stack.
    stack: Vec<usize>,
    /// DFS per-node child cursor stack.
    pstack: Vec<usize>,
}

impl<T: Scalar> SparseLu<T> {
    /// Creates an empty factorization whose buffers
    /// [`SparseLu::refactor`] fills; solving before a successful refactor
    /// panics on the dimension check.
    pub fn empty() -> Self {
        SparseLu::default()
    }

    /// Dimension of the factored system (0 before the first factor).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural nonzeros in the computed factors `L + U` (fill metric;
    /// the AMD proptests compare this against a natural-order
    /// factorization).
    pub fn factor_nnz(&self) -> usize {
        self.l_values.len() + self.u_values.len()
    }

    /// The fill-reducing column order of the last factorization.
    pub fn col_order(&self) -> &[usize] {
        &self.q
    }

    /// Factors `a` with an [`amd_order`] column permutation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSparse`] with the failing column in
    /// *original* numbering if no acceptable pivot survives, matching the
    /// dense kernels' singular reporting.
    pub fn factor(a: &CscMatrix<T>, pivot_floor: f64) -> Result<Self, SimError> {
        let mut f = SparseLu::empty();
        f.refactor(a, pivot_floor)?;
        Ok(f)
    }

    /// Factors `a` under a caller-supplied column order (the AMD
    /// proptests use this to compare fill against the natural order).
    ///
    /// # Errors
    ///
    /// Same contract as [`SparseLu::factor`].
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..a.dim()`.
    pub fn factor_with_order(
        a: &CscMatrix<T>,
        order: &[usize],
        pivot_floor: f64,
    ) -> Result<Self, SimError> {
        assert_eq!(order.len(), a.n, "order length mismatch");
        let mut seen = vec![false; a.n];
        for &j in order {
            assert!(j < a.n && !seen[j], "order is not a permutation");
            seen[j] = true;
        }
        let mut f = SparseLu::empty();
        f.n = a.n;
        f.q = order.to_vec();
        f.a_colptr.clone_from(&a.col_ptr);
        f.a_rowidx.clone_from(&a.row_idx);
        f.factor_numeric(a, pivot_floor)?;
        Ok(f)
    }

    /// Re-factors `a` into this object's buffers. When `a` has the same
    /// nonzero pattern as the previous factorization the cached
    /// fill-reducing column order is reused and no symbolic-analysis
    /// allocation happens — the Newton fast path. A changed pattern
    /// transparently recomputes the ordering *after* a structural
    /// preflight ([`super::structure::structural_check`]): a pattern
    /// whose structural rank falls short of the dimension is rejected
    /// before any factorization work, once per pattern (the same-pattern
    /// fast path never re-runs the check).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StructurallySingular`] from the preflight on a
    /// rank-deficient pattern, or [`SimError::SingularSparse`] like
    /// [`SparseLu::factor`] for a numerically singular system; on error
    /// the stored factorization is garbage and must be refactored before
    /// the next solve.
    pub fn refactor(&mut self, a: &CscMatrix<T>, pivot_floor: f64) -> Result<(), SimError> {
        self.refactor_inner(a, pivot_floor, true)
    }

    /// [`SparseLu::refactor`] with the structural preflight skipped —
    /// for callers that already know the pattern has full structural
    /// rank (the BTF diagonal blocks are strongly connected components
    /// of a matched graph, hence structurally nonsingular by
    /// construction).
    pub(crate) fn refactor_unchecked(
        &mut self,
        a: &CscMatrix<T>,
        pivot_floor: f64,
    ) -> Result<(), SimError> {
        self.refactor_inner(a, pivot_floor, false)
    }

    fn refactor_inner(
        &mut self,
        a: &CscMatrix<T>,
        pivot_floor: f64,
        preflight: bool,
    ) -> Result<(), SimError> {
        let same_pattern =
            self.n == a.n && self.a_colptr == a.col_ptr && self.a_rowidx == a.row_idx;
        if !same_pattern {
            if preflight {
                super::structure::structural_check(a.n, &a.col_ptr, &a.row_idx)?;
            }
            self.q = amd_order(a.n, &a.col_ptr, &a.row_idx);
            self.a_colptr.clone_from(&a.col_ptr);
            self.a_rowidx.clone_from(&a.row_idx);
            self.n = a.n;
        }
        self.factor_numeric(a, pivot_floor)
    }

    fn factor_numeric(&mut self, a: &CscMatrix<T>, pivot_floor: f64) -> Result<(), SimError> {
        let n = self.n;
        self.l_colptr.clear();
        self.l_colptr.push(0);
        self.l_rowidx.clear();
        self.l_values.clear();
        self.u_colptr.clear();
        self.u_colptr.push(0);
        self.u_rowidx.clear();
        self.u_values.clear();
        self.pinv.clear();
        self.pinv.resize(n, UNPIVOTED);
        self.p.clear();
        self.p.resize(n, 0);
        self.xw.clear();
        self.xw.resize(n, T::zero());
        self.flag.clear();
        self.flag.resize(n, 0);
        self.xi.clear();
        self.xi.resize(n, 0);
        self.stack.clear();
        self.pstack.clear();
        for k in 0..n {
            let col = self.q[k];
            let mark = k + 1;
            // Symbolic phase: depth-first search from the pattern of
            // A[:, col] through the columns of the partially built L
            // discovers the fill pattern, emitted in topological order
            // into xi[top..n] (dependencies first).
            let mut top = n;
            for &root in a.col_rows(col) {
                if self.flag[root] == mark {
                    continue;
                }
                self.flag[root] = mark;
                self.stack.push(root);
                self.pstack.push(match self.pinv[root] {
                    UNPIVOTED => 0,
                    kp => self.l_colptr[kp],
                });
                while let Some(&node) = self.stack.last() {
                    let depth = self.stack.len() - 1;
                    let end = match self.pinv[node] {
                        UNPIVOTED => 0,
                        kp => self.l_colptr[kp + 1],
                    };
                    let mut cursor = self.pstack[depth];
                    let mut descended = false;
                    while cursor < end {
                        let child = self.l_rowidx[cursor];
                        cursor += 1;
                        if self.flag[child] != mark {
                            self.pstack[depth] = cursor;
                            self.flag[child] = mark;
                            self.stack.push(child);
                            self.pstack.push(match self.pinv[child] {
                                UNPIVOTED => 0,
                                kp => self.l_colptr[kp],
                            });
                            descended = true;
                            break;
                        }
                    }
                    if descended {
                        continue;
                    }
                    self.pstack[depth] = cursor;
                    self.stack.pop();
                    self.pstack.pop();
                    top -= 1;
                    self.xi[top] = node;
                }
            }
            // Numeric phase: scatter A[:, col] into the dense
            // accumulator, then eliminate in topological order.
            for idx in top..n {
                self.xw[self.xi[idx]] = T::zero();
            }
            let (rows, vals) = {
                let s = a.col_ptr[col];
                let e = a.col_ptr[col + 1];
                (&a.row_idx[s..e], &a.values[s..e])
            };
            for (&r, &v) in rows.iter().zip(vals) {
                self.xw[r] += v;
            }
            for idx in top..n {
                let i = self.xi[idx];
                let kp = self.pinv[i];
                if kp == UNPIVOTED {
                    continue;
                }
                // L's unit diagonal is stored first in each column; the
                // update loop skips it.
                let xj = self.xw[i];
                for pp in self.l_colptr[kp] + 1..self.l_colptr[kp + 1] {
                    let upd = self.l_values[pp] * xj;
                    self.xw[self.l_rowidx[pp]] -= upd;
                }
            }
            // Partial pivoting over the not-yet-pivotal rows of the
            // pattern: same strict `>` magnitude comparison as the dense
            // kernels. Already-pivotal rows are this column of U.
            let mut ipiv = UNPIVOTED;
            let mut best = -1.0f64;
            for idx in top..n {
                let i = self.xi[idx];
                let kp = self.pinv[i];
                if kp == UNPIVOTED {
                    let t = self.xw[i].abs();
                    if t > best {
                        best = t;
                        ipiv = i;
                    }
                } else {
                    self.u_rowidx.push(kp);
                    self.u_values.push(self.xw[i]);
                }
            }
            if ipiv == UNPIVOTED || best <= pivot_floor || !best.is_finite() {
                return Err(SimError::SingularSparse { column: col });
            }
            let pivot = self.xw[ipiv];
            self.u_rowidx.push(k);
            self.u_values.push(pivot);
            self.u_colptr.push(self.u_rowidx.len());
            self.pinv[ipiv] = k;
            self.p[k] = ipiv;
            self.l_rowidx.push(ipiv);
            self.l_values.push(T::one());
            for idx in top..n {
                let i = self.xi[idx];
                if self.pinv[i] == UNPIVOTED {
                    self.l_rowidx.push(i);
                    self.l_values.push(self.xw[i] / pivot);
                }
                self.xw[i] = T::zero();
            }
            self.l_colptr.push(self.l_rowidx.len());
        }
        // Finalize: remap the factors' row indices straight into
        // *solution* coordinates (original row i at pivot step pinv[i]
        // lands at output slot q[pinv[i]]), so the substitution passes
        // read and write the caller-visible solution buffer directly with
        // no scratch permutation vector.
        for ri in &mut self.l_rowidx {
            *ri = self.q[self.pinv[*ri]];
        }
        for ri in &mut self.u_rowidx {
            *ri = self.q[*ri];
        }
        Ok(())
    }

    /// Solves `A x = b` for the factored `A`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-provided buffer, reusing its
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        let n = self.n;
        assert_eq!(b.len(), n, "dimension mismatch");
        x.clear();
        x.resize(n, T::zero());
        // Permuted right-hand side: pivot step k reads original row p[k]
        // and lives at solution slot q[k].
        for k in 0..n {
            x[self.q[k]] = b[self.p[k]];
        }
        // Forward substitution; L's unit diagonal is stored first in each
        // column and skipped.
        for j in 0..n {
            let xj = x[self.q[j]];
            for pp in self.l_colptr[j] + 1..self.l_colptr[j + 1] {
                let upd = self.l_values[pp] * xj;
                x[self.l_rowidx[pp]] -= upd;
            }
        }
        // Back substitution; U's diagonal is stored last in each column.
        for j in (0..n).rev() {
            let s = self.u_colptr[j];
            let e = self.u_colptr[j + 1];
            let xj = x[self.q[j]] / self.u_values[e - 1];
            x[self.q[j]] = xj;
            for pp in s..e - 1 {
                let upd = self.u_values[pp] * xj;
                x[self.u_rowidx[pp]] -= upd;
            }
        }
    }

    /// Solves `A X = B` for `lanes` right-hand sides in one traversal of
    /// the sparse factors, with `b` and `x` in lane-innermost layout
    /// (`[i * lanes + lane]`). Each lane performs the exact arithmetic of
    /// [`SparseLu::solve_into`] in the exact order (permutation, forward
    /// over L's columns, backward over U's columns), so every lane's
    /// solution is bitwise-equal to a scalar solve of that lane; the
    /// fusion shares the single walk over the factor indices/values
    /// across all lanes.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim * lanes`.
    pub fn solve_multi_into(&self, b: &[T], lanes: usize, x: &mut Vec<T>) {
        let n = self.n;
        assert_eq!(b.len(), n * lanes, "dimension mismatch");
        x.clear();
        x.resize(n * lanes, T::zero());
        for k in 0..n {
            let (src, dst) = (self.p[k] * lanes, self.q[k] * lanes);
            x[dst..dst + lanes].copy_from_slice(&b[src..src + lanes]);
        }
        // Per-column pivot values, copied out so the scatter updates can
        // borrow `x` mutably.
        let mut xj = vec![T::zero(); lanes];
        // Forward substitution; L's unit diagonal is stored first in each
        // column and skipped.
        for j in 0..n {
            let base = self.q[j] * lanes;
            xj.copy_from_slice(&x[base..base + lanes]);
            for pp in self.l_colptr[j] + 1..self.l_colptr[j + 1] {
                let l = self.l_values[pp];
                let rb = self.l_rowidx[pp] * lanes;
                for (lane, &v) in xj.iter().enumerate() {
                    let upd = l * v;
                    x[rb + lane] -= upd;
                }
            }
        }
        // Back substitution; U's diagonal is stored last in each column.
        for j in (0..n).rev() {
            let s = self.u_colptr[j];
            let e = self.u_colptr[j + 1];
            let d = self.u_values[e - 1];
            let base = self.q[j] * lanes;
            for (lane, slot) in xj.iter_mut().enumerate() {
                *slot = x[base + lane] / d;
                x[base + lane] = *slot;
            }
            for pp in s..e - 1 {
                let u = self.u_values[pp];
                let rb = self.u_rowidx[pp] * lanes;
                for (lane, &v) in xj.iter().enumerate() {
                    let upd = u * v;
                    x[rb + lane] -= upd;
                }
            }
        }
    }
}

impl<T: Scalar> LinearSolver<T> for SparseLu<T> {
    fn dim(&self) -> usize {
        self.n
    }
    fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        SparseLu::solve_into(self, b, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::linalg::LuFactors;

    fn csc_of(rows: &[Vec<f64>]) -> CscMatrix<f64> {
        CscMatrix::from_dense(&Matrix::from_rows(rows))
    }

    #[test]
    fn triplet_compress_merges_duplicates() {
        let mut t = TripletList::new(3);
        t.push(0, 0, 1.0);
        t.push(2, 1, 5.0);
        t.push(0, 0, 2.0); // duplicate of (0, 0)
        t.push(1, 2, -1.0);
        t.push(2, 1, 0.5); // duplicate of (2, 1)
        let mut csc = CscMatrix::empty();
        t.compress_into(&mut csc);
        assert_eq!(csc.dim(), 3);
        assert_eq!(csc.nnz(), 3);
        assert_eq!(csc.col_ptr(), &[0, 1, 2, 3]);
        assert_eq!(csc.row_idx(), &[0, 2, 1]);
        assert_eq!(csc.values(), &[3.0, 5.5, -1.0]);
    }

    #[test]
    fn triplet_compress_matches_dense_scatter() {
        let mut t = TripletList::new(4);
        for (r, c, v) in [
            (3, 0, 2.0),
            (0, 0, 1.0),
            (3, 0, -0.5),
            (1, 3, 4.0),
            (2, 2, 1.5),
            (1, 3, 1.0),
            (0, 1, -2.0),
        ] {
            t.push(r, c, v);
        }
        let mut dense = Matrix::zeros(4, 4);
        t.scatter_add(&mut dense);
        let mut csc = CscMatrix::empty();
        t.compress_into(&mut csc);
        assert_eq!(csc.to_dense(), dense);
    }

    #[test]
    fn empty_trailing_columns_are_well_formed() {
        let mut t = TripletList::new(3);
        t.push(1, 0, 7.0);
        let mut csc = CscMatrix::empty();
        t.compress_into(&mut csc);
        assert_eq!(csc.col_ptr(), &[0, 1, 1, 1]);
    }

    #[test]
    fn sparse_solve_matches_dense_on_known_system() {
        let rows = vec![
            vec![4.0, 1.0, 0.0, 0.0],
            vec![1.0, 5.0, 2.0, 0.0],
            vec![0.0, 2.0, 6.0, 1.0],
            vec![0.0, 0.0, 1.0, 3.0],
        ];
        let a = csc_of(&rows);
        let lu = SparseLu::factor(&a, 1e-300).unwrap();
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = lu.solve(&b);
        let dense = LuFactors::factor(Matrix::from_rows(&rows), 1e-300).unwrap();
        let xd = dense.solve(&b);
        for (s, d) in x.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-12, "{s} vs {d}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = csc_of(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = SparseLu::factor(&a, 1e-300).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_reports_original_column() {
        // Column 1 is a scaled copy of column 0: elimination must fail on
        // whichever of the pair is eliminated second, in original
        // numbering.
        let a = csc_of(&[
            vec![1.0, 2.0, 0.0],
            vec![2.0, 4.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        match SparseLu::factor(&a, 1e-300) {
            Err(SimError::SingularSparse { column }) => assert!(column < 2),
            other => panic!("expected SingularSparse, got {other:?}"),
        }
    }

    #[test]
    fn refactor_same_pattern_keeps_order_and_matches_fresh_factor() {
        let mut rows = vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 5.0, 2.0],
            vec![0.0, 2.0, 6.0],
        ];
        let a = csc_of(&rows);
        let mut lu = SparseLu::factor(&a, 1e-300).unwrap();
        let q0 = lu.col_order().to_vec();
        // New values, same pattern.
        rows[0][0] = 7.0;
        rows[1][2] = -3.0;
        let a2 = csc_of(&rows);
        lu.refactor(&a2, 1e-300).unwrap();
        assert_eq!(lu.col_order(), &q0[..], "symbolic order must be reused");
        let fresh = SparseLu::factor(&a2, 1e-300).unwrap();
        let b = [1.0, 2.0, 3.0];
        assert_eq!(lu.solve(&b), fresh.solve(&b), "refactor must be bitwise");
    }

    #[test]
    fn refactor_detects_pattern_change() {
        let a = csc_of(&[vec![2.0, 0.0], vec![0.0, 3.0]]);
        let mut lu = SparseLu::factor(&a, 1e-300).unwrap();
        let b = csc_of(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        lu.refactor(&b, 1e-300).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn complex_sparse_solve_roundtrip() {
        let mut t = TripletList::new(3);
        t.push(0, 0, Complex::new(2.0, 1.0));
        t.push(1, 0, Complex::new(0.0, -1.0));
        t.push(1, 1, Complex::new(3.0, 0.0));
        t.push(2, 1, Complex::new(0.5, 0.5));
        t.push(2, 2, Complex::new(1.0, -2.0));
        t.push(0, 2, Complex::new(0.0, 0.3));
        let mut a = CscMatrix::empty();
        t.compress_into(&mut a);
        let xt = vec![
            Complex::new(1.0, -1.0),
            Complex::new(2.0, 0.5),
            Complex::new(-0.3, 0.9),
        ];
        let b = a.mul_vec(&xt);
        let lu = SparseLu::factor(&a, 1e-300).unwrap();
        let x = lu.solve(&b);
        for (g, t) in x.iter().zip(&xt) {
            assert!((*g - *t).norm() < 1e-10);
        }
    }

    #[test]
    fn amd_order_is_permutation_and_defers_hub() {
        // Star graph: hub node 0 touches every leaf. Natural order
        // eliminates the hub first and fills the whole leaf clique; a
        // minimum-degree order peels leaves until the hub's degree decays
        // to a leaf's, so the hub lands in the last two positions.
        let n = 6;
        let mut t = TripletList::new(n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        for leaf in 1..n {
            t.push(0, leaf, 1.0);
            t.push(leaf, 0, 1.0);
        }
        let mut a = CscMatrix::empty();
        t.compress_into(&mut a);
        let q = amd_order(n, a.col_ptr(), a.row_idx());
        let mut seen = vec![false; n];
        for &j in &q {
            assert!(j < n && !seen[j]);
            seen[j] = true;
        }
        let hub_at = q.iter().position(|&j| j == 0).unwrap();
        assert!(hub_at >= n - 2, "hub eliminated too early: step {hub_at}");
    }

    #[test]
    fn stamp_sink_routes_to_both_backends() {
        fn stamp<S: StampSink>(s: &mut S) {
            s.reset(2);
            s.add(0, 0, 1.0);
            s.add(0, 0, 0.5);
            s.add(1, 0, -1.0);
            s.add(1, 1, 2.0);
        }
        let mut dense = Matrix::<f64>::zeros(2, 2);
        stamp(&mut dense);
        let mut trip = TripletList::new(2);
        stamp(&mut trip);
        let mut csc = CscMatrix::empty();
        trip.compress_into(&mut csc);
        assert_eq!(csc.to_dense(), dense);
    }

    #[test]
    fn solver_config_crossover() {
        let auto = SolverConfig::default();
        assert!(!auto.use_sparse(DEFAULT_CROSSOVER - 1));
        assert!(auto.use_sparse(DEFAULT_CROSSOVER));
        assert!(!SolverConfig::dense().use_sparse(10_000));
        assert!(SolverConfig::sparse().use_sparse(1));
    }

    #[test]
    fn dense_by_fill_threshold_sides() {
        let auto = SolverConfig::default();
        let n = 40;
        // Exactly at the threshold counts as dense-worthy (>=), one
        // nonzero below it does not.
        let at = usize::from(DEFAULT_FILL_LIMIT_PCT) * n * n / 100;
        assert!(auto.dense_by_fill(n, at));
        assert!(!auto.dense_by_fill(n, at - 1));
        // A mesh-like factor (a few percent fill) never trips it.
        assert!(!auto.dense_by_fill(n, 6 * n));
        // Forced backends and a disabled limit never flip.
        assert!(!SolverConfig::sparse().dense_by_fill(n, n * n));
        assert!(!SolverConfig::dense().dense_by_fill(n, n * n));
        assert!(!auto.with_fill_limit_pct(0).dense_by_fill(n, n * n));
        assert!(!auto.dense_by_fill(0, 0));
    }

    /// The default fill limit separates the structures the simulator
    /// actually meets: near-dense randomized patterns (broad coupling,
    /// the shape a dense kernel beats sparse on) land above it, while
    /// 2D-mesh factors (PEX extraction shape) stay far below it.
    #[test]
    fn default_fill_limit_separates_mesh_from_near_dense() {
        // Near-dense: a banded matrix whose band spans most of the
        // system fills in past the limit.
        let n = 24;
        let mut dense_ish = Matrix::<f64>::zeros(n, n);
        let mut seed = 88172645463325252u64;
        let mut next = move || {
            // xorshift64 — deterministic, no external RNG.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for r in 0..n {
            for c in 0..n {
                if r != c && r.abs_diff(c) < 3 * n / 4 {
                    dense_ish[(r, c)] = next() - 0.5;
                }
            }
        }
        for r in 0..n {
            let rowsum: f64 = (0..n).map(|c| dense_ish[(r, c)].abs()).sum();
            dense_ish[(r, r)] = rowsum + 1.0;
        }
        let lu = SparseLu::factor(&CscMatrix::from_dense(&dense_ish), 1e-300).expect("dominant");
        let auto = SolverConfig::default();
        assert!(
            auto.dense_by_fill(n, lu.factor_nnz()),
            "near-dense band fill {} below limit at n={n}",
            lu.factor_nnz()
        );

        // Mesh: k x k grid Laplacian stays well under the limit.
        let k = 8;
        let m = k * k;
        let mut mesh = Matrix::<f64>::zeros(m, m);
        for r in 0..k {
            for c in 0..k {
                let i = r * k + c;
                if c + 1 < k {
                    mesh[(i, i + 1)] = -1.0;
                    mesh[(i + 1, i)] = -1.0;
                }
                if r + 1 < k {
                    mesh[(i, i + k)] = -1.0;
                    mesh[(i + k, i)] = -1.0;
                }
            }
        }
        for i in 0..m {
            mesh[(i, i)] = 5.0;
        }
        let mlu = SparseLu::factor(&CscMatrix::from_dense(&mesh), 1e-300).expect("dominant");
        assert!(
            !auto.dense_by_fill(m, mlu.factor_nnz()),
            "mesh fill {} trips limit at n={m}",
            mlu.factor_nnz()
        );
    }
}
