//! Static structural analysis of sparse MNA patterns: maximum bipartite
//! matching, the Dulmage–Mendelsohn coarse decomposition, and a
//! block-triangular-form (BTF) factorization mode for [`SparseLu`].
//!
//! Everything in this module runs purely on the CSC *pattern* — the
//! `col_ptr`/`row_idx` arrays — never the values:
//!
//! 1. [`maximum_matching`] pairs each column with a distinct row holding
//!    one of its structural nonzeros (Kuhn's augmenting-path algorithm).
//!    The matching size is the **structural rank**: an upper bound on the
//!    numeric rank that holds for *every* assignment of values. A column
//!    left unmatched can never be eliminated, so
//!    [`structural_check`] rejects the system with
//!    [`SimError::StructurallySingular`] before any factorization work —
//!    this is the preflight [`SparseLu::refactor`] runs once per pattern,
//!    turning a post-Newton numeric failure (a floating PEX mesh node, a
//!    dangling net) into an immediate, explainable diagnosis.
//! 2. [`btf_decompose`] runs Tarjan's SCC algorithm on the matched
//!    column graph, yielding the coarse Dulmage–Mendelsohn decomposition
//!    of a structurally nonsingular matrix: row/column permutations that
//!    bring it to **block upper triangular** form. [`BtfLu`] exploits it
//!    the way KLU does — factor only the diagonal blocks (each a
//!    strongly connected, structurally nonsingular subsystem with its own
//!    fill-reducing ordering) and solve by block back-substitution, with
//!    the off-diagonal entries applied as cheap rank-updates to the
//!    right-hand side. Reducible systems get strictly less fill than a
//!    whole-matrix ordering; an irreducible system degenerates to one
//!    block, i.e. the plain [`SparseLu`] path plus a one-time
//!    decomposition per pattern.
//!
//! [`SparseSolver`] is the small dispatch enum the DC/AC/transient
//! workspaces hold: plain [`SparseLu`] or [`BtfLu`] as selected by
//! [`super::sparse::SolverConfig::btf`], behind one refactor/solve
//! surface. Both modes cache their symbolic work (ordering, matching,
//! decomposition, scatter maps) keyed on the pattern, so per-iteration
//! and per-frequency re-solves pay for values only.

use std::cell::RefCell;

use super::sparse::{CscMatrix, SparseLu};
use super::{LinearSolver, Scalar};
use crate::error::SimError;
use crate::par::{run_chunks_unit, Parallelism};

/// Sentinel for "no partner" in matching vectors.
pub const UNMATCHED: usize = usize::MAX;

/// Maximum bipartite matching between the columns and rows of an
/// `n x n` sparsity pattern, via Kuhn's augmenting-path algorithm.
///
/// Returns `(rank, match_row)` where `rank` is the matching size (the
/// structural rank of the pattern) and `match_row[j]` is the row matched
/// to column `j`, or [`UNMATCHED`] for a structurally deficient column.
/// Deterministic: columns are processed in ascending order and each
/// column's candidate rows in stored (ascending) order, so the same
/// pattern always yields the same matching.
///
/// Worst case `O(n * nnz)`, which is comfortable at the few-hundred
/// dimensions of extracted MNA meshes; typical MNA patterns (every node
/// column carries its gmin/diagonal stamp) match almost entirely in the
/// first greedy pass.
pub fn maximum_matching(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> (usize, Vec<usize>) {
    let mut match_row = vec![UNMATCHED; n]; // column -> row
    let mut match_col = vec![UNMATCHED; n]; // row -> column
                                            // Stamp-based visited marks: O(1) clear per augmentation attempt.
    let mut visited = vec![0usize; n];
    let mut rank = 0usize;
    for j in 0..n {
        let stamp = j + 1;
        if augment(
            j,
            col_ptr,
            row_idx,
            &mut match_row,
            &mut match_col,
            &mut visited,
            stamp,
        ) {
            rank += 1;
        }
    }
    (rank, match_row)
}

/// One augmenting-path DFS from column `j`: claims a free row or
/// recursively re-routes the column currently holding one. Recursion
/// depth is bounded by the augmenting path length (at most `n`), which is
/// fine at this module's few-hundred-dimension scale.
fn augment(
    j: usize,
    col_ptr: &[usize],
    row_idx: &[usize],
    match_row: &mut [usize],
    match_col: &mut [usize],
    visited: &mut [usize],
    stamp: usize,
) -> bool {
    for &i in &row_idx[col_ptr[j]..col_ptr[j + 1]] {
        if visited[i] == stamp {
            continue;
        }
        visited[i] = stamp;
        let owner = match_col[i];
        if owner == UNMATCHED
            || augment(
                owner, col_ptr, row_idx, match_row, match_col, visited, stamp,
            )
        {
            match_col[i] = j;
            match_row[j] = i;
            return true;
        }
    }
    false
}

/// Structural preflight: verifies the pattern has full structural rank,
/// returning the matching for downstream use ([`btf_decompose`]).
///
/// # Errors
///
/// [`SimError::StructurallySingular`] naming the first unmatched column
/// (original numbering), the structural rank, and the dimension.
pub fn structural_check(
    n: usize,
    col_ptr: &[usize],
    row_idx: &[usize],
) -> Result<Vec<usize>, SimError> {
    let (rank, match_row) = maximum_matching(n, col_ptr, row_idx);
    if rank < n {
        let column = match_row
            .iter()
            .position(|&r| r == UNMATCHED)
            .unwrap_or(n - 1);
        return Err(SimError::StructurallySingular {
            column,
            structural_rank: rank,
            dim: n,
        });
    }
    Ok(match_row)
}

/// The coarse Dulmage–Mendelsohn decomposition of a structurally
/// nonsingular pattern: permutations bringing it to block *upper*
/// triangular form, with the diagonal blocks the strongly connected
/// components of the matched column graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BtfDecomposition {
    /// Original row at permuted position `k` (aligned with `col_perm`
    /// through the matching, so every diagonal position is structurally
    /// nonzero).
    pub row_perm: Vec<usize>,
    /// Original column at permuted position `k`.
    pub col_perm: Vec<usize>,
    /// Block `b` spans permuted positions `block_ptr[b]..block_ptr[b+1]`;
    /// `block_ptr.len()` is the block count plus one.
    pub block_ptr: Vec<usize>,
}

impl BtfDecomposition {
    /// Number of diagonal blocks.
    pub fn nblocks(&self) -> usize {
        self.block_ptr.len().saturating_sub(1)
    }
}

/// Computes the BTF permutation of a fully matched pattern: relabel rows
/// by the matching (so the diagonal is structurally nonzero), run
/// Tarjan's SCC algorithm on the resulting column digraph, and order the
/// components so every cross-component entry lands *above* the diagonal
/// blocks. `match_row` must be a full matching as returned by
/// [`structural_check`].
///
/// Deterministic: Tarjan roots and edge lists are visited in ascending
/// order, and columns keep their relative order inside each block.
///
/// # Panics
///
/// Panics (in debug builds) if `match_row` is not a full matching.
pub fn btf_decompose(
    n: usize,
    col_ptr: &[usize],
    row_idx: &[usize],
    match_row: &[usize],
) -> BtfDecomposition {
    debug_assert_eq!(match_row.len(), n);
    // rinv[original row] = matched column: the row relabeling that puts
    // the matching on the diagonal.
    let mut rinv = vec![UNMATCHED; n];
    for (j, &r) in match_row.iter().enumerate() {
        debug_assert!(r != UNMATCHED, "btf_decompose requires a full matching");
        rinv[r] = j;
    }
    // Column digraph: edge j -> rinv[i] for each structural nonzero
    // (i, j) of the relabeled matrix (self-loops dropped). A cross-SCC
    // edge j -> w then forces w's component to finish — and pop — first.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, targets) in adj.iter_mut().enumerate() {
        for &i in &row_idx[col_ptr[j]..col_ptr[j + 1]] {
            let w = rinv[i];
            if w != j {
                targets.push(w);
            }
        }
    }
    // Iterative Tarjan (explicit DFS stack: deep extraction meshes would
    // overflow the call stack recursively). Components are numbered in
    // pop order, which for this edge orientation makes every
    // cross-component entry sit in a *later* column block than its row
    // block: block upper triangular.
    let mut index = vec![UNMATCHED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNMATCHED; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();
    let mut next_index = 0usize;
    let mut ncomp = 0usize;
    for root in 0..n {
        if index[root] != UNMATCHED {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        scc_stack.push(root);
        on_stack[root] = true;
        call.push((root, 0));
        while let Some(frame) = call.last_mut() {
            let v = frame.0;
            if frame.1 < adj[v].len() {
                let w = adj[v][frame.1];
                frame.1 += 1;
                if index[w] == UNMATCHED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    scc_stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    let u = parent.0;
                    low[u] = low[u].min(low[v]);
                }
                if low[v] == index[v] {
                    while let Some(w) = scc_stack.pop() {
                        on_stack[w] = false;
                        comp[w] = ncomp;
                        if w == v {
                            break;
                        }
                    }
                    ncomp += 1;
                }
            }
        }
    }
    // Columns grouped by component id (= pop order), keeping ascending
    // column order inside each block.
    let mut sizes = vec![0usize; ncomp];
    for &c in &comp {
        sizes[c] += 1;
    }
    let mut block_ptr = Vec::with_capacity(ncomp + 1);
    block_ptr.push(0usize);
    let mut acc = 0usize;
    for &s in &sizes {
        acc += s;
        block_ptr.push(acc);
    }
    let mut cursor = block_ptr.clone();
    let mut col_perm = vec![0usize; n];
    for (j, &c) in comp.iter().enumerate() {
        col_perm[cursor[c]] = j;
        cursor[c] += 1;
    }
    let row_perm: Vec<usize> = col_perm.iter().map(|&j| match_row[j]).collect();
    BtfDecomposition {
        row_perm,
        col_perm,
        block_ptr,
    }
}

/// Reusable right-hand-side / per-block scratch of [`BtfLu::solve_into`],
/// behind a `RefCell` because the [`LinearSolver`] solve surface is
/// `&self` (solvers are not shared across threads; every workspace owns
/// its own).
#[derive(Debug, Clone, Default)]
struct BtfScratch<T> {
    /// Permuted right-hand side, consumed block by block.
    bp: Vec<T>,
    /// Per-block solution buffer.
    xb: Vec<T>,
}

/// One tile of the parallel per-block refactor in [`BtfLu::refactor`]:
/// the block's factorization, its sub-matrix, and the lane-recorded
/// first error of the chunk.
struct BlockTile<'a, T> {
    lu: &'a mut SparseLu<T>,
    blk: &'a CscMatrix<T>,
    err: Option<SimError>,
}

/// Block-triangular-form sparse LU: the BTF mode of the sparse backend.
///
/// On a pattern change the structural preflight, the
/// [`btf_decompose`] permutation, the per-block sub-matrices, and a
/// per-entry scatter map are rebuilt; a same-pattern
/// [`BtfLu::refactor`] is then a pure value scatter plus per-block
/// [`SparseLu`] refactors (each reusing its own symbolic analysis), so
/// Newton iterations and AC frequency points pay no structural work.
/// Only the diagonal blocks are factored; the entries above them are
/// stored raw and applied to the right-hand side during block
/// back-substitution.
#[derive(Debug, Clone, Default)]
pub struct BtfLu<T> {
    n: usize,
    /// Pattern of the last decomposed matrix (fast-path key).
    a_colptr: Vec<usize>,
    a_rowidx: Vec<usize>,
    btf: BtfDecomposition,
    /// Position of original row / column in the permuted system.
    rpos: Vec<usize>,
    /// Diagonal-block sub-matrices, local (block-relative) coordinates.
    blocks: Vec<CscMatrix<T>>,
    /// Per-block factorizations, parallel to `blocks`.
    lus: Vec<SparseLu<T>>,
    /// Per-entry destination, parallel to the input CSC values:
    /// `(block, value position)` for a diagonal-block entry,
    /// `(usize::MAX, slot)` for an off-diagonal one.
    dest: Vec<(usize, usize)>,
    /// Off-diagonal entries grouped by *permuted column*: column `k`'s
    /// entries sit at `off_colptr[k]..off_colptr[k+1]`, with permuted row
    /// in `off_rowidx` and the value in `off_vals`.
    off_colptr: Vec<usize>,
    off_rowidx: Vec<usize>,
    off_vals: Vec<T>,
    scratch: RefCell<BtfScratch<T>>,
    /// Tile-scheduler policy for the per-block numeric refactors; the
    /// serial off-diagonal back-substitution is unaffected.
    par: Parallelism,
}

impl<T: Scalar> BtfLu<T> {
    /// Creates an empty factorization whose buffers [`BtfLu::refactor`]
    /// fills; solving before a successful refactor panics on the
    /// dimension check.
    pub fn empty() -> Self {
        BtfLu::default()
    }

    /// Dimension of the factored system (0 before the first refactor).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Sets the tile-scheduler policy for the per-block numeric refactors
    /// (default [`Parallelism::Auto`]). Threaded and serial refactors are
    /// bitwise-identical — each block's factorization reads only its own
    /// sub-matrix — so this is pure performance policy.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// Number of diagonal blocks in the current decomposition.
    pub fn nblocks(&self) -> usize {
        self.btf.nblocks()
    }

    /// The current decomposition (empty before the first refactor).
    pub fn decomposition(&self) -> &BtfDecomposition {
        &self.btf
    }

    /// Structural nonzeros across every block's computed `L + U` factors
    /// plus the raw off-diagonal entries — the fill metric comparable to
    /// [`SparseLu::factor_nnz`] on the whole matrix.
    pub fn factor_nnz(&self) -> usize {
        self.lus.iter().map(SparseLu::factor_nnz).sum::<usize>() + self.off_vals.len()
    }

    /// Rebuilds the decomposition and scatter maps for a new pattern.
    /// The pattern cache is only updated on success, so a structurally
    /// singular pattern is re-diagnosed (and re-reported) on every
    /// attempt instead of silently passing the fast path.
    fn build_structure(&mut self, a: &CscMatrix<T>) -> Result<(), SimError> {
        let n = a.dim();
        let match_row = structural_check(n, a.col_ptr(), a.row_idx())?;
        let btf = btf_decompose(n, a.col_ptr(), a.row_idx(), &match_row);
        self.n = n;
        self.rpos.clear();
        self.rpos.resize(n, 0);
        let mut cpos = vec![0usize; n];
        for (k, (&r, &c)) in btf.row_perm.iter().zip(&btf.col_perm).enumerate() {
            self.rpos[r] = k;
            cpos[c] = k;
        }
        // Which block a permuted position belongs to.
        let mut block_of = vec![0usize; n];
        for b in 0..btf.nblocks() {
            for pos in block_of
                .iter_mut()
                .take(btf.block_ptr[b + 1])
                .skip(btf.block_ptr[b])
            {
                *pos = b;
            }
        }
        let nblocks = btf.nblocks();
        self.blocks.clear();
        self.blocks.resize(nblocks, CscMatrix::empty());
        self.lus.resize(nblocks, SparseLu::empty());
        for (b, blk) in self.blocks.iter_mut().enumerate() {
            let dim = btf.block_ptr[b + 1] - btf.block_ptr[b];
            blk.n = dim;
            blk.col_ptr.clear();
            blk.col_ptr.push(0);
            blk.row_idx.clear();
            blk.values.clear();
        }
        self.dest.clear();
        self.dest.resize(a.nnz(), (0, 0));
        self.off_colptr.clear();
        self.off_colptr.push(0);
        self.off_rowidx.clear();
        self.off_vals.clear();
        // Walk columns in permuted order so both the per-block CSC
        // columns and the off-diagonal groups come out column-major.
        // Within a column, block entries are sorted by permuted row to
        // keep each sub-matrix's rows ascending.
        let mut col_entries: Vec<(usize, usize)> = Vec::new();
        for (&j, &b) in btf.col_perm.iter().zip(&block_of) {
            let start = btf.block_ptr[b];
            col_entries.clear();
            for p in a.col_ptr()[j]..a.col_ptr()[j + 1] {
                let pr = self.rpos[a.row_idx()[p]];
                col_entries.push((pr, p));
            }
            col_entries.sort_unstable();
            for &(pr, p) in &col_entries {
                if pr >= start {
                    debug_assert!(
                        pr < btf.block_ptr[b + 1],
                        "entry below the diagonal blocks contradicts BTF"
                    );
                    let blk = &mut self.blocks[b];
                    self.dest[p] = (b, blk.values.len());
                    blk.row_idx.push(pr - start);
                    blk.values.push(T::zero());
                } else {
                    self.dest[p] = (UNMATCHED, self.off_vals.len());
                    self.off_rowidx.push(pr);
                    self.off_vals.push(T::zero());
                }
            }
            self.off_colptr.push(self.off_rowidx.len());
            let blk = &mut self.blocks[b];
            blk.col_ptr.push(blk.row_idx.len());
        }
        self.btf = btf;
        self.a_colptr.clone_from(&a.col_ptr);
        self.a_rowidx.clone_from(&a.row_idx);
        Ok(())
    }

    /// Re-factors `a` into this object's buffers: structural preflight +
    /// decomposition on a pattern change, then a value scatter and
    /// per-block numeric refactors. Same-pattern refactors are
    /// bitwise-stable: the same input values always produce the same
    /// factors and solutions (property-tested in
    /// `tests/proptest_structure.rs`).
    ///
    /// # Errors
    ///
    /// [`SimError::StructurallySingular`] from the preflight on a
    /// rank-deficient pattern; [`SimError::SingularSparse`] (column in
    /// original numbering) if some diagonal block is numerically
    /// singular. On error the stored factorization is garbage and must be
    /// refactored before the next solve.
    pub fn refactor(&mut self, a: &CscMatrix<T>, pivot_floor: f64) -> Result<(), SimError> {
        let same_pattern =
            self.n == a.dim() && self.a_colptr == a.col_ptr && self.a_rowidx == a.row_idx;
        if !same_pattern {
            self.build_structure(a)?;
        }
        for (p, &v) in a.values().iter().enumerate() {
            let (b, pos) = self.dest[p];
            if b == UNMATCHED {
                self.off_vals[pos] = v;
            } else {
                self.blocks[b].values[pos] = v;
            }
        }
        // Each block's numeric refactor reads only its own sub-matrix, so
        // the diagonal blocks are independent tiles: threaded and serial
        // schedules produce bitwise-identical factors.
        let par = self.block_parallelism();
        let mut tiles: Vec<BlockTile<'_, T>> = self
            .lus
            .iter_mut()
            .zip(self.blocks.iter())
            .map(|(lu, blk)| BlockTile { lu, blk, err: None })
            .collect();
        run_chunks_unit(par, &mut tiles, |_, chunk| {
            for t in chunk.iter_mut() {
                if let Err(e) = t.lu.refactor_unchecked(t.blk, pivot_floor) {
                    // Later blocks of this chunk stay unfactored — exactly
                    // as garbage as the serial abort leaves them.
                    t.err = Some(e);
                    break;
                }
            }
        });
        // In-order error scan: the globally lowest failing block is always
        // reached (every block before it succeeds, so its lane cannot have
        // bailed earlier), hence the reported error matches the serial
        // walk regardless of schedule.
        for (b, t) in tiles.iter_mut().enumerate() {
            if let Some(e) = t.err.take() {
                return Err(match e {
                    SimError::SingularSparse { column } => SimError::SingularSparse {
                        column: self.btf.col_perm[self.btf.block_ptr[b] + column],
                    },
                    other => other,
                });
            }
        }
        Ok(())
    }

    /// Auto-gate for the block refactor: threading pays only when at
    /// least two blocks are big enough to amortize a lane spawn; PEX-mesh
    /// measurements put that floor around two dozen unknowns. Forced
    /// modes pass through untouched.
    fn block_parallelism(&self) -> Parallelism {
        const MIN_PAR_BLOCK_DIM: usize = 24;
        match self.par {
            Parallelism::Auto => {
                let sizeable = self
                    .blocks
                    .iter()
                    .filter(|b| b.dim() >= MIN_PAR_BLOCK_DIM)
                    .count();
                if sizeable >= 2 {
                    Parallelism::Auto
                } else {
                    Parallelism::Off
                }
            }
            forced => forced,
        }
    }

    /// Solves `A x = b` for the factored `A` by block back-substitution:
    /// blocks are solved last to first, and each solved block's
    /// off-diagonal column entries are pushed onto the still-pending
    /// earlier rows of the right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        let n = self.n;
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut scratch = self.scratch.borrow_mut();
        let BtfScratch { bp, xb } = &mut *scratch;
        bp.clear();
        bp.extend(self.btf.row_perm.iter().map(|&r| b[r]));
        x.clear();
        x.resize(n, T::zero());
        for blk in (0..self.blocks.len()).rev() {
            let (s, e) = (self.btf.block_ptr[blk], self.btf.block_ptr[blk + 1]);
            self.lus[blk].solve_into(&bp[s..e], xb);
            x[s..e].copy_from_slice(xb);
            for (k, &xk) in x.iter().enumerate().take(e).skip(s) {
                for t in self.off_colptr[k]..self.off_colptr[k + 1] {
                    let upd = self.off_vals[t] * xk;
                    bp[self.off_rowidx[t]] -= upd;
                }
            }
        }
        // Un-permute through the spent rhs buffer: x currently holds the
        // solution in permuted coordinates.
        bp.copy_from_slice(x);
        for (k, &j) in self.btf.col_perm.iter().enumerate() {
            x[j] = bp[k];
        }
    }

    /// Solves `A x = b`, allocating the solution vector.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }
}

impl<T: Scalar> LinearSolver<T> for BtfLu<T> {
    fn dim(&self) -> usize {
        self.n
    }
    fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        BtfLu::solve_into(self, b, x);
    }
}

/// The sparse backend's mode dispatch: plain whole-matrix [`SparseLu`]
/// or the BTF [`BtfLu`], as selected by
/// [`super::sparse::SolverConfig::btf`]. Workspaces hold one of these and
/// call [`SparseSolver::ensure_mode`] before the first refactor of a
/// solve; a mode switch resets the factorization (and its pattern
/// cache), so structural caches never leak across modes.
#[derive(Debug, Clone)]
pub enum SparseSolver<T> {
    /// Whole-matrix Gilbert–Peierls LU with AMD ordering.
    Plain(SparseLu<T>),
    /// Block-triangular-form factorization over the DM decomposition.
    Btf(BtfLu<T>),
}

impl<T: Scalar> Default for SparseSolver<T> {
    fn default() -> Self {
        SparseSolver::Btf(BtfLu::empty())
    }
}

impl<T: Scalar> SparseSolver<T> {
    /// An empty solver in the given mode.
    pub fn empty(btf: bool) -> Self {
        if btf {
            SparseSolver::Btf(BtfLu::empty())
        } else {
            SparseSolver::Plain(SparseLu::empty())
        }
    }

    /// Whether this solver is in BTF mode.
    pub fn is_btf(&self) -> bool {
        matches!(self, SparseSolver::Btf(_))
    }

    /// Switches the solver to the requested mode, dropping any cached
    /// factorization on a change (the two modes' symbolic caches are not
    /// interchangeable).
    pub fn ensure_mode(&mut self, btf: bool) {
        if self.is_btf() != btf {
            *self = SparseSolver::empty(btf);
        }
    }

    /// Sets the tile-scheduler policy for modes that can fan out (BTF
    /// block refactors); a no-op for the plain whole-matrix mode.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        if let SparseSolver::Btf(lu) = self {
            lu.set_parallelism(par);
        }
    }

    /// Dimension of the factored system (0 before the first refactor).
    pub fn dim(&self) -> usize {
        match self {
            SparseSolver::Plain(lu) => lu.dim(),
            SparseSolver::Btf(lu) => lu.dim(),
        }
    }

    /// Structural nonzeros held by the factorization (fill metric; for
    /// BTF this counts the block factors plus the raw off-diagonal
    /// entries).
    pub fn factor_nnz(&self) -> usize {
        match self {
            SparseSolver::Plain(lu) => lu.factor_nnz(),
            SparseSolver::Btf(lu) => lu.factor_nnz(),
        }
    }

    /// Re-factors `a`, dispatching to the current mode; both modes run
    /// the structural preflight once per pattern.
    ///
    /// # Errors
    ///
    /// [`SimError::StructurallySingular`] or [`SimError::SingularSparse`]
    /// per the mode's contract ([`SparseLu::refactor`] /
    /// [`BtfLu::refactor`]).
    pub fn refactor(&mut self, a: &CscMatrix<T>, pivot_floor: f64) -> Result<(), SimError> {
        match self {
            SparseSolver::Plain(lu) => lu.refactor(a, pivot_floor),
            SparseSolver::Btf(lu) => lu.refactor(a, pivot_floor),
        }
    }

    /// Solves `A x = b` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        match self {
            SparseSolver::Plain(lu) => lu.solve_into(b, x),
            SparseSolver::Btf(lu) => lu.solve_into(b, x),
        }
    }
}

impl<T: Scalar> LinearSolver<T> for SparseSolver<T> {
    fn dim(&self) -> usize {
        SparseSolver::dim(self)
    }
    fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        SparseSolver::solve_into(self, b, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::sparse::TripletList;
    use crate::linalg::Matrix;

    fn csc_of(rows: &[Vec<f64>]) -> CscMatrix<f64> {
        CscMatrix::from_dense(&Matrix::from_rows(rows))
    }

    #[test]
    fn matching_full_rank_on_diagonal() {
        let a = csc_of(&[vec![1.0, 1.0], vec![0.0, 1.0]]);
        let (rank, mr) = maximum_matching(2, a.col_ptr(), a.row_idx());
        assert_eq!(rank, 2);
        assert!(mr.iter().all(|&r| r != UNMATCHED));
    }

    #[test]
    fn matching_detects_empty_column() {
        // Column 2 has no structural entries at all.
        let mut t = TripletList::new(3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(2, 1, 1.0);
        let mut a = CscMatrix::empty();
        t.compress_into(&mut a);
        let (rank, mr) = maximum_matching(3, a.col_ptr(), a.row_idx());
        assert_eq!(rank, 2);
        assert_eq!(mr[2], UNMATCHED);
        match structural_check(3, a.col_ptr(), a.row_idx()) {
            Err(SimError::StructurallySingular {
                column,
                structural_rank,
                dim,
            }) => {
                assert_eq!(column, 2);
                assert_eq!(structural_rank, 2);
                assert_eq!(dim, 3);
            }
            other => panic!("expected StructurallySingular, got {other:?}"),
        }
    }

    #[test]
    fn matching_needs_augmentation() {
        // Columns 0 and 1 both only reach row 0 and row 1, column 2 only
        // row 0: structurally rank 2 no matter the greedy choices.
        let mut t = TripletList::new(3);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 1, 1.0);
        t.push(0, 2, 1.0);
        let mut a = CscMatrix::empty();
        t.compress_into(&mut a);
        let (rank, _) = maximum_matching(3, a.col_ptr(), a.row_idx());
        assert_eq!(rank, 2);
    }

    #[test]
    fn btf_upper_triangular_two_blocks() {
        // A feedforward 2-stage pattern: {0,1} strongly connected, {2,3}
        // strongly connected, coupling only from the first pair into the
        // second's equations (rows 2,3 reading columns 0,1 — i.e. the
        // nonzeros (2,0),(3,1) make edges 0->2, 1->3 in the relabeled
        // graph; no path back).
        let a = csc_of(&[
            vec![1.0, 1.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0, 0.0],
            vec![1.0, 0.0, 1.0, 1.0],
            vec![0.0, 1.0, 1.0, 1.0],
        ]);
        let mr = structural_check(4, a.col_ptr(), a.row_idx()).unwrap();
        let btf = btf_decompose(4, a.col_ptr(), a.row_idx(), &mr);
        assert_eq!(btf.nblocks(), 2);
        // Cross entries must all sit above the diagonal blocks.
        let mut rpos = [0; 4];
        let mut block_of = [0; 4];
        for (k, &r) in btf.row_perm.iter().enumerate() {
            rpos[r] = k;
        }
        for b in 0..btf.nblocks() {
            for slot in &mut block_of[btf.block_ptr[b]..btf.block_ptr[b + 1]] {
                *slot = b;
            }
        }
        for (k, &j) in btf.col_perm.iter().enumerate() {
            for &i in &a.row_idx()[a.col_ptr()[j]..a.col_ptr()[j + 1]] {
                assert!(
                    block_of[rpos[i]] <= block_of[k],
                    "entry below the diagonal blocks"
                );
            }
        }
    }

    #[test]
    fn btf_single_block_on_irreducible() {
        // Fully coupled 3x3: one SCC, one block.
        let a = csc_of(&[
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ]);
        let mr = structural_check(3, a.col_ptr(), a.row_idx()).unwrap();
        let btf = btf_decompose(3, a.col_ptr(), a.row_idx(), &mr);
        assert_eq!(btf.nblocks(), 1);
    }

    #[test]
    fn btf_solve_matches_plain_sparse() {
        let rows = vec![
            vec![4.0, 1.0, 0.0, 0.5, 0.0],
            vec![1.0, 5.0, 0.0, 0.0, 0.2],
            vec![0.3, 0.0, 6.0, 1.0, 0.0],
            vec![0.0, 0.1, 1.0, 3.0, 0.0],
            vec![0.0, 0.0, 0.4, 0.0, 2.0],
        ];
        let a = csc_of(&rows);
        let mut btf = BtfLu::empty();
        btf.refactor(&a, 1e-300).unwrap();
        let plain = SparseLu::factor(&a, 1e-300).unwrap();
        let b = [1.0, -2.0, 3.0, 0.5, -1.0];
        let xb = btf.solve(&b);
        let xp = plain.solve(&b);
        for (u, v) in xb.iter().zip(&xp) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
    }

    #[test]
    fn btf_refactor_same_pattern_is_bitwise_stable() {
        let rows = vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 5.0, 0.0],
            vec![0.7, 0.0, 2.0],
        ];
        let a = csc_of(&rows);
        let mut lu = BtfLu::empty();
        lu.refactor(&a, 1e-300).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x1 = lu.solve(&b);
        let mut fresh = BtfLu::empty();
        fresh.refactor(&a, 1e-300).unwrap();
        lu.refactor(&a, 1e-300).unwrap();
        assert_eq!(lu.solve(&b), x1, "same-pattern refactor must be bitwise");
        assert_eq!(fresh.solve(&b), x1, "fresh decomposition must agree");
    }

    #[test]
    fn btf_structurally_singular_is_rediagnosed() {
        // An empty column fails the preflight on *every* refactor attempt
        // (the pattern cache must not absorb a failing pattern).
        let mut t = TripletList::new(2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        let mut a = CscMatrix::empty();
        t.compress_into(&mut a);
        let mut lu = BtfLu::empty();
        for _ in 0..2 {
            match lu.refactor(&a, 1e-300) {
                Err(SimError::StructurallySingular { column, .. }) => assert_eq!(column, 1),
                other => panic!("expected StructurallySingular, got {other:?}"),
            }
        }
    }

    #[test]
    fn btf_numerically_singular_block_reports_original_column() {
        // Structurally fine, numerically singular: rows 0,1 identical in
        // the {0,1} block.
        let a = csc_of(&[
            vec![1.0, 2.0, 0.0],
            vec![1.0, 2.0, 0.0],
            vec![0.0, 0.5, 3.0],
        ]);
        let mut lu = BtfLu::empty();
        match lu.refactor(&a, 1e-300) {
            Err(SimError::SingularSparse { column }) => assert!(column < 2),
            other => panic!("expected SingularSparse, got {other:?}"),
        }
    }

    #[test]
    fn sparse_solver_mode_switch_resets() {
        let a = csc_of(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let mut s = SparseSolver::<f64>::empty(true);
        s.refactor(&a, 1e-300).unwrap();
        assert!(s.is_btf());
        s.ensure_mode(false);
        assert!(!s.is_btf());
        assert_eq!(s.dim(), 0, "mode switch must drop the factorization");
        s.refactor(&a, 1e-300).unwrap();
        let x = s.solve(&[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn btf_complex_roundtrip() {
        use crate::complex::Complex;
        let mut t = TripletList::new(3);
        t.push(0, 0, Complex::new(2.0, 1.0));
        t.push(1, 0, Complex::new(0.0, -1.0));
        t.push(1, 1, Complex::new(3.0, 0.0));
        t.push(2, 2, Complex::new(1.0, -2.0));
        t.push(0, 2, Complex::new(0.0, 0.3));
        let mut a = CscMatrix::empty();
        t.compress_into(&mut a);
        let xt = vec![
            Complex::new(1.0, -1.0),
            Complex::new(2.0, 0.5),
            Complex::new(-0.3, 0.9),
        ];
        let b = a.mul_vec(&xt);
        let mut lu = BtfLu::empty();
        lu.refactor(&a, 1e-300).unwrap();
        let x = lu.solve(&b);
        for (g, t) in x.iter().zip(&xt) {
            assert!((*g - *t).norm() < 1e-10);
        }
    }
}
