//! Shared low-rank corner-correction machinery (Woodbury identity).
//!
//! The worst-case PVT corner sets of this project share their mesh,
//! passives, sources, and gmin regularization — corners differ only in
//! device stamps, which touch a handful of matrix rows independent of
//! mesh depth. Every corner-batched fast path exploits that the same way:
//! factor the **base corner once**, express sibling `b` as a low-rank
//! update `A_b = A0 + P_R N_b` over the support rows `R`, and recover its
//! solution through the Woodbury identity
//!
//! `x_b = y0 - W (I + N_b W)^{-1} N_b y0`,  `W = A0^{-1} P_R`.
//!
//! This module is the single home of that machinery, generic over the
//! system scalar so all three users share one implementation:
//!
//! - the AC sweep ([`crate::ac::ac_sweep_corners`]) and noise analysis
//!   ([`crate::noise::noise_analysis_corners`]) instantiate it at
//!   [`Complex`](crate::complex::Complex) with the per-frequency stamp
//!   `dG + j·w·dC`;
//! - the settling integration ([`crate::tran`]'s
//!   `step_response_corners`) instantiates it at `f64` with the
//!   trapezoidal companion stamp `dG + (2/h)·dC`.
//!
//! The frequency/time-step dependence enters only through the `combine`
//! closure mapping a stored `(dG, dC)` difference pair to the scalar
//! update, so [`CornerDiff`] itself is built once per corner set and
//! reused across the whole sweep.

use super::{LinearSolver, LuFactors, Scalar};
use crate::error::SimError;

/// The stamp-difference structure of a corner set relative to its base
/// corner: which matrix rows any sibling differs on, and each corner's
/// sparse `(row, col, dG, dC)` difference list. This is the shared
/// skeleton of every base-plus-Woodbury corner correction — the AC sweep,
/// the noise analysis, and the settling integration all build one per
/// evaluation and correct against it per frequency (or, for settling,
/// once per corner set).
#[derive(Debug, Clone, Default)]
pub(crate) struct CornerDiff {
    /// Union of rows any corner's stamps differ on, ascending.
    pub(crate) rows: Vec<usize>,
    /// `row -> position in rows` map (`usize::MAX` off-support).
    pub(crate) row_pos: Vec<usize>,
    /// Per-corner sparse stamp difference vs corner 0 (`diffs[0]` empty).
    pub(crate) diffs: Vec<Vec<(usize, usize, f64, f64)>>,
}

impl CornerDiff {
    /// Computes every corner's dense stamp difference against
    /// `patterns[0]` and the union of affected rows.
    pub(crate) fn from_patterns(
        patterns: &[Vec<(usize, usize, f64, f64)>],
        n: usize,
    ) -> CornerDiff {
        let n2 = n * n;
        let mut g0 = vec![0.0; n2];
        let mut c0 = vec![0.0; n2];
        for &(r, c, g, cc) in &patterns[0] {
            g0[r * n + c] = g;
            c0[r * n + c] = cc;
        }
        let mut gs = vec![0.0; n2];
        let mut cs = vec![0.0; n2];
        let mut diffs: Vec<Vec<(usize, usize, f64, f64)>> = vec![Vec::new()];
        for pat in &patterns[1..] {
            gs.fill(0.0);
            cs.fill(0.0);
            for &(r, c, g, cc) in pat {
                gs[r * n + c] = g;
                cs[r * n + c] = cc;
            }
            let mut d = Vec::new();
            for r in 0..n {
                for c in 0..n {
                    let i = r * n + c;
                    if gs[i] != g0[i] || cs[i] != c0[i] {
                        d.push((r, c, gs[i] - g0[i], cs[i] - c0[i]));
                    }
                }
            }
            diffs.push(d);
        }
        let mut rows: Vec<usize> = diffs.iter().flatten().map(|d| d.0).collect();
        rows.sort_unstable();
        rows.dedup();
        let mut row_pos = vec![usize::MAX; n];
        for (j, &r) in rows.iter().enumerate() {
            row_pos[r] = j;
        }
        CornerDiff {
            rows,
            row_pos,
            diffs,
        }
    }

    /// Number of support rows `|R|` — the rank of every correction.
    pub(crate) fn support(&self) -> usize {
        self.rows.len()
    }

    /// Whether the correction can pay at dimension `n`: the per-frequency
    /// cost is ~`1 + |R|/n` factorization-equivalents, so a support
    /// spanning a third of the system already erases the win.
    pub(crate) fn profitable(&self, n: usize) -> bool {
        3 * self.support() < n
    }
}

/// Solves the correction basis `W = A0^{-1} P_R` — one back-substitution
/// per support row against the factored base system, shared by every
/// corner (and every right-hand side) of a frequency point or time grid.
/// `wflat` is filled column-major: `wflat[j*n..]` is the solution for
/// support row `rows[j]`. The base is taken as a [`LinearSolver`] trait
/// object so the dense and sparse factorizations feed the identical
/// correction path.
pub(crate) fn solve_correction_basis<T: Scalar>(
    base: &dyn LinearSolver<T>,
    rows: &[usize],
    n: usize,
    unit: &mut Vec<T>,
    xcol: &mut Vec<T>,
    wflat: &mut Vec<T>,
) {
    wflat.clear();
    for &rj in rows {
        unit.clear();
        unit.resize(n, T::zero());
        unit[rj] = T::one();
        base.solve_into(unit, xcol);
        wflat.extend_from_slice(xcol);
    }
}

/// Factors one corner's capacitance matrix `S_b = I + N_b W` into
/// `small`, with `combine` mapping each stored `(dG, dC)` difference pair
/// to the system scalar (`dG + j·w·dC` for an AC point, `dG + (2/h)·dC`
/// for the trapezoidal companion) — done once per (corner, point), after
/// which [`corrected_entry`] / [`corrected_vector`] apply it to any
/// number of right-hand sides.
///
/// # Errors
///
/// [`SimError::SingularMatrix`] when the corner shifted the base too hard
/// for the correction to hold (callers fall back to a direct
/// factorization of that corner).
pub(crate) fn factor_correction<T: Scalar>(
    small: &mut LuFactors<T>,
    diff: &[(usize, usize, f64, f64)],
    row_pos: &[usize],
    rn: usize,
    n: usize,
    combine: impl Fn(f64, f64) -> T,
    wflat: &[T],
) -> Result<(), SimError> {
    small.refactor_with(rn, 1e-300, |sm| {
        for i in 0..rn {
            sm[(i, i)] = T::one();
        }
        for &(r, c, dg, dc) in diff {
            let m = combine(dg, dc);
            let jr = row_pos[r];
            for j2 in 0..rn {
                sm[(jr, j2)] += m * wflat[j2 * n + c];
            }
        }
    })
}

/// Woodbury application: entry `o` of corner `b`'s solution recovered
/// from the base solution `y` —
/// `x_b[o] = y[o] - (W S_b^{-1} N_b y)[o]` — at the cost of one sparse
/// product, one `|R| x |R|` solve, and one dot product. `small` must hold
/// the corner's factored correction ([`factor_correction`]) and `combine`
/// must match the one it was factored with.
#[allow(clippy::too_many_arguments)]
pub(crate) fn corrected_entry<T: Scalar>(
    small: &LuFactors<T>,
    diff: &[(usize, usize, f64, f64)],
    row_pos: &[usize],
    wflat: &[T],
    y: &[T],
    o: Option<usize>,
    combine: impl Fn(f64, f64) -> T,
    n: usize,
    rn: usize,
    u: &mut Vec<T>,
    z: &mut Vec<T>,
) -> T {
    let Some(o) = o else {
        return T::zero();
    };
    u.clear();
    u.resize(rn, T::zero());
    for &(r, c, dg, dc) in diff {
        u[row_pos[r]] += combine(dg, dc) * y[c];
    }
    small.solve_into(u, z);
    let mut v = y[o];
    for (j2, zj) in z.iter().enumerate() {
        v -= wflat[j2 * n + o] * *zj;
    }
    v
}

/// Full-vector Woodbury application: corner `b`'s complete solution
/// recovered from the base solution `y` —
/// `x_b = y - W S_b^{-1} N_b y` — at the cost of one sparse product, one
/// `|R| x |R|` solve, and a rank-`|R|` dense update. The settling
/// integration needs the whole state vector (the next time step's
/// right-hand side reads every entry), unlike the AC sweep's single
/// output entry. `x` is overwritten with the corrected solution.
#[allow(clippy::too_many_arguments)]
pub(crate) fn corrected_vector<T: Scalar>(
    small: &LuFactors<T>,
    diff: &[(usize, usize, f64, f64)],
    row_pos: &[usize],
    wflat: &[T],
    y: &[T],
    combine: impl Fn(f64, f64) -> T,
    n: usize,
    rn: usize,
    u: &mut Vec<T>,
    z: &mut Vec<T>,
    x: &mut Vec<T>,
) {
    u.clear();
    u.resize(rn, T::zero());
    for &(r, c, dg, dc) in diff {
        u[row_pos[r]] += combine(dg, dc) * y[c];
    }
    small.solve_into(u, z);
    x.clear();
    x.extend_from_slice(y);
    for (j2, zj) in z.iter().enumerate() {
        let col = &wflat[j2 * n..(j2 + 1) * n];
        for (xi, wij) in x.iter_mut().zip(col) {
            let upd = *wij * *zj;
            *xi -= upd;
        }
    }
}
