//! DC operating-point analysis: damped Newton–Raphson over the nonlinear
//! MNA system, with a gmin-stepping homotopy fallback for hard circuits.
//!
//! The unknown vector is `[v(1), ..., v(N-1), i(V1), ..., i(Vk)]` — node
//! voltages excluding ground followed by voltage-source branch currents.

use crate::device::{MosPolarity, MosRegion};
use crate::error::SimError;
use crate::linalg::sparse::{CscMatrix, SolverConfig, StampSink, TripletList};
use crate::linalg::structure::SparseSolver;
use crate::linalg::{LuFactors, Matrix, RealLuBatch};
use crate::netlist::{Circuit, Element, Mosfet, Node};

/// Reusable buffers for repeated DC solves of same-dimension circuits:
/// the Newton Jacobian, residual, right-hand side, update vector, and LU
/// factors. One workspace serves any sequence of solves (buffers are
/// resized on dimension change), so an evaluation session allocates the
/// matrices once per environment instead of once per Newton iteration.
#[derive(Debug, Clone)]
pub struct DcWorkspace {
    j: Matrix<f64>,
    f: Vec<f64>,
    rhs: Vec<f64>,
    dx: Vec<f64>,
    lu: LuFactors<f64>,
    /// Sparse-backend buffers: triplet assembly, compressed matrix, and
    /// the sparse factorization (plain or BTF per the solve's
    /// [`SolverConfig`]) whose symbolic analysis — ordering, structural
    /// preflight, block decomposition — persists across Newton
    /// iterations (the stamp pattern is constant per circuit).
    trip: TripletList<f64>,
    csc: CscMatrix<f64>,
    slu: SparseSolver<f64>,
}

impl DcWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        DcWorkspace {
            j: Matrix::zeros(0, 0),
            f: Vec::new(),
            rhs: Vec::new(),
            dx: Vec::new(),
            lu: LuFactors::empty(),
            trip: TripletList::new(0),
            csc: CscMatrix::empty(),
            slu: SparseSolver::default(),
        }
    }
}

impl Default for DcWorkspace {
    fn default() -> Self {
        DcWorkspace::new()
    }
}

/// Reusable buffers for corner-batched DC solves
/// ([`dc_operating_point_batch`]): the lockstep batch LU, the per-corner
/// assembly scratch, batch-layout right-hand-side/update buffers, and a
/// scalar workspace for the per-corner homotopy fallback.
#[derive(Debug, Clone)]
pub struct DcBatchWorkspace {
    lu: RealLuBatch,
    j: Matrix<f64>,
    f: Vec<f64>,
    rhs: Vec<f64>,
    dx: Vec<f64>,
    acc: Vec<f64>,
    scalar: DcWorkspace,
}

impl DcBatchWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        DcBatchWorkspace {
            lu: RealLuBatch::empty(),
            j: Matrix::zeros(0, 0),
            f: Vec::new(),
            rhs: Vec::new(),
            dx: Vec::new(),
            acc: Vec::new(),
            scalar: DcWorkspace::new(),
        }
    }
}

impl Default for DcBatchWorkspace {
    fn default() -> Self {
        DcBatchWorkspace::new()
    }
}

/// Warm-start state threaded through consecutive DC solves by an
/// evaluation session: the previous MNA solution per *slot* (one slot per
/// circuit variant — e.g. one per PVT corner — since their solution
/// vectors are not interchangeable) plus a shared [`DcWorkspace`].
///
/// RL actions move each parameter at most one grid notch, so the previous
/// operating point is an excellent Newton initial guess for the next one;
/// [`WarmState::solve`] falls back to the cold start + gmin homotopy of
/// [`dc_operating_point`] whenever the warm guess does not converge.
#[derive(Debug, Clone, Default)]
pub struct WarmState {
    slots: Vec<Option<Vec<f64>>>,
    ws: DcWorkspace,
    ac: crate::ac::AcWorkspace,
    batch: DcBatchWorkspace,
    ac_batch: crate::ac::AcBatchWorkspace,
}

impl WarmState {
    /// Creates an empty warm state.
    pub fn new() -> Self {
        WarmState::default()
    }

    /// Solves the operating point of `ckt`, seeding Newton with the last
    /// solution stored in `slot` (if any) and storing the new solution
    /// back on success. On failure the slot is cleared so the next solve
    /// starts cold.
    ///
    /// # Errors
    ///
    /// Same contract as [`dc_operating_point`].
    pub fn solve(
        &mut self,
        slot: usize,
        ckt: &Circuit,
        opts: &DcOptions,
    ) -> Result<OpPoint, SimError> {
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, None);
        }
        let warm = self.slots[slot].take();
        let res = dc_operating_point_warm(ckt, opts, warm.as_deref(), &mut self.ws);
        if let Ok(op) = &res {
            self.slots[slot] = Some(op.mna_vector());
        }
        res
    }

    /// Batched analogue of [`WarmState::solve`]: solves the operating
    /// points of `ckts` in lockstep through [`dc_operating_point_batch`],
    /// one slot per circuit starting at `base_slot`. Each corner's Newton
    /// is seeded from its own slot; solutions are stored back on success
    /// and failed corners' slots are cleared, exactly like the scalar
    /// path, so per-corner results match [`WarmState::solve`] bitwise.
    pub fn solve_batch(
        &mut self,
        base_slot: usize,
        ckts: &[&Circuit],
        opts: &DcOptions,
    ) -> Vec<Result<OpPoint, SimError>> {
        let end = base_slot + ckts.len();
        if self.slots.len() < end {
            self.slots.resize(end, None);
        }
        let taken: Vec<Option<Vec<f64>>> = self.slots[base_slot..end]
            .iter_mut()
            .map(Option::take)
            .collect();
        let warm: Vec<Option<&[f64]>> = taken.iter().map(|o| o.as_deref()).collect();
        let res = dc_operating_point_batch(ckts, opts, &warm, &mut self.batch);
        for (slot, r) in self.slots[base_slot..end].iter_mut().zip(&res) {
            if let Ok(op) = r {
                *slot = Some(op.mna_vector());
            }
        }
        res
    }

    /// Drops all stored solutions (e.g. on episode reset) while keeping
    /// the workspace allocations.
    pub fn reset(&mut self) {
        self.slots.clear();
    }

    /// Whether any slot currently holds a previous solution.
    pub fn is_warm(&self) -> bool {
        self.slots.iter().any(Option::is_some)
    }

    /// Snapshot of the per-slot solutions, for save/restore by a memoizing
    /// evaluation session: restoring the snapshot taken right after a grid
    /// point was solved keeps warm guesses adjacent even when intervening
    /// evaluations were served from a cache.
    pub fn snapshot(&self) -> Vec<Option<Vec<f64>>> {
        self.slots.clone()
    }

    /// Restores a snapshot taken by [`WarmState::snapshot`], reusing the
    /// existing slot allocations (this runs on every memo-cache hit).
    pub fn restore(&mut self, snapshot: &[Option<Vec<f64>>]) {
        self.slots.resize(snapshot.len(), None);
        for (dst, src) in self.slots.iter_mut().zip(snapshot) {
            match src {
                Some(s) => match dst {
                    Some(v) => v.clone_from(s),
                    None => *dst = Some(s.clone()),
                },
                None => *dst = None,
            }
        }
    }

    /// The session's reusable AC-analysis buffers, for routing sweeps and
    /// noise analyses through the allocation-free `_ws` entry points.
    pub fn ac_workspace(&mut self) -> &mut crate::ac::AcWorkspace {
        &mut self.ac
    }

    /// The session's reusable corner-batched AC buffers, for routing
    /// worst-case sweeps through [`crate::ac::ac_sweep_batch`].
    pub fn ac_batch_workspace(&mut self) -> &mut crate::ac::AcBatchWorkspace {
        &mut self.ac_batch
    }
}

/// Options for the DC solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DcOptions {
    /// Initial guess applied to every non-ground node (typically `vdd/2`).
    pub initial_v: f64,
    /// Maximum Newton iterations per gmin stage.
    pub max_iter: usize,
    /// Convergence tolerance on the update norm (V, A).
    pub tol: f64,
    /// Maximum per-node voltage change per Newton step (damping).
    pub dv_max: f64,
    /// Minimum conductance from every node to ground (aids convergence and
    /// regularizes capacitor-only nodes).
    pub gmin: f64,
    /// Linear-solver backend selection (automatic by dimension unless
    /// forced; see [`SolverConfig`]).
    pub solver: SolverConfig,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            initial_v: 0.5,
            max_iter: 150,
            tol: 1e-9,
            dv_max: 0.3,
            gmin: 1e-12,
            solver: SolverConfig::default(),
        }
    }
}

/// Small-signal data for one MOSFET at the operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosOp {
    /// Index of the MOSFET in [`Circuit::elements`].
    pub elem_index: usize,
    /// Drain current magnitude (A).
    pub id: f64,
    /// Transconductance (S).
    pub gm: f64,
    /// Output conductance (S).
    pub gds: f64,
    /// Gate-source capacitance (F), terminals already orientation-resolved.
    pub cgs: f64,
    /// Gate-drain capacitance (F).
    pub cgd: f64,
    /// Drain-bulk junction capacitance (F); bulk is AC ground.
    pub cdb: f64,
    /// Source-bulk junction capacitance (F).
    pub csb: f64,
    /// Operating region.
    pub region: MosRegion,
    /// Effective drain terminal after orientation (channel is symmetric).
    pub a_d: Node,
    /// Effective source terminal after orientation.
    pub a_s: Node,
    /// Gate terminal.
    pub g: Node,
}

/// A solved DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OpPoint {
    node_v: Vec<f64>,
    branch_i: Vec<f64>,
    mos: Vec<MosOp>,
    iterations: usize,
    warm_started: bool,
}

impl OpPoint {
    /// Voltage at a node (ground reads 0).
    pub fn voltage(&self, n: Node) -> f64 {
        self.node_v[n.index()]
    }

    /// All node voltages indexed by node id (entry 0 is ground).
    pub fn voltages(&self) -> &[f64] {
        &self.node_v
    }

    /// Branch current of the `k`-th voltage source (in insertion order).
    /// Positive current flows from the `p` terminal through the source to
    /// `n`.
    pub fn vsource_current(&self, k: usize) -> f64 {
        self.branch_i[k]
    }

    /// Per-MOSFET small-signal data, in element order.
    pub fn mosfets(&self) -> &[MosOp] {
        &self.mos
    }

    /// Newton iterations spent (across all gmin stages).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the solve converged from a warm initial guess (rather than
    /// the cold `initial_v` start or the gmin homotopy).
    pub fn warm_started(&self) -> bool {
        self.warm_started
    }

    /// The raw MNA solution vector — node voltages excluding ground
    /// followed by voltage-source branch currents — usable as the
    /// warm-start guess for a subsequent solve of a same-structure circuit.
    pub fn mna_vector(&self) -> Vec<f64> {
        self.node_v[1..]
            .iter()
            .chain(self.branch_i.iter())
            .copied()
            .collect()
    }
}

/// Orientation-resolved large-signal MOSFET evaluation shared by DC and
/// transient assembly.
///
/// Returns `(a_d, a_s, id_signed_into_ad, gm, gds, region)` where
/// `id_signed_into_ad` is the current *leaving* node `a_d` into the device.
pub(crate) fn eval_mos_oriented(
    m: &Mosfet,
    v: impl Fn(Node) -> f64,
) -> (Node, Node, f64, f64, f64, MosRegion) {
    let s = match m.polarity {
        MosPolarity::Nmos => 1.0,
        MosPolarity::Pmos => -1.0,
    };
    let vds_e = s * (v(m.d) - v(m.s));
    let (a_d, a_s) = if vds_e >= 0.0 { (m.d, m.s) } else { (m.s, m.d) };
    let vgs_e = s * (v(m.g) - v(a_s));
    let vds_e = s * (v(a_d) - v(a_s));
    let e = m.model.eval(vgs_e, vds_e, m.w, m.l, m.mult);
    (a_d, a_s, s * e.id, e.gm, e.gds, e.region)
}

struct Assembler<'a> {
    ckt: &'a Circuit,
    dim: usize,
    nnodes: usize,
}

impl<'a> Assembler<'a> {
    fn new(ckt: &'a Circuit) -> Self {
        Assembler {
            ckt,
            dim: ckt.mna_dim(),
            nnodes: ckt.num_nodes(),
        }
    }

    fn idx(&self, n: Node) -> Option<usize> {
        self.ckt.mna_index(n)
    }

    fn branch_row(&self, k: usize) -> usize {
        self.nnodes - 1 + k
    }

    /// Assembles the Newton Jacobian into `j` — a dense matrix or a
    /// triplet list, one stamping code path for both backends — and the
    /// residual `f` at the point `x`.
    fn assemble<S: StampSink>(&self, x: &[f64], gmin: f64, j: &mut S, f: &mut [f64]) {
        j.reset(self.dim);
        f.iter_mut().for_each(|v| *v = 0.0);
        let volt = |n: Node| -> f64 {
            match self.ckt.mna_index(n) {
                None => 0.0,
                Some(i) => x[i],
            }
        };
        // gmin from every node to ground. Skipped entirely when disabled:
        // an explicit zero would still be a *structural* nonzero to the
        // sparse pattern, hiding a floating node from the structural
        // preflight that `gmin: 0.0` exists to exercise.
        // lint:allow(float-eq) — exact-zero means "disabled" by contract.
        if gmin != 0.0 {
            for i in 0..(self.nnodes - 1) {
                j.add(i, i, gmin);
                f[i] += gmin * x[i];
            }
        }
        let mut vk = 0usize;
        for (ei, e) in self.ckt.elements().iter().enumerate() {
            match e {
                Element::Resistor { p, n, r, .. } => {
                    let g = 1.0 / r;
                    let i = g * (volt(*p) - volt(*n));
                    self.stamp_pair(j, f, *p, *n, g, i);
                }
                Element::Capacitor { .. } => {} // open at DC
                Element::Vsource { p, n, dc, .. } => {
                    let row = self.branch_row(vk);
                    let ibr = x[row];
                    if let Some(ip) = self.idx(*p) {
                        f[ip] += ibr;
                        j.add(ip, row, 1.0);
                        j.add(row, ip, 1.0);
                    }
                    if let Some(in_) = self.idx(*n) {
                        f[in_] -= ibr;
                        j.add(in_, row, -1.0);
                        j.add(row, in_, -1.0);
                    }
                    f[row] += volt(*p) - volt(*n) - dc;
                    vk += 1;
                }
                Element::Isource { p, n, dc, .. } => {
                    if let Some(ip) = self.idx(*p) {
                        f[ip] += dc;
                    }
                    if let Some(in_) = self.idx(*n) {
                        f[in_] -= dc;
                    }
                }
                Element::Vccs { op, on, cp, cn, gm } => {
                    let i = gm * (volt(*cp) - volt(*cn));
                    if let Some(iop) = self.idx(*op) {
                        f[iop] += i;
                        if let Some(icp) = self.idx(*cp) {
                            j.add(iop, icp, *gm);
                        }
                        if let Some(icn) = self.idx(*cn) {
                            j.add(iop, icn, -*gm);
                        }
                    }
                    if let Some(ion) = self.idx(*on) {
                        f[ion] -= i;
                        if let Some(icp) = self.idx(*cp) {
                            j.add(ion, icp, -*gm);
                        }
                        if let Some(icn) = self.idx(*cn) {
                            j.add(ion, icn, *gm);
                        }
                    }
                }
                Element::Mos(m) => {
                    let (a_d, a_s, i_ad, gm, gds, _) = eval_mos_oriented(m, volt);
                    let _ = ei;
                    // Current leaves a_d, enters a_s.
                    // d i_ad / d v(g) = gm ; d/d v(a_d) = gds ; d/d v(a_s) = -(gm+gds)
                    if let Some(id_) = self.idx(a_d) {
                        f[id_] += i_ad;
                        if let Some(ig) = self.idx(m.g) {
                            j.add(id_, ig, gm);
                        }
                        j.add(id_, id_, gds);
                        if let Some(is_) = self.idx(a_s) {
                            j.add(id_, is_, -(gm + gds));
                        }
                    }
                    if let Some(is_) = self.idx(a_s) {
                        f[is_] -= i_ad;
                        if let Some(ig) = self.idx(m.g) {
                            j.add(is_, ig, -gm);
                        }
                        if let Some(id_) = self.idx(a_d) {
                            j.add(is_, id_, -gds);
                        }
                        j.add(is_, is_, gm + gds);
                    }
                }
            }
        }
    }

    /// Stamps a two-terminal conductance `g` carrying current `i` (p -> n).
    fn stamp_pair<S: StampSink>(&self, j: &mut S, f: &mut [f64], p: Node, n: Node, g: f64, i: f64) {
        if let Some(ip) = self.idx(p) {
            f[ip] += i;
            j.add(ip, ip, g);
            if let Some(in_) = self.idx(n) {
                j.add(ip, in_, -g);
            }
        }
        if let Some(in_) = self.idx(n) {
            f[in_] -= i;
            j.add(in_, in_, g);
            if let Some(ip) = self.idx(p) {
                j.add(in_, ip, -g);
            }
        }
    }
}

fn newton_solve(
    asm: &Assembler<'_>,
    x: &mut [f64],
    gmin: f64,
    opts: &DcOptions,
    ws: &mut DcWorkspace,
) -> Result<usize, SimError> {
    let dim = asm.dim;
    let nv = asm.nnodes - 1;
    let sparse = opts.solver.use_sparse(dim);
    if sparse {
        ws.slu.ensure_mode(opts.solver.btf);
        ws.slu.set_parallelism(opts.solver.par);
    } else if ws.j.rows() != dim || ws.j.cols() != dim {
        ws.j = Matrix::zeros(dim, dim);
    }
    ws.f.resize(dim, 0.0);
    ws.rhs.resize(dim, 0.0);
    for it in 0..opts.max_iter {
        if sparse {
            // Same stamps, landing in a triplet list; the compressed
            // pattern is identical every iteration, so the sparse
            // refactor reuses its symbolic analysis throughout.
            asm.assemble(x, gmin, &mut ws.trip, &mut ws.f);
        } else {
            asm.assemble(x, gmin, &mut ws.j, &mut ws.f);
        }
        for (r, v) in ws.rhs.iter_mut().zip(&ws.f) {
            *r = -v;
        }
        if sparse {
            ws.trip.compress_into(&mut ws.csc);
            ws.slu.refactor(&ws.csc, 1e-30)?;
            ws.slu.solve_into(&ws.rhs, &mut ws.dx);
        } else {
            ws.lu.refactor(&ws.j, 1e-30)?;
            ws.lu.solve_into(&ws.rhs, &mut ws.dx);
        }
        let mut maxd = 0.0f64;
        for (i, d) in ws.dx.iter().enumerate() {
            let step = if i < nv {
                d.clamp(-opts.dv_max, opts.dv_max)
            } else {
                *d
            };
            x[i] += step;
            maxd = maxd.max(d.abs());
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(SimError::DcNoConvergence {
                iterations: it + 1,
                residual: f64::INFINITY,
            });
        }
        if maxd < opts.tol {
            return Ok(it + 1);
        }
    }
    let residual = ws.f.iter().fold(0.0f64, |a, b| a.max(b.abs()));
    Err(SimError::DcNoConvergence {
        iterations: opts.max_iter,
        residual,
    })
}

/// Solves the DC operating point of `ckt`.
///
/// Plain damped Newton is attempted first; on failure a gmin-stepping
/// homotopy (1e-3 S down to `opts.gmin` in decades) retries, reusing each
/// stage's solution as the next stage's initial guess.
///
/// # Errors
///
/// [`SimError::DcNoConvergence`] if the homotopy also fails, or
/// [`SimError::SingularMatrix`] (respectively [`SimError::SingularSparse`]
/// under the sparse backend) for structurally defective netlists.
///
/// # Examples
///
/// ```
/// use autockt_sim::netlist::{Circuit, GND};
/// use autockt_sim::dc::{dc_operating_point, DcOptions};
///
/// # fn main() -> Result<(), autockt_sim::SimError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.isource(GND, a, 1e-3, 0.0); // push 1 mA into node a
/// ckt.resistor(a, GND, 1.0e3);
/// let op = dc_operating_point(&ckt, &DcOptions::default())?;
/// assert!((op.voltage(a) - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn dc_operating_point(ckt: &Circuit, opts: &DcOptions) -> Result<OpPoint, SimError> {
    dc_operating_point_warm(ckt, opts, None, &mut DcWorkspace::new())
}

/// Solves the DC operating point of `ckt`, optionally seeding Newton with
/// a previous solution.
///
/// `warm` is a full MNA solution vector (see [`OpPoint::mna_vector`]) from
/// a previous solve of a same-structure circuit; when it converges the
/// cold start is skipped entirely. A warm guess of the wrong dimension is
/// ignored, and warm non-convergence falls back to the cold
/// `initial_v` start followed by the gmin homotopy, so the result contract
/// is identical to [`dc_operating_point`]. `ws` supplies the reusable
/// matrix/LU buffers.
///
/// Caveat: the fallback fires on *non-convergence only*. For a circuit
/// with multiple valid operating points (e.g. cross-coupled loads), a
/// warm guess near a different solution branch than the cold homotopy
/// would settle on converges cleanly to that branch and is accepted.
/// Callers must therefore supply warm vectors from *nearby* solutions —
/// one grid notch away in the sizing environments — where staying on the
/// cold branch is the overwhelmingly likely outcome (property-tested per
/// topology in `autockt_circuits`); arbitrary jumps should solve cold.
///
/// # Errors
///
/// Same contract as [`dc_operating_point`].
pub fn dc_operating_point_warm(
    ckt: &Circuit,
    opts: &DcOptions,
    warm: Option<&[f64]>,
    ws: &mut DcWorkspace,
) -> Result<OpPoint, SimError> {
    let asm = Assembler::new(ckt);
    let dim = asm.dim;
    let nv = asm.nnodes - 1;
    let mut x = vec![0.0; dim];

    let mut total_iters = 0usize;
    let mut warm_started = false;
    if let Some(w) = warm {
        if w.len() == dim && w.iter().all(|v| v.is_finite()) {
            x.copy_from_slice(w);
            if let Ok(it) = newton_solve(&asm, &mut x, opts.gmin, opts, ws) {
                total_iters += it;
                warm_started = true;
            }
        }
    }
    if !warm_started {
        x.iter_mut().for_each(|v| *v = 0.0);
        x[..nv].iter_mut().for_each(|v| *v = opts.initial_v);
        let direct = newton_solve(&asm, &mut x, opts.gmin, opts, ws);
        match direct {
            Ok(it) => total_iters += it,
            // Structural singularity is a property of the topology alone:
            // no gmin value can repair an unmatched column, and with
            // `opts.gmin == 0` the stepping loop below would never
            // terminate. Report it immediately.
            Err(e @ SimError::StructurallySingular { .. }) => return Err(e),
            Err(_) => {
                // gmin stepping homotopy.
                x.iter_mut().for_each(|v| *v = 0.0);
                x[..nv].iter_mut().for_each(|v| *v = opts.initial_v);
                let mut g = 1e-3;
                loop {
                    let it = newton_solve(&asm, &mut x, g, opts, ws)?;
                    total_iters += it;
                    if g <= opts.gmin * 1.0001 {
                        break;
                    }
                    g = (g * 0.1).max(opts.gmin);
                }
            }
        }
    }

    Ok(finish_op(ckt, &x, total_iters, warm_started))
}

/// Builds the [`OpPoint`] from a converged MNA solution vector — shared
/// result extraction of the scalar and batched solve paths.
fn finish_op(ckt: &Circuit, x: &[f64], iterations: usize, warm_started: bool) -> OpPoint {
    let nv = ckt.num_nodes() - 1;
    let volt = |n: Node| -> f64 {
        match ckt.mna_index(n) {
            None => 0.0,
            Some(i) => x[i],
        }
    };
    let mut node_v = vec![0.0; ckt.num_nodes()];
    node_v[1..].copy_from_slice(&x[..nv]);
    let branch_i: Vec<f64> = (0..ckt.num_vsources()).map(|k| x[nv + k]).collect();
    let mut mos = Vec::new();
    for (ei, e) in ckt.elements().iter().enumerate() {
        if let Element::Mos(m) = e {
            let (a_d, a_s, i_ad, gm, gds, region) = eval_mos_oriented(m, volt);
            let (cgs, cgd) = m.model.gate_caps(region, m.w, m.l, m.mult);
            let cj = m.model.junction_cap(m.w, m.mult);
            mos.push(MosOp {
                elem_index: ei,
                id: i_ad.abs(),
                gm,
                gds,
                cgs,
                cgd,
                cdb: cj,
                csb: cj,
                region,
                a_d,
                a_s,
                g: m.g,
            });
        }
    }
    OpPoint {
        node_v,
        branch_i,
        mos,
        iterations,
        warm_started,
    }
}

/// Runs damped Newton on the masked subset of a batch of same-dimension
/// circuits in lockstep: every iteration assembles each live corner's
/// Jacobian, factors all of them as one [`RealLuBatch`] elimination
/// (SIMD over the corner axis), solves, and applies per-corner damped
/// updates. Corners converge independently — a converged corner's lanes
/// are frozen (its slot in the batch is stamped with the identity) while
/// its siblings keep iterating. Returns `Some(iterations)` per corner
/// that converged in this phase; `None` covers both corners outside the
/// mask and corners that failed (singular Jacobian, non-finite update,
/// or `max_iter`).
///
/// Per corner this performs exactly the arithmetic of the scalar
/// `newton_solve`, in the same order, so a corner that converges here
/// produces a bitwise-identical solution vector.
fn newton_batch(
    asms: &[Assembler<'_>],
    xs: &mut [Vec<f64>],
    mask: &[bool],
    gmin: f64,
    opts: &DcOptions,
    ws: &mut DcBatchWorkspace,
) -> Vec<Option<usize>> {
    let bt = asms.len();
    let dim = asms[0].dim;
    let mut active = mask.to_vec();
    let mut out: Vec<Option<usize>> = vec![None; bt];
    let DcBatchWorkspace {
        lu,
        j,
        f,
        rhs,
        dx,
        acc,
        ..
    } = ws;
    if j.rows() != dim || j.cols() != dim {
        *j = Matrix::zeros(dim, dim);
    }
    f.resize(dim, 0.0);
    rhs.clear();
    rhs.resize(dim * bt, 0.0);
    for it in 0..opts.max_iter {
        if !active.iter().any(|a| *a) {
            break;
        }
        rhs.iter_mut().for_each(|v| *v = 0.0);
        lu.refactor_with(dim, bt, 1e-30, |data| {
            for (b, asm) in asms.iter().enumerate() {
                if !active[b] {
                    // Frozen lane: identity keeps the batch elimination
                    // trivially nonsingular without touching the corner.
                    for i in 0..dim {
                        data[(i * dim + i) * bt + b] = 1.0;
                    }
                    continue;
                }
                asm.assemble(&xs[b], gmin, j, f);
                for r in 0..dim {
                    for c in 0..dim {
                        data[(r * dim + c) * bt + b] = j[(r, c)];
                    }
                }
                for (i, v) in f.iter().enumerate() {
                    rhs[i * bt + b] = -v;
                }
            }
        });
        for (b, a) in active.iter_mut().enumerate() {
            if *a && lu.singular(b).is_some() {
                *a = false;
            }
        }
        lu.solve_batch_into(rhs, dx, acc);
        for b in 0..bt {
            if !active[b] {
                continue;
            }
            let nv = asms[b].nnodes - 1;
            let x = &mut xs[b];
            let mut maxd = 0.0f64;
            for i in 0..dim {
                let d = dx[i * bt + b];
                let step = if i < nv {
                    d.clamp(-opts.dv_max, opts.dv_max)
                } else {
                    d
                };
                x[i] += step;
                maxd = maxd.max(d.abs());
            }
            if !x.iter().all(|v| v.is_finite()) {
                active[b] = false;
                continue;
            }
            if maxd < opts.tol {
                out[b] = Some(it + 1);
                active[b] = false;
            }
        }
    }
    out
}

/// Solves the DC operating points of a batch of *same-structure* circuits
/// in lockstep — the corner axis of worst-case-PVT evaluation. Per corner
/// the result is bitwise-identical to
/// [`dc_operating_point_warm`]`(ckts[b], opts, warm[b], ..)`: corners
/// with a usable warm guess first iterate together from their seeds, any
/// that miss join a lockstep cold phase, and a corner that the direct
/// cold Newton cannot crack falls back to the scalar gmin homotopy on its
/// own — one stubborn corner never stalls or perturbs its siblings, and
/// per-corner failures are reported per corner instead of aborting the
/// batch.
///
/// Circuits of mismatched MNA dimension (which the corner engine never
/// produces), single-element batches, and dimensions routed to the sparse
/// backend (whose factorization cost no longer rewards dense lockstep
/// lanes) simply run the scalar path — which preserves the per-corner
/// bitwise contract trivially.
pub fn dc_operating_point_batch(
    ckts: &[&Circuit],
    opts: &DcOptions,
    warm: &[Option<&[f64]>],
    ws: &mut DcBatchWorkspace,
) -> Vec<Result<OpPoint, SimError>> {
    assert_eq!(ckts.len(), warm.len(), "one warm guess per circuit");
    let bt = ckts.len();
    if bt == 0 {
        return Vec::new();
    }
    let dim = ckts[0].mna_dim();
    if bt == 1 || opts.solver.use_sparse(dim) || ckts.iter().any(|c| c.mna_dim() != dim) {
        return ckts
            .iter()
            .zip(warm)
            .map(|(c, w)| dc_operating_point_warm(c, opts, *w, &mut ws.scalar))
            .collect();
    }
    let asms: Vec<Assembler<'_>> = ckts.iter().map(|c| Assembler::new(c)).collect();
    let mut xs: Vec<Vec<f64>> = vec![vec![0.0; dim]; bt];
    let mut iters = vec![0usize; bt];
    let mut warm_started = vec![false; bt];
    let mut done = vec![false; bt];

    // Warm phase: corners whose guess has the right shape iterate from it.
    let warm_mask: Vec<bool> = warm
        .iter()
        .map(|w| matches!(w, Some(w) if w.len() == dim && w.iter().all(|v| v.is_finite())))
        .collect();
    if warm_mask.iter().any(|m| *m) {
        for ((x, w), &masked) in xs.iter_mut().zip(warm).zip(&warm_mask) {
            if let (true, Some(w)) = (masked, w) {
                x.copy_from_slice(w);
            }
        }
        for (b, it) in newton_batch(&asms, &mut xs, &warm_mask, opts.gmin, opts, ws)
            .into_iter()
            .enumerate()
        {
            if let Some(it) = it {
                iters[b] += it;
                warm_started[b] = true;
                done[b] = true;
            }
        }
    }

    // Cold phase: everything not yet converged restarts from `initial_v`.
    let cold_mask: Vec<bool> = done.iter().map(|d| !d).collect();
    if cold_mask.iter().any(|m| *m) {
        for b in 0..bt {
            if cold_mask[b] {
                let nv = asms[b].nnodes - 1;
                xs[b].iter_mut().for_each(|v| *v = 0.0);
                xs[b][..nv].iter_mut().for_each(|v| *v = opts.initial_v);
            }
        }
        for (b, it) in newton_batch(&asms, &mut xs, &cold_mask, opts.gmin, opts, ws)
            .into_iter()
            .enumerate()
        {
            if let Some(it) = it {
                iters[b] += it;
                done[b] = true;
            }
        }
    }

    // Homotopy fallback: stubborn corners leave the lockstep and retry
    // scalar, exactly like the tail of `dc_operating_point_warm`.
    (0..bt)
        .map(|b| {
            if done[b] {
                return Ok(finish_op(ckts[b], &xs[b], iters[b], warm_started[b]));
            }
            let nv = asms[b].nnodes - 1;
            let x = &mut xs[b];
            x.iter_mut().for_each(|v| *v = 0.0);
            x[..nv].iter_mut().for_each(|v| *v = opts.initial_v);
            let mut g = 1e-3;
            loop {
                let it = newton_solve(&asms[b], x, g, opts, &mut ws.scalar)?;
                iters[b] += it;
                if g <= opts.gmin * 1.0001 {
                    break;
                }
                g = (g * 0.1).max(opts.gmin);
            }
            Ok(finish_op(ckts[b], x, iters[b], false))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{MosPolarity, Technology};
    use crate::netlist::{Mosfet, GND};

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, GND, 3.0, 0.0);
        ckt.resistor(a, b, 2.0e3);
        ckt.resistor(b, GND, 1.0e3);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-6);
        // Source current: 3V over 3k = 1 mA flowing p->n inside source
        // means -1 mA (the source delivers current out of its + terminal).
        assert!((op.vsource_current(0) + 1.0e-3).abs() < 1e-8);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.isource(GND, a, 2e-3, 0.0);
        ckt.resistor(a, GND, 500.0);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        assert!((op.voltage(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vccs_transresistance() {
        // VCCS driven by a divider: i = gm * v(ctrl), into a load resistor.
        let mut ckt = Circuit::new();
        let c = ckt.node("ctrl");
        let o = ckt.node("out");
        ckt.vsource(c, GND, 0.5, 0.0);
        ckt.vccs(GND, o, c, GND, 1e-3); // pushes gm*v into node o
        ckt.resistor(o, GND, 1.0e3);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        assert!((op.voltage(o) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn nmos_diode_connected_bias() {
        // Diode-connected NMOS pulled up through a resistor: solves the
        // classic vgs = f(id) fixed point.
        let t = Technology::ptm45();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("gate");
        ckt.vsource(vdd, GND, 1.0, 0.0);
        ckt.resistor(vdd, g, 10.0e3);
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Nmos,
            d: g,
            g,
            s: GND,
            w: 2e-6,
            l: t.lmin,
            mult: 1.0,
            model: t.nmos,
        });
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let vg = op.voltage(g);
        assert!(vg > t.nmos.vth0 && vg < 1.0, "vg = {vg}");
        // KCL: resistor current equals device current.
        let ir = (1.0 - vg) / 10.0e3;
        let m = &op.mosfets()[0];
        assert!((m.id - ir).abs() / ir < 1e-5);
        assert_eq!(m.region, MosRegion::Saturation);
    }

    #[test]
    fn pmos_common_source_inverting() {
        // PMOS with source at VDD, gate low -> device on, output pulled up.
        let t = Technology::ptm45();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let o = ckt.node("o");
        ckt.vsource(vdd, GND, 1.0, 0.0);
        ckt.vsource(g, GND, 0.3, 0.0); // vsg = 0.7 > vth
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Pmos,
            d: o,
            g,
            s: vdd,
            w: 4e-6,
            l: t.lmin,
            mult: 1.0,
            model: t.pmos,
        });
        ckt.resistor(o, GND, 2.0e3);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let vo = op.voltage(o);
        assert!(vo > 0.2, "pmos should pull output up, vo = {vo}");
        let m = &op.mosfets()[0];
        assert!((m.id - vo / 2.0e3).abs() / m.id < 1e-5);
    }

    #[test]
    fn cmos_inverter_transfer_is_inverting() {
        // Low input -> high output; high input -> low output; and the
        // transfer is monotonically decreasing across the sweep.
        let t = Technology::ptm45();
        let build = |vin: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let g = ckt.node("g");
            let o = ckt.node("o");
            ckt.vsource(vdd, GND, 1.0, 0.0);
            ckt.vsource(g, GND, vin, 0.0);
            ckt.mosfet(Mosfet {
                polarity: MosPolarity::Nmos,
                d: o,
                g,
                s: GND,
                w: 1e-6,
                l: t.lmin,
                mult: 1.0,
                model: t.nmos,
            });
            ckt.mosfet(Mosfet {
                polarity: MosPolarity::Pmos,
                d: o,
                g,
                s: vdd,
                w: 2.4e-6,
                l: t.lmin,
                mult: 1.0,
                model: t.pmos,
            });
            (ckt, o)
        };
        let mut prev = f64::INFINITY;
        for vin in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let (ckt, o) = build(vin);
            let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
            let vo = op.voltage(o);
            assert!(
                vo <= prev + 1e-9,
                "inverter transfer must fall: {vo} after {prev}"
            );
            prev = vo;
        }
        let (lo, o1) = build(0.1);
        let vo_hi = dc_operating_point(&lo, &DcOptions::default())
            .unwrap()
            .voltage(o1);
        assert!(vo_hi > 0.9, "low input gives high output, got {vo_hi}");
        let (hi, o2) = build(0.9);
        let vo_lo = dc_operating_point(&hi, &DcOptions::default())
            .unwrap()
            .voltage(o2);
        assert!(vo_lo < 0.1, "high input gives low output, got {vo_lo}");
    }

    #[test]
    fn capacitor_node_regularized_by_gmin() {
        // A node connected only through a capacitor has no DC path; gmin
        // must keep the matrix solvable.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, GND, 1.0, 0.0);
        ckt.capacitor(a, b, 1e-12);
        ckt.capacitor(b, GND, 1e-12);
        let op = dc_operating_point(&ckt, &DcOptions::default());
        assert!(op.is_ok());
    }

    #[test]
    fn no_convergence_is_reported_not_hung() {
        // A pathological circuit: two voltage sources in parallel with
        // conflicting values is singular/inconsistent.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, GND, 1.0, 0.0);
        ckt.vsource(a, GND, 2.0, 0.0);
        let r = dc_operating_point(&ckt, &DcOptions::default());
        assert!(r.is_err());
    }

    fn nmos_diode_circuit(r: f64) -> (Circuit, Node) {
        let t = Technology::ptm45();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("gate");
        ckt.vsource(vdd, GND, 1.0, 0.0);
        ckt.resistor(vdd, g, r);
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Nmos,
            d: g,
            g,
            s: GND,
            w: 2e-6,
            l: t.lmin,
            mult: 1.0,
            model: t.nmos,
        });
        (ckt, g)
    }

    #[test]
    fn warm_start_matches_cold_solution() {
        let (a, ga) = nmos_diode_circuit(10.0e3);
        let cold_a = dc_operating_point(&a, &DcOptions::default()).unwrap();
        // A slightly different circuit (nudged resistor), solved warm from
        // the first solution, must agree with its own cold solve.
        let (b, gb) = nmos_diode_circuit(11.0e3);
        let mut ws = DcWorkspace::new();
        let warm = cold_a.mna_vector();
        let warm_b =
            dc_operating_point_warm(&b, &DcOptions::default(), Some(&warm), &mut ws).unwrap();
        let cold_b = dc_operating_point(&b, &DcOptions::default()).unwrap();
        assert!(warm_b.warm_started());
        assert!(!cold_b.warm_started());
        assert!((warm_b.voltage(gb) - cold_b.voltage(gb)).abs() < 1e-7);
        assert!(warm_b.iterations() <= cold_b.iterations());
        let _ = ga;
    }

    #[test]
    fn warm_guess_of_wrong_dimension_is_ignored() {
        let (ckt, g) = nmos_diode_circuit(10.0e3);
        let mut ws = DcWorkspace::new();
        let bogus = vec![0.5; 99];
        let op =
            dc_operating_point_warm(&ckt, &DcOptions::default(), Some(&bogus), &mut ws).unwrap();
        assert!(!op.warm_started());
        let cold = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        assert!((op.voltage(g) - cold.voltage(g)).abs() < 1e-12);
    }

    #[test]
    fn warm_state_slots_round_trip() {
        let (ckt, _) = nmos_diode_circuit(10.0e3);
        let mut state = WarmState::new();
        assert!(!state.is_warm());
        let first = state.solve(0, &ckt, &DcOptions::default()).unwrap();
        assert!(!first.warm_started());
        assert!(state.is_warm());
        let second = state.solve(0, &ckt, &DcOptions::default()).unwrap();
        assert!(second.warm_started());
        // Warm revisit of the identical circuit converges immediately.
        assert!(second.iterations() <= first.iterations());
        state.reset();
        assert!(!state.is_warm());
        let third = state.solve(0, &ckt, &DcOptions::default()).unwrap();
        assert!(!third.warm_started());
    }

    #[test]
    fn warm_state_failure_clears_slot() {
        // An inconsistent netlist fails to solve; the slot must not retain
        // stale state afterwards.
        let mut bad = Circuit::new();
        let a = bad.node("a");
        bad.vsource(a, GND, 1.0, 0.0);
        bad.vsource(a, GND, 2.0, 0.0);
        let mut state = WarmState::new();
        let (good, _) = nmos_diode_circuit(10.0e3);
        state.solve(0, &good, &DcOptions::default()).unwrap();
        assert!(state.is_warm());
        assert!(state.solve(0, &bad, &DcOptions::default()).is_err());
        assert!(!state.is_warm());
    }

    #[test]
    fn batch_cold_matches_scalar_bitwise() {
        // Three same-structure circuits (same MNA dim, different values):
        // the lockstep cold solve must reproduce the scalar solutions
        // bit for bit.
        let ckts: Vec<(Circuit, Node)> = [8.0e3, 10.0e3, 13.0e3]
            .iter()
            .map(|r| nmos_diode_circuit(*r))
            .collect();
        let refs: Vec<&Circuit> = ckts.iter().map(|(c, _)| c).collect();
        let mut ws = DcBatchWorkspace::new();
        let warm = vec![None; refs.len()];
        let batch = dc_operating_point_batch(&refs, &DcOptions::default(), &warm, &mut ws);
        for ((ckt, _), res) in ckts.iter().zip(&batch) {
            let scalar = dc_operating_point(ckt, &DcOptions::default()).unwrap();
            let got = res.as_ref().unwrap();
            assert!(!got.warm_started());
            assert_eq!(got.mna_vector(), scalar.mna_vector());
            assert_eq!(got.iterations(), scalar.iterations());
        }
    }

    #[test]
    fn batch_singular_sibling_is_masked_not_contagious() {
        // The middle system is inconsistent (two conflicting voltage
        // sources in parallel — singular at every gmin stage); its error
        // must be reported for it alone, with the siblings' solutions
        // still bitwise-equal to their scalar solves.
        let (good_a, _) = nmos_diode_circuit(10.0e3);
        let (good_b, _) = nmos_diode_circuit(12.0e3);
        // One node + two conflicting sources has dim 3, matching the
        // diode circuits (2 nodes + 1 source).
        let mut bad = Circuit::new();
        let a = bad.node("a");
        bad.vsource(a, GND, 1.0, 0.0);
        bad.vsource(a, GND, 2.0, 0.0);
        assert_eq!(bad.mna_dim(), good_a.mna_dim());
        let refs: Vec<&Circuit> = vec![&good_a, &bad, &good_b];
        let mut ws = DcBatchWorkspace::new();
        let warm = vec![None; 3];
        let res = dc_operating_point_batch(&refs, &DcOptions::default(), &warm, &mut ws);
        let scalar_bad = dc_operating_point(&bad, &DcOptions::default());
        assert!(matches!(res[1], Err(SimError::SingularMatrix { .. })));
        assert_eq!(
            res[1].as_ref().err().unwrap(),
            scalar_bad.as_ref().err().unwrap(),
            "masked corner reports the scalar path's error"
        );
        for (ckt, r) in [(&good_a, &res[0]), (&good_b, &res[2])] {
            let scalar = dc_operating_point(ckt, &DcOptions::default()).unwrap();
            assert_eq!(r.as_ref().unwrap().mna_vector(), scalar.mna_vector());
        }
    }

    #[test]
    fn batch_poisoned_warm_guess_falls_back_to_cold() {
        // A finite but absurd warm guess cannot converge within the
        // damped iteration budget; that corner must fall back to the
        // cold start without stalling the sibling that converges warm.
        let (a, _) = nmos_diode_circuit(10.0e3);
        let (b, _) = nmos_diode_circuit(11.0e3);
        let cold_a = dc_operating_point(&a, &DcOptions::default()).unwrap();
        let cold_b = dc_operating_point(&b, &DcOptions::default()).unwrap();
        let good_warm = cold_b.mna_vector();
        let poisoned = vec![1.0e3; cold_a.mna_vector().len()];
        let refs: Vec<&Circuit> = vec![&a, &b];
        let mut ws = DcBatchWorkspace::new();
        let warm: Vec<Option<&[f64]>> = vec![Some(&poisoned), Some(&good_warm)];
        let res = dc_operating_point_batch(&refs, &DcOptions::default(), &warm, &mut ws);
        let ra = res[0].as_ref().unwrap();
        let rb = res[1].as_ref().unwrap();
        assert!(!ra.warm_started(), "poisoned guess must not 'converge'");
        assert!(rb.warm_started());
        assert_eq!(ra.mna_vector(), cold_a.mna_vector());
        // The scalar warm path does the same dance; bitwise agreement.
        let mut sws = DcWorkspace::new();
        let scalar_a =
            dc_operating_point_warm(&a, &DcOptions::default(), Some(&poisoned), &mut sws).unwrap();
        let scalar_b =
            dc_operating_point_warm(&b, &DcOptions::default(), Some(&good_warm), &mut sws).unwrap();
        assert_eq!(ra.mna_vector(), scalar_a.mna_vector());
        assert_eq!(rb.mna_vector(), scalar_b.mna_vector());
    }

    #[test]
    fn warm_state_solve_batch_matches_serial_slots() {
        let ckts: Vec<(Circuit, Node)> = [8.0e3, 10.0e3, 13.0e3]
            .iter()
            .map(|r| nmos_diode_circuit(*r))
            .collect();
        let refs: Vec<&Circuit> = ckts.iter().map(|(c, _)| c).collect();
        let opts = DcOptions::default();
        let mut serial = WarmState::new();
        let mut batched = WarmState::new();
        // Two passes: the second is warm in every slot on both paths.
        for pass in 0..2 {
            let batch = batched.solve_batch(0, &refs, &opts);
            for (slot, ckt) in refs.iter().enumerate() {
                let s = serial.solve(slot, ckt, &opts).unwrap();
                let b = batch[slot].as_ref().unwrap();
                assert_eq!(s.mna_vector(), b.mna_vector(), "pass {pass} slot {slot}");
                assert_eq!(s.warm_started(), b.warm_started());
                assert_eq!(s.warm_started(), pass > 0);
            }
        }
        assert!(batched.is_warm());
    }

    #[test]
    fn forced_sparse_backend_matches_dense_within_tolerance() {
        let (ckt, g) = nmos_diode_circuit(10.0e3);
        let dense = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let opts = DcOptions {
            solver: SolverConfig::sparse(),
            ..DcOptions::default()
        };
        let sparse = dc_operating_point(&ckt, &opts).unwrap();
        assert!((sparse.voltage(g) - dense.voltage(g)).abs() < 1e-9);
        // Batched entry under a sparse config routes through the scalar
        // path, so batch and scalar stay bitwise-equal.
        let (b, _) = nmos_diode_circuit(12.0e3);
        let refs: Vec<&Circuit> = vec![&ckt, &b];
        let mut ws = DcBatchWorkspace::new();
        let batch = dc_operating_point_batch(&refs, &opts, &[None, None], &mut ws);
        for (c, r) in refs.iter().zip(&batch) {
            let scalar = dc_operating_point(c, &opts).unwrap();
            assert_eq!(r.as_ref().unwrap().mna_vector(), scalar.mna_vector());
        }
    }

    #[test]
    fn iterations_counted() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, GND, 1.0, 0.0);
        ckt.resistor(a, GND, 1e3);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        assert!(op.iterations() >= 1);
    }
}
