//! # autockt-sim — analog circuit simulation substrate
//!
//! A from-scratch SPICE-class simulator built as the substrate for the
//! AutoCkt reproduction (Settaluri et al., *AutoCkt: Deep Reinforcement
//! Learning of Analog Circuit Designs*, DATE 2020). It provides everything
//! the paper's simulation environments (Spectre on BSIM 45 nm / TSMC 16 nm,
//! and BAG with extracted parasitics) provide to the RL agent: a black box
//! from sizing parameters to measured design specifications.
//!
//! ## Components
//!
//! - [`netlist`] — circuit representation (nodes, R/C/V/I/VCCS/MOSFET)
//! - [`device`] — square-law MOSFET cards for 45 nm and 16 nm flavours,
//!   PVT corners
//! - [`dc`] — Newton–Raphson operating point with gmin stepping
//! - [`ac`] — complex-valued small-signal sweeps
//! - [`tran`] — trapezoidal transient analysis
//! - [`noise`] — per-source noise analysis with input referral
//! - [`measure`] — gain / UGBW / phase margin / settling / integration
//! - [`pex`] — deterministic layout-parasitic extraction (BAG substitute)
//! - [`export`] — SPICE-deck netlist export for debugging/cross-checking
//!
//! ## Example: measure an amplifier
//!
//! ```
//! use autockt_sim::prelude::*;
//!
//! # fn main() -> Result<(), autockt_sim::SimError> {
//! let tech = Technology::ptm45();
//! let mut ckt = Circuit::new();
//! let vdd = ckt.node("vdd");
//! let gate = ckt.node("gate");
//! let out = ckt.node("out");
//! ckt.vsource(vdd, GND, tech.vdd, 0.0);
//! ckt.vsource(gate, GND, 0.50, 1.0); // bias + 1 V AC probe
//! ckt.resistor(vdd, out, 20.0e3);
//! ckt.capacitor(out, GND, 50e-15);
//! ckt.mosfet(Mosfet {
//!     polarity: MosPolarity::Nmos,
//!     d: out, g: gate, s: GND,
//!     w: 2e-6, l: 2.0 * tech.lmin, mult: 1.0,
//!     model: tech.nmos,
//! });
//! let op = dc_operating_point(&ckt, &DcOptions::default())?;
//! let resp = ac_sweep(&ckt, &op, &log_freqs(1e3, 1e11, 20), out)?;
//! assert!(resp.dc_gain() > 1.0);
//! assert!(resp.f_3db()? > 1e6);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod complex;
pub mod dc;
pub mod device;
pub mod error;
pub mod export;
pub mod linalg;
pub mod measure;
pub mod netlist;
pub mod noise;
pub mod par;
pub mod pex;
pub mod tran;

pub use error::SimError;
pub use linalg::sparse::{SolverBackend, SolverConfig};
pub use linalg::structure::{BtfDecomposition, BtfLu, SparseSolver};
pub use par::Parallelism;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::ac::{ac_sweep, log_freqs, AcResponse, AcSolver};
    pub use crate::complex::Complex;
    pub use crate::dc::{dc_operating_point, DcOptions, OpPoint};
    pub use crate::device::{MosPolarity, MosRegion, ProcessCorner, Pvt, Technology};
    pub use crate::error::SimError;
    pub use crate::linalg::sparse::{SolverBackend, SolverConfig};
    pub use crate::measure::{db20, integrate_trapezoid, settling_time};
    pub use crate::netlist::{Circuit, Element, Mosfet, Node, Step, GND};
    pub use crate::noise::{
        noise_analysis, noise_analysis_batch, noise_analysis_corners, NoiseResult,
    };
    pub use crate::par::Parallelism;
    pub use crate::pex::{extract, PexConfig};
    pub use crate::tran::{transient, transient_warm, TranOptions, TranResult};
}
