//! Post-layout-extraction (PEX) substitute for the Berkeley Analog
//! Generator flow.
//!
//! The paper (Sec. III-D) deploys a schematic-trained agent against
//! BAG-generated layouts with extracted parasitics; the experimental claim
//! is robustness of the learned policy to a *systematic, geometry-dependent
//! perturbation* of every observation. This module reproduces that
//! perturbation: a deterministic annotator that loads every MOSFET terminal
//! with area-proportional routing/junction capacitance and every resistor
//! with shunt capacitance, with a per-net pseudo-random spread derived from
//! a hash of the net's geometry (so the same design always extracts the
//! same parasitics — layouts are deterministic functions of the schematic,
//! as they are in BAG).

use crate::netlist::{Circuit, Element, GND};

/// Configuration of the parasitic annotator.
#[derive(Debug, Clone, PartialEq)]
pub struct PexConfig {
    /// Routing capacitance added per metre of device width on each MOSFET
    /// terminal (F/m). Typical mid-level-metal routing is O(0.1 fF/um).
    pub cap_per_width: f64,
    /// Fixed via/pin capacitance per MOSFET terminal (F).
    pub cap_fixed: f64,
    /// Shunt capacitance added across each resistor as a fraction of
    /// `cap_fixed` per kiloohm (poly resistors have distributed parasitics
    /// that grow with length, hence with resistance).
    pub cap_per_kohm: f64,
    /// Relative spread of the deterministic per-net jitter (0.2 = +/-20%).
    pub spread: f64,
    /// Extra multiplier on every MOSFET's intrinsic junction caps — layout
    /// drain/source fingers add perimeter capacitance the schematic model
    /// underestimates.
    pub junction_scale: f64,
    /// Parasitic-density knob: number of RC ladder segments each annotated
    /// terminal's routing capacitance is distributed over. `0` (the
    /// default) keeps the historical lumped cap-to-ground annotation;
    /// `depth >= 1` models the route as a distributed RC mesh — `depth`
    /// internal nodes in series, each carrying `1/depth` of the
    /// capacitance behind [`PexConfig::mesh_res`] ohms of metal — which
    /// grows the MNA dimension by `depth` per annotated terminal. Benches
    /// use it to reach the 32+ dims where the SoA/corner-batched kernels
    /// have vector headroom, and — now that the solvers dispatch to the
    /// CSC sparse backend past the crossover dimension — the
    /// hundreds-of-nodes extraction sizes where dense `O(n^3)`
    /// factorization stops being viable (a TIA at depth 16 is an MNA dim
    /// of ~134; depth 24 pushes past 190).
    pub mesh_depth: usize,
    /// Series routing resistance per mesh segment (ohms); unused at
    /// `mesh_depth == 0`. Routes are real metal, so the segments are
    /// thermally noisy resistors.
    pub mesh_res: f64,
}

impl Default for PexConfig {
    fn default() -> Self {
        PexConfig {
            cap_per_width: 0.12e-9, // 0.12 fF per um of width
            cap_fixed: 0.35e-15,
            cap_per_kohm: 0.08e-15,
            spread: 0.25,
            junction_scale: 1.6,
            mesh_depth: 0,
            mesh_res: 40.0,
        }
    }
}

/// Deterministic hash -> [1 - spread, 1 + spread] jitter factor.
fn jitter(seed: u64, spread: f64) -> f64 {
    // SplitMix64 finalizer: decorrelates consecutive seeds.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + spread * (2.0 * u - 1.0)
}

/// Produces the "extracted" version of a schematic: the same circuit with
/// deterministic layout parasitics added.
///
/// The extraction is a pure function of the input netlist (same schematic
/// in, same extracted netlist out), mirroring a generator-based layout
/// flow.
///
/// # Examples
///
/// ```
/// use autockt_sim::netlist::{Circuit, GND};
/// use autockt_sim::pex::{extract, PexConfig};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource(a, GND, 1.0, 0.0);
/// ckt.resistor(a, GND, 1.0e3);
/// let extracted = extract(&ckt, &PexConfig::default());
/// assert!(extracted.elements().len() > ckt.elements().len());
/// ```
pub fn extract(ckt: &Circuit, cfg: &PexConfig) -> Circuit {
    let mut out = ckt.clone();
    // Collect parasitics first (cannot mutate while iterating).
    let mut added: Vec<(crate::netlist::Node, f64)> = Vec::new();
    for (ei, e) in ckt.elements().iter().enumerate() {
        match e {
            Element::Mos(m) => {
                let w_eff = m.w * m.mult;
                for (ti, node) in [(0u64, m.d), (1, m.g), (2, m.s)] {
                    if node.is_ground() {
                        continue;
                    }
                    let seed = (ei as u64) << 8 | ti | (node.index() as u64) << 32;
                    let c = (cfg.cap_per_width * w_eff + cfg.cap_fixed) * jitter(seed, cfg.spread);
                    added.push((node, c));
                }
            }
            Element::Resistor { p, n, r, .. } => {
                let c = cfg.cap_per_kohm * (r / 1.0e3);
                for (ti, node) in [(0u64, *p), (1, *n)] {
                    if node.is_ground() {
                        continue;
                    }
                    let seed = 0xA5A5_5A5A_0000_0000 ^ ((ei as u64) << 8) | ti;
                    added.push((node, 0.5 * c * jitter(seed, cfg.spread)));
                }
            }
            _ => {}
        }
    }
    for (pi, (node, c)) in added.into_iter().enumerate() {
        if c <= 0.0 {
            continue;
        }
        if cfg.mesh_depth == 0 {
            out.capacitor(node, GND, c);
        } else {
            // Distributed RC ladder: the same total capacitance spread
            // over `mesh_depth` internal nodes behind series metal
            // resistance — deeper meshes mean larger MNA systems, which
            // is exactly the density knob's purpose.
            let seg_c = c / cfg.mesh_depth as f64;
            let mut prev = node;
            for s in 0..cfg.mesh_depth {
                let n = out.node(&format!("pex{pi}_{s}"));
                out.resistor(prev, n, cfg.mesh_res);
                out.capacitor(n, GND, seg_c);
                prev = n;
            }
        }
    }
    // Scale intrinsic junction caps via the model card copy held by each
    // instance (cj scaling increases cdb/csb in subsequent analyses).
    for e in out.elements_mut() {
        if let Element::Mos(m) = e {
            m.model.cj *= cfg.junction_scale;
            m.model.cgso *= 1.15; // fringe adds to overlap
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{MosPolarity, Technology};
    use crate::netlist::{Circuit, Mosfet, GND};

    fn amp() -> Circuit {
        let t = Technology::ptm45();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let o = ckt.node("o");
        ckt.vsource(vdd, GND, 1.0, 0.0);
        ckt.vsource(g, GND, 0.55, 1.0);
        ckt.resistor(vdd, o, 10.0e3);
        ckt.capacitor(o, GND, 5e-15);
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Nmos,
            d: o,
            g,
            s: GND,
            w: 2e-6,
            l: 90e-9,
            mult: 2.0,
            model: t.nmos,
        });
        ckt
    }

    #[test]
    fn extraction_is_deterministic() {
        let ckt = amp();
        let a = extract(&ckt, &PexConfig::default());
        let b = extract(&ckt, &PexConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn extraction_adds_capacitors() {
        let ckt = amp();
        let ex = extract(&ckt, &PexConfig::default());
        let ncaps = ex
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Capacitor { .. }))
            .count();
        assert!(ncaps >= 4, "expected parasitic caps, found {ncaps}");
    }

    #[test]
    fn extraction_slows_the_amplifier() {
        use crate::ac::{ac_sweep, log_freqs};
        use crate::dc::{dc_operating_point, DcOptions};
        let ckt = amp();
        let out = crate::netlist::Node(3);
        let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let f = log_freqs(1e4, 1e12, 20);
        let sch = ac_sweep(&ckt, &op, &f, out).unwrap().f_3db().unwrap();

        let ex = extract(&ckt, &PexConfig::default());
        let opx = dc_operating_point(&ex, &DcOptions::default()).unwrap();
        let pex = ac_sweep(&ex, &opx, &f, out).unwrap().f_3db().unwrap();
        assert!(
            pex < sch,
            "parasitics must reduce bandwidth: pex {pex} vs sch {sch}"
        );
    }

    #[test]
    fn jitter_bounded_and_spread() {
        let cfg = PexConfig::default();
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for s in 0..1000u64 {
            let j = jitter(s, cfg.spread);
            lo = lo.min(j);
            hi = hi.max(j);
            assert!(j >= 1.0 - cfg.spread && j <= 1.0 + cfg.spread);
        }
        assert!(hi - lo > cfg.spread, "jitter should actually spread");
    }

    #[test]
    fn mesh_depth_grows_mna_dim_and_keeps_total_cap() {
        let ckt = amp();
        let lumped = extract(&ckt, &PexConfig::default());
        let total_cap = |c: &Circuit| -> f64 {
            c.elements()
                .iter()
                .filter_map(|e| match e {
                    Element::Capacitor { c, .. } => Some(*c),
                    _ => None,
                })
                .sum()
        };
        for depth in [1usize, 3, 5] {
            let cfg = PexConfig {
                mesh_depth: depth,
                ..PexConfig::default()
            };
            let meshed = extract(&ckt, &cfg);
            // One internal node per segment per annotated terminal.
            let added = meshed.num_nodes() - lumped.num_nodes();
            // Every element the lumped extraction appends is one
            // annotated terminal's cap-to-ground.
            let terminals = lumped.elements().len() - ckt.elements().len();
            assert_eq!(added, depth * terminals, "depth {depth}");
            assert!(meshed.mna_dim() > lumped.mna_dim());
            // The ladder redistributes, never adds, capacitance.
            let d = (total_cap(&meshed) - total_cap(&lumped)).abs();
            assert!(d < 1e-20, "depth {depth}: cap drift {d}");
            // Deterministic like the lumped extraction.
            assert_eq!(meshed, extract(&ckt, &cfg));
        }
        // depth 0 is bitwise the historical behaviour.
        assert_eq!(lumped, extract(&ckt, &PexConfig::default()));
    }

    #[test]
    fn meshed_extraction_still_simulates() {
        use crate::ac::{ac_sweep, log_freqs};
        use crate::dc::{dc_operating_point, DcOptions};
        let ckt = amp();
        let cfg = PexConfig {
            mesh_depth: 4,
            ..PexConfig::default()
        };
        let ex = extract(&ckt, &cfg);
        let out = crate::netlist::Node(3);
        let op = dc_operating_point(&ex, &DcOptions::default()).unwrap();
        let f = log_freqs(1e4, 1e12, 10);
        let resp = ac_sweep(&ex, &op, &f, out).unwrap();
        assert!(resp.f_3db().unwrap() > 0.0);
    }

    #[test]
    fn bigger_devices_get_bigger_parasitics() {
        let t = Technology::ptm45();
        let make = |w: f64| {
            let mut ckt = Circuit::new();
            let d = ckt.node("d");
            let g = ckt.node("g");
            ckt.vsource(d, GND, 1.0, 0.0);
            ckt.vsource(g, GND, 0.6, 0.0);
            ckt.mosfet(Mosfet {
                polarity: MosPolarity::Nmos,
                d,
                g,
                s: GND,
                w,
                l: 90e-9,
                mult: 1.0,
                model: t.nmos,
            });
            ckt
        };
        let total_cap = |c: &Circuit| -> f64 {
            c.elements()
                .iter()
                .filter_map(|e| match e {
                    Element::Capacitor { c, .. } => Some(*c),
                    _ => None,
                })
                .sum()
        };
        let small = total_cap(&extract(&make(1e-6), &PexConfig::default()));
        let large = total_cap(&extract(&make(20e-6), &PexConfig::default()));
        assert!(large > small * 2.0);
    }
}
