//! Circuit netlist representation and builder.
//!
//! A [`Circuit`] is a flat bag of elements over integer-indexed nodes, with
//! node 0 as ground, mirroring the structure of a SPICE deck. Topology
//! generators in `autockt-circuits` construct a fresh `Circuit` per
//! parameter vector; analyses in [`crate::dc`], [`crate::ac`],
//! [`crate::tran`] and [`crate::noise`] consume it immutably.

use crate::device::{MosModel, MosPolarity};

/// A handle to a circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub(crate) usize);

/// The ground (reference) node.
pub const GND: Node = Node(0);

impl Node {
    /// Raw index of the node (0 = ground). Mostly useful for diagnostics.
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A step waveform for transient sources: value is `v0` until `t_delay`,
/// then `v1` (with an instantaneous edge; the integrator treats the corner
/// conservatively).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Step {
    /// Initial level.
    pub v0: f64,
    /// Final level.
    pub v1: f64,
    /// Edge time (s).
    pub t_delay: f64,
}

impl Step {
    /// Value of the waveform at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        if t < self.t_delay {
            self.v0
        } else {
            self.v1
        }
    }
}

/// An instantiated MOSFET. The bulk is implicitly tied to the source
/// (no body effect); this matches the hand-analysis model the rest of the
/// device card assumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Device polarity.
    pub polarity: MosPolarity,
    /// Drain node.
    pub d: Node,
    /// Gate node.
    pub g: Node,
    /// Source node.
    pub s: Node,
    /// Channel width (m).
    pub w: f64,
    /// Channel length (m).
    pub l: f64,
    /// Parallel-device multiplier.
    pub mult: f64,
    /// Model card (copied in; cards are tiny).
    pub model: MosModel,
}

/// A netlist element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between `p` and `n`. `noisy` controls whether its
    /// thermal noise is included in noise analysis (bias ideal resistors
    /// can opt out).
    Resistor {
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Resistance (ohm), must be > 0.
        r: f64,
        /// Include 4kT/R noise in noise analysis.
        noisy: bool,
    },
    /// Linear capacitor between `p` and `n`.
    Capacitor {
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Capacitance (farad), must be >= 0.
        c: f64,
    },
    /// Independent voltage source `p` - `n` = value. Contributes one MNA
    /// branch unknown.
    Vsource {
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// DC value (V).
        dc: f64,
        /// AC magnitude (V) for small-signal analyses.
        ac: f64,
        /// Optional transient waveform overriding `dc`.
        wave: Option<Step>,
    },
    /// Independent current source pushing `dc` amperes out of `n` into `p`
    /// through the external circuit (SPICE convention: positive current
    /// flows from `p` to `n` *inside* the source).
    Isource {
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// DC value (A).
        dc: f64,
        /// AC magnitude (A).
        ac: f64,
        /// Optional transient waveform overriding `dc`.
        wave: Option<Step>,
    },
    /// Voltage-controlled current source: current `gm * v(cp, cn)` flows
    /// from `op` to `on` inside the source.
    Vccs {
        /// Output positive terminal.
        op: Node,
        /// Output negative terminal.
        on: Node,
        /// Control positive terminal.
        cp: Node,
        /// Control negative terminal.
        cn: Node,
        /// Transconductance (S).
        gm: f64,
    },
    /// A MOSFET instance.
    Mos(Mosfet),
}

/// A circuit under construction or analysis.
///
/// # Examples
///
/// Build a resistive divider and solve its operating point:
///
/// ```
/// use autockt_sim::netlist::{Circuit, GND};
/// use autockt_sim::dc::{dc_operating_point, DcOptions};
///
/// # fn main() -> Result<(), autockt_sim::SimError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let mid = ckt.node("mid");
/// ckt.vsource(vin, GND, 2.0, 0.0);
/// ckt.resistor(vin, mid, 1000.0);
/// ckt.resistor(mid, GND, 1000.0);
/// let op = dc_operating_point(&ckt, &DcOptions::default())?;
/// assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    node_names: Vec<String>,
    elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            node_names: vec!["0".to_string()],
            elements: Vec::new(),
        }
    }

    /// Allocates a new named node.
    pub fn node(&mut self, name: &str) -> Node {
        let id = self.node_names.len();
        self.node_names.push(name.to_string());
        Node(id)
    }

    /// Number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Name of a node (ground is `"0"`).
    pub fn node_name(&self, n: Node) -> &str {
        &self.node_names[n.0]
    }

    /// The elements of the circuit, in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable access to elements, for in-place annotation (PEX).
    pub(crate) fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// Adds a noisy resistor. See [`Element::Resistor`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a positive finite number.
    pub fn resistor(&mut self, p: Node, n: Node, r: f64) {
        assert!(r.is_finite() && r > 0.0, "resistance must be positive");
        self.elements.push(Element::Resistor {
            p,
            n,
            r,
            noisy: true,
        });
    }

    /// Adds a noiseless (ideal bias) resistor.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a positive finite number.
    pub fn resistor_noiseless(&mut self, p: Node, n: Node, r: f64) {
        assert!(r.is_finite() && r > 0.0, "resistance must be positive");
        self.elements.push(Element::Resistor {
            p,
            n,
            r,
            noisy: false,
        });
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or non-finite.
    pub fn capacitor(&mut self, p: Node, n: Node, c: f64) {
        assert!(c.is_finite() && c >= 0.0, "capacitance must be >= 0");
        self.elements.push(Element::Capacitor { p, n, c });
    }

    /// Adds a DC voltage source with an AC magnitude.
    pub fn vsource(&mut self, p: Node, n: Node, dc: f64, ac: f64) {
        self.elements.push(Element::Vsource {
            p,
            n,
            dc,
            ac,
            wave: None,
        });
    }

    /// Adds a voltage source with a transient step waveform.
    pub fn vsource_step(&mut self, p: Node, n: Node, step: Step, ac: f64) {
        self.elements.push(Element::Vsource {
            p,
            n,
            dc: step.v0,
            ac,
            wave: Some(step),
        });
    }

    /// Adds a DC current source with an AC magnitude.
    pub fn isource(&mut self, p: Node, n: Node, dc: f64, ac: f64) {
        self.elements.push(Element::Isource {
            p,
            n,
            dc,
            ac,
            wave: None,
        });
    }

    /// Adds a current source with a transient step waveform.
    pub fn isource_step(&mut self, p: Node, n: Node, step: Step, ac: f64) {
        self.elements.push(Element::Isource {
            p,
            n,
            dc: step.v0,
            ac,
            wave: Some(step),
        });
    }

    /// Adds a voltage-controlled current source.
    pub fn vccs(&mut self, op: Node, on: Node, cp: Node, cn: Node, gm: f64) {
        self.elements.push(Element::Vccs { op, on, cp, cn, gm });
    }

    /// Adds a MOSFET.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is non-positive.
    pub fn mosfet(&mut self, m: Mosfet) {
        assert!(m.w > 0.0 && m.l > 0.0 && m.mult > 0.0, "bad mos geometry");
        self.elements.push(Element::Mos(m));
    }

    /// Number of independent voltage sources (each adds one MNA branch
    /// unknown).
    pub fn num_vsources(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Vsource { .. }))
            .count()
    }

    /// Size of the MNA unknown vector: non-ground nodes plus voltage-source
    /// branch currents.
    pub fn mna_dim(&self) -> usize {
        self.num_nodes() - 1 + self.num_vsources()
    }

    /// Index of node `n` in the MNA unknown vector, or `None` for ground.
    pub(crate) fn mna_index(&self, n: Node) -> Option<usize> {
        if n.0 == 0 {
            None
        } else {
            Some(n.0 - 1)
        }
    }

    /// Validates structural sanity: every node referenced exists and every
    /// non-ground node has at least two element connections (no dangling
    /// nodes, which would make the MNA matrix singular).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::BadNetlist`] describing the first defect
    /// found.
    pub fn validate(&self) -> Result<(), crate::SimError> {
        let n = self.num_nodes();
        let mut degree = vec![0usize; n];
        let touch = |node: Node, degree: &mut Vec<usize>| {
            degree[node.0] += 1;
        };
        for e in &self.elements {
            match e {
                Element::Resistor { p, n: nn, .. } | Element::Capacitor { p, n: nn, .. } => {
                    touch(*p, &mut degree);
                    touch(*nn, &mut degree);
                }
                Element::Vsource { p, n: nn, .. } | Element::Isource { p, n: nn, .. } => {
                    touch(*p, &mut degree);
                    touch(*nn, &mut degree);
                }
                Element::Vccs { op, on, cp, cn, .. } => {
                    touch(*op, &mut degree);
                    touch(*on, &mut degree);
                    touch(*cp, &mut degree);
                    touch(*cn, &mut degree);
                }
                Element::Mos(m) => {
                    touch(m.d, &mut degree);
                    touch(m.g, &mut degree);
                    touch(m.s, &mut degree);
                }
            }
        }
        for (i, d) in degree.iter().enumerate().skip(1) {
            if *d == 0 {
                return Err(crate::SimError::BadNetlist {
                    what: format!("node '{}' is not connected", self.node_names[i]),
                });
            }
            if *d == 1 {
                return Err(crate::SimError::BadNetlist {
                    what: format!(
                        "node '{}' has a single connection (floating)",
                        self.node_names[i]
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Technology;

    #[test]
    fn node_allocation_and_names() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.node_name(b), "b");
        assert!(GND.is_ground());
        assert!(!a.is_ground());
    }

    #[test]
    fn mna_dim_counts_vsources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, GND, 1.0, 0.0);
        c.resistor(a, b, 100.0);
        c.resistor(b, GND, 100.0);
        assert_eq!(c.mna_dim(), 3); // 2 nodes + 1 branch
        assert_eq!(c.num_vsources(), 1);
    }

    #[test]
    fn validate_catches_dangling_node() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.resistor(a, GND, 1.0e3);
        c.resistor(a, GND, 1.0e3);
        let _unused = b;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_catches_floating_node() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, GND, 1.0e3);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_passes_well_formed() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource(a, GND, 1.0, 0.0);
        c.resistor(a, GND, 50.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_panics() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, GND, 0.0);
    }

    #[test]
    fn step_waveform_switches_at_delay() {
        let s = Step {
            v0: 0.0,
            v1: 1.0,
            t_delay: 1e-9,
        };
        assert_eq!(s.value(0.0), 0.0);
        assert_eq!(s.value(2e-9), 1.0);
    }

    #[test]
    fn mosfet_addition() {
        let t = Technology::ptm45();
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.vsource(d, GND, 1.0, 0.0);
        c.vsource(g, GND, 0.7, 0.0);
        c.mosfet(Mosfet {
            polarity: crate::device::MosPolarity::Nmos,
            d,
            g,
            s: GND,
            w: 1e-6,
            l: t.lmin,
            mult: 1.0,
            model: t.nmos,
        });
        assert!(c.validate().is_ok());
        assert_eq!(c.elements().len(), 3);
    }
}
