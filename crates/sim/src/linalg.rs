//! Dense linear algebra for modified nodal analysis (MNA).
//!
//! Circuit matrices in this project are small (tens of unknowns), so a
//! dense LU factorization with partial pivoting is both simpler and faster
//! than any sparse machinery. The factorization is generic over the matrix
//! scalar so the same code path serves real (DC, transient) and complex
//! (AC, noise) analyses.

use crate::complex::Complex;
use crate::error::SimError;

/// Scalar types usable in an MNA system.
///
/// This trait is sealed in spirit: it is implemented for [`f64`] and
/// [`Complex`] and the simulator does not expect downstream
/// implementations.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot selection and singularity detection.
    fn abs(self) -> f64;
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
}

impl Scalar for Complex {
    #[inline]
    fn zero() -> Self {
        Complex::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex::ONE
    }
    #[inline]
    fn abs(self) -> f64 {
        self.norm()
    }
}

/// A dense, row-major square-capable matrix.
///
/// # Examples
///
/// ```
/// use autockt_sim::linalg::Matrix;
///
/// let mut m = Matrix::<f64>::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// assert_eq!(m[(1, 1)], 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Builds a matrix from a row-major slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flat_map(|row| row.iter().copied()).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(T::zero());
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![T::zero(); self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = T::zero();
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (a, b) in row.iter().zip(x) {
                acc += *a * *b;
            }
            *yi = acc;
        }
        y
    }
}

impl<T> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[r * self.cols + c]
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        &mut self.data[r * self.cols + c]
    }
}

/// LU factorization with partial pivoting of a square matrix.
///
/// Factor once, then [`LuFactors::solve`] any number of right-hand sides —
/// the noise analysis exploits this by reusing one factorization per
/// frequency point across every noise source.
#[derive(Debug, Clone)]
pub struct LuFactors<T> {
    lu: Matrix<T>,
    perm: Vec<usize>,
}

impl<T: Scalar> LuFactors<T> {
    /// Factors `a` in place (consuming it).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularMatrix`] if no usable pivot is found in
    /// some column (matrix is singular to working precision).
    pub fn factor(mut a: Matrix<T>, pivot_floor: f64) -> Result<Self, SimError> {
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let n = a.rows();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut p = k;
            let mut best = a[(k, k)].abs();
            for i in (k + 1)..n {
                let v = a[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= pivot_floor || !best.is_finite() {
                return Err(SimError::SingularMatrix { column: k });
            }
            if p != k {
                for c in 0..n {
                    let tmp = a[(k, c)];
                    a[(k, c)] = a[(p, c)];
                    a[(p, c)] = tmp;
                }
                perm.swap(k, p);
            }
            let pivot = a[(k, k)];
            for i in (k + 1)..n {
                let m = a[(i, k)] / pivot;
                a[(i, k)] = m;
                for c in (k + 1)..n {
                    let akc = a[(k, c)];
                    let v = m * akc;
                    a[(i, c)] -= v;
                }
            }
        }
        Ok(LuFactors { lu: a, perm })
    }

    /// Solves `A x = b` for the factored `A`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "dimension mismatch");
        // Apply permutation.
        let mut x: Vec<T> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }
}

/// Convenience one-shot solve of `A x = b`.
///
/// # Errors
///
/// Returns [`SimError::SingularMatrix`] when `a` is singular to working
/// precision.
pub fn solve<T: Scalar>(a: Matrix<T>, b: &[T]) -> Result<Vec<T>, SimError> {
    Ok(LuFactors::factor(a, 1e-300)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = Matrix::<f64>::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = solve(a, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            solve(a, &[1.0, 2.0]),
            Err(SimError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn complex_solve_roundtrip() {
        use crate::complex::Complex as C;
        let a = Matrix::from_rows(&[
            vec![C::new(1.0, 1.0), C::new(0.0, -2.0)],
            vec![C::new(3.0, 0.0), C::new(1.0, 1.0)],
        ]);
        let xtrue = vec![C::new(1.0, -1.0), C::new(2.0, 0.5)];
        let b = a.mul_vec(&xtrue);
        let x = solve(a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&xtrue) {
            assert!((*xi - *ti).norm() < 1e-10);
        }
    }

    #[test]
    fn factor_reuse_multiple_rhs() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let f = LuFactors::factor(a.clone(), 1e-300).unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [2.0, -5.0]] {
            let x = f.solve(&b);
            let back = a.mul_vec(&x);
            assert!((back[0] - b[0]).abs() < 1e-12);
            assert!((back[1] - b[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }
}
