//! Linear algebra for modified nodal analysis (MNA).
//!
//! Schematic-level circuit matrices in this project are small (tens of
//! unknowns), where a dense LU factorization with partial pivoting is both
//! simpler and faster than sparse machinery — those kernels live in this
//! module. Post-layout extraction meshes push the dimension into the
//! hundreds, where the O(n³) dense elimination loses to a fill-reducing
//! sparse factorization; that backend lives in [`sparse`], and
//! [`sparse::SolverConfig`] picks between the two by dimension. The dense
//! factorization is generic over the matrix scalar so the same code path
//! serves real (DC, transient) and complex (AC, noise) analyses.

pub(crate) mod correction;
pub mod sparse;
pub mod structure;

use crate::complex::Complex;
use crate::error::SimError;

/// Scalar types usable in an MNA system.
///
/// This trait is sealed in spirit: it is implemented for [`f64`] and
/// [`Complex`] and the simulator does not expect downstream
/// implementations. `Send + Sync` are supertraits so factorizations over
/// any `Scalar` can fan out across the scoped-thread tile scheduler in
/// [`crate::par`] (both implementors are plain `Copy` data).
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Default
    + PartialEq
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot selection and singularity detection.
    fn abs(self) -> f64;
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
}

impl Scalar for Complex {
    #[inline]
    fn zero() -> Self {
        Complex::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex::ONE
    }
    #[inline]
    fn abs(self) -> f64 {
        self.norm()
    }
}

/// A dense, row-major square-capable matrix.
///
/// # Examples
///
/// ```
/// use autockt_sim::linalg::Matrix;
///
/// let mut m = Matrix::<f64>::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// assert_eq!(m[(1, 1)], 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Builds a matrix from a row-major slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flat_map(|row| row.iter().copied()).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(T::zero());
    }

    /// Copies `src` into `self`, reusing the existing allocation when the
    /// capacity suffices (the DC Newton loop overwrites the same matrix
    /// every iteration).
    pub fn copy_from(&mut self, src: &Matrix<T>) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![T::zero(); self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = T::zero();
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (a, b) in row.iter().zip(x) {
                acc += *a * *b;
            }
            *yi = acc;
        }
        y
    }
}

impl<T> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[r * self.cols + c]
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        &mut self.data[r * self.cols + c]
    }
}

/// LU factorization with partial pivoting of a square matrix.
///
/// Factor once, then [`LuFactors::solve`] any number of right-hand sides —
/// the noise analysis exploits this by reusing one factorization per
/// frequency point across every noise source.
#[derive(Debug, Clone)]
pub struct LuFactors<T> {
    lu: Matrix<T>,
    perm: Vec<usize>,
}

impl<T: Scalar> Default for LuFactors<T> {
    fn default() -> Self {
        LuFactors::empty()
    }
}

impl<T: Scalar> LuFactors<T> {
    /// Factors `a` in place (consuming it).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularMatrix`] if no usable pivot is found in
    /// some column (matrix is singular to working precision).
    pub fn factor(a: Matrix<T>, pivot_floor: f64) -> Result<Self, SimError> {
        let mut f = LuFactors {
            lu: a,
            perm: Vec::new(),
        };
        f.eliminate(pivot_floor)?;
        Ok(f)
    }

    /// Creates an empty factorization whose buffers [`LuFactors::refactor`]
    /// fills; solving before a successful refactor panics on the dimension
    /// check.
    pub fn empty() -> Self {
        LuFactors {
            lu: Matrix::zeros(0, 0),
            perm: Vec::new(),
        }
    }

    /// Re-factors `a` into this object's buffers, reusing the matrix and
    /// permutation allocations (the DC Newton loop refactors a
    /// same-dimension Jacobian every iteration).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularMatrix`] like [`LuFactors::factor`]; on
    /// error the stored factorization is garbage and must be refactored
    /// before the next solve.
    pub fn refactor(&mut self, a: &Matrix<T>, pivot_floor: f64) -> Result<(), SimError> {
        self.lu.copy_from(a);
        self.eliminate(pivot_floor)
    }

    /// Re-factors an `n x n` system assembled in place by `fill` (invoked
    /// on a zeroed matrix), reusing this object's buffers. This skips the
    /// separate assembly matrix entirely — the AC sweep stamps its sparse
    /// pattern straight into the factorization buffer once per frequency.
    ///
    /// # Errors
    ///
    /// Same contract as [`LuFactors::refactor`].
    pub fn refactor_with(
        &mut self,
        n: usize,
        pivot_floor: f64,
        fill: impl FnOnce(&mut Matrix<T>),
    ) -> Result<(), SimError> {
        if self.lu.rows != n || self.lu.cols != n {
            self.lu = Matrix::zeros(n, n);
        } else {
            self.lu.fill_zero();
        }
        fill(&mut self.lu);
        self.eliminate(pivot_floor)
    }

    fn eliminate(&mut self, pivot_floor: f64) -> Result<(), SimError> {
        let LuFactors { lu: a, perm } = self;
        assert_eq!(a.rows, a.cols, "LU requires a square matrix");
        let n = a.rows;
        perm.clear();
        perm.extend(0..n);
        let data = &mut a.data;
        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut p = k;
            let mut best = data[k * n + k].abs();
            for i in (k + 1)..n {
                let v = data[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= pivot_floor || !best.is_finite() {
                return Err(SimError::SingularMatrix { column: k });
            }
            if p != k {
                let (lo, hi) = data.split_at_mut(p * n);
                lo[k * n..(k + 1) * n].swap_with_slice(&mut hi[..n]);
                perm.swap(k, p);
            }
            // Row elimination over contiguous slices: the bounds checks of
            // per-element `(i, c)` indexing dominate this kernel otherwise.
            let pivot = data[k * n + k];
            let (top, bottom) = data.split_at_mut((k + 1) * n);
            let row_k = &top[k * n + k + 1..];
            for row_i in bottom.chunks_exact_mut(n) {
                let m = row_i[k] / pivot;
                row_i[k] = m;
                for (x, &y) in row_i[k + 1..].iter_mut().zip(row_k) {
                    let v = m * y;
                    *x -= v;
                }
            }
        }
        Ok(())
    }

    /// Solves `A x = b` for the factored `A`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-provided buffer, reusing its
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        let n = self.lu.rows;
        assert_eq!(b.len(), n, "dimension mismatch");
        // Apply permutation.
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        let data = &self.lu.data;
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let row = &data[i * n..i * n + i];
            let mut acc = x[i];
            for (l, &xj) in row.iter().zip(x.iter()) {
                acc -= *l * xj;
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let row = &data[i * n..(i + 1) * n];
            let mut acc = x[i];
            for (j, l) in row.iter().enumerate().skip(i + 1) {
                acc -= *l * x[j];
            }
            x[i] = acc / row[i];
        }
    }

    /// Solves `A X = B` for `lanes` right-hand sides in one pass over the
    /// factors, with `b` and `x` in lane-innermost layout
    /// (`[i * lanes + lane]`). Each lane performs the exact arithmetic of
    /// [`LuFactors::solve_into`] in the exact order — permutation, forward,
    /// backward — so every lane's solution is bitwise-equal to a scalar
    /// solve of that lane; the fusion only shares the single traversal of
    /// the `n x n` factor across all lanes (memory traffic `n² + lanes·n`
    /// instead of `lanes·n²`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim * lanes`.
    pub fn solve_multi_into(&self, b: &[T], lanes: usize, x: &mut Vec<T>) {
        let n = self.lu.rows;
        assert_eq!(b.len(), n * lanes, "dimension mismatch");
        x.clear();
        x.reserve(n * lanes);
        for &p in &self.perm {
            x.extend_from_slice(&b[p * lanes..(p + 1) * lanes]);
        }
        let data = &self.lu.data;
        // Forward substitution (L has unit diagonal), all lanes per row.
        for i in 1..n {
            let row = &data[i * n..i * n + i];
            let (done, rest) = x.split_at_mut(i * lanes);
            let xi = &mut rest[..lanes];
            for (j, l) in row.iter().enumerate() {
                let xj = &done[j * lanes..(j + 1) * lanes];
                for (acc, &v) in xi.iter_mut().zip(xj) {
                    let upd = *l * v;
                    *acc -= upd;
                }
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let row = &data[i * n..(i + 1) * n];
            let (head, tail) = x.split_at_mut((i + 1) * lanes);
            let xi = &mut head[i * lanes..];
            for (j, l) in row.iter().enumerate().skip(i + 1) {
                let xj = &tail[(j - i - 1) * lanes..(j - i) * lanes];
                for (acc, &v) in xi.iter_mut().zip(xj) {
                    let upd = *l * v;
                    *acc -= upd;
                }
            }
            let d = row[i];
            for acc in xi.iter_mut() {
                let v = *acc / d;
                *acc = v;
            }
        }
    }
}

/// LU factorization with partial pivoting of a *complex* square matrix in
/// structure-of-arrays layout: the real and imaginary parts live in two
/// parallel row-major `f64` arrays instead of an array of [`Complex`]
/// structs.
///
/// The split layout is what unlocks autovectorization of the elimination
/// inner loop — each rank-1 update becomes four independent multiplies and
/// two subtractions over contiguous `f64` slices, which LLVM turns into
/// packed SIMD, whereas the interleaved `Complex` layout forces scalar
/// shuffles. The arithmetic (operation kinds and order, pivot selection by
/// [`Complex::norm`]) is *identical* to `LuFactors<Complex>`, so factors
/// and solutions are bitwise-equal to the generic kernel's
/// (property-tested in `tests/proptest_linalg.rs`).
///
/// This is the per-frequency-point kernel of the AC sweep: the MNA system
/// `G + j w C` is stamped straight into the factor buffers once per point
/// and eliminated in place, with no per-point allocation.
#[derive(Debug, Clone, Default)]
pub struct ComplexLuSoa {
    n: usize,
    re: Vec<f64>,
    im: Vec<f64>,
    perm: Vec<usize>,
}

impl ComplexLuSoa {
    /// Creates an empty factorization whose buffers
    /// [`ComplexLuSoa::refactor_with`] fills; solving before a successful
    /// refactor panics on the dimension check.
    pub fn empty() -> Self {
        ComplexLuSoa::default()
    }

    /// Dimension of the factored system (0 before the first refactor).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Factors a dense complex matrix, splitting it into SoA storage.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularMatrix`] like [`LuFactors::factor`].
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &Matrix<Complex>, pivot_floor: f64) -> Result<Self, SimError> {
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let n = a.rows();
        let mut f = ComplexLuSoa::empty();
        f.refactor_with(n, pivot_floor, |re, im| {
            for r in 0..n {
                for c in 0..n {
                    let v = a[(r, c)];
                    re[r * n + c] = v.re;
                    im[r * n + c] = v.im;
                }
            }
        })?;
        Ok(f)
    }

    /// Re-factors an `n x n` system assembled in place by `fill` (invoked
    /// on zeroed re/im arrays in row-major order), reusing this object's
    /// buffers — the SoA analogue of [`LuFactors::refactor_with`], used by
    /// the AC sweep to stamp its sparse pattern once per frequency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularMatrix`]; on error the stored
    /// factorization is garbage and must be refactored before the next
    /// solve.
    pub fn refactor_with(
        &mut self,
        n: usize,
        pivot_floor: f64,
        fill: impl FnOnce(&mut [f64], &mut [f64]),
    ) -> Result<(), SimError> {
        if self.n != n || self.re.len() != n * n {
            self.n = n;
            self.re.clear();
            self.re.resize(n * n, 0.0);
            self.im.clear();
            self.im.resize(n * n, 0.0);
        } else {
            self.re.fill(0.0);
            self.im.fill(0.0);
        }
        fill(&mut self.re, &mut self.im);
        self.eliminate(pivot_floor)
    }

    fn eliminate(&mut self, pivot_floor: f64) -> Result<(), SimError> {
        let n = self.n;
        let (re, im) = (&mut self.re, &mut self.im);
        self.perm.clear();
        self.perm.extend(0..n);
        for k in 0..n {
            // Partial pivoting on the same |.| as the generic kernel.
            let mut p = k;
            let mut best = Complex::norm_parts(re[k * n + k], im[k * n + k]);
            for i in (k + 1)..n {
                let v = Complex::norm_parts(re[i * n + k], im[i * n + k]);
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= pivot_floor || !best.is_finite() {
                return Err(SimError::SingularMatrix { column: k });
            }
            if p != k {
                let (lo, hi) = re.split_at_mut(p * n);
                lo[k * n..(k + 1) * n].swap_with_slice(&mut hi[..n]);
                let (lo, hi) = im.split_at_mut(p * n);
                lo[k * n..(k + 1) * n].swap_with_slice(&mut hi[..n]);
                self.perm.swap(k, p);
            }
            let pivot = Complex::new(re[k * n + k], im[k * n + k]);
            let (top_re, bot_re) = re.split_at_mut((k + 1) * n);
            let (top_im, bot_im) = im.split_at_mut((k + 1) * n);
            let row_k_re = &top_re[k * n + k + 1..];
            let row_k_im = &top_im[k * n + k + 1..];
            for (row_re, row_im) in bot_re.chunks_exact_mut(n).zip(bot_im.chunks_exact_mut(n)) {
                let m = Complex::new(row_re[k], row_im[k]) / pivot;
                row_re[k] = m.re;
                row_im[k] = m.im;
                let (mr, mi) = (m.re, m.im);
                // Rank-1 update over four parallel f64 slices: the compiler
                // vectorizes this where the interleaved Complex loop stays
                // scalar. Same multiplies and subtractions, same order, as
                // `x -= m * y` on Complex values.
                let xr = row_re[k + 1..].iter_mut();
                let xi = row_im[k + 1..].iter_mut();
                for (((x_r, x_i), &yr), &yi) in xr.zip(xi).zip(row_k_re).zip(row_k_im) {
                    *x_r -= mr * yr - mi * yi;
                    *x_i -= mr * yi + mi * yr;
                }
            }
        }
        Ok(())
    }

    /// Solves `A x = b` for the factored `A`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[Complex]) -> Vec<Complex> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-provided buffer, reusing its
    /// allocation. Produces results bitwise-equal to
    /// [`LuFactors::solve_into`] on the same system.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve_into(&self, b: &[Complex], x: &mut Vec<Complex>) {
        let n = self.n;
        assert_eq!(b.len(), n, "dimension mismatch");
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let row_re = &self.re[i * n..i * n + i];
            let row_im = &self.im[i * n..i * n + i];
            let mut acc = x[i];
            for ((&lr, &li), &xj) in row_re.iter().zip(row_im).zip(x.iter()) {
                acc -= Complex::new(lr, li) * xj;
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let row_re = &self.re[i * n + i + 1..(i + 1) * n];
            let row_im = &self.im[i * n + i + 1..(i + 1) * n];
            let mut acc = x[i];
            for ((&lr, &li), &xj) in row_re.iter().zip(row_im).zip(x[i + 1..].iter()) {
                acc -= Complex::new(lr, li) * xj;
            }
            x[i] = acc / Complex::new(self.re[i * n + i], self.im[i * n + i]);
        }
    }
}

/// LU factorization of a *batch* of real square systems in lockstep, with
/// the batch as the innermost storage axis: entry `(r, c)` of system `b`
/// lives at `data[(r*n + c)*B + b]`.
///
/// This is the corner axis of the worst-case-PVT evaluation engine: the
/// B same-structure MNA systems of a corner set are eliminated together,
/// so every rank-1 update touches B contiguous lanes that the compiler
/// turns into packed SIMD — vector width comes from the batch, not the
/// matrix dimension, which is what makes batching pay even at small dims.
///
/// Each system keeps its *own* pivot order and its own singularity
/// status: the per-system arithmetic (pivot selection by `|.|` with a
/// strict `>` comparison, multiply-then-subtract updates in ascending
/// column order) is identical to [`LuFactors<f64>`], so the factors and
/// solutions of every nonsingular system are bitwise-equal to the scalar
/// kernel's (property-tested in `tests/proptest_linalg.rs`). A singular
/// system is masked off at the failing column — its multipliers become
/// zero so its lanes stop changing — without disturbing its siblings.
#[derive(Debug, Clone, Default)]
pub struct RealLuBatch {
    n: usize,
    batch: usize,
    data: Vec<f64>,
    /// Per-system permutations, batch-innermost: `perm[k*B + b]`.
    perm: Vec<usize>,
    /// Per-system singularity: `Some(column)` where elimination failed.
    sing: Vec<Option<usize>>,
    /// Multiplier scratch, one lane per system.
    m: Vec<f64>,
}

impl RealLuBatch {
    /// Creates an empty factorization whose buffers
    /// [`RealLuBatch::refactor_with`] fills.
    pub fn empty() -> Self {
        RealLuBatch::default()
    }

    /// Dimension of each factored system (0 before the first refactor).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of systems in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// `Some(column)` if system `b` turned out singular during the last
    /// refactor; its solution lanes are garbage and must not be read.
    pub fn singular(&self, b: usize) -> Option<usize> {
        self.sing[b]
    }

    /// Re-factors `batch` systems of dimension `n` assembled in place by
    /// `fill` (invoked on a zeroed `[(r*n + c)*batch + b]` buffer),
    /// reusing this object's allocations. Unlike the scalar kernels this
    /// never returns an error: singularity is tracked *per system* (query
    /// [`RealLuBatch::singular`]) so one defective corner cannot abort its
    /// siblings' factorization.
    pub fn refactor_with(
        &mut self,
        n: usize,
        batch: usize,
        pivot_floor: f64,
        fill: impl FnOnce(&mut [f64]),
    ) {
        self.n = n;
        self.batch = batch;
        self.data.clear();
        self.data.resize(n * n * batch, 0.0);
        self.m.clear();
        self.m.resize(batch, 0.0);
        fill(&mut self.data);
        self.eliminate(pivot_floor);
    }

    fn eliminate(&mut self, pivot_floor: f64) {
        // Dispatch to a lane-count-specialized elimination: with `B`
        // known at compile time the `B`-wide inner loops fully unroll
        // and vectorize (the whole point of the lockstep layout), where
        // a runtime trip count of ~6 leaves the vectorizer with more
        // prologue than body. `0` is the dynamic fallback; the
        // arithmetic is identical either way.
        match self.batch {
            1 => self.eliminate_impl::<1>(pivot_floor),
            2 => self.eliminate_impl::<2>(pivot_floor),
            3 => self.eliminate_impl::<3>(pivot_floor),
            4 => self.eliminate_impl::<4>(pivot_floor),
            5 => self.eliminate_impl::<5>(pivot_floor),
            6 => self.eliminate_impl::<6>(pivot_floor),
            7 => self.eliminate_impl::<7>(pivot_floor),
            8 => self.eliminate_impl::<8>(pivot_floor),
            _ => self.eliminate_impl::<0>(pivot_floor),
        }
    }

    fn eliminate_impl<const B: usize>(&mut self, pivot_floor: f64) {
        let n = self.n;
        let bt = if B == 0 { self.batch } else { B };
        let data = &mut self.data;
        self.perm.clear();
        for k in 0..n {
            self.perm.extend((0..bt).map(|_| k));
        }
        self.sing.clear();
        self.sing.resize(bt, None);
        for k in 0..n {
            // Per-system partial pivoting: same strict `>` comparison as
            // the scalar kernel, so ties resolve to the same row.
            for b in 0..bt {
                if self.sing[b].is_some() {
                    continue;
                }
                let mut p = k;
                let mut best = data[(k * n + k) * bt + b].abs();
                for i in (k + 1)..n {
                    let v = data[(i * n + k) * bt + b].abs();
                    if v > best {
                        best = v;
                        p = i;
                    }
                }
                if best <= pivot_floor || !best.is_finite() {
                    self.sing[b] = Some(k);
                    continue;
                }
                if p != k {
                    for c in 0..n {
                        data.swap((k * n + c) * bt + b, (p * n + c) * bt + b);
                    }
                    self.perm.swap(k * bt + b, p * bt + b);
                }
            }
            // Rank-1 updates, batch lanes innermost. Per system this is
            // the scalar kernel's multiply-then-subtract in the same
            // (row, column) order; across systems the `bt`-wide inner
            // loops run over contiguous lanes and autovectorize.
            let (top, bottom) = data.split_at_mut((k + 1) * n * bt);
            let row_k = &top[k * n * bt..];
            for row_i in bottom.chunks_exact_mut(n * bt) {
                for (b, m) in self.m.iter_mut().enumerate() {
                    *m = if self.sing[b].is_some() {
                        0.0
                    } else {
                        let v = row_i[k * bt + b] / row_k[k * bt + b];
                        row_i[k * bt + b] = v;
                        v
                    };
                }
                let ms = &self.m[..bt];
                let xs = &mut row_i[(k + 1) * bt..n * bt];
                let ys = &row_k[(k + 1) * bt..n * bt];
                for (xc, yc) in xs.chunks_exact_mut(bt).zip(ys.chunks_exact(bt)) {
                    for ((x, &y), &m) in xc.iter_mut().zip(yc).zip(ms) {
                        let v = m * y;
                        *x -= v;
                    }
                }
            }
        }
    }

    /// Solves every system of the batch at once: `rhs` and the solution
    /// `x` use the batch-innermost layout `[i*B + b]`. Nonsingular
    /// systems' solutions are bitwise-equal to [`LuFactors::solve_into`]
    /// on the same system; singular systems' lanes are garbage.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != dim * batch`.
    pub fn solve_batch_into(&self, rhs: &[f64], x: &mut Vec<f64>, acc: &mut Vec<f64>) {
        // Lane-count-specialized like `eliminate`: the corner-batched
        // settling sweep calls this once per time step against one
        // factorization, so the `B`-wide substitution loops — not the
        // elimination — are the hot path there, and they only vectorize
        // when the trip count is a compile-time constant.
        match self.batch {
            1 => self.solve_impl::<1>(rhs, x, acc),
            2 => self.solve_impl::<2>(rhs, x, acc),
            3 => self.solve_impl::<3>(rhs, x, acc),
            4 => self.solve_impl::<4>(rhs, x, acc),
            5 => self.solve_impl::<5>(rhs, x, acc),
            6 => self.solve_impl::<6>(rhs, x, acc),
            7 => self.solve_impl::<7>(rhs, x, acc),
            8 => self.solve_impl::<8>(rhs, x, acc),
            _ => self.solve_impl::<0>(rhs, x, acc),
        }
    }

    fn solve_impl<const B: usize>(&self, rhs: &[f64], x: &mut Vec<f64>, acc: &mut Vec<f64>) {
        let n = self.n;
        let bt = if B == 0 { self.batch } else { B };
        assert_eq!(rhs.len(), n * bt, "dimension mismatch");
        x.clear();
        for i in 0..n {
            for b in 0..bt {
                x.push(rhs[self.perm[i * bt + b] * bt + b]);
            }
        }
        acc.clear();
        acc.resize(bt, 0.0);
        let data = &self.data;
        // Forward substitution (unit diagonal), per-system j ascending.
        for i in 1..n {
            acc.copy_from_slice(&x[i * bt..(i + 1) * bt]);
            for j in 0..i {
                let row = &data[(i * n + j) * bt..(i * n + j + 1) * bt];
                let xj = &x[j * bt..(j + 1) * bt];
                for ((a, &l), &v) in acc.iter_mut().zip(row).zip(xj) {
                    *a -= l * v;
                }
            }
            x[i * bt..(i + 1) * bt].copy_from_slice(acc);
        }
        // Back substitution.
        for i in (0..n).rev() {
            acc.copy_from_slice(&x[i * bt..(i + 1) * bt]);
            for j in (i + 1)..n {
                let row = &data[(i * n + j) * bt..(i * n + j + 1) * bt];
                let xj = &x[j * bt..(j + 1) * bt];
                for ((a, &l), &v) in acc.iter_mut().zip(row).zip(xj) {
                    *a -= l * v;
                }
            }
            let diag = &data[(i * n + i) * bt..(i * n + i + 1) * bt];
            for ((xv, &a), &d) in x[i * bt..(i + 1) * bt].iter_mut().zip(acc.iter()).zip(diag) {
                *xv = a / d;
            }
        }
    }
}

/// The complex analogue of [`RealLuBatch`]: a batch of complex square
/// systems in split re/im storage *and* batch-innermost layout — entry
/// `(r, c)` of system `b` lives at `re[(r*n + c)*B + b]` /
/// `im[(r*n + c)*B + b]`.
///
/// This is the corner axis of the batched AC sweep: at each frequency the
/// B corner systems `G_b + j w C_b` are eliminated in lockstep, with the
/// rank-1 update's four multiplies and two subtractions running over B
/// contiguous lanes. Per system, the arithmetic (pivot selection by
/// [`Complex::norm_parts`], multiplier via [`Complex`] division, update
/// formula and order) is identical to [`ComplexLuSoa`] — and therefore to
/// `LuFactors<Complex>` — so per-system results are bitwise-equal
/// (property-tested in `tests/proptest_linalg.rs`).
#[derive(Debug, Clone, Default)]
pub struct ComplexLuBatch {
    n: usize,
    batch: usize,
    re: Vec<f64>,
    im: Vec<f64>,
    perm: Vec<usize>,
    sing: Vec<Option<usize>>,
    m_re: Vec<f64>,
    m_im: Vec<f64>,
}

impl ComplexLuBatch {
    /// Creates an empty factorization whose buffers
    /// [`ComplexLuBatch::refactor_with`] fills.
    pub fn empty() -> Self {
        ComplexLuBatch::default()
    }

    /// Dimension of each factored system (0 before the first refactor).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of systems in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// `Some(column)` if system `b` turned out singular during the last
    /// refactor; its solution lanes are garbage and must not be read.
    pub fn singular(&self, b: usize) -> Option<usize> {
        self.sing[b]
    }

    /// Re-factors `batch` complex systems of dimension `n` assembled in
    /// place by `fill` (invoked on zeroed re/im buffers in the
    /// `[(r*n + c)*batch + b]` layout), reusing this object's
    /// allocations. Singularity is tracked per system
    /// ([`ComplexLuBatch::singular`]); one defective corner never aborts
    /// its siblings.
    pub fn refactor_with(
        &mut self,
        n: usize,
        batch: usize,
        pivot_floor: f64,
        fill: impl FnOnce(&mut [f64], &mut [f64]),
    ) {
        self.n = n;
        self.batch = batch;
        self.re.clear();
        self.re.resize(n * n * batch, 0.0);
        self.im.clear();
        self.im.resize(n * n * batch, 0.0);
        self.m_re.clear();
        self.m_re.resize(batch, 0.0);
        self.m_im.clear();
        self.m_im.resize(batch, 0.0);
        fill(&mut self.re, &mut self.im);
        self.eliminate(pivot_floor);
    }

    fn eliminate(&mut self, pivot_floor: f64) {
        // Lane-count-specialized dispatch, like [`RealLuBatch`]: a
        // compile-time `B` unrolls and vectorizes the lane loops.
        match self.batch {
            1 => self.eliminate_impl::<1>(pivot_floor),
            2 => self.eliminate_impl::<2>(pivot_floor),
            3 => self.eliminate_impl::<3>(pivot_floor),
            4 => self.eliminate_impl::<4>(pivot_floor),
            5 => self.eliminate_impl::<5>(pivot_floor),
            6 => self.eliminate_impl::<6>(pivot_floor),
            7 => self.eliminate_impl::<7>(pivot_floor),
            8 => self.eliminate_impl::<8>(pivot_floor),
            _ => self.eliminate_impl::<0>(pivot_floor),
        }
    }

    fn eliminate_impl<const B: usize>(&mut self, pivot_floor: f64) {
        let n = self.n;
        let bt = if B == 0 { self.batch } else { B };
        let (re, im) = (&mut self.re, &mut self.im);
        self.perm.clear();
        for k in 0..n {
            self.perm.extend((0..bt).map(|_| k));
        }
        self.sing.clear();
        self.sing.resize(bt, None);
        for k in 0..n {
            for b in 0..bt {
                if self.sing[b].is_some() {
                    continue;
                }
                let mut p = k;
                let mut best =
                    Complex::norm_parts(re[(k * n + k) * bt + b], im[(k * n + k) * bt + b]);
                for i in (k + 1)..n {
                    let v = Complex::norm_parts(re[(i * n + k) * bt + b], im[(i * n + k) * bt + b]);
                    if v > best {
                        best = v;
                        p = i;
                    }
                }
                if best <= pivot_floor || !best.is_finite() {
                    self.sing[b] = Some(k);
                    continue;
                }
                if p != k {
                    for c in 0..n {
                        re.swap((k * n + c) * bt + b, (p * n + c) * bt + b);
                        im.swap((k * n + c) * bt + b, (p * n + c) * bt + b);
                    }
                    self.perm.swap(k * bt + b, p * bt + b);
                }
            }
            let (top_re, bot_re) = re.split_at_mut((k + 1) * n * bt);
            let (top_im, bot_im) = im.split_at_mut((k + 1) * n * bt);
            let row_k_re = &top_re[k * n * bt..];
            let row_k_im = &top_im[k * n * bt..];
            for (row_re, row_im) in bot_re
                .chunks_exact_mut(n * bt)
                .zip(bot_im.chunks_exact_mut(n * bt))
            {
                for b in 0..bt {
                    if self.sing[b].is_some() {
                        self.m_re[b] = 0.0;
                        self.m_im[b] = 0.0;
                        continue;
                    }
                    // Same multiplier computation as ComplexLuSoa: a
                    // Complex division against the pivot.
                    let m = Complex::new(row_re[k * bt + b], row_im[k * bt + b])
                        / Complex::new(row_k_re[k * bt + b], row_k_im[k * bt + b]);
                    row_re[k * bt + b] = m.re;
                    row_im[k * bt + b] = m.im;
                    self.m_re[b] = m.re;
                    self.m_im[b] = m.im;
                }
                // Rank-1 update over batch lanes: per system the same
                // four multiplies and two subtractions, in the same
                // order, as the SoA kernel's `x -= m * y`.
                let (ms_re, ms_im) = (&self.m_re[..bt], &self.m_im[..bt]);
                let xr = row_re[(k + 1) * bt..n * bt].chunks_exact_mut(bt);
                let xi = row_im[(k + 1) * bt..n * bt].chunks_exact_mut(bt);
                let yr = row_k_re[(k + 1) * bt..n * bt].chunks_exact(bt);
                let yi = row_k_im[(k + 1) * bt..n * bt].chunks_exact(bt);
                for (((xrc, xic), yrc), yic) in xr.zip(xi).zip(yr).zip(yi) {
                    for b in 0..bt {
                        let (mr, mi) = (ms_re[b], ms_im[b]);
                        xrc[b] -= mr * yrc[b] - mi * yic[b];
                        xic[b] -= mr * yic[b] + mi * yrc[b];
                    }
                }
            }
        }
    }

    /// Solves every system of the batch at once, split re/im and
    /// batch-innermost: `rhs_re[i*B + b]` etc. Nonsingular systems'
    /// solutions are bitwise-equal to [`ComplexLuSoa::solve_into`] on the
    /// same system; singular systems' lanes are garbage.
    ///
    /// # Panics
    ///
    /// Panics if the rhs buffers are not `dim * batch` long.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_batch_into(
        &self,
        rhs_re: &[f64],
        rhs_im: &[f64],
        x_re: &mut Vec<f64>,
        x_im: &mut Vec<f64>,
        acc_re: &mut Vec<f64>,
        acc_im: &mut Vec<f64>,
    ) {
        let (n, bt) = (self.n, self.batch);
        assert_eq!(rhs_re.len(), n * bt, "dimension mismatch");
        assert_eq!(rhs_im.len(), n * bt, "dimension mismatch");
        x_re.clear();
        x_im.clear();
        for i in 0..n {
            for b in 0..bt {
                let p = self.perm[i * bt + b];
                x_re.push(rhs_re[p * bt + b]);
                x_im.push(rhs_im[p * bt + b]);
            }
        }
        acc_re.clear();
        acc_re.resize(bt, 0.0);
        acc_im.clear();
        acc_im.resize(bt, 0.0);
        // Forward substitution (unit diagonal), per-system j ascending;
        // per system the same `acc -= l * xj` complex expansion as the
        // SoA kernel.
        for i in 1..n {
            acc_re.copy_from_slice(&x_re[i * bt..(i + 1) * bt]);
            acc_im.copy_from_slice(&x_im[i * bt..(i + 1) * bt]);
            for j in 0..i {
                let lr = &self.re[(i * n + j) * bt..(i * n + j + 1) * bt];
                let li = &self.im[(i * n + j) * bt..(i * n + j + 1) * bt];
                let xr = &x_re[j * bt..(j + 1) * bt];
                let xi = &x_im[j * bt..(j + 1) * bt];
                for b in 0..bt {
                    acc_re[b] -= lr[b] * xr[b] - li[b] * xi[b];
                    acc_im[b] -= lr[b] * xi[b] + li[b] * xr[b];
                }
            }
            x_re[i * bt..(i + 1) * bt].copy_from_slice(acc_re);
            x_im[i * bt..(i + 1) * bt].copy_from_slice(acc_im);
        }
        // Back substitution, with the final division through the same
        // `Complex` reciprocal path as the scalar kernels.
        for i in (0..n).rev() {
            acc_re.copy_from_slice(&x_re[i * bt..(i + 1) * bt]);
            acc_im.copy_from_slice(&x_im[i * bt..(i + 1) * bt]);
            for j in (i + 1)..n {
                let lr = &self.re[(i * n + j) * bt..(i * n + j + 1) * bt];
                let li = &self.im[(i * n + j) * bt..(i * n + j + 1) * bt];
                let xr = &x_re[j * bt..(j + 1) * bt];
                let xi = &x_im[j * bt..(j + 1) * bt];
                for b in 0..bt {
                    acc_re[b] -= lr[b] * xr[b] - li[b] * xi[b];
                    acc_im[b] -= lr[b] * xi[b] + li[b] * xr[b];
                }
            }
            for b in 0..bt {
                let q = Complex::new(acc_re[b], acc_im[b])
                    / Complex::new(self.re[(i * n + i) * bt + b], self.im[(i * n + i) * bt + b]);
                x_re[i * bt + b] = q.re;
                x_im[i * bt + b] = q.im;
            }
        }
    }
}

/// A factored linear system that can back-substitute right-hand sides.
///
/// This is the seam between the analyses and the factorization backends:
/// solve-side code holds "something factored" — the dense [`LuFactors`],
/// the SoA [`ComplexLuSoa`], or the sparse [`sparse::SparseLu`] — and
/// drives it through this trait without caring which elimination produced
/// it. Factoring stays on the concrete types because each backend's
/// assembly entry point is shaped differently (consume a [`Matrix`],
/// fill SoA buffers in place, compress triplets).
pub trait LinearSolver<T: Scalar> {
    /// Dimension of the factored system (0 before the first factorization).
    fn dim(&self) -> usize;

    /// Solves `A x = b` into a caller-provided buffer, reusing its
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    fn solve_into(&self, b: &[T], x: &mut Vec<T>);

    /// Solves `A x = b`, allocating the solution vector.
    fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }
}

impl<T: Scalar> LinearSolver<T> for LuFactors<T> {
    fn dim(&self) -> usize {
        self.lu.rows
    }
    fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        LuFactors::solve_into(self, b, x);
    }
}

impl LinearSolver<Complex> for ComplexLuSoa {
    fn dim(&self) -> usize {
        self.n
    }
    fn solve_into(&self, b: &[Complex], x: &mut Vec<Complex>) {
        ComplexLuSoa::solve_into(self, b, x);
    }
}

/// Convenience one-shot solve of `A x = b`.
///
/// # Errors
///
/// Returns [`SimError::SingularMatrix`] when `a` is singular to working
/// precision.
pub fn solve<T: Scalar>(a: Matrix<T>, b: &[T]) -> Result<Vec<T>, SimError> {
    Ok(LuFactors::factor(a, 1e-300)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = Matrix::<f64>::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = solve(a, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            solve(a, &[1.0, 2.0]),
            Err(SimError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn complex_solve_roundtrip() {
        use crate::complex::Complex as C;
        let a = Matrix::from_rows(&[
            vec![C::new(1.0, 1.0), C::new(0.0, -2.0)],
            vec![C::new(3.0, 0.0), C::new(1.0, 1.0)],
        ]);
        let xtrue = vec![C::new(1.0, -1.0), C::new(2.0, 0.5)];
        let b = a.mul_vec(&xtrue);
        let x = solve(a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&xtrue) {
            assert!((*xi - *ti).norm() < 1e-10);
        }
    }

    #[test]
    fn factor_reuse_multiple_rhs() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let f = LuFactors::factor(a.clone(), 1e-300).unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [2.0, -5.0]] {
            let x = f.solve(&b);
            let back = a.mul_vec(&x);
            assert!((back[0] - b[0]).abs() < 1e-12);
            assert!((back[1] - b[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_reuses_buffers_across_systems() {
        let mut lu = LuFactors::<f64>::empty();
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        lu.refactor(&a, 1e-300).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&[5.0, 10.0], &mut x);
        let back = a.mul_vec(&x);
        assert!((back[0] - 5.0).abs() < 1e-12);
        assert!((back[1] - 10.0).abs() < 1e-12);
        // A different same-size system lands in the same buffers.
        let b = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        lu.refactor(&b, 1e-300).unwrap();
        lu.solve_into(&[5.0, 10.0], &mut x);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn copy_from_tracks_source_dimensions() {
        let src = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut dst = Matrix::<f64>::zeros(5, 5);
        dst.copy_from(&src);
        assert_eq!(dst.rows(), 2);
        assert_eq!(dst.cols(), 2);
        assert_eq!(dst[(1, 0)], 3.0);
    }

    #[test]
    fn soa_lu_is_bitwise_identical_to_generic_complex_lu() {
        use crate::complex::Complex as C;
        let a = Matrix::from_rows(&[
            vec![C::new(1.0, 1.0), C::new(0.0, -2.0), C::new(0.5, 0.1)],
            vec![C::new(3.0, 0.0), C::new(1.0, 1.0), C::new(-1.0, 2.0)],
            vec![C::new(0.2, -0.7), C::new(4.0, 0.0), C::new(1.5, -1.5)],
        ]);
        let b = vec![C::new(1.0, -1.0), C::new(2.0, 0.5), C::new(-0.3, 0.9)];
        let aos = LuFactors::factor(a.clone(), 1e-300).unwrap().solve(&b);
        let soa = ComplexLuSoa::factor(&a, 1e-300).unwrap().solve(&b);
        // Same operations in the same order: bitwise equality, not just
        // tolerance-level agreement.
        assert_eq!(aos, soa);
    }

    #[test]
    fn soa_refactor_reuses_buffers_across_dimensions() {
        use crate::complex::Complex as C;
        let mut lu = ComplexLuSoa::empty();
        assert_eq!(lu.dim(), 0);
        // 2x2 system.
        lu.refactor_with(2, 1e-300, |re, im| {
            re[0] = 2.0;
            re[3] = 4.0;
            im[1] = 1.0;
            im[2] = -1.0;
        })
        .unwrap();
        let x = lu.solve(&[C::from_re(2.0), C::from_re(4.0)]);
        let a = Matrix::from_rows(&[
            vec![C::new(2.0, 0.0), C::new(0.0, 1.0)],
            vec![C::new(0.0, -1.0), C::new(4.0, 0.0)],
        ]);
        let back = a.mul_vec(&x);
        assert!((back[0] - C::from_re(2.0)).norm() < 1e-12);
        assert!((back[1] - C::from_re(4.0)).norm() < 1e-12);
        // A different-dimension system lands in regrown buffers.
        lu.refactor_with(1, 1e-300, |re, _| re[0] = 5.0).unwrap();
        assert_eq!(lu.dim(), 1);
        let x1 = lu.solve(&[C::from_re(10.0)]);
        assert!((x1[0] - C::from_re(2.0)).norm() < 1e-12);
    }

    #[test]
    fn soa_singular_matrix_is_reported() {
        use crate::complex::Complex as C;
        let a = Matrix::from_rows(&[
            vec![C::new(1.0, 2.0), C::new(2.0, 4.0)],
            vec![C::new(2.0, 4.0), C::new(4.0, 8.0)],
        ]);
        assert!(matches!(
            ComplexLuSoa::factor(&a, 1e-300),
            Err(SimError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }
}
