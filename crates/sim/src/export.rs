//! SPICE-format netlist export, for eyeballing generated circuits and for
//! cross-checking this simulator against an external SPICE engine.
//!
//! The dialect is the common denominator understood by ngspice/Spectre
//! readers: `R/C/V/I/G` cards plus `M` cards referencing per-instance
//! `.model` lines (one model per distinct card, since instances carry
//! their own parameter copies).

use crate::device::MosPolarity;
use crate::netlist::{Circuit, Element};
use std::fmt::Write as _;

/// Renders the circuit as a SPICE deck.
///
/// # Examples
///
/// ```
/// use autockt_sim::netlist::{Circuit, GND};
/// use autockt_sim::export::to_spice;
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource(a, GND, 1.0, 0.0);
/// ckt.resistor(a, GND, 1.0e3);
/// let deck = to_spice(&ckt, "divider");
/// assert!(deck.contains("R1 a 0 1e3"));
/// assert!(deck.contains(".end"));
/// ```
pub fn to_spice(ckt: &Circuit, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* {title}");
    let name = |n: crate::netlist::Node| ckt.node_name(n).to_string();
    let mut counts = [0usize; 6]; // R C V I G M
    for e in ckt.elements() {
        match e {
            Element::Resistor { p, n, r, noisy } => {
                counts[0] += 1;
                let _ = writeln!(
                    out,
                    "R{} {} {} {:e}{}",
                    counts[0],
                    name(*p),
                    name(*n),
                    r,
                    if *noisy { "" } else { " noise=0" }
                );
            }
            Element::Capacitor { p, n, c } => {
                counts[1] += 1;
                let _ = writeln!(out, "C{} {} {} {:e}", counts[1], name(*p), name(*n), c);
            }
            Element::Vsource { p, n, dc, ac, wave } => {
                counts[2] += 1;
                let mut card = format!(
                    "V{} {} {} DC {:e} AC {:e}",
                    counts[2],
                    name(*p),
                    name(*n),
                    dc,
                    ac
                );
                if let Some(w) = wave {
                    let _ = write!(card, " PULSE({:e} {:e} {:e})", w.v0, w.v1, w.t_delay);
                }
                let _ = writeln!(out, "{card}");
            }
            Element::Isource { p, n, dc, ac, wave } => {
                counts[3] += 1;
                let mut card = format!(
                    "I{} {} {} DC {:e} AC {:e}",
                    counts[3],
                    name(*p),
                    name(*n),
                    dc,
                    ac
                );
                if let Some(w) = wave {
                    let _ = write!(card, " PULSE({:e} {:e} {:e})", w.v0, w.v1, w.t_delay);
                }
                let _ = writeln!(out, "{card}");
            }
            Element::Vccs { op, on, cp, cn, gm } => {
                counts[4] += 1;
                let _ = writeln!(
                    out,
                    "G{} {} {} {} {} {:e}",
                    counts[4],
                    name(*op),
                    name(*on),
                    name(*cp),
                    name(*cn),
                    gm
                );
            }
            Element::Mos(m) => {
                counts[5] += 1;
                let (kind, bulk) = match m.polarity {
                    MosPolarity::Nmos => ("nmos", "0"),
                    MosPolarity::Pmos => ("pmos", "vdd_bulk"),
                };
                let _ = writeln!(
                    out,
                    "M{} {} {} {} {} m{}_{kind} W={:e} L={:e} M={:e}",
                    counts[5],
                    name(m.d),
                    name(m.g),
                    name(m.s),
                    bulk,
                    counts[5],
                    m.w,
                    m.l,
                    m.mult
                );
                let _ = writeln!(
                    out,
                    ".model m{}_{kind} {kind} (kp={:e} vto={:e} lambda={:e})",
                    counts[5], m.model.kp, m.model.vth0, m.model.lambda
                );
            }
        }
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Technology;
    use crate::netlist::{Circuit, Mosfet, Step, GND};

    #[test]
    fn deck_contains_every_element() {
        let t = Technology::ptm45();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let o = ckt.node("o");
        ckt.vsource(vdd, GND, 1.0, 0.0);
        ckt.vsource_step(
            g,
            GND,
            Step {
                v0: 0.0,
                v1: 0.5,
                t_delay: 1e-9,
            },
            1.0,
        );
        ckt.resistor(vdd, o, 1e4);
        ckt.resistor_noiseless(g, GND, 1e6);
        ckt.capacitor(o, GND, 1e-12);
        ckt.isource(GND, o, 1e-6, 0.0);
        ckt.vccs(GND, o, g, GND, 1e-3);
        ckt.mosfet(Mosfet {
            polarity: crate::device::MosPolarity::Nmos,
            d: o,
            g,
            s: GND,
            w: 1e-6,
            l: t.lmin,
            mult: 2.0,
            model: t.nmos,
        });
        let deck = to_spice(&ckt, "everything");
        assert!(deck.starts_with("* everything\n"));
        for marker in [
            "V1 ", "V2 ", "R1 ", "R2 ", "C1 ", "I1 ", "G1 ", "M1 ", ".model", ".end", "PULSE",
            "noise=0",
        ] {
            assert!(deck.contains(marker), "missing {marker} in:\n{deck}");
        }
    }

    #[test]
    fn deck_is_deterministic() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, GND, 1.0, 0.0);
        ckt.resistor(a, GND, 50.0);
        assert_eq!(to_spice(&ckt, "x"), to_spice(&ckt, "x"));
    }

    #[test]
    fn generated_topologies_export() {
        // The export must handle every element the generators emit; smoke
        // tested through a MOS amplifier.
        let t = Technology::ptm45();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let o = ckt.node("o");
        ckt.vsource(vdd, GND, 1.0, 0.0);
        ckt.vsource(g, GND, 0.5, 1.0);
        ckt.resistor(vdd, o, 2e4);
        ckt.mosfet(Mosfet {
            polarity: crate::device::MosPolarity::Pmos,
            d: o,
            g,
            s: vdd,
            w: 2e-6,
            l: t.lmin,
            mult: 1.0,
            model: t.pmos,
        });
        let deck = to_spice(&ckt, "amp");
        assert!(deck.contains("pmos"));
        assert!(deck.lines().count() >= 6);
    }
}
