//! MOSFET device model and technology cards.
//!
//! The simulator uses a Level-1-style square-law MOSFET with channel-length
//! modulation and Meyer-style gate capacitances. This is the standard
//! hand-analysis model; it reproduces the gm/ID, gain–bandwidth and
//! noise–power trade-offs that drive the AutoCkt sizing problem, which is
//! what matters for reproducing the paper (the paper's BSIM/FinFET decks are
//! proprietary — see DESIGN.md, substitution table).

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Operating region of a MOSFET at a DC operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosRegion {
    /// `vgs <= vth`: device is off.
    Cutoff,
    /// `vds < vgs - vth`: linear/triode region.
    Triode,
    /// `vds >= vgs - vth`: saturation.
    Saturation,
}

/// Model card for one polarity of MOSFET in a technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosModel {
    /// Process transconductance `k' = mu * Cox` (A/V^2).
    pub kp: f64,
    /// Zero-bias threshold voltage magnitude (V).
    pub vth0: f64,
    /// Channel-length modulation (1/V) at the technology's unit length.
    pub lambda: f64,
    /// Gate-oxide capacitance per area (F/m^2).
    pub cox: f64,
    /// Gate overlap capacitance per width (F/m).
    pub cgso: f64,
    /// Junction capacitance per area (F/m^2).
    pub cj: f64,
    /// Source/drain diffusion extent (m).
    pub ldiff: f64,
    /// Thermal-noise excess factor gamma (2/3 long channel, >1 short).
    pub gamma: f64,
    /// Flicker-noise coefficient (V^2 * F).
    pub kf: f64,
}

/// Process corner for PVT analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessCorner {
    /// Slow NMOS, slow PMOS.
    Ss,
    /// Typical.
    #[default]
    Tt,
    /// Fast NMOS, fast PMOS.
    Ff,
}

/// One point in PVT (process, voltage, temperature) space.
///
/// # Examples
///
/// ```
/// use autockt_sim::device::{Pvt, ProcessCorner};
///
/// let worst_speed = Pvt { process: ProcessCorner::Ss, vdd_scale: 0.9, temp_c: 125.0 };
/// assert!(worst_speed.temp_kelvin() > 390.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pvt {
    /// Process corner.
    pub process: ProcessCorner,
    /// Supply scaling relative to nominal (e.g. 0.9, 1.0, 1.1).
    pub vdd_scale: f64,
    /// Junction temperature in Celsius.
    pub temp_c: f64,
}

impl Default for Pvt {
    fn default() -> Self {
        Pvt {
            process: ProcessCorner::Tt,
            vdd_scale: 1.0,
            temp_c: 27.0,
        }
    }
}

impl Pvt {
    /// Nominal typical corner at 27 C.
    pub fn nominal() -> Self {
        Pvt::default()
    }

    /// Temperature in Kelvin.
    pub fn temp_kelvin(&self) -> f64 {
        self.temp_c + 273.15
    }

    /// The canonical corner set used for worst-case PEX evaluation:
    /// {SS, TT, FF} x {0.9, 1.0, 1.1} Vdd x {-40, 27, 125} C reduced to the
    /// six classically-binding combinations (keeps PEX evaluation tractable
    /// while still spanning the speed/leakage extremes).
    pub fn corner_set() -> Vec<Pvt> {
        vec![
            Pvt::nominal(),
            Pvt {
                process: ProcessCorner::Ss,
                vdd_scale: 0.9,
                temp_c: 125.0,
            },
            Pvt {
                process: ProcessCorner::Ss,
                vdd_scale: 0.9,
                temp_c: -40.0,
            },
            Pvt {
                process: ProcessCorner::Ff,
                vdd_scale: 1.1,
                temp_c: -40.0,
            },
            Pvt {
                process: ProcessCorner::Ff,
                vdd_scale: 1.1,
                temp_c: 125.0,
            },
            Pvt {
                process: ProcessCorner::Tt,
                vdd_scale: 1.0,
                temp_c: 85.0,
            },
        ]
    }
}

/// A complete technology description (both device polarities plus supply).
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable name, e.g. `"ptm45"`.
    pub name: &'static str,
    /// Nominal supply voltage (V).
    pub vdd: f64,
    /// Minimum / unit channel length (m).
    pub lmin: f64,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
}

impl Technology {
    /// 45 nm predictive-technology-flavoured card (substitute for the
    /// paper's 45 nm BSIM PTM deck).
    pub fn ptm45() -> Self {
        Technology {
            name: "ptm45",
            vdd: 1.0,
            lmin: 45e-9,
            nmos: MosModel {
                kp: 320e-6,
                vth0: 0.40,
                lambda: 0.20,
                cox: 9.0e-3,
                cgso: 0.25e-9,
                cj: 1.0e-3,
                ldiff: 90e-9,
                gamma: 1.0,
                kf: 2.0e-25,
            },
            pmos: MosModel {
                kp: 140e-6,
                vth0: 0.42,
                lambda: 0.25,
                cox: 9.0e-3,
                cgso: 0.25e-9,
                cj: 1.1e-3,
                ldiff: 90e-9,
                gamma: 1.0,
                kf: 8.0e-25,
            },
        }
    }

    /// 16 nm FinFET-flavoured card (substitute for the paper's TSMC 16FF
    /// Spectre deck): higher drive, lower supply, worse output resistance.
    pub fn finfet16() -> Self {
        Technology {
            name: "finfet16",
            vdd: 0.8,
            lmin: 16e-9,
            nmos: MosModel {
                kp: 650e-6,
                vth0: 0.33,
                lambda: 0.30,
                cox: 1.5e-2,
                cgso: 0.35e-9,
                cj: 1.4e-3,
                ldiff: 40e-9,
                gamma: 1.3,
                kf: 1.0e-25,
            },
            pmos: MosModel {
                kp: 550e-6,
                vth0: 0.34,
                lambda: 0.35,
                cox: 1.5e-2,
                cgso: 0.35e-9,
                cj: 1.5e-3,
                ldiff: 40e-9,
                gamma: 1.3,
                kf: 4.0e-25,
            },
        }
    }

    /// Returns a copy of the technology with a PVT corner applied.
    ///
    /// Mobility degrades as `T^-1.5`, threshold drifts -1 mV/K, and the
    /// process corner shifts `kp` by +/-12% and `vth0` by -/+30 mV (fast
    /// means more drive, lower threshold).
    pub fn at_corner(&self, pvt: Pvt) -> Technology {
        let t_ratio = pvt.temp_kelvin() / 300.15;
        let mob = t_ratio.powf(-1.5);
        let dvth_t = -1.0e-3 * (pvt.temp_c - 27.0);
        let (kp_f, vth_f) = match pvt.process {
            ProcessCorner::Ss => (0.88, 0.030),
            ProcessCorner::Tt => (1.0, 0.0),
            ProcessCorner::Ff => (1.12, -0.030),
        };
        let adjust = |m: &MosModel| MosModel {
            kp: m.kp * mob * kp_f,
            vth0: (m.vth0 + vth_f + dvth_t).max(0.05),
            ..*m
        };
        Technology {
            name: self.name,
            vdd: self.vdd * pvt.vdd_scale,
            lmin: self.lmin,
            nmos: adjust(&self.nmos),
            pmos: adjust(&self.pmos),
        }
    }
}

/// Large-signal evaluation of the square-law model at a bias point.
///
/// All voltages are polarity-normalized (for PMOS pass `vsg`, `vsd`): the
/// caller flips signs. Returns drain current and its partial derivatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosEval {
    /// Drain current (A), polarity-normalized (always >= 0).
    pub id: f64,
    /// Transconductance d(id)/d(vgs) (S).
    pub gm: f64,
    /// Output conductance d(id)/d(vds) (S).
    pub gds: f64,
    /// Operating region.
    pub region: MosRegion,
}

impl MosModel {
    /// Evaluates drain current and derivatives at `(vgs, vds)` for a device
    /// of width `w`, length `l` and multiplier `mult`.
    ///
    /// `vds` is clamped to be non-negative (the model is symmetric; callers
    /// orient drain/source so that `vds >= 0` holds at the solution, and the
    /// clamp only smooths Newton iterates passing through negative values).
    pub fn eval(&self, vgs: f64, vds: f64, w: f64, l: f64, mult: f64) -> MosEval {
        let vds = vds.max(0.0);
        let beta = self.kp * (w / l) * mult;
        // Scale channel-length modulation with inverse length relative to
        // the unit device the card was characterised at.
        let lambda = self.lambda;
        let vov = vgs - self.vth0;
        if vov <= 0.0 {
            return MosEval {
                id: 0.0,
                gm: 0.0,
                gds: 0.0,
                region: MosRegion::Cutoff,
            };
        }
        if vds < vov {
            // Triode, with the same (1 + lambda*vds) factor as saturation so
            // current and gds are continuous at vds = vov.
            let clm = 1.0 + lambda * vds;
            let core = vov * vds - 0.5 * vds * vds;
            let id = beta * core * clm;
            let gm = beta * vds * clm;
            let gds = beta * ((vov - vds) * clm + core * lambda);
            MosEval {
                id,
                gm,
                gds,
                region: MosRegion::Triode,
            }
        } else {
            let clm = 1.0 + lambda * vds;
            let id = 0.5 * beta * vov * vov * clm;
            let gm = beta * vov * clm;
            let gds = 0.5 * beta * vov * vov * lambda;
            MosEval {
                id,
                gm,
                gds,
                region: MosRegion::Saturation,
            }
        }
    }

    /// Meyer-style small-signal gate capacitances at a region, for a device
    /// of geometry `(w, l, mult)`. Returns `(cgs, cgd)` in farads.
    pub fn gate_caps(&self, region: MosRegion, w: f64, l: f64, mult: f64) -> (f64, f64) {
        let cov = self.cgso * w * mult;
        let cch = self.cox * w * l * mult;
        match region {
            MosRegion::Cutoff => (cov, cov),
            MosRegion::Triode => (0.5 * cch + cov, 0.5 * cch + cov),
            MosRegion::Saturation => (2.0 / 3.0 * cch + cov, cov),
        }
    }

    /// Drain/source junction capacitance to the bulk for geometry
    /// `(w, mult)`.
    pub fn junction_cap(&self, w: f64, mult: f64) -> f64 {
        self.cj * w * self.ldiff * mult
    }

    /// Thermal-noise drain-current power spectral density `4 k T gamma gm`
    /// (A^2/Hz) at temperature `temp_k`.
    pub fn thermal_noise_psd(&self, gm: f64, temp_k: f64) -> f64 {
        4.0 * BOLTZMANN * temp_k * self.gamma * gm
    }

    /// Flicker-noise drain-current PSD at frequency `f` (A^2/Hz):
    /// `kf * gm^2 / (Cox W L f)`.
    pub fn flicker_noise_psd(&self, gm: f64, w: f64, l: f64, mult: f64, f: f64) -> f64 {
        if f <= 0.0 {
            return 0.0;
        }
        self.kf * gm * gm / (self.cox * w * l * mult * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosModel {
        Technology::ptm45().nmos
    }

    #[test]
    fn cutoff_below_threshold() {
        let e = nmos().eval(0.2, 0.5, 1e-6, 45e-9, 1.0);
        assert_eq!(e.region, MosRegion::Cutoff);
        assert_eq!(e.id, 0.0);
    }

    #[test]
    fn saturation_current_square_law() {
        let m = nmos();
        let w = 1e-6;
        let l = 45e-9;
        let e = m.eval(m.vth0 + 0.2, 1.0, w, l, 1.0);
        assert_eq!(e.region, MosRegion::Saturation);
        let expect = 0.5 * m.kp * (w / l) * 0.04 * (1.0 + m.lambda);
        assert!((e.id - expect).abs() / expect < 1e-12);
        // gm = 2 Id / Vov up to the lambda factor structure.
        assert!(e.gm > 0.0 && e.gds > 0.0);
    }

    #[test]
    fn current_continuous_at_triode_sat_boundary() {
        let m = nmos();
        let (w, l) = (2e-6, 45e-9);
        let vov = 0.25;
        let vgs = m.vth0 + vov;
        let below = m.eval(vgs, vov - 1e-9, w, l, 1.0);
        let above = m.eval(vgs, vov + 1e-9, w, l, 1.0);
        assert!((below.id - above.id).abs() / above.id < 1e-6);
        assert!((below.gm - above.gm).abs() / above.gm < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let m = nmos();
        let (w, l) = (4e-6, 45e-9);
        for &(vgs, vds) in &[(0.6, 0.8), (0.7, 0.1), (0.55, 0.3)] {
            let e = m.eval(vgs, vds, w, l, 1.0);
            let h = 1e-7;
            let dgm = (m.eval(vgs + h, vds, w, l, 1.0).id - m.eval(vgs - h, vds, w, l, 1.0).id)
                / (2.0 * h);
            let dgds = (m.eval(vgs, vds + h, w, l, 1.0).id - m.eval(vgs, vds - h, w, l, 1.0).id)
                / (2.0 * h);
            assert!(
                (e.gm - dgm).abs() <= 1e-6 * dgm.abs().max(1e-9),
                "gm mismatch"
            );
            assert!(
                (e.gds - dgds).abs() <= 1e-5 * dgds.abs().max(1e-9),
                "gds mismatch at ({vgs},{vds}): model {} fd {}",
                e.gds,
                dgds
            );
        }
    }

    #[test]
    fn multiplier_scales_current_linearly() {
        let m = nmos();
        let e1 = m.eval(0.7, 0.9, 1e-6, 45e-9, 1.0);
        let e4 = m.eval(0.7, 0.9, 1e-6, 45e-9, 4.0);
        assert!((e4.id - 4.0 * e1.id).abs() / e4.id < 1e-12);
    }

    #[test]
    fn corner_shifts_are_directionally_correct() {
        let t = Technology::ptm45();
        let ss = t.at_corner(Pvt {
            process: ProcessCorner::Ss,
            vdd_scale: 0.9,
            temp_c: 125.0,
        });
        let ff = t.at_corner(Pvt {
            process: ProcessCorner::Ff,
            vdd_scale: 1.1,
            temp_c: -40.0,
        });
        assert!(ss.nmos.kp < t.nmos.kp);
        assert!(ff.nmos.kp > t.nmos.kp);
        assert!(ss.vdd < t.vdd && ff.vdd > t.vdd);
        // SS hot: higher vth from corner but lower from temperature; corner
        // dominates the sign at +125C? -1mV/K * 98K = -98mV vs +30mV -> net lower.
        assert!(ss.nmos.vth0 < t.nmos.vth0);
    }

    #[test]
    fn noise_psds_are_positive_and_scale() {
        let m = nmos();
        let th = m.thermal_noise_psd(1e-3, 300.0);
        assert!(th > 0.0);
        assert!((m.thermal_noise_psd(2e-3, 300.0) - 2.0 * th).abs() / th < 1e-12);
        let f1 = m.flicker_noise_psd(1e-3, 1e-6, 45e-9, 1.0, 1e3);
        let f2 = m.flicker_noise_psd(1e-3, 1e-6, 45e-9, 1.0, 1e6);
        assert!(f1 > f2, "flicker noise must fall with frequency");
    }

    #[test]
    fn gate_caps_by_region() {
        let m = nmos();
        let (w, l, mult) = (1e-6, 45e-9, 1.0);
        let (cgs_sat, cgd_sat) = m.gate_caps(MosRegion::Saturation, w, l, mult);
        let (cgs_tri, cgd_tri) = m.gate_caps(MosRegion::Triode, w, l, mult);
        assert!(cgs_sat > cgd_sat, "saturation cgs dominated by channel");
        assert!((cgs_tri - cgd_tri).abs() < 1e-30, "triode splits evenly");
    }
}
