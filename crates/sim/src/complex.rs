//! Minimal complex arithmetic for AC (frequency-domain) analysis.
//!
//! The sanctioned dependency set does not include `num-complex`, so the
//! simulator carries its own small, well-tested complex type. Only the
//! operations needed by MNA assembly, LU factorization and measurement
//! post-processing are provided.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use autockt_sim::complex::Complex;
///
/// let a = Complex::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!((a * a.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude (Euclidean norm). Uses `hypot` for robustness against
    /// overflow/underflow of the intermediate squares.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Magnitude of a complex value given as separate components — the
    /// structure-of-arrays layout used by the vectorized AC kernel, which
    /// stores re/im in parallel `f64` arrays instead of `Complex` structs.
    /// Identical to `Complex::new(re, im).norm()`.
    #[inline]
    pub fn norm_parts(re: f64, im: f64) -> f64 {
        re.hypot(im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Division by a zero magnitude yields infinities, mirroring `f64`
    /// semantics rather than panicking; MNA solves guard against singular
    /// systems separately.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b computed as a * b^-1
    fn div(self, o: Complex) -> Complex {
        self * o.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        *self = *self + o;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, o: Complex) {
        *self = *self - o;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, o: Complex) {
        *self = *self / o;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, k: f64) -> Complex {
        self.scale(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.5);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a - a, Complex::ZERO);
        let inv = a * a.recip();
        assert!(close(inv.re, 1.0) && close(inv.im, 0.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        let sq = Complex::I * Complex::I;
        assert!(close(sq.re, -1.0) && close(sq.im, 0.0));
    }

    #[test]
    fn norm_and_arg() {
        let a = Complex::new(0.0, 2.0);
        assert!(close(a.norm(), 2.0));
        assert!(close(a.arg(), std::f64::consts::FRAC_PI_2));
    }

    #[test]
    fn division_roundtrip() {
        let a = Complex::new(3.0, 7.0);
        let b = Complex::new(-2.0, 0.5);
        let q = a / b;
        let back = q * b;
        assert!(close(back.re, a.re) && close(back.im, a.im));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
    }
}
