//! Transient analysis: fixed-step trapezoidal integration with a
//! backward-Euler start step, Newton iteration at every time point.
//!
//! Capacitors are replaced by their integration companion models; MOSFETs
//! are re-linearized each Newton iteration; step sources follow their
//! [`crate::netlist::Step`] waveforms.

use crate::ac::{AcSolver, STOCK_DIM_MAX};
use crate::dc::{dc_operating_point, eval_mos_oriented, DcOptions, OpPoint, WarmState};
use crate::error::SimError;
use crate::linalg::correction::{
    corrected_vector, factor_correction, solve_correction_basis, CornerDiff,
};
use crate::linalg::sparse::{CscMatrix, SparseLu, TripletList};
use crate::linalg::structure::SparseSolver;
use crate::linalg::{LuFactors, Matrix};
use crate::netlist::{Circuit, Element, Node};

/// Options for the transient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct TranOptions {
    /// Total simulated time (s).
    pub t_stop: f64,
    /// Fixed time step (s).
    pub dt: f64,
    /// Maximum Newton iterations per time point.
    pub max_iter: usize,
    /// Newton update tolerance (V, A).
    pub tol: f64,
    /// DC options used for the initial operating point.
    pub dc: DcOptions,
}

impl TranOptions {
    /// Creates options covering `t_stop` seconds in `steps` equal steps.
    ///
    /// Degenerate arguments (`steps == 0`, non-positive or non-finite
    /// `t_stop`) produce an options value that [`TranOptions::validate`]
    /// rejects — [`transient`] returns [`SimError::InvalidOptions`] rather
    /// than silently running an empty or NaN-stepped sweep.
    pub fn new(t_stop: f64, steps: usize) -> Self {
        TranOptions {
            t_stop,
            dt: t_stop / steps as f64,
            max_iter: 50,
            tol: 1e-9,
            dc: DcOptions::default(),
        }
    }

    /// Checks the options describe a non-degenerate sweep: a finite,
    /// positive `dt` no longer than a finite, positive `t_stop` (at least
    /// one time step).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidOptions`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.dt.is_finite() || self.dt <= 0.0 {
            return Err(SimError::InvalidOptions {
                what: "transient dt must be finite and positive (zero steps?)",
            });
        }
        if !self.t_stop.is_finite() || self.t_stop <= 0.0 {
            return Err(SimError::InvalidOptions {
                what: "transient t_stop must be finite and positive",
            });
        }
        if self.t_stop < self.dt {
            return Err(SimError::InvalidOptions {
                what: "transient t_stop shorter than dt (empty sweep)",
            });
        }
        Ok(())
    }
}

/// A transient waveform record.
#[derive(Debug, Clone, PartialEq)]
pub struct TranResult {
    /// Time points (s), starting at 0.
    pub t: Vec<f64>,
    /// Node voltages: `v[step][node_index]`.
    pub v: Vec<Vec<f64>>,
}

impl TranResult {
    /// Waveform of one node across all time points.
    pub fn node_waveform(&self, n: Node) -> Vec<f64> {
        self.v.iter().map(|row| row[n.index()]).collect()
    }
}

struct CapState {
    p: Node,
    n: Node,
    c: f64,
    v_prev: f64,
    i_prev: f64,
}

/// Runs a transient analysis from the DC operating point at `t = 0`.
///
/// # Errors
///
/// Returns [`SimError::TranNoConvergence`] if Newton fails at some time
/// point, or propagates DC/LU errors.
///
/// # Examples
///
/// An RC charging step reaches `1 - e^-1` of its final value at `t = RC`:
///
/// ```
/// use autockt_sim::netlist::{Circuit, Step, GND};
/// use autockt_sim::tran::{transient, TranOptions};
///
/// # fn main() -> Result<(), autockt_sim::SimError> {
/// let mut ckt = Circuit::new();
/// let i = ckt.node("in");
/// let o = ckt.node("out");
/// ckt.vsource_step(i, GND, Step { v0: 0.0, v1: 1.0, t_delay: 0.0 }, 0.0);
/// ckt.resistor(i, o, 1.0e3);
/// ckt.capacitor(o, GND, 1e-9);
/// let res = transient(&ckt, &TranOptions::new(5e-6, 2000))?;
/// let w = res.node_waveform(o);
/// let at_tau = res.t.iter().position(|&t| t >= 1e-6).unwrap();
/// assert!((w[at_tau] - (1.0 - (-1.0f64).exp())).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn transient(ckt: &Circuit, opts: &TranOptions) -> Result<TranResult, SimError> {
    opts.validate()?;
    let op = dc_operating_point(ckt, &opts.dc)?;
    transient_from_op(ckt, opts, &op)
}

/// [`transient`] with the initial DC operating point solved through a
/// session's [`WarmState`]: the previous solution stored in `slot` seeds
/// the Newton iteration (with the usual cold + homotopy fallback), so an
/// evaluation session that just solved the same design's operating point
/// for its AC analyses starts the transient in ~1 Newton iteration instead
/// of re-running the cold `initial_v` solve — closing the last cold start
/// in the session pipeline.
///
/// # Errors
///
/// Same contract as [`transient`].
pub fn transient_warm(
    ckt: &Circuit,
    opts: &TranOptions,
    slot: usize,
    state: &mut WarmState,
) -> Result<TranResult, SimError> {
    opts.validate()?;
    let op = state.solve(slot, ckt, &opts.dc)?;
    transient_from_op(ckt, opts, &op)
}

/// [`transient`] starting from an already-solved operating point `op`
/// (which must belong to `ckt` at its DC source values). Both public
/// entry points delegate here; callers that already hold an operating
/// point (e.g. after an AC linearization) can skip the DC solve entirely.
///
/// # Errors
///
/// Returns [`SimError::InvalidOptions`] for a degenerate time grid,
/// [`SimError::TranNoConvergence`] if Newton fails at some time point, or
/// propagates LU errors.
pub fn transient_from_op(
    ckt: &Circuit,
    opts: &TranOptions,
    op: &OpPoint,
) -> Result<TranResult, SimError> {
    opts.validate()?;
    let dim = ckt.mna_dim();
    let nnodes = ckt.num_nodes();
    let nv = nnodes - 1;

    // State vector starts at the operating point.
    let mut x = vec![0.0; dim];
    x[..nv].copy_from_slice(&op.voltages()[1..nnodes]);
    for k in 0..ckt.num_vsources() {
        x[nv + k] = op.vsource_current(k);
    }

    // Capacitor companion state.
    let mut caps: Vec<CapState> = ckt
        .elements()
        .iter()
        .filter_map(|e| match e {
            Element::Capacitor { p, n, c } => Some(CapState {
                p: *p,
                n: *n,
                c: *c,
                v_prev: op.voltage(*p) - op.voltage(*n),
                i_prev: 0.0,
            }),
            _ => None,
        })
        .collect();

    let steps = (opts.t_stop / opts.dt).round() as usize;
    let mut t_points = Vec::with_capacity(steps + 1);
    let mut v_points = Vec::with_capacity(steps + 1);
    t_points.push(0.0);
    v_points.push(op.voltages().to_vec());

    let idx = |n: Node| ckt.mna_index(n);
    let mut j = Matrix::zeros(dim, dim);
    let mut f = vec![0.0; dim];
    // Persistent factorization buffers: every Newton iteration refactors
    // in place (`refactor` is bitwise-equal to a fresh `factor`) instead
    // of cloning the Jacobian and reallocating the factors per iteration.
    // Above the sparse crossover the Jacobian is rescanned into CSC and
    // refactored through the sparse kernel, which reuses its symbolic
    // analysis as long as the nonzero pattern holds (MOS region changes
    // can shift it; the sparse refactor re-runs its analysis then).
    let sparse = opts.dc.solver.use_sparse(dim);
    let mut lu = LuFactors::empty();
    let mut csc = CscMatrix::empty();
    let mut slu = SparseSolver::empty(opts.dc.solver.btf);
    let mut rhs = vec![0.0; dim];
    let mut dx: Vec<f64> = Vec::new();

    for step in 1..=steps {
        let t = step as f64 * opts.dt;
        // Trapezoidal companion (backward Euler on the first step, which
        // also damps the discontinuity of step sources at t = 0).
        let trap = step > 1;
        let mut converged = false;
        for _ in 0..opts.max_iter {
            j.fill_zero();
            f.iter_mut().for_each(|e| *e = 0.0);
            let volt = |n: Node| -> f64 {
                match ckt.mna_index(n) {
                    None => 0.0,
                    Some(i) => x[i],
                }
            };
            for i in 0..nv {
                j[(i, i)] += 1e-12;
                f[i] += 1e-12 * x[i];
            }
            // Capacitor companions.
            for cs in &caps {
                let (geq, ieq_hist) = if trap {
                    let g = 2.0 * cs.c / opts.dt;
                    (g, -(g * cs.v_prev + cs.i_prev))
                } else {
                    let g = cs.c / opts.dt;
                    (g, -(g * cs.v_prev))
                };
                let vc = volt(cs.p) - volt(cs.n);
                let i_now = geq * vc + ieq_hist;
                if let Some(ip) = idx(cs.p) {
                    f[ip] += i_now;
                    j[(ip, ip)] += geq;
                    if let Some(in_) = idx(cs.n) {
                        j[(ip, in_)] -= geq;
                    }
                }
                if let Some(in_) = idx(cs.n) {
                    f[in_] -= i_now;
                    j[(in_, in_)] += geq;
                    if let Some(ip) = idx(cs.p) {
                        j[(in_, ip)] -= geq;
                    }
                }
            }
            // Remaining elements.
            let mut vk = 0usize;
            for e in ckt.elements() {
                match e {
                    Element::Resistor { p, n, r, .. } => {
                        let g = 1.0 / r;
                        let i = g * (volt(*p) - volt(*n));
                        if let Some(ip) = idx(*p) {
                            f[ip] += i;
                            j[(ip, ip)] += g;
                            if let Some(in_) = idx(*n) {
                                j[(ip, in_)] -= g;
                            }
                        }
                        if let Some(in_) = idx(*n) {
                            f[in_] -= i;
                            j[(in_, in_)] += g;
                            if let Some(ip) = idx(*p) {
                                j[(in_, ip)] -= g;
                            }
                        }
                    }
                    Element::Capacitor { .. } => {}
                    Element::Vsource { p, n, dc, wave, .. } => {
                        let val = wave.map_or(*dc, |w| w.value(t));
                        let row = nv + vk;
                        let ibr = x[row];
                        if let Some(ip) = idx(*p) {
                            f[ip] += ibr;
                            j[(ip, row)] += 1.0;
                            j[(row, ip)] += 1.0;
                        }
                        if let Some(in_) = idx(*n) {
                            f[in_] -= ibr;
                            j[(in_, row)] -= 1.0;
                            j[(row, in_)] -= 1.0;
                        }
                        f[row] += volt(*p) - volt(*n) - val;
                        vk += 1;
                    }
                    Element::Isource { p, n, dc, wave, .. } => {
                        let val = wave.map_or(*dc, |w| w.value(t));
                        if let Some(ip) = idx(*p) {
                            f[ip] += val;
                        }
                        if let Some(in_) = idx(*n) {
                            f[in_] -= val;
                        }
                    }
                    Element::Vccs {
                        op: o,
                        on,
                        cp,
                        cn,
                        gm,
                    } => {
                        let i = gm * (volt(*cp) - volt(*cn));
                        if let Some(io) = idx(*o) {
                            f[io] += i;
                            if let Some(icp) = idx(*cp) {
                                j[(io, icp)] += gm;
                            }
                            if let Some(icn) = idx(*cn) {
                                j[(io, icn)] -= gm;
                            }
                        }
                        if let Some(io) = idx(*on) {
                            f[io] -= i;
                            if let Some(icp) = idx(*cp) {
                                j[(io, icp)] -= gm;
                            }
                            if let Some(icn) = idx(*cn) {
                                j[(io, icn)] += gm;
                            }
                        }
                    }
                    Element::Mos(m) => {
                        let (a_d, a_s, i_ad, gm, gds, _) = eval_mos_oriented(m, volt);
                        if let Some(id_) = idx(a_d) {
                            f[id_] += i_ad;
                            if let Some(ig) = idx(m.g) {
                                j[(id_, ig)] += gm;
                            }
                            j[(id_, id_)] += gds;
                            if let Some(is_) = idx(a_s) {
                                j[(id_, is_)] -= gm + gds;
                            }
                        }
                        if let Some(is_) = idx(a_s) {
                            f[is_] -= i_ad;
                            if let Some(ig) = idx(m.g) {
                                j[(is_, ig)] -= gm;
                            }
                            if let Some(id_) = idx(a_d) {
                                j[(is_, id_)] -= gds;
                            }
                            j[(is_, is_)] += gm + gds;
                        }
                        // Device capacitances as fixed small-signal values
                        // from the operating point would miss large-signal
                        // swing; instead stamp them as linear companions on
                        // the fly using the current region's gate caps.
                        let (cgs, cgd) = {
                            let e = m.model.eval(
                                match m.polarity {
                                    crate::device::MosPolarity::Nmos => volt(m.g) - volt(a_s),
                                    crate::device::MosPolarity::Pmos => volt(a_s) - volt(m.g),
                                },
                                1.0,
                                m.w,
                                m.l,
                                m.mult,
                            );
                            m.model.gate_caps(e.region, m.w, m.l, m.mult)
                        };
                        // These small device caps are integrated with
                        // backward Euler against the previous *node*
                        // voltages snapshot, folded in via geq only
                        // (history handled implicitly through v_points).
                        let prev = &v_points[v_points.len() - 1];
                        let geq_gs = cgs / opts.dt;
                        let geq_gd = cgd / opts.dt;
                        let pairs = [(m.g, a_s, geq_gs), (m.g, a_d, geq_gd)];
                        for (p, n, geq) in pairs {
                            let v_now = volt(p) - volt(n);
                            let v_prev = prev[p.index()] - prev[n.index()];
                            let i_now = geq * (v_now - v_prev);
                            if let Some(ip) = idx(p) {
                                f[ip] += i_now;
                                j[(ip, ip)] += geq;
                                if let Some(in_) = idx(n) {
                                    j[(ip, in_)] -= geq;
                                }
                            }
                            if let Some(in_) = idx(n) {
                                f[in_] -= i_now;
                                j[(in_, in_)] += geq;
                                if let Some(ip) = idx(p) {
                                    j[(in_, ip)] -= geq;
                                }
                            }
                        }
                    }
                }
            }
            for (r, v) in rhs.iter_mut().zip(&f) {
                *r = -v;
            }
            if sparse {
                csc.from_dense_into(&j);
                slu.refactor(&csc, 1e-30)?;
                slu.solve_into(&rhs, &mut dx);
            } else {
                lu.refactor(&j, 1e-30)?;
                lu.solve_into(&rhs, &mut dx);
            }
            let mut maxd = 0.0f64;
            for (i, d) in dx.iter().enumerate() {
                let s = if i < nv { d.clamp(-0.5, 0.5) } else { *d };
                x[i] += s;
                maxd = maxd.max(d.abs());
            }
            if maxd < opts.tol {
                converged = true;
                break;
            }
        }
        if !converged || !x.iter().all(|v| v.is_finite()) {
            return Err(SimError::TranNoConvergence { time: t });
        }
        // Commit the step: update capacitor history.
        let volt = |n: Node| -> f64 {
            match ckt.mna_index(n) {
                None => 0.0,
                Some(i) => x[i],
            }
        };
        for cs in &mut caps {
            let vc = volt(cs.p) - volt(cs.n);
            let (geq, ieq_hist) = if trap {
                let g = 2.0 * cs.c / opts.dt;
                (g, -(g * cs.v_prev + cs.i_prev))
            } else {
                let g = cs.c / opts.dt;
                (g, -(g * cs.v_prev))
            };
            cs.i_prev = geq * vc + ieq_hist;
            cs.v_prev = vc;
        }
        let mut row = vec![0.0; nnodes];
        row[1..].copy_from_slice(&x[..nnodes - 1]);
        t_points.push(t);
        v_points.push(row);
    }
    Ok(TranResult {
        t: t_points,
        v: v_points,
    })
}

/// One corner's settling record: the `(t, y)` sample vectors of a step
/// response, or the solver error that corner failed with.
pub type StepRecord = Result<(Vec<f64>, Vec<f64>), SimError>;

/// Corner-batched small-signal step response — the warm fast path of the
/// settling measurement across a PVT corner set sharing one time window.
///
/// The trapezoidal companion `A_b = G_b + 2C_b/h` is constant over the
/// whole record, so the scalar kernel already factors it once per corner
/// and amortizes that cost over the 2048 back-substitutions — the
/// batched win has to come from the *per-step solves*, and the kernel
/// picks its mechanism by backend regime:
///
/// - **Dense dims** (crossover- or fill-limit-routed): each corner's
///   constant companion is folded into a precomputed affine propagator
///   `x1 = M x0 + k` (`M = A^{-1}(2C/h - G)`, `k = A^{-1} 2b`), so the
///   per-step cost drops from a back-substitution pair to one `n^2`
///   chain-free matrix-vector product — see [`corners_propagator`].
///   Lanes agree with the scalar kernel to solver tolerance.
/// - **Sparse dims**: the per-step sparse back-substitution is already
///   cheap, so the kernel instead factors the **base corner's companion
///   once**, builds the [`CornerDiff`] low-rank structure over the
///   per-corner stamp deltas, and recovers every sibling's state per
///   step through the Woodbury identity
///   (`x_b = y_b - W S_b^{-1} N_b y_b`); each corner's `|R| x |R|`
///   correction system is factored once per corner set. Corner 0 and
///   empty-diff siblings take their lane of the fused solve directly
///   (bitwise); corrected siblings are exact to roundoff.
///
/// Both regimes live under the warm path's solver-tolerance contract —
/// the cold settling path is [`step_response_corners_shared`], which is
/// bitwise. Falls back per corner to the scalar kernel on structural
/// mismatch, a singular lane/base, or (sparse regime) unprofitable
/// support (`3|R| >= n`); stock dims (`n <= 16`) always take the scalar
/// path.
///
/// Returns one `(t, y)` record per corner, ordered like `solvers`.
///
/// # Panics
///
/// Panics if `solvers` and `outs` have different lengths.
pub fn step_response_corners(
    solvers: &[&AcSolver<'_>],
    outs: &[Node],
    t_stop: f64,
    steps: usize,
) -> Vec<StepRecord> {
    assert_eq!(solvers.len(), outs.len(), "one output node per corner");
    let bt = solvers.len();
    if bt == 0 {
        return Vec::new();
    }
    let n = solvers[0].dim();
    let scalar_all = || {
        solvers
            .iter()
            .zip(outs)
            .map(|(s, &o)| s.step_response(o, t_stop, steps))
            .collect()
    };
    if bt == 1 || n <= STOCK_DIM_MAX || solvers.iter().any(|s| s.dim() != n) {
        return scalar_all();
    }
    let h = t_stop / steps as f64;
    let cfg = solvers[0].config();
    if cfg.use_sparse(n) {
        let mut patterns: Vec<Vec<(usize, usize, f64, f64)>> = vec![Vec::new(); bt];
        for (pat, s) in patterns.iter_mut().zip(solvers) {
            s.collect_pattern(pat);
        }
        let cd = CornerDiff::from_patterns(&patterns, n);
        if !cd.profitable(n) {
            return scalar_all();
        }
        // Base companion A0 = G0 + 2*C0/h on the *plain* sparse kernel
        // (the correction basis needs one whole-matrix solve per support
        // row, which the BTF block solve provides no advantage for).
        let mut trip = TripletList::new(n);
        for &(r, c, gg, cc) in &patterns[0] {
            let v = gg + 2.0 * cc / h;
            // lint:allow(float-eq) — exact-zero sparsity guard.
            if v != 0.0 {
                trip.push(r, c, v);
            }
        }
        let mut csc = CscMatrix::empty();
        trip.compress_into(&mut csc);
        let mut slu = SparseLu::empty();
        if slu.refactor(&csc, 1e-300).is_err() {
            // Base corner singular: let every corner report through its
            // own scalar solve.
            return scalar_all();
        }
        if !cfg.dense_by_fill(n, slu.factor_nnz()) {
            return corners_woodbury(solvers, outs, t_stop, steps, h, &slu, &patterns, &cd);
        }
        // Fill blow-up: the scalar kernel drops to its dense LU here,
        // which is the propagator kernel's regime.
    }
    corners_propagator(solvers, outs, t_stop, steps, h)
}

/// Dense-regime settling kernel: the per-step implicit solve is replaced
/// by a per-corner precomputed **propagator**. The trapezoidal companion
/// is constant over the record, so the step update
/// `A x1 = 2b + (2C/h - G) x0` is the affine fixed map `x1 = M x0 + k`
/// with `M = A^{-1} (2C/h - G)` and `k = A^{-1} (2b)` — each corner pays
/// `n + 1` extra back-substitutions once, and every step collapses to
/// one `n^2` matrix-vector product, half the flops of a back-substitution
/// pair. The matvec runs column-major (axpy accumulation), so the inner
/// loop is `n` independent multiply-adds with none of the substitution
/// dependency chain, and each corner's propagator stays L1-resident for
/// its whole sweep. Algebraically the map is the scalar kernel's exact
/// update; in floating point the precomputed `M` commits its solve
/// roundoff once, so lanes agree with [`AcSolver::step_response`] to
/// solver tolerance — the warm path's contract — not bitwise. A singular
/// companion drops that corner to the scalar path so it reports the
/// scalar error.
fn corners_propagator(
    solvers: &[&AcSolver<'_>],
    outs: &[Node],
    t_stop: f64,
    steps: usize,
    h: f64,
) -> Vec<StepRecord> {
    let n = solvers[0].dim();
    solvers
        .iter()
        .zip(outs)
        .map(|(s, &o)| {
            let (g, c) = s.stamps();
            let mut a = Matrix::<f64>::zeros(n, n);
            for r in 0..n {
                for col in 0..n {
                    a[(r, col)] = g[(r, col)] + 2.0 * c[(r, col)] / h;
                }
            }
            let lu = match LuFactors::factor(a, 1e-300) {
                Ok(lu) => lu,
                // Singular companion: the scalar kernel reports it.
                Err(_) => return s.step_response(o, t_stop, steps),
            };
            // M column by column — `A^{-1} (2C/h - G) e_j` — stored
            // column-major so the per-step accumulation walks contiguous
            // columns.
            let mut mcols = vec![0.0; n * n];
            let mut bcol = vec![0.0; n];
            let mut xcol = Vec::new();
            for j in 0..n {
                for (i, bi) in bcol.iter_mut().enumerate() {
                    *bi = 2.0 * c[(i, j)] / h - g[(i, j)];
                }
                lu.solve_into(&bcol, &mut xcol);
                mcols[j * n..(j + 1) * n].copy_from_slice(&xcol);
            }
            let b2: Vec<f64> = s.source_rhs().iter().map(|cb| 2.0 * cb.re).collect();
            let mut k = Vec::new();
            lu.solve_into(&b2, &mut k);

            let oi = s.mna_index(o);
            let mut x = vec![0.0; n];
            let mut xn = vec![0.0; n];
            let mut t_out = Vec::with_capacity(steps + 1);
            let mut y_out = Vec::with_capacity(steps + 1);
            t_out.push(0.0);
            y_out.push(0.0);
            for sidx in 1..=steps {
                // x1 = M x0 + k, axpy over M's columns: the inner loop
                // carries no dependency between iterations, so it
                // pipelines where the back-substitution chain stalls.
                xn.copy_from_slice(&k);
                for (j, &xj) in x.iter().enumerate() {
                    let mcol = &mcols[j * n..(j + 1) * n];
                    for (xi, &mij) in xn.iter_mut().zip(mcol) {
                        *xi += mij * xj;
                    }
                }
                std::mem::swap(&mut x, &mut xn);
                t_out.push(sidx as f64 * h);
                y_out.push(oi.map_or(0.0, |i| x[i]));
            }
            Ok((t_out, y_out))
        })
        .collect()
}

/// Sparse-regime settling kernel: Woodbury-corrects every sibling's
/// per-step state against the once-factored base-corner companion — see
/// [`step_response_corners`] for the contract.
#[allow(clippy::too_many_arguments)]
fn corners_woodbury(
    solvers: &[&AcSolver<'_>],
    outs: &[Node],
    t_stop: f64,
    steps: usize,
    h: f64,
    base: &SparseLu<f64>,
    patterns: &[Vec<(usize, usize, f64, f64)>],
    cd: &CornerDiff,
) -> Vec<StepRecord> {
    let bt = solvers.len();
    let n = solvers[0].dim();
    let rn = cd.support();
    // Same companion arithmetic as the scalar kernel (`2*c/h` with this
    // exact rounding) so the uncorrected lanes stay bitwise-equal.
    let combine = |dg: f64, dc: f64| dg + 2.0 * dc / h;

    // W = A0^{-1} P_R — |R| back-substitutions, shared by every corner
    // and every time step.
    let mut unit = Vec::new();
    let mut xcol = Vec::new();
    let mut wflat = Vec::new();
    solve_correction_basis(base, &cd.rows, n, &mut unit, &mut xcol, &mut wflat);

    // Per-corner correction factors S_b = I + N_b W, factored once for
    // the whole record (the companion has no per-step dependence). A
    // singular correction (corner shifted the base too hard) drops that
    // corner to the scalar kernel.
    let mut smalls: Vec<Option<LuFactors<f64>>> = Vec::with_capacity(bt);
    let mut fallback = vec![false; bt];
    for (diff, fb) in cd.diffs.iter().zip(fallback.iter_mut()) {
        if diff.is_empty() {
            smalls.push(None);
            continue;
        }
        let mut small = LuFactors::empty();
        match factor_correction(&mut small, diff, &cd.row_pos, rn, n, combine, &wflat) {
            Ok(()) => smalls.push(Some(small)),
            Err(_) => {
                *fb = true;
                smalls.push(None);
            }
        }
    }
    let active: Vec<usize> = (0..bt).filter(|&b| !fallback[b]).collect();
    let lanes = active.len();

    let mut out: Vec<StepRecord> = (0..bt).map(|_| Ok((Vec::new(), Vec::new()))).collect();
    if lanes > 0 {
        // Companion right-hand-side stamps per active corner, from the
        // same pattern entries (and in the same row-major order) the
        // scalar kernel walks.
        let comps: Vec<Vec<(usize, usize, f64)>> = active
            .iter()
            .map(|&b| {
                patterns[b]
                    .iter()
                    .filter_map(|&(r, c, gg, cc)| {
                        let v = 2.0 * cc / h - gg;
                        // lint:allow(float-eq) — exact-zero sparsity guard.
                        (v != 0.0).then_some((r, c, v))
                    })
                    .collect()
            })
            .collect();
        let bvecs: Vec<Vec<f64>> = active
            .iter()
            .map(|&b| solvers[b].source_rhs().iter().map(|c| c.re).collect())
            .collect();
        let oi: Vec<Option<usize>> = active
            .iter()
            .map(|&b| solvers[b].mna_index(outs[b]))
            .collect();
        let mut xs: Vec<Vec<f64>> = vec![vec![0.0; n]; lanes];
        let mut touts: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); lanes];
        let mut youts: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); lanes];
        for l in 0..lanes {
            touts[l].push(0.0);
            youts[l].push(0.0);
        }
        let mut rhs_flat = vec![0.0; n * lanes];
        let mut ys_flat = Vec::new();
        let mut ylane = vec![0.0; n];
        let mut u = Vec::new();
        let mut z = Vec::new();
        for s in 1..=steps {
            for (l, bv) in bvecs.iter().enumerate() {
                for (i, &bi) in bv.iter().enumerate() {
                    rhs_flat[i * lanes + l] = 2.0 * bi;
                }
                for &(r, c, v) in &comps[l] {
                    rhs_flat[r * lanes + l] += v * xs[l][c];
                }
            }
            base.solve_multi_into(&rhs_flat, lanes, &mut ys_flat);
            for (l, &b) in active.iter().enumerate() {
                match &smalls[b] {
                    None => {
                        // Stamps equal the base: the fused solve's lane
                        // *is* this corner's solve.
                        for (i, xi) in xs[l].iter_mut().enumerate() {
                            *xi = ys_flat[i * lanes + l];
                        }
                    }
                    Some(small) => {
                        for (i, yi) in ylane.iter_mut().enumerate() {
                            *yi = ys_flat[i * lanes + l];
                        }
                        corrected_vector(
                            small,
                            &cd.diffs[b],
                            &cd.row_pos,
                            &wflat,
                            &ylane,
                            combine,
                            n,
                            rn,
                            &mut u,
                            &mut z,
                            &mut xs[l],
                        );
                    }
                }
                touts[l].push(s as f64 * h);
                youts[l].push(oi[l].map_or(0.0, |i| xs[l][i]));
            }
        }
        for ((&b, t), y) in active.iter().zip(touts).zip(youts) {
            out[b] = Ok((t, y));
        }
    }
    for (b, slot) in out.iter_mut().enumerate() {
        if fallback[b] {
            *slot = solvers[b].step_response(outs[b], t_stop, steps);
        }
    }
    out
}

/// Cold corner-batched step response: every corner runs the exact scalar
/// [`AcSolver::step_response`] arithmetic (bitwise-equal results), but
/// sparse-routed dims share one [`SparseSolver`] across the corner set —
/// corners share their companion stamp *pattern*, so the symbolic
/// analysis + AMD ordering (and BTF decomposition) are computed once and
/// every sibling pays only a values refactor. Same-pattern refactors are
/// bitwise-equal to fresh factorizations, so this sharing is invisible
/// in the results — which is what keeps this path on the cold bitwise
/// contract while still removing the per-corner analysis cost.
///
/// # Panics
///
/// Panics if `solvers` and `outs` have different lengths.
pub fn step_response_corners_shared(
    solvers: &[&AcSolver<'_>],
    outs: &[Node],
    t_stop: f64,
    steps: usize,
) -> Vec<StepRecord> {
    assert_eq!(solvers.len(), outs.len(), "one output node per corner");
    if solvers.is_empty() {
        return Vec::new();
    }
    let mut shared = SparseSolver::empty(solvers[0].config().btf);
    solvers
        .iter()
        .zip(outs)
        .map(|(s, &o)| s.step_response_via(o, t_stop, steps, &mut shared))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Step, GND};

    #[test]
    fn rc_step_response_tau() {
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.vsource_step(
            i,
            GND,
            Step {
                v0: 0.0,
                v1: 1.0,
                t_delay: 0.0,
            },
            0.0,
        );
        ckt.resistor(i, o, 1.0e3);
        ckt.capacitor(o, GND, 1e-9);
        let res = transient(&ckt, &TranOptions::new(5e-6, 5000)).unwrap();
        let w = res.node_waveform(o);
        // At t = tau the response is 1 - 1/e.
        let k = res.t.iter().position(|&t| t >= 1e-6).unwrap();
        assert!((w[k] - 0.6321).abs() < 0.01, "got {}", w[k]);
        // Settled to within 1% at 5 tau (1 - e^-5 ~ 0.9933).
        assert!((w.last().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn step_delay_respected() {
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        ckt.vsource_step(
            i,
            GND,
            Step {
                v0: 0.2,
                v1: 0.8,
                t_delay: 1e-6,
            },
            0.0,
        );
        ckt.resistor(i, GND, 1e3);
        let res = transient(&ckt, &TranOptions::new(2e-6, 200)).unwrap();
        let w = res.node_waveform(i);
        let before = res.t.iter().position(|&t| t >= 0.5e-6).unwrap();
        assert!((w[before] - 0.2).abs() < 1e-6);
        assert!((w.last().unwrap() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn lc_free_energy_is_not_created() {
        // Two capacitors sharing charge through a resistor: final voltage
        // is the charge-weighted average; trapezoidal must not overshoot
        // persistently.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        // Pre-charge via a step source through a tiny resistor, then the
        // source stays constant; we just verify no numerical blow-up.
        ckt.vsource_step(
            a,
            GND,
            Step {
                v0: 1.0,
                v1: 1.0,
                t_delay: 0.0,
            },
            0.0,
        );
        ckt.resistor(a, b, 1e4);
        ckt.capacitor(b, GND, 1e-12);
        let res = transient(&ckt, &TranOptions::new(1e-6, 1000)).unwrap();
        let w = res.node_waveform(b);
        assert!(w.iter().all(|v| v.is_finite() && *v <= 1.0 + 1e-6));
        assert!((w.last().unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn zero_step_options_are_rejected_not_degenerate() {
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        ckt.vsource(i, GND, 1.0, 0.0);
        ckt.resistor(i, GND, 1e3);
        // steps = 0 => dt = inf; previously this silently produced a
        // zero-step sweep from `(t_stop / dt).round()` on a non-finite dt.
        let r = transient(&ckt, &TranOptions::new(1e-6, 0));
        assert!(matches!(r, Err(SimError::InvalidOptions { .. })), "{r:?}");
        // t_stop = 0 => dt = 0.
        let r = transient(&ckt, &TranOptions::new(0.0, 100));
        assert!(matches!(r, Err(SimError::InvalidOptions { .. })));
        // Hand-built options with t_stop < dt: empty sweep.
        let opts = TranOptions {
            dt: 1e-6,
            ..TranOptions::new(1e-7, 10)
        };
        assert!(matches!(
            transient(&ckt, &opts),
            Err(SimError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn warm_transient_matches_cold_and_skips_cold_dc() {
        // RC step: the warm path must produce the same waveform as the
        // cold path (same fixed point, same integration), while starting
        // its DC from the session's stored operating point.
        let build = || {
            let mut ckt = Circuit::new();
            let i = ckt.node("in");
            let o = ckt.node("out");
            ckt.vsource_step(
                i,
                GND,
                Step {
                    v0: 0.0,
                    v1: 1.0,
                    t_delay: 0.0,
                },
                0.0,
            );
            ckt.resistor(i, o, 1.0e3);
            ckt.capacitor(o, GND, 1e-9);
            ckt
        };
        let ckt = build();
        let opts = TranOptions::new(5e-6, 500);
        let cold = transient(&ckt, &opts).unwrap();
        let mut state = WarmState::new();
        // Prime the slot with the operating point, as a session would.
        state.solve(0, &ckt, &opts.dc).unwrap();
        let warm = transient_warm(&ckt, &opts, 0, &mut state).unwrap();
        assert_eq!(cold.t, warm.t);
        for (a, b) in cold.v.iter().flatten().zip(warm.v.iter().flatten()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // The warm state now holds the transient's initial OP solution.
        assert!(state.is_warm());
    }

    #[test]
    fn forced_sparse_transient_matches_dense() {
        use crate::linalg::sparse::SolverConfig;
        let mut ckt = Circuit::new();
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.vsource_step(
            i,
            GND,
            Step {
                v0: 0.0,
                v1: 1.0,
                t_delay: 0.0,
            },
            0.0,
        );
        ckt.resistor(i, o, 1.0e3);
        ckt.capacitor(o, GND, 1e-9);
        let opts = TranOptions::new(5e-6, 500);
        let dense = transient(&ckt, &opts).unwrap();
        let mut sp_opts = opts.clone();
        sp_opts.dc.solver = SolverConfig::sparse();
        let sparse = transient(&ckt, &sp_opts).unwrap();
        assert_eq!(dense.t, sparse.t);
        for (a, b) in dense.v.iter().flatten().zip(sparse.v.iter().flatten()) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn mosfet_inverter_transient_switches() {
        use crate::device::{MosPolarity, Technology};
        use crate::netlist::Mosfet;
        let t = Technology::ptm45();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let o = ckt.node("o");
        ckt.vsource(vdd, GND, 1.0, 0.0);
        ckt.vsource_step(
            g,
            GND,
            Step {
                v0: 0.0,
                v1: 1.0,
                t_delay: 0.2e-9,
            },
            0.0,
        );
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Nmos,
            d: o,
            g,
            s: GND,
            w: 1e-6,
            l: t.lmin,
            mult: 1.0,
            model: t.nmos,
        });
        ckt.mosfet(Mosfet {
            polarity: MosPolarity::Pmos,
            d: o,
            g,
            s: vdd,
            w: 2e-6,
            l: t.lmin,
            mult: 1.0,
            model: t.pmos,
        });
        ckt.capacitor(o, GND, 10e-15);
        let res = transient(&ckt, &TranOptions::new(2e-9, 2000)).unwrap();
        let w = res.node_waveform(o);
        assert!(w[0] > 0.9, "output starts high, got {}", w[0]);
        assert!(*w.last().unwrap() < 0.1, "output ends low");
    }
}
