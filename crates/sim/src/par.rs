//! Scoped-thread tile scheduler with per-thread workspaces and a
//! process-wide thread budget.
//!
//! Every parallel walk in the evaluation stack — AC frequency points,
//! noise points, (corner × frequency) grids, BTF diagonal blocks — runs
//! through this one substrate: the work is split into contiguous chunks
//! of *tiles*, each tile owns a preallocated result slot, and each lane
//! (thread) factors and solves through its own workspace checked out of a
//! [`WorkspacePool`]. Because every kernel underneath is history-free
//! (same-pattern refactors re-run pivot selection and are bitwise-equal
//! to fresh factorizations), a tile's result depends only on its own
//! inputs — so threaded output is **bitwise-identical to serial
//! regardless of schedule**, and the dispatch between serial and threaded
//! execution is pure performance policy.
//!
//! ## The thread budget
//!
//! Parallelism nests: rollout workers (one scoped thread per environment
//! in `autockt_rl::rollout`) each evaluate circuits whose sweeps would
//! themselves like threads. Oversubscribing a machine with
//! `workers × lanes` threads loses to either level alone, so the process
//! shares one budget (default: `std::thread::available_parallelism`).
//! Outer levels win: whoever reserves first gets the threads, and inner
//! [`Parallelism::Auto`] requests degrade to serial when the budget is
//! spent. The rollout collector reserves through the same accountant (see
//! `autockt_rl::rollout::register_thread_accountant`, wired up by
//! `autockt_core`), so `workers × inner lanes ≤ budget` holds across the
//! crate boundary without `rl` depending on this crate.
//!
//! [`Parallelism::Threads`] is the explicit override: it spawns the
//! requested lanes even on a spent budget (tests and benches need to
//! exercise real thread schedules on any machine), while still recording
//! them so nested `Auto` requests back off.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many lanes a tiled walk should use — the knob threaded through
/// [`crate::linalg::sparse::SolverConfig`] into every sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Strictly serial: never spawn, never consult the budget. The
    /// reference schedule every threaded path is bitwise-equal to.
    Off,
    /// Thread when it pays: lanes are granted from the process-wide
    /// budget (so nested parallelism degrades to serial instead of
    /// oversubscribing), and call sites keep small problems serial where
    /// threading measures as a loss.
    #[default]
    Auto,
    /// Exactly this many lanes (clamped to the tile count), bypassing the
    /// budget *limit* but still counted against it so nested [`Auto`]
    /// walks back off. `Threads(0)` and `Threads(1)` are serial.
    ///
    /// [`Auto`]: Parallelism::Auto
    Threads(usize),
}

/// Explicit budget override; `0` means "unset, use
/// `available_parallelism`".
static BUDGET: AtomicUsize = AtomicUsize::new(0);

/// Threads currently reserved (extra lanes + rollout workers), excluding
/// the implicit primary thread.
static RESERVED: AtomicUsize = AtomicUsize::new(0);

/// The process-wide thread budget: the total number of evaluation threads
/// (including the calling thread) the scheduler will aim for. Defaults to
/// `std::thread::available_parallelism`, floored at 1.
pub fn thread_budget() -> usize {
    let b = BUDGET.load(Ordering::Relaxed);
    if b != 0 {
        return b;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Overrides the process-wide thread budget (floored at 1). Benches use
/// this to measure saturation at fixed thread counts.
pub fn set_thread_budget(n: usize) {
    BUDGET.store(n.max(1), Ordering::Relaxed);
}

/// Threads currently reserved against the budget (extra scheduler lanes
/// plus registered outer-level workers). The primary thread is implicit
/// and not counted.
pub fn reserved_threads() -> usize {
    RESERVED.load(Ordering::Relaxed)
}

/// Reserves up to `want` extra threads against the budget, returning how
/// many were granted: `min(want, budget - 1 - reserved)`, atomically.
/// Pair every grant with [`release_threads`]. This is the accountant the
/// rollout collector registers across the crate boundary, which is what
/// makes "outer level wins" hold: workers reserved before a sweep starts
/// leave the sweep's [`Parallelism::Auto`] request no headroom.
pub fn reserve_threads(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let budget = thread_budget();
    let mut cur = RESERVED.load(Ordering::Relaxed);
    loop {
        let headroom = budget.saturating_sub(1).saturating_sub(cur);
        let take = want.min(headroom);
        if take == 0 {
            return 0;
        }
        match RESERVED.compare_exchange_weak(cur, cur + take, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return take,
            Err(now) => cur = now,
        }
    }
}

/// Returns `n` previously reserved threads to the budget (saturating, so
/// an unbalanced release cannot wrap the counter).
pub fn release_threads(n: usize) {
    if n == 0 {
        return;
    }
    let mut cur = RESERVED.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(n);
        match RESERVED.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// Whether a tiled walk over `tiles` tiles would actually run more than
/// one lane under `par` right now — the cheap dispatch check call sites
/// use before committing to the threaded code path. Advisory for `Auto`
/// (the actual grant happens at spawn time and may be smaller), exact for
/// `Off`/`Threads`.
pub fn would_parallelize(par: Parallelism, tiles: usize) -> bool {
    match par {
        Parallelism::Off => false,
        Parallelism::Threads(n) => n > 1 && tiles > 1,
        Parallelism::Auto => {
            tiles > 1
                && thread_budget()
                    .saturating_sub(1)
                    .saturating_sub(reserved_threads())
                    > 0
        }
    }
}

/// RAII budget reservation for one tiled walk.
struct Lease {
    extra: usize,
}

impl Lease {
    fn acquire(par: Parallelism, tiles: usize) -> Lease {
        let extra = match par {
            Parallelism::Off => 0,
            Parallelism::Auto => {
                let want = tiles.min(thread_budget()).saturating_sub(1);
                reserve_threads(want)
            }
            Parallelism::Threads(n) => {
                let want = n.max(1).min(tiles).saturating_sub(1);
                // Forced lanes bypass the budget limit but are still
                // recorded so nested Auto walks see them and back off.
                RESERVED.fetch_add(want, Ordering::AcqRel);
                want
            }
        };
        Lease { extra }
    }

    fn lanes(&self) -> usize {
        self.extra + 1
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        release_threads(self.extra);
    }
}

/// A pool of reusable per-lane workspaces.
///
/// Lanes check a workspace out at chunk start (constructing one only when
/// the pool is dry) and return it at chunk end, so repeated sweeps reuse
/// the same allocations across calls — the threaded analogue of the
/// serial paths' caller-held workspace. The pool holds at most as many
/// workspaces as the widest schedule that ever ran through it.
#[derive(Debug, Default)]
pub struct WorkspacePool<W> {
    free: Mutex<Vec<W>>,
}

impl<W> WorkspacePool<W> {
    /// An empty pool (const, so pools can be `static`).
    pub const fn new() -> Self {
        WorkspacePool {
            free: Mutex::new(Vec::new()),
        }
    }

    fn free(&self) -> std::sync::MutexGuard<'_, Vec<W>> {
        // A poisoned pool only means a lane panicked mid-checkout; the
        // Vec of idle workspaces is still structurally sound.
        self.free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Checks a workspace out, constructing one with `make` when the pool
    /// is dry.
    pub fn checkout_or(&self, make: impl FnOnce() -> W) -> W {
        let reused = self.free().pop();
        reused.unwrap_or_else(make)
    }

    /// Returns a workspace to the pool for the next checkout.
    pub fn restore(&self, w: W) {
        self.free().push(w);
    }

    /// Number of idle workspaces currently pooled.
    pub fn idle(&self) -> usize {
        self.free().len()
    }
}

/// Runs `chunk_fn` over `slots` split into contiguous, balanced chunks —
/// one chunk per lane, each lane with its own pooled workspace.
///
/// `chunk_fn(offset, chunk, ws)` receives the chunk's global offset into
/// `slots` (so tile `k` of the chunk is global tile `offset + k`), the
/// mutable chunk of result slots, and the lane's workspace. It is called
/// exactly once per lane; per-lane setup (preparing the workspace for a
/// solver, walking a corner boundary) belongs at its top.
///
/// Serial execution (`lanes == 1` after budget resolution) calls
/// `chunk_fn(0, slots, ws)` on the calling thread with a pooled
/// workspace — the exact arithmetic of the threaded schedule, which is
/// what makes the two bitwise-interchangeable: a tile's result may depend
/// only on the tile index and the workspace contents `chunk_fn` itself
/// establishes, never on which lane ran it.
///
/// Lane panics propagate to the caller when the scope joins.
pub fn run_chunks<T, W, M, F>(
    par: Parallelism,
    slots: &mut [T],
    pool: &WorkspacePool<W>,
    make: M,
    chunk_fn: F,
) where
    T: Send,
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(usize, &mut [T], &mut W) + Sync,
{
    let n = slots.len();
    if n == 0 {
        return;
    }
    let lease = Lease::acquire(par, n);
    let lanes = lease.lanes();
    if lanes <= 1 {
        let mut ws = pool.checkout_or(&make);
        chunk_fn(0, slots, &mut ws);
        pool.restore(ws);
        return;
    }
    let base = n / lanes;
    let extra = n % lanes;
    std::thread::scope(|scope| {
        let mut rest = slots;
        let mut offset = 0usize;
        let mut own: Option<(usize, &mut [T])> = None;
        for lane in 0..lanes {
            let len = base + usize::from(lane < extra);
            let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(len);
            rest = tail;
            if lane == 0 {
                // The calling thread is lane 0; run it after the spawns
                // so the other lanes start immediately.
                own = Some((offset, chunk));
            } else {
                let (chunk_fn, make) = (&chunk_fn, &make);
                scope.spawn(move || {
                    let mut ws = pool.checkout_or(make);
                    chunk_fn(offset, chunk, &mut ws);
                    pool.restore(ws);
                });
            }
            offset += len;
        }
        if let Some((offset, chunk)) = own {
            let mut ws = pool.checkout_or(&make);
            chunk_fn(offset, chunk, &mut ws);
            pool.restore(ws);
        }
    });
}

/// [`run_chunks`] for walks whose lanes need no workspace (the BTF block
/// refactor: each tile carries its own factorization buffers).
pub fn run_chunks_unit<T, F>(par: Parallelism, slots: &mut [T], chunk_fn: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    static UNIT_POOL: WorkspacePool<()> = WorkspacePool::new();
    run_chunks(
        par,
        slots,
        &UNIT_POOL,
        || (),
        |off, chunk, ()| {
            chunk_fn(off, chunk);
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests asserting on the process-wide budget counters serialize
    /// through this lock so concurrent test threads can't interleave.
    fn budget_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn off_is_single_lane() {
        let mut slots = vec![0usize; 16];
        let pool = WorkspacePool::new();
        run_chunks(
            Parallelism::Off,
            &mut slots,
            &pool,
            || 0usize,
            |off, c, _| {
                assert_eq!(off, 0);
                assert_eq!(c.len(), 16);
                for (k, s) in c.iter_mut().enumerate() {
                    *s = k;
                }
            },
        );
        assert!(slots.iter().enumerate().all(|(k, &s)| s == k));
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn forced_lanes_cover_every_tile_exactly_once() {
        for lanes in [1usize, 2, 4, 7] {
            for n in [1usize, 2, 7, 29] {
                let mut slots = vec![usize::MAX; n];
                let pool = WorkspacePool::new();
                run_chunks(
                    Parallelism::Threads(lanes),
                    &mut slots,
                    &pool,
                    || (),
                    |off, chunk, ()| {
                        for (k, s) in chunk.iter_mut().enumerate() {
                            *s = off + k;
                        }
                    },
                );
                assert!(
                    slots.iter().enumerate().all(|(k, &s)| s == k),
                    "lanes={lanes} n={n}: every global tile index written once"
                );
                // Each lane restored its workspace.
                assert!(pool.idle() >= 1 && pool.idle() <= lanes.min(n));
            }
        }
    }

    #[test]
    fn pool_reuses_workspaces_across_calls() {
        let pool: WorkspacePool<Vec<u8>> = WorkspacePool::new();
        let mut slots = vec![0u8; 8];
        for _ in 0..3 {
            run_chunks(
                Parallelism::Threads(2),
                &mut slots,
                &pool,
                || Vec::with_capacity(64),
                |_, chunk, ws| {
                    ws.push(1);
                    for s in chunk.iter_mut() {
                        *s += 1;
                    }
                },
            );
        }
        // Two lanes, three calls: never more than two workspaces built.
        assert!(pool.idle() <= 2);
        assert!(slots.iter().all(|&s| s == 3));
    }

    #[test]
    fn reserve_release_saturate() {
        let _guard = budget_lock();
        set_thread_budget(4);
        let before = reserved_threads();
        let got = reserve_threads(64);
        assert!(got <= 3);
        release_threads(got);
        // Saturating release cannot wrap the counter toward usize::MAX;
        // concurrent sibling tests may hold small transient reservations,
        // so only the no-wrap property is asserted exactly.
        release_threads(1_000_000);
        assert!(reserved_threads() <= before + 64);
        set_thread_budget(1);
        assert_eq!(reserve_threads(8), 0);
        // Restore the default-derived budget for sibling tests.
        BUDGET.store(0, Ordering::Relaxed);
    }

    #[test]
    fn auto_degrades_to_serial_when_workers_hold_the_budget() {
        let _guard = budget_lock();
        // Simulate an outer level (rollout workers) holding everything.
        let budget = thread_budget();
        let held = {
            RESERVED.fetch_add(budget, Ordering::AcqRel);
            budget
        };
        assert!(!would_parallelize(Parallelism::Auto, 1024));
        let mut slots = vec![0usize; 32];
        let pool = WorkspacePool::new();
        run_chunks(
            Parallelism::Auto,
            &mut slots,
            &pool,
            || (),
            |off, c, ()| {
                // One lane: the whole slot range in one chunk.
                assert_eq!(off, 0);
                assert_eq!(c.len(), 32);
            },
        );
        release_threads(held);
    }
}
