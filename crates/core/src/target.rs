//! Target-specification sampling.
//!
//! The paper trains on a sparse subsample of the specification space
//! (`O* = 50` random target vectors) and deploys on freshly sampled ones.
//! Two samplers are provided: [`sample_uniform`] draws each spec
//! independently from its declared range (used at deployment, where some
//! combinations are legitimately unreachable — Fig. 8), and
//! [`sample_feasible`] draws the measured specs of random *designs* so the
//! target is reachable by construction (used to build the training set, so
//! the mean-reward-reaches-zero stopping rule of Sec. II-A is attainable).

use autockt_circuits::{SimMode, SizingProblem, SpecKind};
use rand::rngs::StdRng;
use rand::Rng;

/// Draws one target vector uniformly from each spec's `[lo, hi]` range.
pub fn sample_uniform(problem: &dyn SizingProblem, rng: &mut StdRng) -> Vec<f64> {
    problem
        .specs()
        .iter()
        .map(|s| {
            if (s.hi - s.lo).abs() < f64::EPSILON {
                s.lo
            } else {
                rng.random_range(s.lo..s.hi)
            }
        })
        .collect()
}

/// Draws a reachable target: samples random parameter vectors, simulates
/// them, and returns the first whose measured specs all fall inside the
/// declared ranges. Specs of kind [`SpecKind::Minimize`] are relaxed
/// upward to the range bound (a design drawing less power than the target
/// is still a valid target). Falls back to [`sample_uniform`] after
/// `max_tries` misses.
pub fn sample_feasible(
    problem: &dyn SizingProblem,
    rng: &mut StdRng,
    max_tries: usize,
) -> Vec<f64> {
    let cards = problem.cardinalities();
    for _ in 0..max_tries {
        let idx: Vec<usize> = cards.iter().map(|&k| rng.random_range(0..k)).collect();
        let Ok(specs) = problem.simulate(&idx, SimMode::Schematic) else {
            continue;
        };
        // The design can seed a target if each spec clears the box in its
        // constraint direction: a HardMin measurement above the box top
        // still satisfies the clamped target `hi`, etc.
        let ok = problem
            .specs()
            .iter()
            .zip(&specs)
            .all(|(d, &v)| match d.kind {
                SpecKind::HardMin => v >= d.lo,
                SpecKind::HardMax | SpecKind::Minimize => v <= d.hi,
            });
        if !ok {
            continue;
        }
        // Build the target by clamping the measurement into the declared
        // box (for minimized specs, sample between the measurement and the
        // box top so the design provably satisfies it).
        let target: Vec<f64> = problem
            .specs()
            .iter()
            .zip(&specs)
            .map(|(d, &v)| match d.kind {
                SpecKind::HardMin => v.clamp(d.lo, d.hi),
                SpecKind::HardMax => v.clamp(d.lo, d.hi),
                SpecKind::Minimize => {
                    let lo = v.max(d.lo);
                    if d.hi > lo {
                        rng.random_range(lo..d.hi)
                    } else {
                        d.hi
                    }
                }
            })
            .collect();
        return target;
    }
    sample_uniform(problem, rng)
}

/// Generates the training target set `O*` (the paper uses `n = 50`,
/// optimized by hyperparameter sweep).
pub fn training_targets(
    problem: &dyn SizingProblem,
    n: usize,
    rng: &mut StdRng,
    feasible: bool,
) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            if feasible {
                sample_feasible(problem, rng, 50)
            } else {
                sample_uniform(problem, rng)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autockt_circuits::Tia;
    use rand::SeedableRng;

    #[test]
    fn uniform_targets_in_range() {
        let tia = Tia::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = sample_uniform(&tia, &mut rng);
            for (d, v) in tia.specs().iter().zip(&t) {
                assert!(*v >= d.lo && *v <= d.hi, "{} = {v} outside range", d.name);
            }
        }
    }

    #[test]
    fn feasible_targets_are_within_box() {
        let tia = Tia::default();
        let mut rng = StdRng::seed_from_u64(2);
        let t = sample_feasible(&tia, &mut rng, 30);
        assert_eq!(t.len(), tia.specs().len());
        for (d, v) in tia.specs().iter().zip(&t) {
            assert!(
                *v >= d.lo - 1e-12 && *v <= d.hi + 1e-12,
                "{} = {v} outside [{}, {}]",
                d.name,
                d.lo,
                d.hi
            );
        }
    }

    #[test]
    fn training_set_has_requested_size() {
        let tia = Tia::default();
        let mut rng = StdRng::seed_from_u64(3);
        let set = training_targets(&tia, 10, &mut rng, false);
        assert_eq!(set.len(), 10);
    }
}
