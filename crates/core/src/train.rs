//! The AutoCkt training loop (Fig. 3, left half).
//!
//! Fifty target specifications are sampled, parallel environments generate
//! trajectories against them, and PPO updates the agent until the mean
//! episode reward reaches zero — "meaning all target specifications are
//! consistently satisfied" (Sec. II-A) — or the iteration budget runs out.

use crate::env::{EnvConfig, SizingEnv, TargetMode};
use crate::target::training_targets;
use autockt_circuits::{SharedMemo, SimMode, SizingProblem};
use autockt_rl::env::Env;
use autockt_rl::ppo::{IterStats, Ppo, PpoConfig};
use autockt_rl::rollout::{register_thread_accountant, ThreadAccountant};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Wires the rollout collector's thread accounting to the simulation
/// substrate's process-wide thread budget (`autockt_sim::par`): rollout
/// workers charge their head count before spawning, so the simulation
/// kernels they drive see the reduced headroom and keep their own tiling
/// within the budget — the outer parallel level wins, and nested
/// parallelism degrades to serial. Idempotent; called by [`train`], and
/// callable directly by deployments that run the collector themselves.
pub fn wire_thread_budget() {
    register_thread_accountant(ThreadAccountant {
        reserve: autockt_sim::par::reserve_threads,
        release: autockt_sim::par::release_threads,
    });
}

/// Configuration of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// PPO hyperparameters.
    pub ppo: PpoConfig,
    /// Parallel environment workers (the paper uses Ray on 8 cores).
    pub num_workers: usize,
    /// Trajectory horizon `H`.
    pub horizon: usize,
    /// Number of training targets (paper: 50, from a hyperparameter sweep).
    pub num_targets: usize,
    /// Draw training targets from feasible designs (guarantees the stopping
    /// rule is attainable) instead of uniformly from the spec box.
    pub feasible_targets: bool,
    /// Stop when the mean episode reward reaches this value (paper: 0).
    pub target_mean_reward: f64,
    /// Hard cap on PPO iterations.
    pub max_iters: usize,
    /// Simulation fidelity during training (schematic in the paper; PEX is
    /// only ever used at deployment, via transfer).
    pub mode: SimMode,
    /// Pool one concurrent evaluation memo across all rollout workers
    /// (default on): every grid point solved by any worker serves every
    /// other worker's revisits — episodes all restart from the grid
    /// center, so cross-worker overlap is heavy. Warm-start state stays
    /// private per worker. Because a pooled hit may serve specs solved
    /// from a sibling's warm trajectory, reward trajectories are
    /// reproducible within solver tolerance rather than bitwise when
    /// `warm_start` is on; set to `false` to restore fully per-worker
    /// (bitwise-deterministic) evaluation.
    pub pool_memo: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            ppo: PpoConfig::default(),
            num_workers: 8,
            horizon: 30,
            num_targets: 50,
            feasible_targets: false,
            target_mean_reward: 8.0,
            max_iters: 60,
            mode: SimMode::Schematic,
            pool_memo: true,
            seed: 0,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// The trained agent.
    pub agent: Ppo,
    /// Per-iteration statistics (the paper's Figs. 5/7/11 reward curves).
    pub curve: Vec<IterStats>,
    /// The training target set `O*`.
    pub targets: Vec<Vec<f64>>,
    /// Whether the stopping rule fired before the iteration cap.
    pub converged: bool,
    /// The evaluation memo pooled across rollout workers (when
    /// [`TrainConfig::pool_memo`] was on), with its hit/eviction counters.
    pub shared_memo: Option<Arc<SharedMemo>>,
}

impl TrainResult {
    /// Total environment steps (simulations) spent in training.
    pub fn env_steps(&self) -> usize {
        self.curve.last().map_or(0, |s| s.total_env_steps)
    }
}

/// Trains an AutoCkt agent on a sizing problem.
///
/// The returned agent's policy is what gets deployed — including, for
/// Table IV, deployed unchanged on the PEX environment (transfer learning,
/// Fig. 13).
pub fn train(problem: Arc<dyn SizingProblem>, cfg: &TrainConfig) -> TrainResult {
    wire_thread_budget();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let targets = training_targets(
        problem.as_ref(),
        cfg.num_targets,
        &mut rng,
        cfg.feasible_targets,
    );
    // One sharded memo pooled across all rollout workers: any worker's
    // solve serves every other worker's revisit of that grid point.
    let shared_memo = cfg
        .pool_memo
        .then(|| Arc::new(SharedMemo::with_default_capacity()));
    let env_cfg = EnvConfig {
        horizon: cfg.horizon,
        mode: cfg.mode,
        target_mode: TargetMode::FixedSet(targets.clone()),
        shared_memo: shared_memo.clone(),
        ..EnvConfig::default()
    };
    let mut envs: Vec<SizingEnv> = (0..cfg.num_workers.max(1))
        .map(|_| SizingEnv::new(Arc::clone(&problem), env_cfg.clone()))
        .collect();
    let obs_dim = envs[0].obs_dim();
    let action_dims = envs[0].action_dims();
    let mut agent = Ppo::new(obs_dim, &action_dims, cfg.ppo.clone(), cfg.seed ^ 0xA5);

    let mut curve = Vec::with_capacity(cfg.max_iters);
    let mut converged = false;
    for _ in 0..cfg.max_iters {
        let stats = agent.train_iteration(&mut envs);
        let mean_r = stats.mean_episode_reward;
        curve.push(stats);
        if mean_r.is_finite() && mean_r >= cfg.target_mean_reward {
            converged = true;
            break;
        }
    }
    TrainResult {
        agent,
        curve,
        targets,
        converged,
        shared_memo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autockt_circuits::Tia;

    /// A smoke test at a deliberately tiny budget: training machinery runs
    /// end-to-end and produces a curve. (Full-scale convergence is
    /// exercised by the bench binaries and integration tests in release
    /// mode.)
    #[test]
    fn training_smoke() {
        let cfg = TrainConfig {
            ppo: PpoConfig {
                steps_per_iter: 64,
                minibatch: 32,
                epochs: 2,
                ..PpoConfig::default()
            },
            num_workers: 2,
            horizon: 8,
            num_targets: 4,
            feasible_targets: true,
            max_iters: 2,
            target_mean_reward: f64::INFINITY, // never stop early
            ..TrainConfig::default()
        };
        let res = train(Arc::new(Tia::default()), &cfg);
        assert_eq!(res.curve.len(), 2);
        assert_eq!(res.targets.len(), 4);
        assert!(!res.converged);
        assert!(res.env_steps() >= 128);
        // Both workers restart episodes from the grid center, so the
        // pooled memo must have served at least one cross-worker revisit.
        let memo = res.shared_memo.expect("pooling on by default");
        assert!(memo.cross_hits() > 0, "no cross-worker hits pooled");
    }

    #[test]
    fn training_without_pooling_keeps_private_memos() {
        let cfg = TrainConfig {
            ppo: PpoConfig {
                steps_per_iter: 32,
                minibatch: 16,
                epochs: 1,
                ..PpoConfig::default()
            },
            num_workers: 2,
            horizon: 8,
            num_targets: 2,
            feasible_targets: true,
            max_iters: 1,
            pool_memo: false,
            target_mean_reward: f64::INFINITY,
            ..TrainConfig::default()
        };
        let res = train(Arc::new(Tia::default()), &cfg);
        assert!(res.shared_memo.is_none());
    }
}
