//! The AutoCkt sizing environment.
//!
//! Implements the trajectory mechanics of Fig. 2: on reset the parameters
//! start at the grid center `K/2` and a target specification is drawn; each
//! step the agent outputs decrement/keep/increment for every parameter, the
//! circuit is simulated, and the Eq. 1 reward is granted. The episode ends
//! on success (`r >= -0.01`, with a +10 bonus) or after `H` steps.

use crate::reward::{is_success, reward, SUCCESS_BONUS};
use crate::target::{sample_feasible, sample_uniform};
use autockt_circuits::{EvalSession, SharedMemo, SimMode, SizingProblem};
use autockt_rl::env::{Env, StepResult};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// How the environment draws targets on reset.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetMode {
    /// Uniform over each spec's declared range.
    Uniform,
    /// Measured specs of random feasible designs (reachable by
    /// construction); the argument is the rejection-sampling budget.
    Feasible(usize),
    /// Cycle through a fixed set (the training set `O*`), selected at
    /// random each episode as in the paper.
    FixedSet(Vec<Vec<f64>>),
}

/// Configuration of a [`SizingEnv`].
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Maximum trajectory length `H` (paper: 30 for the op-amp).
    pub horizon: usize,
    /// Simulation fidelity.
    pub mode: SimMode,
    /// Target sampling strategy.
    pub target_mode: TargetMode,
    /// Reward issued when the simulator cannot even produce an operating
    /// point (far below any reachable Eq. 1 value).
    pub sim_fail_reward: f64,
    /// Terminal bonus granted on success (paper: +10; the reward-shaping
    /// ablation sets this to 0).
    pub success_bonus: f64,
    /// Warm-start consecutive DC solves from the previous step's operating
    /// point (reset clears the warm state). The cold path is bit-identical
    /// to [`SizingProblem::simulate`]; warm results agree to solver
    /// tolerance.
    pub warm_start: bool,
    /// Memoize measured specs per grid point: simulation is deterministic,
    /// so exact revisits are served from the cache without a solve. The
    /// cache persists across episodes (it belongs to the circuit family,
    /// not the target).
    pub memoize: bool,
    /// Pool the memo across environments: when set, this env's session
    /// caches into (and serves revisits from) the given concurrent sharded
    /// map instead of a private one, so parallel rollout workers share
    /// every solved grid point. Warm-start state stays private per env.
    /// Implies `memoize`. With `warm_start` also on, a pooled hit may
    /// serve specs solved from a sibling's warm trajectory — identical to
    /// a private run within solver tolerance (bitwise-identical when
    /// `warm_start` is off).
    pub shared_memo: Option<Arc<SharedMemo>>,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            horizon: 30,
            mode: SimMode::Schematic,
            target_mode: TargetMode::Feasible(50),
            sim_fail_reward: -5.0,
            success_bonus: SUCCESS_BONUS,
            warm_start: true,
            memoize: true,
            shared_memo: None,
        }
    }
}

/// The sizing environment: one episode = one attempt to walk the parameter
/// grid from the center to a design meeting the drawn target.
#[derive(Clone)]
pub struct SizingEnv {
    problem: Arc<dyn SizingProblem>,
    session: EvalSession<'static>,
    cfg: EnvConfig,
    cards: Vec<usize>,
    idx: Vec<usize>,
    target: Vec<f64>,
    last_specs: Vec<f64>,
    last_sim_failed: bool,
    t: usize,
    sims: u64,
}

impl std::fmt::Debug for SizingEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SizingEnv")
            .field("problem", &self.problem.name())
            .field("idx", &self.idx)
            .field("target", &self.target)
            .field("t", &self.t)
            .finish()
    }
}

impl SizingEnv {
    /// Creates an environment over a sizing problem.
    pub fn new(problem: Arc<dyn SizingProblem>, cfg: EnvConfig) -> Self {
        let cards = problem.cardinalities();
        let nspecs = problem.specs().len();
        let mut session = EvalSession::shared(Arc::clone(&problem), cfg.mode)
            .with_warm_start(cfg.warm_start)
            .with_memo(cfg.memoize);
        if let Some(memo) = &cfg.shared_memo {
            session = session.with_shared_memo(Arc::clone(memo));
        }
        SizingEnv {
            problem,
            session,
            cfg,
            cards: cards.clone(),
            idx: cards.iter().map(|k| k / 2).collect(),
            target: vec![0.0; nspecs],
            last_specs: vec![0.0; nspecs],
            last_sim_failed: false,
            t: 0,
            sims: 0,
        }
    }

    /// The problem being sized.
    pub fn problem(&self) -> &Arc<dyn SizingProblem> {
        &self.problem
    }

    /// The evaluation session (warm-start + memo pipeline) backing this
    /// environment's simulations.
    pub fn session(&self) -> &EvalSession<'static> {
        &self.session
    }

    /// Total simulations requested (the paper's sample-efficiency unit —
    /// every env evaluation counts, whether it hit the memo cache or ran
    /// the solver; see [`SizingEnv::solve_count`] for solver work actually
    /// spent).
    pub fn sim_count(&self) -> u64 {
        self.sims
    }

    /// Evaluations that actually ran the simulator (memo misses).
    pub fn solve_count(&self) -> u64 {
        self.session.solve_count()
    }

    /// Evaluations served from the memo cache.
    pub fn memo_hits(&self) -> u64 {
        self.session.memo_hits()
    }

    /// Shared-memo hits served from a grid point solved by a *different*
    /// worker (always 0 without [`EnvConfig::shared_memo`]).
    pub fn cross_memo_hits(&self) -> u64 {
        self.session.cross_memo_hits()
    }

    /// Current parameter indices.
    pub fn param_indices(&self) -> &[usize] {
        &self.idx
    }

    /// Most recent measured specs.
    pub fn last_specs(&self) -> &[f64] {
        &self.last_specs
    }

    /// The active target specification.
    pub fn target(&self) -> &[f64] {
        &self.target
    }

    /// Starts an episode against an explicit target (deployment entry
    /// point; [`Env::reset`] samples one instead).
    pub fn reset_with_target(&mut self, target: Vec<f64>) -> Vec<f64> {
        assert_eq!(target.len(), self.problem.specs().len());
        self.target = target;
        self.idx = self.cards.iter().map(|k| k / 2).collect();
        self.t = 0;
        // New episode: the previous operating point is no longer adjacent
        // to the (re-centered) design, so warm state is dropped; the memo
        // cache survives because the grid -> specs map is episode-invariant.
        self.session.reset_warm();
        self.simulate_current();
        self.observation()
    }

    fn simulate_current(&mut self) {
        self.sims += 1;
        match self.session.evaluate(&self.idx) {
            Ok(specs) => {
                self.last_specs = specs;
                self.last_sim_failed = false;
            }
            Err(_) => {
                self.last_specs = self.problem.specs().iter().map(|s| s.fail_value).collect();
                self.last_sim_failed = true;
            }
        }
    }

    /// Whether the most recent evaluation failed outright (no operating
    /// point); `last_specs` then holds each spec's `fail_value`. Lets
    /// deployment report an unreachable design point instead of treating
    /// pessimistic placeholder specs as a measurement.
    pub fn last_sim_failed(&self) -> bool {
        self.last_sim_failed
    }

    /// Observation layout: `[n(o_m, o*_m)]_m ++ [scaled targets]_m ++
    /// [scaled params]_n` — the paper's (observed performance, target,
    /// current parameters) triple, all in O(1) ranges.
    fn observation(&self) -> Vec<f64> {
        let specs = self.problem.specs();
        let mut obs = Vec::with_capacity(2 * specs.len() + self.idx.len());
        for (o, t) in self.last_specs.iter().zip(&self.target) {
            obs.push(crate::reward::normalize(*o, *t));
        }
        for (d, t) in specs.iter().zip(&self.target) {
            let span = d.hi - d.lo;
            obs.push(if span.abs() < f64::EPSILON {
                0.0
            } else {
                2.0 * (t - d.lo) / span - 1.0
            });
        }
        for (i, k) in self.idx.iter().zip(&self.cards) {
            obs.push(2.0 * *i as f64 / (*k as f64 - 1.0).max(1.0) - 1.0);
        }
        obs
    }

    fn current_reward(&self) -> f64 {
        // A fail-value spec vector produces a very negative Eq. 1 value on
        // its own, but an unsolvable operating point is reported even more
        // pessimistically.
        let all_failed = self
            .last_specs
            .iter()
            .zip(self.problem.specs())
            .all(|(v, d)| (*v - d.fail_value).abs() < f64::EPSILON);
        if all_failed {
            self.cfg.sim_fail_reward
        } else {
            reward(self.problem.specs(), &self.last_specs, &self.target)
        }
    }
}

impl Env for SizingEnv {
    fn obs_dim(&self) -> usize {
        2 * self.problem.specs().len() + self.cards.len()
    }

    fn action_dims(&self) -> Vec<usize> {
        vec![3; self.cards.len()]
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        let target = match &self.cfg.target_mode {
            TargetMode::Uniform => sample_uniform(self.problem.as_ref(), rng),
            TargetMode::Feasible(tries) => sample_feasible(self.problem.as_ref(), rng, *tries),
            TargetMode::FixedSet(set) => {
                assert!(!set.is_empty(), "empty target set");
                set[rng.random_range(0..set.len())].clone()
            }
        };
        self.reset_with_target(target)
    }

    fn step(&mut self, action: &[usize]) -> StepResult {
        assert_eq!(action.len(), self.idx.len(), "wrong action arity");
        for ((i, k), a) in self.idx.iter_mut().zip(&self.cards).zip(action) {
            let delta = *a as i64 - 1;
            let next = *i as i64 + delta;
            *i = next.clamp(0, *k as i64 - 1) as usize;
        }
        self.t += 1;
        self.simulate_current();
        let r = self.current_reward();
        let success = is_success(r);
        let reward = if success {
            self.cfg.success_bonus + r
        } else {
            r
        };
        StepResult {
            obs: self.observation(),
            reward,
            done: success || self.t >= self.cfg.horizon,
            success,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autockt_circuits::Tia;
    use rand::SeedableRng;

    fn env(target_mode: TargetMode) -> SizingEnv {
        SizingEnv::new(
            Arc::new(Tia::default()),
            EnvConfig {
                horizon: 10,
                target_mode,
                ..EnvConfig::default()
            },
        )
    }

    #[test]
    fn obs_dim_matches_layout() {
        let e = env(TargetMode::Uniform);
        // TIA: 3 specs, 6 params -> 3 + 3 + 6 = 12.
        assert_eq!(e.obs_dim(), 12);
        assert_eq!(e.action_dims(), vec![3; 6]);
    }

    #[test]
    fn reset_centers_parameters() {
        let mut e = env(TargetMode::Uniform);
        let mut rng = StdRng::seed_from_u64(5);
        let obs = e.reset(&mut rng);
        assert_eq!(obs.len(), e.obs_dim());
        let cards = e.problem().cardinalities();
        for (i, k) in e.param_indices().iter().zip(&cards) {
            assert_eq!(*i, k / 2);
        }
        assert!(obs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn step_clamps_at_grid_edges() {
        let mut e = env(TargetMode::Uniform);
        let mut rng = StdRng::seed_from_u64(6);
        e.reset(&mut rng);
        // Push all decrements many times: indices must pin at 0.
        for _ in 0..40 {
            e.step(&[0, 0, 0, 0, 0, 0]);
        }
        assert!(e.param_indices().iter().all(|&i| i == 0));
    }

    #[test]
    fn keep_actions_do_not_move_parameters() {
        let mut e = env(TargetMode::Uniform);
        let mut rng = StdRng::seed_from_u64(7);
        e.reset(&mut rng);
        let before = e.param_indices().to_vec();
        e.step(&[1; 6]);
        assert_eq!(e.param_indices(), &before[..]);
    }

    #[test]
    fn horizon_terminates_episode() {
        let mut e = env(TargetMode::Uniform);
        let mut rng = StdRng::seed_from_u64(8);
        // A target at the very edge of all ranges is unlikely reachable in
        // 10 keep-steps; the episode must still end.
        e.reset(&mut rng);
        let mut done = false;
        for _ in 0..10 {
            let sr = e.step(&[1; 6]);
            done = sr.done;
            if done {
                break;
            }
        }
        assert!(done, "episode must terminate at the horizon");
    }

    #[test]
    fn reaching_a_self_target_succeeds_immediately() {
        // Target = specs of the center design: the first step with all
        // "keep" actions must succeed (reward ~ 0 plus bonus).
        let mut e = env(TargetMode::Uniform);
        let center: Vec<usize> = e.problem().cardinalities().iter().map(|k| k / 2).collect();
        let specs = e
            .problem()
            .simulate(&center, SimMode::Schematic)
            .expect("center simulates");
        e.reset_with_target(specs);
        let sr = e.step(&[1; 6]);
        assert!(sr.success, "self-target must be satisfied");
        assert!(sr.reward > 9.0, "bonus applied, got {}", sr.reward);
    }

    #[test]
    fn sim_count_increments_per_step() {
        let mut e = env(TargetMode::Uniform);
        let mut rng = StdRng::seed_from_u64(9);
        e.reset(&mut rng);
        let c0 = e.sim_count();
        e.step(&[1; 6]);
        e.step(&[1; 6]);
        assert_eq!(e.sim_count(), c0 + 2);
    }

    #[test]
    fn memoized_revisits_do_not_resolve() {
        let mut e = env(TargetMode::Uniform);
        let mut rng = StdRng::seed_from_u64(12);
        e.reset(&mut rng);
        assert_eq!(e.solve_count(), 1);
        // Keep actions stay on the same grid point: memo hits, no solves.
        e.step(&[1; 6]);
        e.step(&[1; 6]);
        assert_eq!(e.solve_count(), 1);
        assert_eq!(e.memo_hits(), 2);
        assert_eq!(e.sim_count(), 3);
    }

    #[test]
    fn memo_survives_episode_reset() {
        let mut e = env(TargetMode::Uniform);
        let mut rng = StdRng::seed_from_u64(13);
        e.reset(&mut rng);
        let solves = e.solve_count();
        // A new episode re-simulates the center design: memo hit.
        e.reset(&mut rng);
        assert_eq!(e.solve_count(), solves);
        assert!(e.memo_hits() >= 1);
    }

    #[test]
    fn cold_env_matches_warm_env_rewards() {
        let mk = |warm: bool, memo: bool| {
            SizingEnv::new(
                Arc::new(Tia::default()),
                EnvConfig {
                    horizon: 10,
                    target_mode: TargetMode::Uniform,
                    warm_start: warm,
                    memoize: memo,
                    ..EnvConfig::default()
                },
            )
        };
        let mut cold = mk(false, false);
        let mut warm = mk(true, true);
        let target = {
            let mut rng = StdRng::seed_from_u64(14);
            crate::target::sample_uniform(cold.problem().as_ref(), &mut rng)
        };
        cold.reset_with_target(target.clone());
        warm.reset_with_target(target);
        let walk = [[0, 1, 2, 1, 0, 2], [2, 1, 0, 1, 2, 0], [1, 1, 1, 1, 1, 1]];
        for a in walk.iter().cycle().take(9) {
            let rc = cold.step(a);
            let rw = warm.step(a);
            assert!(
                (rc.reward - rw.reward).abs() < 1e-6 * (1.0 + rc.reward.abs()),
                "cold {} vs warm {}",
                rc.reward,
                rw.reward
            );
        }
    }

    #[test]
    fn shared_memo_pools_revisits_across_envs() {
        use autockt_circuits::SharedMemo;
        let memo = Arc::new(SharedMemo::new(8, 4096));
        let mk = || {
            SizingEnv::new(
                Arc::new(Tia::default()),
                EnvConfig {
                    horizon: 10,
                    target_mode: TargetMode::Uniform,
                    shared_memo: Some(Arc::clone(&memo)),
                    ..EnvConfig::default()
                },
            )
        };
        let mut a = mk();
        let mut b = mk();
        let mut rng = StdRng::seed_from_u64(21);
        // Env a solves the center design on reset; env b's reset (same
        // center start) is served from the pooled memo without a solve.
        a.reset(&mut rng);
        assert_eq!(a.solve_count(), 1);
        b.reset(&mut rng);
        assert_eq!(b.solve_count(), 0);
        assert_eq!(b.cross_memo_hits(), 1);
        assert!(memo.cross_hits() >= 1);
    }

    #[test]
    fn fixed_set_targets_are_used() {
        let probe = vec![100e-12, 2e9, 1e-4];
        let mut e = env(TargetMode::FixedSet(vec![probe.clone()]));
        let mut rng = StdRng::seed_from_u64(10);
        e.reset(&mut rng);
        assert_eq!(e.target(), &probe[..]);
    }
}
